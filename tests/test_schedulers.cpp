// Differential suite for the memory-aware schedulers: the
// kReservedCriticalPath priority, the bounded backfill look-ahead
// (ParallelConfig::backfill_depth) and residency-aware paged starts.
//
// Pins, in order:
//   * reserve_penalty = 0 makes kReservedCriticalPath reproduce
//     kCriticalPath bit-identically (the key subtracts an exact 0.0);
//   * backfill_depth = 1 is exactly the pre-PR strict scan (backfill =
//     false), including the failed-start count and zero scan/hit stats —
//     the new priority and knobs leave the pinned engine behavior intact;
//   * the heap engine equals the scan-based reference oracle across the
//     new priority x penalties x workers x depths (both implement the
//     depth-bounded scan and its stats);
//   * workers = 1 + sequential order + strict scan still matches the
//     sequential FiF accounting whatever the new knobs default to;
//   * residency-aware starts keep every paged invariant (write-at-most-
//     once caps, page-multiple accounting, frames bound, determinism) —
//     under OOCTREE_AUDIT builds the in-engine reservation-balance and
//     residency-index audits run on every one of these simulations;
//   * residency is inert without a disk model, and scan stats stay sane
//     (hits can only come from scans; depth 1 forces both to zero).
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/iosim/pager.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::EvictionPolicy;
using core::Schedule;
using core::Tree;
using core::Weight;
using parallel::PagedParallelConfig;
using parallel::PagedParallelResult;
using parallel::ParallelConfig;
using parallel::ParallelResult;
using parallel::Priority;
using parallel::simulate_parallel;
using parallel::simulate_parallel_paged;
using parallel::simulate_parallel_reference;

void expect_identical(const ParallelResult& a, const ParallelResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.io_volume, b.io_volume) << label;
  EXPECT_EQ(a.io, b.io) << label;
  EXPECT_EQ(a.peak_resident, b.peak_resident) << label;
  EXPECT_EQ(a.start_order, b.start_order) << label;
  EXPECT_EQ(a.start_time, b.start_time) << label;
  EXPECT_EQ(a.finish_time, b.finish_time) << label;
  EXPECT_EQ(a.busy_time, b.busy_time) << label;
  EXPECT_EQ(a.failed_starts, b.failed_starts) << label;
  EXPECT_EQ(a.backfill_scans, b.backfill_scans) << label;
  EXPECT_EQ(a.backfill_hits, b.backfill_hits) << label;
}

// Penalty 0 subtracts an exact 0.0 from every priority key, so the ranking
// — and therefore the whole simulation — must equal kCriticalPath's.
TEST(Schedulers, ReservedPenaltyZeroIsCriticalPath) {
  util::Rng rng(26001);
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 14, rng)
                                  : test::small_random_wide_tree(40, 14, rng);
    const Weight lb = t.min_feasible_memory();
    for (const Weight m : {lb, lb + 9}) {
      for (const int workers : {1, 2, 4}) {
        ParallelConfig cp;
        cp.workers = workers;
        cp.memory = m;
        cp.priority = Priority::kCriticalPath;
        ParallelConfig reserved = cp;
        reserved.priority = Priority::kReservedCriticalPath;
        reserved.reserve_penalty = 0.0;
        expect_identical(simulate_parallel(t, reserved), simulate_parallel(t, cp),
                         "rep=" + std::to_string(rep) + " w=" + std::to_string(workers));
      }
    }
  }
}

// backfill_depth = 1 must be exactly the strict scan backfill = false has
// always given: same results AND same failed-start/scan/hit stats, for the
// old and the new priorities alike.
TEST(Schedulers, DepthOneIsStrictScan) {
  util::Rng rng(26007);
  const std::vector<Priority> priorities{
      Priority::kSequentialOrder, Priority::kCriticalPath, Priority::kHeaviestSubtree,
      Priority::kReservedCriticalPath};
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(36, 12, rng)
                                  : test::small_random_wide_tree(36, 12, rng);
    const Weight lb = t.min_feasible_memory();
    for (const Priority priority : priorities) {
      for (const int workers : {2, 4}) {
        ParallelConfig strict;
        strict.workers = workers;
        strict.memory = lb + 3;
        strict.priority = priority;
        strict.backfill = false;
        ParallelConfig depth1 = strict;
        depth1.backfill = true;
        depth1.backfill_depth = 1;
        const ParallelResult a = simulate_parallel(t, depth1);
        const ParallelResult b = simulate_parallel(t, strict);
        expect_identical(a, b, "rep=" + std::to_string(rep));
        EXPECT_EQ(a.backfill_scans, 0) << "depth 1 examines nothing beyond the head";
        EXPECT_EQ(a.backfill_hits, 0);
      }
    }
  }
}

// The heap engine and the scan-based reference oracle implement the
// depth-bounded scan independently; they must agree on results and stats
// across the new priority's whole knob space.
TEST(Schedulers, HeapEngineMatchesReferenceAcrossKnobs) {
  util::Rng rng(26013);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(32, 12, rng)
                                  : test::small_random_wide_tree(32, 12, rng);
    const Weight lb = t.min_feasible_memory();
    for (const double penalty : {0.5, 2.0}) {
      for (const int workers : {1, 2, 4}) {
        for (const int depth : {1, 2, 3, 0}) {
          ParallelConfig c;
          c.workers = workers;
          c.memory = lb + 5;
          c.priority = Priority::kReservedCriticalPath;
          c.reserve_penalty = penalty;
          c.backfill_depth = depth;
          expect_identical(simulate_parallel(t, c), simulate_parallel_reference(t, c),
                           "rep=" + std::to_string(rep) + " pen=" + std::to_string(penalty) +
                               " w=" + std::to_string(workers) +
                               " d=" + std::to_string(depth));
        }
      }
    }
  }
}

// One worker on the reference order with the strict scan is the sequential
// execution: io and peak must match the FiF simulator regardless of the
// new knobs' defaults.
TEST(Schedulers, SingleWorkerSequentialStillMatchesFif) {
  util::Rng rng(26019);
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(30, 10, rng)
                                  : test::small_random_wide_tree(30, 10, rng);
    const Schedule schedule = core::opt_minmem(t).schedule;
    const Weight lb = t.min_feasible_memory();
    for (const Weight m : {lb, lb + 4}) {
      ParallelConfig c;
      c.workers = 1;
      c.memory = m;
      c.priority = Priority::kSequentialOrder;
      c.backfill = false;
      const ParallelResult r = simulate_parallel(t, c, schedule);
      const core::FifResult fif = core::simulate_fif(t, schedule, m);
      ASSERT_TRUE(r.feasible) << "rep=" + std::to_string(rep);
      EXPECT_EQ(r.io_volume, fif.io_volume) << "rep=" + std::to_string(rep);
      EXPECT_EQ(r.peak_resident, fif.peak_resident) << "rep=" + std::to_string(rep);
    }
  }
}

// Residency-aware paged starts across page sizes, depths and memory slack:
// every paged invariant holds (the in-engine OOCTREE_AUDIT checks run on
// audit builds), page totals stay within the write-at-most-once caps, and
// the simulation is deterministic.
TEST(Schedulers, ResidencyAwareKeepsPagedInvariants) {
  util::Rng rng(26027);
  const iosim::DiskModel disk{0.25, 16.0};
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(34, 12, rng)
                                  : test::small_random_wide_tree(34, 12, rng);
    for (const Weight page : {Weight{1}, Weight{3}, Weight{5}}) {
      const Weight min_frames = iosim::min_feasible_frames(t, page);
      // Total pages of the whole tree: the write-at-most-once cap.
      Weight total_pages = 0;
      for (std::size_t i = 0; i < t.size(); ++i)
        total_pages += iosim::page_count(t.weight(static_cast<core::NodeId>(i)), page);
      for (const Weight slack : {Weight{0}, Weight{3}}) {
        for (const int depth : {0, 2}) {
          for (const int workers : {2, 4}) {
            ParallelConfig base;
            base.workers = workers;
            base.memory = (min_frames + slack) * page;
            base.priority = Priority::kReservedCriticalPath;
            base.backfill_depth = depth;
            base.residency_aware = true;
            PagedParallelConfig c;
            c.base = base;
            c.page_size = page;
            c.disk = disk;
            const PagedParallelResult r = simulate_parallel_paged(t, c);
            const std::string label = "rep=" + std::to_string(rep) +
                                      " page=" + std::to_string(page) +
                                      " slack=" + std::to_string(slack) +
                                      " d=" + std::to_string(depth) +
                                      " w=" + std::to_string(workers);
            ASSERT_TRUE(r.base.feasible) << label;
            // Write-at-most-once: each page spills to disk at most once.
            EXPECT_LE(r.pages_written, total_pages) << label;
            // Only written pages can be read back or dropped clean.
            EXPECT_LE(r.pages_read, r.pages_written) << label;
            EXPECT_LE(r.pages_dropped_clean, total_pages) << label;
            EXPECT_LE(r.peak_frames_used, r.frames) << label;
            EXPECT_GE(r.read_stall, 0.0) << label;
            // Determinism: the same config replays bit-identically.
            const PagedParallelResult again = simulate_parallel_paged(t, c);
            expect_identical(again.base, r.base, label);
            EXPECT_EQ(again.pages_written, r.pages_written) << label;
            EXPECT_EQ(again.pages_read, r.pages_read) << label;
            EXPECT_EQ(again.read_stall, r.read_stall) << label;
          }
        }
      }
    }
  }
}

// Without a disk model the residency rule must be inert: reads cost
// nothing, so the flag may not change results or stats.
TEST(Schedulers, ResidencyInertWithoutDisk) {
  util::Rng rng(26031);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = test::small_random_tree(36, 12, rng);
    const Weight lb = t.min_feasible_memory();
    for (const int depth : {0, 4}) {
      ParallelConfig base;
      base.workers = 3;
      base.memory = lb + 6;
      base.priority = Priority::kCriticalPath;
      base.backfill_depth = depth;
      PagedParallelConfig plain;
      plain.base = base;
      plain.page_size = 2;
      PagedParallelConfig aware = plain;
      aware.base.residency_aware = true;
      const PagedParallelResult a = simulate_parallel_paged(t, aware);
      const PagedParallelResult b = simulate_parallel_paged(t, plain);
      expect_identical(a.base, b.base, "rep=" + std::to_string(rep));
      EXPECT_EQ(a.pages_written, b.pages_written);
      EXPECT_EQ(a.pages_read, b.pages_read);
    }
  }
}

// Scan statistics: scans bound hits, strict scans record neither, and a
// bounded scan on a crafted instance records a hit when the head does not
// fit but a smaller ready task does.
TEST(Schedulers, BackfillStatsAreConsistent) {
  util::Rng rng(26037);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = test::small_random_wide_tree(40, 14, rng);
    const Weight lb = t.min_feasible_memory();
    for (const int depth : {0, 2, 8}) {
      ParallelConfig c;
      c.workers = 4;
      c.memory = lb + 4;
      c.priority = Priority::kCriticalPath;
      c.backfill_depth = depth;
      const ParallelResult r = simulate_parallel(t, c);
      EXPECT_LE(r.backfill_hits, r.backfill_scans)
          << "a hit needs at least one scanned candidate";
      if (depth == 1) {
        EXPECT_EQ(r.backfill_scans, 0);
        EXPECT_EQ(r.backfill_hits, 0);
      }
    }
  }

  // Three chains hanging off a light root; the ready leaves reserve 8, 6
  // and 3. With M = 12 and the 8-leaf running, the 6-leaf blocks the scan
  // head (8 + 6 > 12) while the 3-leaf fits — the bounded scan must start
  // it and record the hit.
  const Tree t = core::make_tree({{core::kNoNode, 1},
                                  {0, 1},
                                  {1, 8},
                                  {0, 1},
                                  {3, 6},
                                  {0, 1},
                                  {5, 3}});
  ParallelConfig c;
  c.workers = 2;
  c.memory = 12;
  c.priority = Priority::kHeaviestSubtree;
  c.backfill_depth = 4;
  const ParallelResult r = simulate_parallel(t, c);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.backfill_scans, 0);
  EXPECT_GT(r.backfill_hits, 0);
  // Strict scan on the same instance: no look-ahead, so no hits.
  c.backfill_depth = 1;
  const ParallelResult strict = simulate_parallel(t, c);
  EXPECT_EQ(strict.backfill_hits, 0);
}

// Config validation: negative depth and negative (or NaN) penalties are
// rejected up front.
TEST(Schedulers, RejectsInvalidKnobs) {
  const Tree t = core::make_tree({{core::kNoNode, 2}, {0, 1}});
  ParallelConfig c;
  c.workers = 2;
  c.memory = 4;
  c.backfill_depth = -1;
  EXPECT_THROW((void)simulate_parallel(t, c), std::invalid_argument);
  c.backfill_depth = 0;
  c.priority = Priority::kReservedCriticalPath;
  c.reserve_penalty = -0.5;
  EXPECT_THROW((void)simulate_parallel(t, c), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
