// Tests for schedule polishing (local search beyond the paper).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/local_search.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/strategies.hpp"
#include "src/treegen/paper_trees.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::polish_schedule;
using core::PolishOptions;
using core::Tree;
using core::Weight;

TEST(Polish, NeverWorseAndValid) {
  util::Rng rng(1601);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = test::small_random_tree(30, 20, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    const Weight m = std::max(lb, (lb + peak) / 2);
    const auto base = core::run_strategy(core::Strategy::kOptMinMem, t, m);
    PolishOptions opts;
    opts.max_evaluations = 500;
    opts.seed = static_cast<std::uint64_t>(rep);
    const auto polished = polish_schedule(t, base.schedule, m, opts);
    EXPECT_EQ(polished.io_before, base.io_volume());
    EXPECT_LE(polished.io_after, polished.io_before);
    const auto check = core::simulate_fif(t, polished.schedule, m);
    EXPECT_EQ(check.io_volume, polished.io_after);
    test::expect_valid_traversal(t, polished.schedule, check.io, m);
  }
}

TEST(Polish, RepairsOptMinMemOnFig2b) {
  // Figure 2(b): the OptMinMem order pays more than the chain-by-chain
  // optimum (3); local search must close most of that gap.
  const auto inst = treegen::fig2b();
  const auto base = core::run_strategy(core::Strategy::kOptMinMem, inst.tree, inst.memory);
  ASSERT_GT(base.io_volume(), 3);
  PolishOptions opts;
  opts.max_evaluations = 3000;
  opts.seed = 5;
  const auto polished = polish_schedule(inst.tree, base.schedule, inst.memory, opts);
  EXPECT_EQ(polished.io_after, 3) << "local search should reach the optimum on 9 nodes";
}

TEST(Polish, RepairsOptMinMemOnFig2c) {
  // Figure 2(c) with k=3: OptMinMem pays quadratically; polishing should
  // reach (or approach) the 2k optimum.
  const auto inst = treegen::fig2c(3);
  const auto base = core::run_strategy(core::Strategy::kOptMinMem, inst.tree, inst.memory);
  ASSERT_GT(base.io_volume(), 6);
  PolishOptions opts;
  opts.max_evaluations = 8000;
  opts.patience = 8000;
  opts.seed = 11;
  const auto polished = polish_schedule(inst.tree, base.schedule, inst.memory, opts);
  EXPECT_LT(polished.io_after, base.io_volume());
}

TEST(Polish, StopsImmediatelyAtZeroIo) {
  util::Rng rng(1607);
  const Tree t = test::small_random_tree(20, 10, rng);
  const Weight peak = core::opt_minmem(t).peak;
  const auto base = core::opt_minmem(t).schedule;
  const auto polished = polish_schedule(t, base, peak);
  EXPECT_EQ(polished.io_after, 0);
  EXPECT_EQ(polished.evaluations, 0u);
}

TEST(Polish, SometimesReachesBruteForceOptimum) {
  util::Rng rng(1613);
  int reached = 0, nontrivial = 0;
  for (int rep = 0; rep < 200 && nontrivial < 20; ++rep) {
    const Tree t = test::small_random_tree(8, 8, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    ++nontrivial;
    const Weight m = (lb + peak) / 2;
    const Weight opt = core::brute_force_min_io(t, m).objective;
    PolishOptions opts;
    opts.max_evaluations = 1500;
    opts.seed = static_cast<std::uint64_t>(rep);
    const auto polished =
        polish_schedule(t, core::opt_minmem(t).schedule, m, opts);
    EXPECT_GE(polished.io_after, opt);
    reached += (polished.io_after == opt) ? 1 : 0;
  }
  ASSERT_GE(nontrivial, 10);
  EXPECT_GE(reached * 10, nontrivial * 8) << reached << "/" << nontrivial;
}

TEST(Polish, ThrowsOnInfeasibleBound) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}, {0, 6}});
  EXPECT_THROW((void)polish_schedule(t, {1, 2, 0}, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
