// Tests for the RecExpand / FullRecExpand heuristics (Section 5).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/lower_bounds.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"
#include "src/treegen/paper_trees.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::full_rec_expand;
using core::rec_expand2;
using core::RecExpandResult;
using core::Tree;
using core::Weight;

TEST(RecExpand, NoExpansionWhenMemoryIsAmple) {
  util::Rng rng(501);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(12, 10, rng);
    const Weight peak = core::opt_minmem(t).peak;
    const RecExpandResult r = full_rec_expand(t, peak);
    EXPECT_EQ(r.expansions, 0u);
    EXPECT_EQ(r.evaluation.io_volume, 0);
    EXPECT_EQ(r.final_peak, peak);
  }
}

TEST(RecExpand, ProducesValidTraversals) {
  util::Rng rng(503);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(12, 10, rng)
                                  : test::small_random_wide_tree(12, 10, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    for (const Weight m : {lb, (lb + peak) / 2}) {
      for (const bool full : {false, true}) {
        const RecExpandResult r = full ? full_rec_expand(t, m) : rec_expand2(t, m);
        ASSERT_TRUE(r.evaluation.feasible);
        test::expect_valid_traversal(t, r.schedule, r.evaluation.io, m);
      }
    }
  }
}

TEST(RecExpand, FullVariantFitsExpandedTreeInMemory) {
  // FullRecExpand iterates until the expanded tree schedules without I/O,
  // so its final peak is at most M and the FiF evaluation of the mapped
  // schedule never exceeds the expanded volume (Theorem 1).
  util::Rng rng(509);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_tree(10, 12, rng);
    const Weight m = t.min_feasible_memory() + 1;
    const RecExpandResult r = full_rec_expand(t, m);
    EXPECT_LE(r.final_peak, m);
    EXPECT_LE(r.evaluation.io_volume, r.expansion_volume);
  }
}

TEST(RecExpand, RespectsLowerBounds) {
  util::Rng rng(521);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = test::small_random_tree(11, 10, rng);
    const Weight m = t.min_feasible_memory() + 1;
    const Weight bound = core::io_lower_bound_peak_gap(t, m);
    EXPECT_GE(full_rec_expand(t, m).evaluation.io_volume, bound);
    EXPECT_GE(rec_expand2(t, m).evaluation.io_volume, bound);
  }
}

TEST(RecExpand, NeverBelowBruteForceOptimum) {
  util::Rng rng(523);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_tree(8, 8, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak == lb) continue;
    const Weight m = (lb + peak) / 2;
    const Weight opt = core::brute_force_min_io(t, m).objective;
    EXPECT_GE(full_rec_expand(t, m).evaluation.io_volume, opt);
    EXPECT_GE(rec_expand2(t, m).evaluation.io_volume, opt);
  }
}

TEST(RecExpand, OftenMatchesOptimumOnSmallTrees) {
  // Not a guarantee — but on small instances the heuristic should hit the
  // exact optimum in the clear majority of cases; a collapse of this rate
  // signals a regression in victim selection.
  util::Rng rng(541);
  int total = 0, optimal = 0;
  for (int rep = 0; rep < 500 && total < 30; ++rep) {
    const Tree t = test::small_random_tree(8, 8, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = (lb + peak) / 2;
    const Weight opt = core::brute_force_min_io(t, m).objective;
    ++total;
    optimal += (full_rec_expand(t, m).evaluation.io_volume == opt) ? 1 : 0;
  }
  ASSERT_GT(total, 10);
  EXPECT_GE(optimal * 4, total * 3) << optimal << "/" << total << " optimal";
}

TEST(RecExpand, Fig6FullRecExpandIsOptimal) {
  const auto inst = treegen::fig6();
  const Weight opt = core::brute_force_min_io(inst.tree, inst.memory).objective;
  EXPECT_EQ(opt, 3);
  EXPECT_EQ(full_rec_expand(inst.tree, inst.memory).evaluation.io_volume, 3);
}

TEST(RecExpand, Fig7FullRecExpandIsSuboptimal) {
  // Appendix A: on Figure 7 no expansion-based strategy can reach the
  // optimal 3 because OptMinMem never schedules the tree the postorder way.
  const auto inst = treegen::fig7();
  EXPECT_EQ(core::brute_force_min_io(inst.tree, inst.memory).objective, 3);
  EXPECT_EQ(full_rec_expand(inst.tree, inst.memory).evaluation.io_volume, 4);
}

TEST(RecExpand, CapLimitsWork) {
  util::Rng rng(547);
  const Tree t = test::small_random_tree(40, 25, rng);
  const Weight m = t.min_feasible_memory();
  core::RecExpandOptions opts;
  opts.max_expansions_per_node = 2;
  opts.global_expansion_cap = 3;
  const RecExpandResult r = core::rec_expand(t, m, opts);
  EXPECT_LE(r.expansions, 3u);
  ASSERT_TRUE(r.evaluation.feasible);
  test::expect_valid_traversal(t, r.schedule, r.evaluation.io, m);
}

TEST(RecExpand, TwoIterationVariantCloseToFull) {
  // The paper reports RecExpand within a few percent of FullRecExpand; on
  // small instances require it within 50% (loose sanity bound) and never
  // invalid.
  util::Rng rng(557);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(12, 10, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = (lb + peak) / 2;
    const Weight io_full = full_rec_expand(t, m).evaluation.io_volume;
    const Weight io_two = rec_expand2(t, m).evaluation.io_volume;
    EXPECT_LE(io_two * 2, (io_full + m) * 3) << "RecExpand wildly off FullRecExpand";
  }
}

}  // namespace
}  // namespace ooctree
