// Tests for the tree generators (SYNTH substrate).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/treegen/catalan.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/treegen/shapes.hpp"
#include "src/treegen/weights.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::NodeId;
using core::Tree;
using core::Weight;
using treegen::catalan_number;
using treegen::u128;

TEST(Catalan, KnownValues) {
  EXPECT_EQ(static_cast<std::uint64_t>(catalan_number(0)), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(catalan_number(1)), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(catalan_number(5)), 42u);
  EXPECT_EQ(static_cast<std::uint64_t>(catalan_number(10)), 16796u);
  EXPECT_EQ(static_cast<std::uint64_t>(catalan_number(30)), 3814986502092304u);
  EXPECT_THROW((void)catalan_number(66), std::invalid_argument);
}

TEST(Catalan, UnrankProducesValidTrees) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const u128 total = catalan_number(n);
    for (u128 r = 0; r < total; ++r) {
      const Tree t = treegen::unrank_binary_tree(n, r);
      EXPECT_EQ(t.size(), n);
      for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
        EXPECT_LE(t.num_children(v), 2u);
    }
  }
  EXPECT_THROW((void)treegen::unrank_binary_tree(3, catalan_number(3)), std::invalid_argument);
}

TEST(Catalan, ExactSamplerCoversAllShapesOfSize4) {
  // C_4 = 14 ordered binary trees; as unordered parent-structures some
  // coincide, but repeated sampling must hit every distinct structure.
  util::Rng rng(801);
  std::set<std::string> seen;
  for (int rep = 0; rep < 2000; ++rep)
    seen.insert(treegen::uniform_binary_tree_exact(4, rng).to_string());
  std::set<std::string> all;
  for (u128 r = 0; r < catalan_number(4); ++r)
    all.insert(treegen::unrank_binary_tree(4, r).to_string());
  EXPECT_EQ(seen, all);
}

TEST(RandomBinary, RemyProducesFullBinaryTrees) {
  util::Rng rng(807);
  for (const std::size_t internal : {1u, 2u, 10u, 100u}) {
    const Tree t = treegen::remy_binary_tree(internal, rng);
    EXPECT_EQ(t.size(), 2 * internal + 1);
    std::size_t leaves = 0;
    for (NodeId v = 0; v < static_cast<NodeId>(t.size()); ++v) {
      const auto k = t.num_children(v);
      EXPECT_TRUE(k == 0 || k == 2) << "full binary tree property";
      leaves += (k == 0) ? 1 : 0;
    }
    EXPECT_EQ(leaves, internal + 1);
  }
}

TEST(RandomBinary, StrippedTreeHasRequestedSize) {
  util::Rng rng(811);
  for (const std::size_t n : {1u, 2u, 5u, 50u, 3000u}) {
    const Tree t = treegen::uniform_binary_tree(n, rng);
    EXPECT_EQ(t.size(), n);
    for (NodeId v = 0; v < static_cast<NodeId>(t.size()); ++v)
      EXPECT_LE(t.num_children(v), 2u);
  }
}

/// Order- and label-independent canonical form of a tree shape.
std::string canonical_shape(const Tree& t, NodeId v) {
  std::vector<std::string> kids;
  for (const NodeId c : t.children(v)) kids.push_back(canonical_shape(t, c));
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  for (const auto& k : kids) out += k;
  out += ")";
  return out;
}

TEST(RandomBinary, UniformityChiSquareSmoke) {
  // Compare Rémy-based sampling frequencies of size-4 shapes against the
  // exact distribution induced by Catalan (ordered-tree) counting: each
  // unordered shape's probability is (#ordered representatives) / C_4.
  util::Rng rng(821);
  std::map<std::string, int> exact;
  for (u128 r = 0; r < catalan_number(4); ++r) {
    const Tree t = treegen::unrank_binary_tree(4, r);
    exact[canonical_shape(t, t.root())]++;
  }
  std::map<std::string, double> freq;
  const int reps = 20000;
  for (int rep = 0; rep < reps; ++rep) {
    const Tree t = treegen::uniform_binary_tree(4, rng);
    freq[canonical_shape(t, t.root())] += 1.0;
  }
  const double total = static_cast<double>(static_cast<std::uint64_t>(catalan_number(4)));
  for (const auto& [shape, count] : exact) {
    const double expected = static_cast<double>(count) / total;
    ASSERT_TRUE(freq.count(shape)) << shape;
    EXPECT_NEAR(freq[shape] / reps, expected, 0.02) << shape;
  }
}

TEST(RandomBinary, SynthInstanceWeightsInRange) {
  util::Rng rng(823);
  const Tree t = treegen::synth_instance(3000, 1, 100, rng);
  EXPECT_EQ(t.size(), 3000u);
  Weight lo = 1000, hi = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(t.size()); ++v) {
    lo = std::min(lo, t.weight(v));
    hi = std::max(hi, t.weight(v));
  }
  EXPECT_GE(lo, 1);
  EXPECT_LE(hi, 100);
  EXPECT_GT(hi, 50) << "3000 uniform draws should reach the top half";
}

TEST(Shapes, ChainStarKaryCaterpillarSpider) {
  EXPECT_EQ(treegen::chain_tree({5, 4, 3}).depth(), 3u);
  EXPECT_EQ(treegen::star_tree(6, 2, 1).size(), 7u);
  EXPECT_EQ(treegen::complete_kary_tree(3, 3, 1).size(), 1u + 3u + 9u);
  EXPECT_EQ(treegen::caterpillar_tree(4, 2, 1).size(), 4u + 8u);
  const Tree spider = treegen::spider_tree(3, 4, 1);
  EXPECT_EQ(spider.size(), 1u + 12u);
  EXPECT_EQ(spider.num_children(spider.root()), 3u);
  EXPECT_EQ(spider.depth(), 5u);
}

TEST(Shapes, RandomRecursiveTree) {
  util::Rng rng(829);
  const Tree t = treegen::random_recursive_tree(500, rng);
  EXPECT_EQ(t.size(), 500u);
  EXPECT_EQ(t.root(), 0);
}

TEST(Weights, UniformAndConstantAndLogUniform) {
  util::Rng rng(839);
  const Tree shape = treegen::uniform_binary_tree(200, rng);
  const Tree uni = treegen::with_uniform_weights(shape, 5, 9, rng);
  for (NodeId v = 0; v < static_cast<NodeId>(uni.size()); ++v) {
    EXPECT_GE(uni.weight(v), 5);
    EXPECT_LE(uni.weight(v), 9);
    EXPECT_EQ(uni.parent(v), shape.parent(v));
  }
  EXPECT_TRUE(treegen::with_constant_weights(shape, 1).is_homogeneous());
  const Tree logw = treegen::with_log_uniform_weights(shape, 1000, rng);
  Weight hi = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(logw.size()); ++v) {
    EXPECT_GE(logw.weight(v), 1);
    EXPECT_LE(logw.weight(v), 1000);
    hi = std::max(hi, logw.weight(v));
  }
  EXPECT_GT(hi, 100) << "heavy tail should reach large weights";
}

}  // namespace
}  // namespace ooctree
