// Planning-service suite: cache identity (cached == computed, bit for
// bit), cross-source deduplication through Tree::canonical_hash, LRU
// eviction, deterministic per-request seeding regardless of thread count
// and submission order, request decoding (JSONL + CSV), failure responses,
// and the parallel-replay path against direct simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "src/core/snapshot.hpp"
#include "src/core/strategies.hpp"
#include "src/core/tree_io.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "src/service/plan_service.hpp"
#include "src/service/request_io.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/sparse/ordering.hpp"
#include "src/util/rng.hpp"
#include "tests/test_support.hpp"

namespace ooctree {
namespace {

using service::PlanRequest;
using service::PlanResponse;
using service::PlanService;
using service::Served;
using service::ServiceConfig;
using service::TreeSource;

/// A request carrying `tree` inline as parent/weight vectors.
PlanRequest parents_request(const core::Tree& tree, std::int64_t id, double memory_lb = 1.2) {
  PlanRequest request;
  request.id = id;
  request.source = TreeSource::kParents;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    request.parent.push_back(tree.parent(static_cast<core::NodeId>(i)));
    request.weight.push_back(tree.weight(static_cast<core::NodeId>(i)));
  }
  request.memory_lb = memory_lb;
  return request;
}

core::Tree test_tree(std::uint64_t seed, std::size_t n = 60) {
  util::Rng rng(seed);
  return test::small_random_tree(n, 50, rng);
}

TEST(PlanService, CachedResponseIsBitIdentical) {
  PlanService planner(ServiceConfig{.threads = 1});
  const PlanRequest request = parents_request(test_tree(1), 1);
  const PlanResponse first = planner.plan(request);
  const PlanResponse second = planner.plan(request);
  ASSERT_TRUE(first.stats->ok) << first.stats->error;
  EXPECT_EQ(first.served, Served::kComputed);
  EXPECT_EQ(second.served, Served::kCached);
  EXPECT_TRUE(service::identical(*first.stats, *second.stats));
  // Stronger than equality: cache hits share the leader's object.
  EXPECT_EQ(first.stats.get(), second.stats.get());
}

TEST(PlanService, CachedEqualsUncachedComputation) {
  const PlanRequest request = parents_request(test_tree(2), 5);
  PlanService cached(ServiceConfig{.threads = 1});
  PlanService uncached(ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false});
  (void)cached.plan(request);  // warm
  const PlanResponse hit = cached.plan(request);
  const PlanResponse raw = uncached.plan(request);
  EXPECT_EQ(hit.served, Served::kCached);
  EXPECT_EQ(raw.served, Served::kComputed);
  EXPECT_TRUE(service::identical(*hit.stats, *raw.stats));
}

TEST(PlanService, SynthFingerprintServesWithoutMaterializing) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request;
  request.id = 1;
  request.nodes = 80;
  request.seed = 42;  // explicit: duplicates share the spec
  request.memory_lb = 1.3;
  const PlanResponse first = planner.plan(request);
  request.id = 2;  // different id, same value-determined spec
  const PlanResponse second = planner.plan(request);
  ASSERT_TRUE(first.stats->ok);
  EXPECT_EQ(second.served, Served::kCached);
  EXPECT_EQ(first.stats.get(), second.stats.get());
  EXPECT_EQ(second.id, 2);  // per-request metadata still per-request
}

TEST(PlanService, DerivedStreamsMakeSeedZeroRequestsIndependent) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request;
  request.nodes = 80;
  request.seed = 0;  // derive from (service seed, id)
  request.id = 1;
  const PlanResponse a = planner.plan(request);
  request.id = 2;
  const PlanResponse b = planner.plan(request);
  ASSERT_TRUE(a.stats->ok && b.stats->ok);
  EXPECT_EQ(b.served, Served::kComputed);  // different stream, different tree
  EXPECT_NE(a.stats->tree_hash, b.stats->tree_hash);
}

TEST(PlanService, CrossSourceDeduplicationThroughCanonicalHash) {
  const core::Tree tree = test_tree(3);
  const std::string path = ::testing::TempDir() + "service_dedup.tree";
  core::save_tree(path, tree);

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse via_parents = planner.plan(parents_request(tree, 1));
  PlanRequest file_request;
  file_request.id = 2;
  file_request.source = TreeSource::kTreeFile;
  file_request.path = path;
  file_request.memory_lb = 1.2;  // same resolved bound as parents_request
  const PlanResponse via_file = planner.plan(file_request);
  ASSERT_TRUE(via_parents.stats->ok) << via_parents.stats->error;
  ASSERT_TRUE(via_file.stats->ok) << via_file.stats->error;
  // File sources cannot be fingerprinted, but the canonical tree hash
  // recognizes the identical instance and reuses the plan.
  EXPECT_EQ(via_file.served, Served::kCached);
  EXPECT_EQ(via_parents.stats.get(), via_file.stats.get());
}

TEST(PlanService, DeterministicAcrossThreadCountAndSubmissionOrder) {
  std::vector<PlanRequest> batch;
  for (int k = 0; k < 24; ++k) {
    PlanRequest request;
    request.id = k + 1;
    request.nodes = 50 + static_cast<std::size_t>(k % 5) * 10;
    request.seed = 0;  // derived stream: the determinism contract under test
    request.memory_lb = 1.1 + 0.1 * (k % 3);
    request.strategy =
        k % 2 == 0 ? core::Strategy::kRecExpand : core::Strategy::kPostOrderMinIo;
    batch.push_back(request);
  }

  PlanService serial(ServiceConfig{.threads = 1});
  std::vector<std::shared_ptr<const service::PlanStats>> expected(batch.size());
  for (const PlanRequest& request : batch)
    expected[static_cast<std::size_t>(request.id) - 1] = serial.plan(request).stats;

  std::vector<PlanRequest> shuffled = batch;
  std::mt19937_64 shuffle_rng(7);
  std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
  PlanService threaded(ServiceConfig{.threads = 8});
  auto futures = threaded.submit_batch(shuffled);
  for (std::size_t k = 0; k < shuffled.size(); ++k) {
    const PlanResponse response = futures[k].get();
    const auto& want = *expected[static_cast<std::size_t>(response.id) - 1];
    EXPECT_TRUE(service::identical(*response.stats, want))
        << "request id " << response.id << " diverged across scheduling";
  }
}

TEST(PlanService, DuplicateConcurrentRequestsComputeOnce) {
  PlanService planner(ServiceConfig{.threads = 4});
  PlanRequest request;
  request.nodes = 300;
  request.seed = 99;
  request.memory_lb = 1.1;
  std::vector<PlanRequest> batch;
  for (int k = 0; k < 12; ++k) {
    request.id = k + 1;
    batch.push_back(request);
  }
  auto futures = planner.submit_batch(batch);
  std::shared_ptr<const service::PlanStats> first;
  for (auto& future : futures) {
    const PlanResponse response = future.get();
    ASSERT_TRUE(response.stats->ok);
    if (first == nullptr) first = response.stats;
    EXPECT_EQ(response.stats.get(), first.get());  // one shared computation
  }
  const service::ServiceStats stats = planner.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cached + stats.coalesced, 11u);
}

TEST(PlanService, LruEvictsUnderTinyCapacity) {
  PlanService planner(ServiceConfig{.threads = 1, .cache_capacity = 1, .cache_shards = 1});
  const PlanRequest a = parents_request(test_tree(10), 1);
  const PlanRequest b = parents_request(test_tree(11), 2);
  (void)planner.plan(a);
  (void)planner.plan(b);  // evicts a (capacity 1)
  const PlanResponse again = planner.plan(a);
  EXPECT_EQ(again.served, Served::kComputed);
  EXPECT_GE(planner.stats().cache.evictions, 1u);
}

TEST(PlanService, AbsoluteBoundBelowLbFailsCleanly) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request = parents_request(test_tree(4), 1);
  request.memory = 1;  // below LB for any nontrivial tree
  const PlanResponse response = planner.plan(request);
  EXPECT_FALSE(response.stats->ok);
  EXPECT_NE(response.stats->error.find("below the feasibility bound"), std::string::npos);
  EXPECT_EQ(planner.stats().failed, 1u);
}

TEST(PlanService, MissingFileFailsAndIsNotCached) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request;
  request.id = 1;
  request.source = TreeSource::kTreeFile;
  request.path = ::testing::TempDir() + "no_such_instance.tree";
  EXPECT_FALSE(planner.plan(request).stats->ok);
  EXPECT_FALSE(planner.plan(request).stats->ok);
  EXPECT_EQ(planner.stats().computed, 2u);  // failures never populate the cache
  EXPECT_EQ(planner.stats().cached, 0u);
}

TEST(PlanService, ReplayMatchesDirectParallelSimulation) {
  const core::Tree tree = test_tree(5, 80);
  PlanRequest request = parents_request(tree, 1, 1.3);
  parallel::ParallelConfig pc;
  pc.workers = 3;
  pc.priority = parallel::Priority::kSequentialOrder;
  request.parallel = pc;

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse response = planner.plan(request);
  ASSERT_TRUE(response.stats->ok) << response.stats->error;
  ASSERT_TRUE(response.stats->replayed);

  const core::Weight memory = response.stats->memory;
  const auto direct_plan = core::run_strategy(core::Strategy::kRecExpand, tree, memory);
  pc.memory = memory;
  const auto direct = parallel::simulate_parallel(tree, pc, direct_plan.schedule);
  EXPECT_EQ(response.stats->schedule, direct_plan.schedule);
  EXPECT_EQ(response.stats->makespan, direct.makespan);
  EXPECT_EQ(response.stats->parallel_io, direct.io_volume);
  EXPECT_EQ(response.stats->replay_feasible, direct.feasible);
}

TEST(PlanService, PagedReplayMatchesDirectPagedSimulation) {
  const core::Tree tree = test_tree(6, 80);
  PlanRequest request = parents_request(tree, 1, 1.2);
  parallel::ParallelConfig pc;
  pc.workers = 2;
  pc.priority = parallel::Priority::kSequentialOrder;
  request.parallel = pc;
  request.page_size = 4;

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse response = planner.plan(request);
  ASSERT_TRUE(response.stats->ok) << response.stats->error;
  ASSERT_TRUE(response.stats->replayed);
  EXPECT_EQ(response.stats->page_size, 4);

  const core::Weight memory = response.stats->memory;
  const auto direct_plan = core::run_strategy(core::Strategy::kRecExpand, tree, memory);
  parallel::PagedParallelConfig paged;
  paged.base = pc;
  paged.base.memory = memory;
  paged.page_size = 4;
  const auto direct = parallel::simulate_parallel_paged(tree, paged, direct_plan.schedule);
  EXPECT_EQ(response.stats->replay_feasible, direct.base.feasible);
  EXPECT_EQ(response.stats->makespan, direct.base.makespan);
  EXPECT_EQ(response.stats->parallel_io, direct.base.io_volume);
  EXPECT_EQ(response.stats->pages_written, direct.pages_written);
  EXPECT_EQ(response.stats->pages_read, direct.pages_read);
  EXPECT_EQ(response.stats->parallel_io, direct.pages_written * 4);
}

// Disk-pipeline round trip: a pipelined request replays through the
// service bit-identically to the direct paged simulation, pipeline
// ledgers included.
TEST(PlanService, PipelinedReplayMatchesDirectPagedSimulation) {
  const core::Tree tree = test_tree(9, 80);
  PlanRequest request = parents_request(tree, 1, 1.1);
  parallel::ParallelConfig pc;
  pc.workers = 2;
  pc.priority = parallel::Priority::kSequentialOrder;
  pc.write_queue_depth = 4;
  pc.prefetch_window = 4;
  request.parallel = pc;
  request.page_size = 4;
  request.disk_latency = 0.5;
  request.disk_bandwidth = 8.0;

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse response = planner.plan(request);
  ASSERT_TRUE(response.stats->ok) << response.stats->error;
  ASSERT_TRUE(response.stats->replayed);

  const core::Weight memory = response.stats->memory;
  const auto direct_plan = core::run_strategy(core::Strategy::kRecExpand, tree, memory);
  parallel::PagedParallelConfig paged;
  paged.base = pc;
  paged.base.memory = memory;
  paged.page_size = 4;
  paged.disk = iosim::DiskModel{0.5, 8.0};
  const auto direct = parallel::simulate_parallel_paged(tree, paged, direct_plan.schedule);
  EXPECT_EQ(response.stats->makespan, direct.base.makespan);
  EXPECT_EQ(response.stats->read_stall, direct.read_stall);
  EXPECT_EQ(response.stats->write_stall, direct.write_stall);
  EXPECT_EQ(response.stats->prefetch_issued, direct.prefetch_issued);
  EXPECT_EQ(response.stats->prefetch_useful, direct.prefetch_useful);
  EXPECT_EQ(response.stats->prefetch_wasted, direct.prefetch_wasted);
  EXPECT_EQ(response.stats->prefetch_issued,
            response.stats->prefetch_useful + response.stats->prefetch_wasted);
}

// The pipeline knobs shape the answer, so they must separate cache
// entries: the same instance with and without the pipeline may not
// collide.
TEST(PlanService, PipelineKnobsSeparateCacheEntries) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request = parents_request(test_tree(10, 70), 1, 1.1);
  parallel::ParallelConfig pc;
  pc.workers = 2;
  request.parallel = pc;
  request.page_size = 4;
  request.disk_latency = 0.5;
  request.disk_bandwidth = 4.0;
  const PlanResponse sync = planner.plan(request);
  request.parallel->write_queue_depth = 4;
  request.parallel->prefetch_window = 4;
  const PlanResponse piped = planner.plan(request);
  ASSERT_TRUE(sync.stats->ok) << sync.stats->error;
  ASSERT_TRUE(piped.stats->ok) << piped.stats->error;
  EXPECT_EQ(piped.served, Served::kComputed) << "pipeline knobs must not collide in the cache";
  EXPECT_FALSE(service::identical(*sync.stats, *piped.stats));
  EXPECT_EQ(planner.plan(request).served, Served::kCached);
}

// Pipeline knobs without a disk model would silently be inert — the
// service rejects the request instead of caching a misleading answer.
TEST(PlanService, PipelineKnobsWithoutDiskFail) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request = parents_request(test_tree(11), 1);
  parallel::ParallelConfig pc;
  pc.workers = 2;
  pc.write_queue_depth = 2;
  request.parallel = pc;
  request.page_size = 4;  // no disk_bandwidth
  const PlanResponse response = planner.plan(request);
  ASSERT_FALSE(response.stats->ok);
  EXPECT_NE(response.stats->error.find("require a disk model"), std::string::npos);
  EXPECT_EQ(planner.stats().cached, 0u);
  request.parallel->write_queue_depth = 0;
  request.parallel->prefetch_window = 3;
  EXPECT_FALSE(planner.plan(request).stats->ok);
}

TEST(PlanService, PageSizeSeparatesCacheEntries) {
  // Identical instance and replay config, different page geometry: the
  // answers differ, so the fingerprints must too.
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request = parents_request(test_tree(7, 70), 1, 1.1);
  parallel::ParallelConfig pc;
  pc.workers = 2;
  request.parallel = pc;
  request.page_size = 0;  // unit replay
  const PlanResponse unit = planner.plan(request);
  request.page_size = 8;
  const PlanResponse paged = planner.plan(request);
  ASSERT_TRUE(unit.stats->ok) << unit.stats->error;
  ASSERT_TRUE(paged.stats->ok) << paged.stats->error;
  EXPECT_EQ(paged.served, Served::kComputed) << "page_size must not collide in the cache";
  EXPECT_FALSE(service::identical(*unit.stats, *paged.stats));
  // Re-serving either geometry hits its own entry.
  EXPECT_EQ(planner.plan(request).served, Served::kCached);
  request.page_size = 0;
  EXPECT_EQ(planner.plan(request).served, Served::kCached);
}

TEST(PlanService, PageSizeWithoutReplayFails) {
  PlanService planner(ServiceConfig{.threads = 1});
  PlanRequest request = parents_request(test_tree(8), 1);
  // Warm the cache with the valid page_size=0 twin first: the invalid
  // request below must fail, not collide with this entry and be served
  // its cached success (regression: page_size used to enter the key only
  // under a parallel config, and validation ran after the cache layers).
  ASSERT_TRUE(planner.plan(request).stats->ok);
  request.page_size = 4;  // no parallel config
  const PlanResponse response = planner.plan(request);
  ASSERT_FALSE(response.stats->ok);
  EXPECT_EQ(response.served, Served::kComputed);
  EXPECT_NE(response.stats->error.find("page_size"), std::string::npos);
  EXPECT_EQ(planner.stats().cached, 0u);
  // The invalid answer is not cached either: retrying still fails.
  EXPECT_FALSE(planner.plan(request).stats->ok);
}

TEST(PlanService, MatrixMarketRequestMatchesDirectPipeline) {
  const std::string path = ::testing::TempDir() + "service_instance.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "6 6 11\n"
        << "1 1\n2 2\n3 3\n4 4\n5 5\n6 6\n"
        << "2 1\n3 2\n5 4\n6 5\n6 1\n";
  }
  PlanRequest request;
  request.id = 1;
  request.source = TreeSource::kMatrixMarket;
  request.path = path;
  request.memory_lb = 1.0;

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse response = planner.plan(request);
  ASSERT_TRUE(response.stats->ok) << response.stats->error;

  const auto pattern = sparse::load_matrix_market(path);
  const core::Tree tree =
      sparse::assembly_tree(pattern.permuted(sparse::minimum_degree(pattern)));
  EXPECT_EQ(response.stats->tree_hash, tree.canonical_hash());
  EXPECT_EQ(response.stats->nodes, tree.size());
  EXPECT_EQ(response.stats->lb, tree.min_feasible_memory());
}

// ---------------------------------------------------------------------------
// Request decoding.

TEST(RequestIo, ParsesJsonlFields) {
  const auto request = service::request_from_json(
      R"({"id": 7, "nodes": 120, "w_lo": 2, "w_hi": 9, "seed": 5, "memory_lb": 1.5, )"
      R"("strategy": "optminmem", "workers": 4, "priority": "critical-path", "evict": "lru", )"
      R"("backfill": false, "page_size": 16})");
  EXPECT_EQ(request.id, 7);
  EXPECT_EQ(request.source, TreeSource::kSynth);
  EXPECT_EQ(request.nodes, 120u);
  EXPECT_EQ(request.w_lo, 2);
  EXPECT_EQ(request.w_hi, 9);
  EXPECT_EQ(request.seed, 5u);
  EXPECT_DOUBLE_EQ(request.memory_lb, 1.5);
  EXPECT_EQ(request.strategy, core::Strategy::kOptMinMem);
  ASSERT_TRUE(request.parallel.has_value());
  EXPECT_EQ(request.parallel->workers, 4);
  EXPECT_EQ(request.parallel->priority, parallel::Priority::kCriticalPath);
  EXPECT_EQ(request.parallel->evict, core::EvictionPolicy::kLru);
  EXPECT_FALSE(request.parallel->backfill);
  EXPECT_EQ(request.page_size, 16);
}

TEST(RequestIo, ParsesParentArraysAndInfersSource) {
  const auto request = service::request_from_json(
      R"({"parent": [-1, 0, 0], "weight": [5, 3, 2], "memory": 10})");
  EXPECT_EQ(request.source, TreeSource::kParents);
  EXPECT_EQ(request.parent, (std::vector<core::NodeId>{-1, 0, 0}));
  EXPECT_EQ(request.weight, (std::vector<core::Weight>{5, 3, 2}));
  EXPECT_EQ(request.memory, 10);
}

TEST(RequestIo, InfersFileSourcesFromPath) {
  EXPECT_EQ(service::request_from_json(R"({"path": "a.mtx"})").source,
            TreeSource::kMatrixMarket);
  EXPECT_EQ(service::request_from_json(R"({"path": "a.tree"})").source, TreeSource::kTreeFile);
}

TEST(RequestIo, RejectsMalformedInput) {
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": })"), std::runtime_error);
  EXPECT_THROW((void)service::request_from_json(R"({"frobnicate": 1})"), std::runtime_error);
  EXPECT_THROW((void)service::request_from_json(R"({"source": "tree"})"), std::runtime_error);
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": 5} trailing)"),
               std::runtime_error);
  // Replay knobs without workers would silently drop the replay block.
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": 5, "evict": "lru"})"),
               std::runtime_error);
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": 5, "page_size": 4})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)service::request_from_json(R"({"nodes": 5, "workers": 2, "page_size": 0})"),
      std::runtime_error);
  std::istringstream bad("{\"nodes\": 10}\n{\"oops\n");
  EXPECT_THROW((void)service::read_requests_jsonl(bad), std::runtime_error);
  // CSV booleans must be 1/0/true/false, not a silent false.
  std::istringstream bad_bool("nodes,workers,backfill\n8,2,ture\n");
  EXPECT_THROW((void)service::read_requests_csv(bad_bool), std::runtime_error);
}

TEST(RequestIo, ParsesDiskPipelineKnobs) {
  const auto request = service::request_from_json(
      R"({"nodes": 64, "workers": 2, "page_size": 4, "disk_latency": 0.5, )"
      R"("disk_bandwidth": 8, "write_queue_depth": 3, "prefetch_window": 5})");
  ASSERT_TRUE(request.parallel.has_value());
  EXPECT_EQ(request.parallel->write_queue_depth, 3);
  EXPECT_EQ(request.parallel->prefetch_window, 5);
  EXPECT_DOUBLE_EQ(request.disk_latency, 0.5);
  EXPECT_DOUBLE_EQ(request.disk_bandwidth, 8.0);
}

TEST(RequestIo, RejectsBadDiskPipelineKnobs) {
  // Negative knobs are decode errors, not clamped values.
  EXPECT_THROW((void)service::request_from_json(
                   R"({"nodes": 8, "workers": 2, "write_queue_depth": -1})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)service::request_from_json(R"({"nodes": 8, "workers": 2, "prefetch_window": -2})"),
      std::runtime_error);
  // Knobs are replay fields: without workers the replay block would be
  // silently dropped, so the decoder refuses.
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": 8, "write_queue_depth": 2})"),
               std::runtime_error);
  EXPECT_THROW((void)service::request_from_json(R"({"nodes": 8, "prefetch_window": 2})"),
               std::runtime_error);
}

TEST(RequestIo, ReadsDiskPipelineKnobsFromCsv) {
  std::istringstream in(
      "nodes,workers,page_size,disk_bandwidth,write_queue_depth,prefetch_window\n"
      "64,2,4,8,3,5\n");
  const auto requests = service::read_requests_csv(in);
  ASSERT_EQ(requests.size(), 1u);
  ASSERT_TRUE(requests[0].parallel.has_value());
  EXPECT_EQ(requests[0].parallel->write_queue_depth, 3);
  EXPECT_EQ(requests[0].parallel->prefetch_window, 5);
  EXPECT_DOUBLE_EQ(requests[0].disk_bandwidth, 8.0);
}

TEST(RequestIo, NameParsingIsCaseInsensitive) {
  const auto request = service::request_from_json(
      R"({"nodes": 8, "model": "Max", "strategy": "RECEXPAND", "workers": 2, "evict": "LRU"})");
  EXPECT_EQ(request.model, core::MemoryModel::kMaxInOut);
  EXPECT_EQ(request.strategy, core::Strategy::kRecExpand);
  EXPECT_EQ(request.parallel->evict, core::EvictionPolicy::kLru);
}

TEST(RequestIo, ReadsJsonlStreamWithCommentsAndFallbackIds) {
  std::istringstream in(
      "# demo batch\n"
      "{\"nodes\": 40}\n"
      "\n"
      "{\"id\": 9, \"nodes\": 50}\n");
  const auto requests = service::read_requests_jsonl(in);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].id, 2);  // line ordinal
  EXPECT_EQ(requests[0].nodes, 40u);
  EXPECT_EQ(requests[1].id, 9);
}

TEST(RequestIo, ReadsCsvBatches) {
  std::istringstream in(
      "id,nodes,seed,memory_lb,strategy,workers\n"
      "1,64,11,1.5,recexpand,\n"
      "2,128,12,,postorder,2\n");
  const auto requests = service::read_requests_csv(in);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].nodes, 64u);
  EXPECT_DOUBLE_EQ(requests[0].memory_lb, 1.5);
  EXPECT_FALSE(requests[0].parallel.has_value());
  EXPECT_EQ(requests[1].strategy, core::Strategy::kPostOrderMinIo);
  EXPECT_DOUBLE_EQ(requests[1].memory_lb, 2.0);  // empty cell keeps the default
  ASSERT_TRUE(requests[1].parallel.has_value());
  EXPECT_EQ(requests[1].parallel->workers, 2);
}

TEST(RequestIo, AutoDetectsFormat) {
  const std::string jsonl_path = ::testing::TempDir() + "batch_auto.jsonl";
  {
    std::ofstream out(jsonl_path);
    out << "{\"nodes\": 32}\n";
  }
  const std::string csv_path = ::testing::TempDir() + "batch_auto.csv";
  {
    std::ofstream out(csv_path);
    out << "nodes\n48\n";
  }
  EXPECT_EQ(service::load_requests(jsonl_path)[0].nodes, 32u);
  EXPECT_EQ(service::load_requests(csv_path)[0].nodes, 48u);
}

TEST(RequestIo, InfersSnapshotSourceFromPath) {
  EXPECT_EQ(service::request_from_json(R"({"path": "a.otree"})").source,
            TreeSource::kSnapshot);
  EXPECT_EQ(service::request_from_json(R"({"source": "snapshot", "path": "x"})").source,
            TreeSource::kSnapshot);
}

// The two consumers of a CacheKey — shard routing and bucket hashing —
// historically used distinct ad-hoc mixers; both now derive from
// cache_key_digest. Pin the agreement over a spread of keys, including
// adversarial ones (all-zero, single-bit, equal halves).
TEST(ResultCacheHash, ShardAndBucketDeriveFromOneDigest) {
  const service::ResultCache cache(64, 8);
  util::Rng rng(99);
  std::vector<service::CacheKey> keys = {
      {0, 0}, {1, 0}, {0, 1}, {~0ULL, ~0ULL}, {42, 42}, {1ULL << 63, 0}};
  for (int i = 0; i < 256; ++i) keys.push_back({rng.engine()(), rng.engine()()});
  for (const service::CacheKey& k : keys) {
    const std::uint64_t digest = service::cache_key_digest(k);
    EXPECT_EQ(service::CacheKeyHash{}(k), static_cast<std::size_t>(digest));
    EXPECT_EQ(cache.shard_index(k),
              static_cast<std::size_t>((digest >> 32) & (cache.shard_count() - 1)));
    EXPECT_LT(cache.shard_index(k), cache.shard_count());
  }
}

/// A fresh, empty persist directory (TempDir survives across test runs, so
/// leftover .plan files from a previous invocation must not leak in).
std::string fresh_persist_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::shared_ptr<const service::PlanStats> fake_stats(std::uint64_t tree_hash) {
  auto stats = std::make_shared<service::PlanStats>();
  stats->ok = true;
  stats->nodes = 3;
  stats->tree_hash = tree_hash;
  stats->total_weight = 9;
  stats->lb = 7;
  stats->memory = 10;
  stats->strategy = core::Strategy::kPostOrderMinIo;
  stats->schedule = {2, 1, 0};
  stats->io = {0, 2, 0};
  stats->io_volume = 2;
  stats->peak_resident = 9;
  stats->evictions = 1;
  return stats;
}

TEST(ResultCache, PersistentSpillRestoreRoundTrip) {
  const std::string dir = fresh_persist_dir("plan_cache_spill");
  const service::CacheKey hot{101, 5};
  const service::CacheKey cold{202, 5};
  service::ResultCache cache(1, 1, dir);  // capacity 1: second put evicts
  cache.put(cold, fake_stats(202));
  cache.put(hot, fake_stats(101));  // evicts cold -> spilled to dir
  EXPECT_GE(cache.counters().spilled, 1u);

  // RAM miss on the evicted key falls back to the directory.
  const auto restored = cache.get(cold);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(service::identical(*restored, *fake_stats(202)));
  EXPECT_GE(cache.counters().restored, 1u);
  cache.audit();
}

TEST(ResultCache, NonPersistableEntriesStayRamOnly) {
  const std::string dir = fresh_persist_dir("plan_cache_ram_only");
  service::ResultCache cache(1, 1, dir);
  cache.put({301, 1}, fake_stats(301), /*persistable=*/false);
  cache.put({302, 1}, fake_stats(302), /*persistable=*/false);  // evicts 301
  EXPECT_EQ(cache.counters().spilled, 0u);
  EXPECT_EQ(cache.get({301, 1}), nullptr);  // gone for good
}

TEST(ResultCache, FlushOnDestroyThenPreload) {
  const std::string dir = fresh_persist_dir("plan_cache_flush");
  const service::CacheKey key{77, 8};
  {
    service::ResultCache cache(16, 2, dir);
    cache.put(key, fake_stats(77));
  }  // destructor flushes the live persistable entry
  service::ResultCache reborn(16, 2, dir);
  const auto value = reborn.get(key);
  ASSERT_NE(value, nullptr);
  EXPECT_TRUE(service::identical(*value, *fake_stats(77)));
}

// The ISSUE acceptance test: a restarted service with the same persist
// directory serves a previously planned request from cache, bit-identical
// to the originally computed response.
TEST(PlanService, PersistentCacheSurvivesRestart) {
  const std::string dir = fresh_persist_dir("plan_cache_restart");
  const PlanRequest request = parents_request(test_tree(55), 1);
  service::PlanStats original;
  {
    PlanService first(ServiceConfig{.threads = 1, .persist_dir = dir});
    const PlanResponse computed = first.plan(request);
    ASSERT_TRUE(computed.stats->ok) << computed.stats->error;
    EXPECT_EQ(computed.served, Served::kComputed);
    original = *computed.stats;
  }  // service destroyed: canonical entry flushed to dir

  PlanService second(ServiceConfig{.threads = 1, .persist_dir = dir});
  const PlanResponse replayed = second.plan(request);
  ASSERT_TRUE(replayed.stats->ok) << replayed.stats->error;
  EXPECT_EQ(replayed.served, Served::kCached);
  EXPECT_TRUE(service::identical(original, *replayed.stats));
  EXPECT_EQ(second.stats().computed, 0u);
  second.audit(/*quiescent=*/true);
}

// A .otree snapshot request plans bit-identically to the same instance
// submitted as inline parent vectors, and deduplicates against it through
// the canonical-tree cache layer.
TEST(PlanService, SnapshotSourceMatchesParentsSource) {
  const core::Tree tree = test_tree(66);
  const std::string path = ::testing::TempDir() + "service_instance.otree";
  core::save_snapshot(path, tree);

  PlanService planner(ServiceConfig{.threads = 1});
  const PlanResponse via_parents = planner.plan(parents_request(tree, 1));
  ASSERT_TRUE(via_parents.stats->ok) << via_parents.stats->error;

  PlanRequest snap;
  snap.id = 2;
  snap.source = TreeSource::kSnapshot;
  snap.path = path;
  snap.memory_lb = 1.2;
  const PlanResponse via_snapshot = planner.plan(snap);
  ASSERT_TRUE(via_snapshot.stats->ok) << via_snapshot.stats->error;
  EXPECT_EQ(via_snapshot.served, Served::kCached);  // canonical-hash dedup
  EXPECT_TRUE(service::identical(*via_parents.stats, *via_snapshot.stats));
}

}  // namespace
}  // namespace ooctree
