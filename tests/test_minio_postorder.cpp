// Tests for the best I/O postorder (POSTORDERMINIO, Section 4.1) and its
// optimality on homogeneous trees (Theorem 4).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_postorder.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::postorder_minio;
using core::Schedule;
using core::simulate_fif;
using core::Tree;
using core::Weight;

TEST(PostOrderMinIo, PredictionMatchesFifSimulation) {
  // The analytic V_root must equal the FiF evaluation of the emitted
  // postorder — on binary and on wide trees, across memory bounds.
  util::Rng rng(201);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(12, 10, rng)
                                  : test::small_random_wide_tree(12, 10, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::postorder_minmem(t).peak;
    for (const Weight m : {lb, (lb + peak) / 2, peak}) {
      const auto r = postorder_minio(t, m);
      EXPECT_EQ(r.predicted_io, simulate_fif(t, r.schedule, m).io_volume)
          << t.to_string() << " M=" << m;
    }
  }
}

TEST(PostOrderMinIo, BestAmongAllPostordersSmall) {
  // Exhaustive: no postorder beats the A-sorted one.
  util::Rng rng(203);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_wide_tree(7, 8, rng);
    const Weight m = t.min_feasible_memory() + 2;
    const auto r = postorder_minio(t, m);
    std::vector<std::size_t> pos(t.size());
    Weight best = std::numeric_limits<Weight>::max();
    core::for_each_topological_order(t, [&](const Schedule& s) {
      // Keep postorders only.
      for (std::size_t k = 0; k < s.size(); ++k) pos[static_cast<std::size_t>(s[k])] = k;
      for (std::size_t i = 0; i < t.size(); ++i) {
        std::size_t lo = pos[i];
        for (const core::NodeId d : t.postorder(static_cast<core::NodeId>(i)))
          lo = std::min(lo, pos[static_cast<std::size_t>(d)]);
        if (lo != pos[i] + 1 - t.subtree_size(static_cast<core::NodeId>(i))) return;
      }
      best = std::min(best, simulate_fif(t, s, m).io_volume);
    });
    EXPECT_EQ(r.predicted_io, best) << t.to_string();
  }
}

TEST(PostOrderMinIo, OptimalOnHomogeneousTrees) {
  // Theorem 4: on homogeneous trees POSTORDERMINIO achieves the global
  // optimum, which equals the W(T) label of Section 4.2 and the brute-force
  // minimum over all (not only postorder) traversals.
  util::Rng rng(207);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(9, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::postorder_minmem(t).peak;
    for (Weight m = lb; m <= peak; ++m) {
      const auto r = postorder_minio(t, m);
      const Weight exact = core::homogeneous_optimal_io(t, m);
      const Weight brute = core::brute_force_min_io(t, m).objective;
      EXPECT_EQ(r.predicted_io, exact) << t.to_string() << " M=" << m;
      EXPECT_EQ(exact, brute) << t.to_string() << " M=" << m;
    }
  }
}

TEST(PostOrderMinIo, ZeroIoWhenPostorderPeakFits) {
  util::Rng rng(211);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(15, 9, rng);
    const Weight peak = core::postorder_minmem(t).peak;
    EXPECT_EQ(postorder_minio(t, peak).predicted_io, 0);
    EXPECT_GE(postorder_minio(t, peak - 1).predicted_io, peak == t.min_feasible_memory() ? 0 : 1);
  }
}

TEST(PostOrderMinIo, UsedMemoryCappedAtM) {
  util::Rng rng(213);
  const Tree t = test::small_random_tree(20, 12, rng);
  const Weight m = t.min_feasible_memory() + 1;
  const auto r = postorder_minio(t, m);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(r.used[i], m);
    EXPECT_LE(r.used[i], r.storage[i]);
    EXPECT_GE(r.io[i], 0);
  }
}

TEST(PostOrderMinIo, ChildOrderByAMinusW) {
  // Two subtrees with equal storage S = 10 but different weights: the one
  // with smaller weight (larger A - w) must be scheduled first.
  //   root(1) <- a(2) <- leaf(10);  root <- b(8) <- leaf(10)
  const Tree t = make_tree({{kNoNode, 1}, {0, 2}, {1, 10}, {0, 8}, {3, 10}});
  const auto r = postorder_minio(t, 10);
  // a's chain first (A - w = 10 - 2 = 8 > 10 - 8 = 2).
  EXPECT_EQ(r.schedule.front(), 2);
  // Cost check: a first -> while b's chain runs, a (w 2) is active:
  // max(A_b + 2) - 10 = 2 I/Os; b first would cost max(A_a + 8) - 10 = 8.
  EXPECT_EQ(r.predicted_io, 2);
}

TEST(PostOrderMinIo, MatchesPaperExampleFig7) {
  // Figure 7: POSTORDERMINIO achieves the optimum 3 I/Os with M = 7.
  const Tree t = make_tree(
      {{kNoNode, 1}, {0, 3}, {1, 2}, {2, 7}, {1, 3}, {0, 4}, {5, 7}});
  EXPECT_EQ(postorder_minio(t, 7).predicted_io, 3);
}

TEST(PostOrderMinIo, SingleNodeNoIo) {
  EXPECT_EQ(postorder_minio(make_tree({{kNoNode, 5}}), 5).predicted_io, 0);
}

}  // namespace
}  // namespace ooctree
