// Runtime invariant auditor suite (src/core/check.hpp).
//
// Three layers of proof:
//   1. the explicit audit() sweeps (EvictionIndex, ResultCache,
//      PlanService) pass on healthy state in *every* preset and bump the
//      process-wide audit counter, so the paths demonstrably run;
//   2. under OOCTREE_AUDIT (the dev preset) the engines execute their
//      internal conservation checks — asserted via the counter — and the
//      PR 3 regression fixtures (failed-start I/O, transient reservation)
//      run clean end-to-end with the auditor armed;
//   3. fault injection: each core::fault flag re-introduces one historical
//      accounting-bug class, and the auditor must convict it by throwing
//      core::AuditError — the "would the net have caught the seed bugs?"
//      question answered in the affirmative, mechanically.
// Tests in layers 2-3 GTEST_SKIP outside audit builds: the hooks compile
// away everywhere else.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/core/check.hpp"
#include "src/core/eviction.hpp"
#include "src/core/tree.hpp"
#include "src/iosim/pager.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "src/service/plan_service.hpp"
#include "src/service/result_cache.hpp"
#include "src/util/rng.hpp"
#include "tests/test_support.hpp"

namespace ooctree {
namespace {

using core::EvictionIndex;
using core::EvictionPolicy;
using core::Tree;
using parallel::ParallelConfig;
using parallel::Priority;
using service::CacheKey;
using service::PlanStats;
using service::ResultCache;

/// The PR 3 failed-start regression tree (see
/// tests/test_parallel_incremental.cpp): task B keeps failing to fit round
/// after round while a side chain backfills, so failed transactional
/// starts are guaranteed.
Tree failed_start_tree() {
  return core::make_tree({{core::kNoNode, 1},
                          {0, 1},
                          {1, 4},
                          {1, 4},
                          {0, 2},
                          {4, 2},
                          {5, 2},
                          {0, 2}});
}

ParallelConfig failed_start_config() {
  ParallelConfig c;
  c.workers = 2;
  c.memory = 9;
  c.priority = Priority::kCriticalPath;
  return c;
}

TEST(Audit, ExplicitSweepsRunAndPassInEveryPreset) {
  const std::uint64_t before = core::audit_checks_executed();

  EvictionIndex index(EvictionPolicy::kBelady, 8);
  index.insert(1, 10);
  index.insert(3, 5);
  index.insert(1, 7);  // re-key: the stale heap entry must not confuse audit
  index.audit();
  index.erase(3);
  index.audit();

  ResultCache cache(16, 4);
  for (std::uint64_t k = 0; k < 40; ++k) {
    auto value = std::make_shared<PlanStats>();
    cache.put(CacheKey{k, 1}, std::move(value));
    (void)cache.get(CacheKey{k / 2, 1});
    cache.audit();
  }

  EXPECT_GT(core::audit_checks_executed(), before)
      << "audit() calls must execute real checks, not compile away";
}

TEST(Audit, RandomPolicyDenseStructuresAudit) {
  util::Rng rng(11);
  EvictionIndex index(EvictionPolicy::kRandom, 16, &rng);
  for (core::NodeId id = 0; id < 12; ++id) index.insert(id, 0);
  index.audit();
  for (core::NodeId id = 0; id < 12; id += 2) index.erase(id);
  index.audit();
  EXPECT_EQ(index.size(), 6u);
}

TEST(Audit, PlanServiceQuiescentAuditPasses) {
  service::PlanService planner(service::ServiceConfig{.threads = 2});
  service::PlanRequest request;
  request.id = 1;
  request.nodes = 40;
  request.seed = 5;
  request.memory_lb = 1.3;
  const auto first = planner.plan(request);
  request.id = 2;
  const auto second = planner.plan(request);
  ASSERT_TRUE(first.stats->ok) << first.stats->error;
  ASSERT_TRUE(second.stats->ok);
  planner.audit(/*quiescent=*/true);
}

// ---------------------------------------------------------------------------
// Audit-build-only layers: engine-internal checks and fault injection.

TEST(Audit, EngineChecksExecuteUnderAuditBuilds) {
#if OOCTREE_AUDIT_ENABLED
  const std::uint64_t before = core::audit_checks_executed();
  const auto result = parallel::simulate_parallel(failed_start_tree(), failed_start_config());
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(core::audit_checks_executed(), before)
      << "simulate_parallel_paged must run its internal audits";

  const std::uint64_t mid = core::audit_checks_executed();
  const auto fx = test::transient_reservation_fixture();
  iosim::PagerConfig pc;
  pc.memory = fx.feasible_memory;
  const auto stats = iosim::run_pager(fx.tree, fx.schedule, pc);
  ASSERT_TRUE(stats.feasible);
  EXPECT_GT(core::audit_checks_executed(), mid) << "run_pager must run its internal audits";
#else
  GTEST_SKIP() << "engine audits compile away without OOCTREE_AUDIT (dev preset has it on)";
#endif
}

// The PR 3 pins, re-run with the auditor armed: the fixed engines must
// sail through every conservation check while reproducing the exact
// pinned accounting.
TEST(Audit, FailedStartPinRunsCleanUnderAudit) {
#if OOCTREE_AUDIT_ENABLED
  const auto r = parallel::simulate_parallel(failed_start_tree(), failed_start_config());
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.failed_starts, 0);
  EXPECT_EQ(r.io_volume, 6);  // the PR 3 pinned value, audited end-to-end
#else
  GTEST_SKIP() << "requires an OOCTREE_AUDIT build (dev preset)";
#endif
}

TEST(Audit, TransientReservationPinRunsCleanUnderAudit) {
#if OOCTREE_AUDIT_ENABLED
  const auto fx = test::transient_reservation_fixture();
  iosim::PagerConfig pc;
  pc.memory = fx.feasible_memory;
  const auto stats = iosim::run_pager(fx.tree, fx.schedule, pc);
  ASSERT_TRUE(stats.feasible);
  EXPECT_EQ(stats.peak_frames_used, fx.expected_peak_frames);
#else
  GTEST_SKIP() << "requires an OOCTREE_AUDIT build (dev preset)";
#endif
}

TEST(Audit, ConvictsReintroducedFailedStartIoCharge) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::parallel_engine.store(1);  // failed starts charge I/O again
  EXPECT_THROW(
      (void)parallel::simulate_parallel(failed_start_tree(), failed_start_config()),
      core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

TEST(Audit, ConvictsReintroducedReservationLeak) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::parallel_engine.store(2);  // completions leak a frame again
  util::Rng rng(3);
  const Tree t = test::small_random_tree(24, 12, rng);
  ParallelConfig c;
  c.workers = 2;
  c.memory = t.min_feasible_memory() * 2;
  EXPECT_THROW((void)parallel::simulate_parallel(t, c), core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

TEST(Audit, ConvictsReintroducedUnreservedTransient) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::pager.store(1);  // the pager stops reserving head-room again
  const auto fx = test::transient_reservation_fixture();
  iosim::PagerConfig pc;
  pc.memory = fx.feasible_memory;
  EXPECT_THROW((void)iosim::run_pager(fx.tree, fx.schedule, pc), core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

// The PR 10 disk-pipeline bug classes. Each fixture runs the pipelined
// paged engine on a stall-heavy configuration the healthy engine passes
// clean (pinned by tests/test_disk_pipeline.cpp under the dev preset).

// A pipelined configuration under memory pressure: tight frames force
// evictions (write traffic), the window forces prefetch reads.
parallel::PagedParallelConfig pipelined_pressure_config(const Tree& t, int depth, int window) {
  parallel::PagedParallelConfig c;
  c.base.workers = 4;
  c.base.memory = iosim::min_feasible_frames(t, 2) * 2;
  c.base.seed = 3;
  c.base.write_queue_depth = depth;
  c.base.prefetch_window = window;
  c.page_size = 2;
  c.disk = iosim::DiskModel{0.5, 2.0};
  return c;
}

TEST(Audit, ConvictsEvictionIgnoringWriteBackpressure) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::parallel_engine.store(4);  // evictions enqueue past the depth bound again
  util::Rng rng(41);
  const Tree t = test::small_random_tree(48, 14, rng);
  EXPECT_THROW((void)parallel::simulate_parallel_paged(t, pipelined_pressure_config(t, 1, 0)),
               core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

TEST(Audit, ConvictsPrefetchOfResidentPages) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::parallel_engine.store(8);  // prefetch re-reads resident pages again
  util::Rng rng(41);
  const Tree t = test::small_random_tree(48, 14, rng);
  EXPECT_THROW((void)parallel::simulate_parallel_paged(t, pipelined_pressure_config(t, 4, 8)),
               core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

TEST(Audit, ConvictsDiskTransferDoubleBooking) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  core::fault::parallel_engine.store(16);  // transfers beat the serial device timeline again
  util::Rng rng(41);
  const Tree t = test::small_random_tree(48, 14, rng);
  EXPECT_THROW((void)parallel::simulate_parallel_paged(t, pipelined_pressure_config(t, 4, 4)),
               core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

TEST(Audit, ConvictsEvictionIndexLiveCountCorruption) {
#if OOCTREE_AUDIT_ENABLED
  const core::FaultGuard guard;
  EvictionIndex index(EvictionPolicy::kLru, 8);
  index.insert(2, 1);
  index.insert(5, 2);
  index.audit();  // healthy so far
  core::fault::eviction_index.store(1);
  index.erase(2);  // drops the live count but leaves the version live
  EXPECT_THROW(index.audit(), core::AuditError);
#else
  GTEST_SKIP() << "fault hooks compile away without OOCTREE_AUDIT (dev preset)";
#endif
}

}  // namespace
}  // namespace ooctree
