// Tests for the exhaustive oracles themselves.
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/treegen/shapes.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::for_each_topological_order;
using core::kNoNode;
using core::make_tree;
using core::Schedule;
using core::Tree;
using core::Weight;

std::int64_t count_orders(const Tree& t, std::size_t max_nodes = 12) {
  std::int64_t n = 0;
  for_each_topological_order(t, [&](const Schedule&) { ++n; }, max_nodes);
  return n;
}

TEST(BruteForce, ChainHasOneOrder) {
  EXPECT_EQ(count_orders(treegen::chain_tree({1, 2, 3, 4, 5})), 1);
}

TEST(BruteForce, StarHasFactorialOrders) {
  // k leaves can be permuted arbitrarily before the root: k! orders.
  EXPECT_EQ(count_orders(treegen::star_tree(4, 1, 1)), 24);
  EXPECT_EQ(count_orders(treegen::star_tree(5, 1, 1)), 120);
}

TEST(BruteForce, TwoChainsBinomialOrders) {
  // Two chains of length 3 under a root: C(6,3) = 20 interleavings.
  const Tree t = make_tree(
      {{kNoNode, 1}, {0, 1}, {1, 1}, {2, 1}, {0, 1}, {4, 1}, {5, 1}});
  EXPECT_EQ(count_orders(t), 20);
}

TEST(BruteForce, OrdersAreTopologicalAndDistinct) {
  util::Rng rng(601);
  const Tree t = test::small_random_wide_tree(7, 5, rng);
  std::set<Schedule> seen;
  for_each_topological_order(t, [&](const Schedule& s) {
    EXPECT_TRUE(core::is_topological_order(t, s));
    EXPECT_TRUE(seen.insert(s).second) << "duplicate order";
  });
}

TEST(BruteForce, SizeGuardThrows) {
  const Tree t = treegen::star_tree(14, 1, 1);
  EXPECT_THROW(count_orders(t, 12), std::invalid_argument);
}

TEST(BruteForce, MinIoWitnessIsConsistent) {
  util::Rng rng(607);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(7, 7, rng);
    const Weight m = t.min_feasible_memory() + 1;
    const auto bf = core::brute_force_min_io(t, m);
    EXPECT_EQ(core::simulate_fif(t, bf.schedule, m).io_volume, bf.objective);
  }
}

TEST(BruteForce, MinPeakWitnessIsConsistent) {
  util::Rng rng(613);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_wide_tree(8, 6, rng);
    const auto bf = core::brute_force_min_peak(t);
    EXPECT_EQ(core::peak_memory(t, bf.schedule), bf.objective);
  }
}

TEST(BruteForce, MinIoZeroAtPeakMemory) {
  util::Rng rng(617);
  const Tree t = test::small_random_tree(7, 6, rng);
  const auto peak = core::brute_force_min_peak(t);
  EXPECT_EQ(core::brute_force_min_io(t, peak.objective).objective, 0);
}

TEST(BruteForce, MinIoInfeasibleThrows) {
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}});
  EXPECT_THROW((void)core::brute_force_min_io(t, 5), std::runtime_error);
}

}  // namespace
}  // namespace ooctree
