// Unit tests for the core Tree data structure and its serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/tree.hpp"
#include "src/core/tree_io.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::NodeId;
using core::Tree;
using core::Weight;

Tree sample_tree() {
  //        0 (w 5)
  //       __/ \__
  //      1 (3)    2 (4)
  //     /  \         |
  //    3(2) 4(7)     5(1)
  return make_tree({{kNoNode, 5}, {0, 3}, {0, 4}, {1, 2}, {1, 7}, {2, 1}});
}

TEST(Tree, BasicAccessors) {
  const Tree t = sample_tree();
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.weight(4), 7);
  EXPECT_EQ(t.parent(5), 2);
  EXPECT_TRUE(t.is_leaf(3));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.num_children(0), 2u);
  EXPECT_EQ(t.total_weight(), 5 + 3 + 4 + 2 + 7 + 1);
}

TEST(Tree, ChildrenAreSortedById) {
  const Tree t = sample_tree();
  const auto kids = t.children(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 3);
  EXPECT_EQ(kids[1], 4);
}

TEST(Tree, WbarIsMaxOfOutputAndChildrenSum) {
  const Tree t = sample_tree();
  EXPECT_EQ(t.child_weight_sum(1), 2 + 7);
  EXPECT_EQ(t.wbar(1), 9);   // children 9 > own 3
  EXPECT_EQ(t.wbar(2), 4);   // own 4 > child 1
  EXPECT_EQ(t.wbar(3), 2);   // leaf: own weight
  EXPECT_EQ(t.wbar(0), 7);   // children 3+4 = 7 > own 5
  EXPECT_EQ(t.min_feasible_memory(), 9);
}

TEST(Tree, PostorderVisitsChildrenFirst) {
  const Tree t = sample_tree();
  const auto order = t.postorder();
  ASSERT_EQ(order.size(), t.size());
  std::vector<std::size_t> pos(t.size());
  for (std::size_t k = 0; k < order.size(); ++k) pos[static_cast<std::size_t>(order[k])] = k;
  for (NodeId i = 0; i < static_cast<NodeId>(t.size()); ++i) {
    if (t.parent(i) != kNoNode) {
      EXPECT_LT(pos[static_cast<std::size_t>(i)], pos[static_cast<std::size_t>(t.parent(i))]);
    }
  }
  EXPECT_EQ(order.back(), t.root());
}

TEST(Tree, SubtreeExtraction) {
  const Tree t = sample_tree();
  std::vector<NodeId> old_ids;
  const Tree sub = t.subtree(1, &old_ids);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.weight(sub.root()), 3);
  // Weights of the original subtree nodes are preserved via the map.
  Weight total = 0;
  for (std::size_t k = 0; k < sub.size(); ++k) {
    EXPECT_EQ(sub.weight(static_cast<NodeId>(k)), t.weight(old_ids[k]));
    total += sub.weight(static_cast<NodeId>(k));
  }
  EXPECT_EQ(total, 3 + 2 + 7);
}

TEST(Tree, SubtreeSizeAndDepth) {
  const Tree t = sample_tree();
  EXPECT_EQ(t.subtree_size(0), 6u);
  EXPECT_EQ(t.subtree_size(1), 3u);
  EXPECT_EQ(t.subtree_size(3), 1u);
  EXPECT_EQ(t.depth(), 3u);
}

TEST(Tree, DeepChainDoesNotOverflowStack) {
  const std::size_t n = 200000;
  std::vector<NodeId> parent(n, kNoNode);
  for (std::size_t i = 1; i < n; ++i) parent[i] = static_cast<NodeId>(i - 1);
  const Tree chain = Tree::from_parents(std::move(parent), std::vector<Weight>(n, 1));
  EXPECT_EQ(chain.depth(), n);
  EXPECT_EQ(chain.postorder().size(), n);
}

TEST(Tree, RejectsMultipleRoots) {
  EXPECT_THROW(make_tree({{kNoNode, 1}, {kNoNode, 1}}), std::invalid_argument);
}

TEST(Tree, RejectsCycle) {
  // 0 -> 1 -> 0 cycle plus a root elsewhere.
  EXPECT_THROW(make_tree({{1, 1}, {0, 1}, {kNoNode, 1}}), std::invalid_argument);
}

TEST(Tree, RejectsSelfParentAndBadIndex) {
  EXPECT_THROW(make_tree({{0, 1}}), std::invalid_argument);
  EXPECT_THROW(make_tree({{kNoNode, 1}, {7, 1}}), std::invalid_argument);
}

TEST(Tree, RejectsNegativeWeight) {
  EXPECT_THROW(make_tree({{kNoNode, -2}}), std::invalid_argument);
}

TEST(Tree, RejectsEmpty) {
  EXPECT_THROW(Tree::from_parents({}, {}), std::invalid_argument);
}

TEST(Tree, SingleNode) {
  const Tree t = make_tree({{kNoNode, 42}});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.wbar(0), 42);
  EXPECT_TRUE(t.is_leaf(0));
}

TEST(Tree, IsHomogeneous) {
  EXPECT_TRUE(make_tree({{kNoNode, 1}, {0, 1}}).is_homogeneous());
  EXPECT_FALSE(sample_tree().is_homogeneous());
}

TEST(TreeIo, RoundTrip) {
  const Tree t = sample_tree();
  std::ostringstream out;
  core::write_tree(out, t);
  std::istringstream in(out.str());
  const Tree back = core::read_tree(in);
  ASSERT_EQ(back.size(), t.size());
  for (NodeId i = 0; i < static_cast<NodeId>(t.size()); ++i) {
    EXPECT_EQ(back.parent(i), t.parent(i));
    EXPECT_EQ(back.weight(i), t.weight(i));
  }
}

TEST(TreeIo, ParsesCommentsAndBlankLines) {
  std::istringstream in("# header\n\n-1 4\n0 2  # trailing comment\n0 3\n");
  const Tree t = core::read_tree(in);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.weight(1), 2);
}

TEST(TreeIo, RejectsGarbage) {
  std::istringstream missing_weight("-1\n");
  EXPECT_THROW(core::read_tree(missing_weight), std::runtime_error);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW(core::read_tree(empty), std::runtime_error);
  std::istringstream cyclic("-1 1\n2 1\n1 1\n");
  EXPECT_THROW(core::read_tree(cyclic), std::runtime_error);
}

TEST(TreeIo, RejectsTrailingGarbageOnDataLines) {
  // A third token that is not a comment is a malformed line, not padding.
  std::istringstream extra("-1 4\n0 2 oops\n");
  EXPECT_THROW(core::read_tree(extra), std::runtime_error);
}

// Files written on Windows (CRLF), padded with trailing blanks, or missing
// the final newline must parse identically to their clean counterparts.
TEST(TreeIo, CrlfLineEndingsRoundTrip) {
  std::istringstream unix_file("#!model sum\n-1 4\n0 2\n0 3\n");
  const Tree clean = core::read_tree(unix_file);
  std::istringstream crlf("#!model sum\r\n-1 4\r\n0 2\r\n0 3\r\n");
  const Tree t = core::read_tree(crlf);
  EXPECT_EQ(t.memory_model(), core::MemoryModel::kSumInOut);
  EXPECT_EQ(t.canonical_hash(), clean.canonical_hash());
}

TEST(TreeIo, TrailingWhitespaceTolerated) {
  std::istringstream padded("-1 4 \t\n0 2\t\n0 3  \n");
  const Tree t = core::read_tree(padded);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.weight(2), 3);
}

TEST(TreeIo, FinalLineWithoutNewline) {
  std::istringstream clean("-1 4\n0 2\n0 3\n");
  std::istringstream chopped("-1 4\n0 2\n0 3");
  EXPECT_EQ(core::read_tree(chopped).canonical_hash(),
            core::read_tree(clean).canonical_hash());

  // Same, CRLF flavor with a bare \r at EOF.
  std::istringstream crlf_chopped("-1 4\r\n0 2\r\n0 3\r");
  EXPECT_EQ(core::read_tree(crlf_chopped).size(), 3u);
}

TEST(TreeHash, IndependentOfConstructionRoute) {
  const Tree direct = make_tree({{-1, 4}, {0, 2}, {0, 3}, {2, 5}});
  const Tree rebuilt = Tree::from_parents({-1, 0, 0, 2}, {4, 2, 3, 5});
  EXPECT_EQ(direct.canonical_hash(), rebuilt.canonical_hash());

  // A serialization round-trip preserves the logical content exactly.
  std::ostringstream out;
  core::write_tree(out, direct);
  std::istringstream in(out.str());
  EXPECT_EQ(core::read_tree(in).canonical_hash(), direct.canonical_hash());

  // Converting the memory model there and back restores the hash too.
  const Tree sum = direct.with_memory_model(core::MemoryModel::kSumInOut);
  EXPECT_EQ(sum.with_memory_model(core::MemoryModel::kMaxInOut).canonical_hash(),
            direct.canonical_hash());
}

TEST(TreeHash, DistinguishesContentModelAndNumbering) {
  const Tree base = make_tree({{-1, 4}, {0, 2}, {0, 3}});
  const Tree reweighted = make_tree({{-1, 4}, {0, 2}, {0, 7}});
  EXPECT_NE(base.canonical_hash(), reweighted.canonical_hash());

  const Tree reshaped = make_tree({{-1, 4}, {0, 2}, {1, 3}});
  EXPECT_NE(base.canonical_hash(), reshaped.canonical_hash());

  EXPECT_NE(base.canonical_hash(),
            base.with_memory_model(core::MemoryModel::kSumInOut).canonical_hash());

  // Isomorphic but renumbered trees hash differently on purpose: cached
  // schedules and I/O functions are expressed in node ids.
  const Tree renumbered = make_tree({{-1, 4}, {0, 3}, {0, 2}});
  EXPECT_NE(base.canonical_hash(), renumbered.canonical_hash());
}

}  // namespace
}  // namespace ooctree
