// Verbatim verification of the paper's counterexamples (Figures 2, 6, 7):
// every quantitative claim in Sections 4.3, 4.4 and Appendix A is asserted.
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/lower_bounds.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/treegen/paper_trees.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::simulate_fif;
using core::Weight;
using treegen::fig2a;
using treegen::fig2b;
using treegen::fig2c;

TEST(Fig2a, AnnotatedScheduleUsesOneIo) {
  for (const Weight m : {4, 8, 20, 100}) {
    for (const std::size_t levels : {2u, 3u, 5u}) {
      const auto inst = fig2a(levels, m);
      const auto r = simulate_fif(inst.tree, inst.annotated_schedule, inst.memory);
      ASSERT_TRUE(r.feasible);
      EXPECT_EQ(r.io_volume, 1) << "levels=" << levels << " M=" << m;
    }
  }
}

TEST(Fig2a, OneIoIsOptimal) {
  // The peak-gap bound shows at least one I/O is unavoidable, so the
  // annotated schedule is optimal.
  const auto inst = fig2a(3, 8);
  EXPECT_GE(core::io_lower_bound_peak_gap(inst.tree, inst.memory), 1);
}

TEST(Fig2a, PostorderPaysPerLeaf) {
  // Section 4.3: any postorder performs >= M/2 - 1 I/Os for all but one
  // leaf. With levels L there are L + 1 leaves.
  for (const Weight m : {8, 16, 40}) {
    for (const std::size_t levels : {2u, 3u, 6u}) {
      const auto inst = fig2a(levels, m);
      const auto post = core::postorder_minio(inst.tree, inst.memory);
      EXPECT_GE(post.predicted_io, static_cast<Weight>(levels) * (m / 2 - 1))
          << "levels=" << levels << " M=" << m;
    }
  }
}

TEST(Fig2a, RatioGrowsLinearly) {
  // POSTORDERMINIO / OPT grows like levels * (M/2 - 1): not constant-factor
  // competitive (Section 4.3).
  const Weight m = 16;
  Weight previous = 0;
  for (std::size_t levels = 2; levels <= 10; levels += 2) {
    const auto inst = fig2a(levels, m);
    const Weight post = core::postorder_minio(inst.tree, inst.memory).predicted_io;
    EXPECT_GT(post, previous);
    previous = post;
  }
  EXPECT_GE(previous, 10 * (m / 2 - 1));
}

TEST(Fig2b, OptimalPeakIsEightAndCostsFour) {
  const auto inst = fig2b();
  EXPECT_EQ(core::opt_minmem(inst.tree).peak, 8);
  // The figure's OPTMINMEM order reaches peak 8 and pays 4 I/Os.
  EXPECT_EQ(core::peak_memory(inst.tree, inst.annotated_schedule), 8);
  EXPECT_EQ(simulate_fif(inst.tree, inst.annotated_schedule, inst.memory).io_volume, 4);
}

TEST(Fig2b, ChainByChainCostsThree) {
  const auto inst = fig2b();
  // One chain then the other: peak 9, only 3 I/Os — better for MinIO.
  const core::Schedule chain_by_chain{8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(core::peak_memory(inst.tree, chain_by_chain), 9);
  EXPECT_EQ(simulate_fif(inst.tree, chain_by_chain, inst.memory).io_volume, 3);
  EXPECT_EQ(core::brute_force_min_io(inst.tree, inst.memory).objective, 3);
}

TEST(Fig2c, StructureAndBounds) {
  for (const Weight k : {1, 2, 3, 7}) {
    const auto inst = fig2c(k);
    EXPECT_EQ(inst.tree.size(), static_cast<std::size_t>(4 * k + 5));
    EXPECT_EQ(inst.memory, 4 * k);
    // Chain-by-chain: 2k I/Os at peak 6k.
    const auto r = simulate_fif(inst.tree, inst.annotated_schedule, inst.memory);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.io_volume, 2 * k) << "k=" << k;
    EXPECT_EQ(core::peak_memory(inst.tree, inst.annotated_schedule), 6 * k);
  }
}

TEST(Fig2c, OptMinMemPeakIsFiveK) {
  for (const Weight k : {2, 3, 5}) {
    const auto inst = fig2c(k);
    EXPECT_EQ(core::opt_minmem(inst.tree).peak, 5 * k) << "k=" << k;
  }
}

TEST(Fig2c, ChainByChainIsOptimalForSmallK) {
  const auto inst = fig2c(2);  // 13 nodes: C(12,6) = 924 orders
  const auto bf = core::brute_force_min_io(inst.tree, inst.memory, 13);
  EXPECT_EQ(bf.objective, 2 * 2);
}

TEST(Fig2c, OptMinMemStrategyPaysMore) {
  // Section 4.4: following the peak-minimizing traversal costs ~k(k+1)
  // I/Os instead of 2k. Our OptMinMem returns *some* peak-5k schedule; it
  // must pay strictly more than the optimum for every k tested.
  for (const Weight k : {2, 3, 5, 8}) {
    const auto inst = fig2c(k);
    const auto opt_schedule = core::opt_minmem(inst.tree).schedule;
    const Weight io = simulate_fif(inst.tree, opt_schedule, inst.memory).io_volume;
    EXPECT_GT(io, 2 * k) << "k=" << k;
  }
}

TEST(Fig2c, OptMinMemRatioGrows) {
  // The competitive ratio (OptMinMem I/O) / (optimal I/O) grows with k.
  double previous = 0.0;
  for (const Weight k : {2, 4, 8, 16}) {
    const auto inst = fig2c(k);
    const auto opt_schedule = core::opt_minmem(inst.tree).schedule;
    const Weight io = simulate_fif(inst.tree, opt_schedule, inst.memory).io_volume;
    const double ratio = static_cast<double>(io) / static_cast<double>(2 * k);
    EXPECT_GT(ratio, previous) << "k=" << k;
    previous = ratio;
  }
  EXPECT_GE(previous, 4.0);
}

TEST(Fig6, AllClaims) {
  const auto inst = treegen::fig6();
  // OptMinMem peak is 12; the annotated order reaches it and pays 4 I/Os.
  EXPECT_EQ(core::opt_minmem(inst.tree).peak, 12);
  EXPECT_EQ(core::peak_memory(inst.tree, inst.annotated_schedule), 12);
  EXPECT_EQ(simulate_fif(inst.tree, inst.annotated_schedule, inst.memory).io_volume, 4);
  // The global optimum is 3 (all I/O on node b).
  EXPECT_EQ(core::brute_force_min_io(inst.tree, inst.memory).objective, 3);
  // POSTORDERMINIO pays 4 as well (it cannot split the left chain).
  EXPECT_EQ(core::postorder_minio(inst.tree, inst.memory).predicted_io, 4);
}

TEST(Fig7, AllClaims) {
  const auto inst = treegen::fig7();
  // The annotated postorder is optimal with 3 I/Os on node c.
  const auto r = simulate_fif(inst.tree, inst.annotated_schedule, inst.memory);
  EXPECT_EQ(r.io_volume, 3);
  EXPECT_EQ(r.io[1], 3) << "all I/O on node c";
  EXPECT_EQ(core::brute_force_min_io(inst.tree, inst.memory).objective, 3);
  EXPECT_EQ(core::postorder_minio(inst.tree, inst.memory).predicted_io, 3);
  // The OptMinMem-based strategy pays 4.
  const auto opt_schedule = core::opt_minmem(inst.tree).schedule;
  EXPECT_EQ(simulate_fif(inst.tree, opt_schedule, inst.memory).io_volume, 4);
}

}  // namespace
}  // namespace ooctree
