// Tests for node expansion (Figure 3) and schedule-from-tau (Theorem 2).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/expansion.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::ExpandedTree;
using core::ExpansionRole;
using core::kNoNode;
using core::make_tree;
using core::Schedule;
using core::Tree;
using core::Weight;

Tree chain4() { return make_tree({{kNoNode, 2}, {0, 5}, {1, 3}, {2, 7}}); }

TEST(Expansion, IdentityMapsNodesToThemselves) {
  const ExpandedTree e = ExpandedTree::identity(chain4());
  EXPECT_EQ(e.expansion_volume, 0);
  for (std::size_t k = 0; k < e.tree.size(); ++k) {
    EXPECT_EQ(e.origin[k], static_cast<core::NodeId>(k));
    EXPECT_EQ(e.role[k], ExpansionRole::kCompute);
  }
}

TEST(Expansion, ExpandBuildsTheChainOfFigure3) {
  const ExpandedTree e = ExpandedTree::identity(chain4()).expand(1, 4);
  ASSERT_EQ(e.tree.size(), 6u);
  // i1 = old node 1 (weight 5), i2 = node 4 (weight 1), i3 = node 5 (w 5).
  EXPECT_EQ(e.tree.weight(1), 5);
  EXPECT_EQ(e.tree.weight(4), 1);
  EXPECT_EQ(e.tree.weight(5), 5);
  EXPECT_EQ(e.tree.parent(1), 4);
  EXPECT_EQ(e.tree.parent(4), 5);
  EXPECT_EQ(e.tree.parent(5), 0);
  EXPECT_EQ(e.tree.parent(2), 1) << "children must stay under i1";
  EXPECT_EQ(e.role[4], ExpansionRole::kShrunk);
  EXPECT_EQ(e.role[5], ExpansionRole::kRestored);
  EXPECT_EQ(e.origin[4], 1);
  EXPECT_EQ(e.origin[5], 1);
  EXPECT_EQ(e.expansion_volume, 4);
}

TEST(Expansion, RejectsBadArguments) {
  const ExpandedTree e = ExpandedTree::identity(chain4());
  EXPECT_THROW((void)e.expand(9, 1), std::invalid_argument);
  EXPECT_THROW((void)e.expand(1, -1), std::invalid_argument);
  EXPECT_THROW((void)e.expand(1, 6), std::invalid_argument);  // w(1) = 5
}

TEST(Expansion, FullTauGivesZeroWeightMiddle) {
  const ExpandedTree e = ExpandedTree::identity(chain4()).expand(3, 7);
  EXPECT_EQ(e.tree.weight(4), 0);
  EXPECT_EQ(e.tree.weight(5), 7);
}

TEST(Expansion, RepeatedExpansionComposes) {
  ExpandedTree e = ExpandedTree::identity(chain4()).expand(1, 2);
  // Re-expand the shrunk middle node (id 4, weight 3) by 3.
  e = e.expand(4, 3);
  EXPECT_EQ(e.expansion_volume, 5);
  EXPECT_EQ(e.origin[6], 1);  // new i2 still originates from node 1
  EXPECT_EQ(e.origin[7], 1);
  EXPECT_EQ(e.tree.weight(6), 0);
}

TEST(Expansion, MapScheduleKeepsComputeEventsInOrder) {
  const Tree t = chain4();
  const ExpandedTree e = ExpandedTree::identity(t).expand(1, 4);
  const auto opt = core::opt_minmem(e.tree);
  const Schedule mapped = e.map_schedule(opt.schedule);
  EXPECT_TRUE(core::is_topological_order(t, mapped));
  EXPECT_EQ(mapped.size(), t.size());
}

TEST(Expansion, ExpansionLowersOptPeak) {
  // Two chains with big leaves: whichever chain goes second runs its leaf
  // with the first chain's top resident. Expanding that top datum makes the
  // in-core peak drop, which is exactly how RecExpand forces I/O.
  //   root(1) <- A1(6) <- A2(10 leaf);  root <- B1(1) <- B2(10 leaf)
  const Tree t = make_tree({{kNoNode, 1}, {0, 6}, {1, 10}, {0, 1}, {3, 10}});
  const Weight before = core::opt_minmem(t).peak;
  EXPECT_EQ(before, 11);  // B chain first, then A with B1 (w 1) resident
  const ExpandedTree e = ExpandedTree::identity(t).expand(3, 1);  // expand B1 fully
  const Weight after = core::opt_minmem(e.tree).peak;
  EXPECT_EQ(after, 10);
  EXPECT_LT(after, before);
}

TEST(Theorem2, ReconstructsScheduleFromFifTau) {
  // For any schedule's FiF tau, schedule_from_io must find a schedule that
  // is valid with *that* tau budget (possibly a better one).
  util::Rng rng(401);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(9, 10, rng);
    const Weight m = t.min_feasible_memory() + 2;
    const core::FifResult fif = core::simulate_fif(t, t.postorder(), m);
    ASSERT_TRUE(fif.feasible);
    const auto sched = core::schedule_from_io(t, fif.io, m);
    ASSERT_TRUE(sched.has_value());
    EXPECT_TRUE(core::is_topological_order(t, *sched));
    // The reconstructed schedule under FiF uses at most the given volume.
    EXPECT_LE(core::simulate_fif(t, *sched, m).io_volume, fif.io_volume);
  }
}

TEST(Theorem2, FailsWhenTauIsInsufficient) {
  // Two big siblings and tau = 0 cannot fit in a memory below the optimal
  // peak: schedule_from_io must report failure.
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}});
  const core::IoFunction zero(t.size(), 0);
  EXPECT_FALSE(core::schedule_from_io(t, zero, 10).has_value());
  EXPECT_TRUE(core::schedule_from_io(t, zero, 11).has_value());
}

TEST(Theorem2, ZeroTauEquivalentToOptMinMem) {
  util::Rng rng(409);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(10, 8, rng);
    const Weight peak = core::opt_minmem(t).peak;
    EXPECT_TRUE(core::schedule_from_io(t, core::IoFunction(t.size(), 0), peak).has_value());
    if (peak > t.min_feasible_memory()) {
      EXPECT_FALSE(
          core::schedule_from_io(t, core::IoFunction(t.size(), 0), peak - 1).has_value());
    }
  }
}

}  // namespace
}  // namespace ooctree
