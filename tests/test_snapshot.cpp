// Snapshot suite: .otree save/load round trips, the mapped-vs-owned
// differential (plans from a MappedStorage tree must be bit-identical to
// plans from the same tree built via from_parents, across all strategies
// and both memory models), copy-on-write promotion under TreeBuilder, and
// corrupt-file rejection — every malformed snapshot throws a clean
// std::runtime_error naming the file, never crashes or silently misreads
// (the asan-ubsan preset runs this suite too).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/snapshot.hpp"
#include "src/core/strategies.hpp"
#include "src/core/tree_builder.hpp"
#include "src/core/tree_io.hpp"
#include "src/util/rng.hpp"
#include "tests/test_support.hpp"

namespace ooctree {
namespace {

using core::MemoryModel;
using core::NodeId;
using core::Tree;
using core::Weight;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

Tree random_tree(std::uint64_t seed, std::size_t n = 80, MemoryModel model = MemoryModel::kMaxInOut) {
  util::Rng rng(seed);
  Tree t = test::small_random_wide_tree(n, 60, rng);
  return t.memory_model() == model ? t : t.with_memory_model(model);
}

/// Field-by-field comparison through the public API.
void expect_same_tree(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.memory_model(), b.memory_model());
  EXPECT_EQ(a.min_feasible_memory(), b.min_feasible_memory());
  EXPECT_EQ(a.total_weight(), b.total_weight());
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    EXPECT_EQ(a.parent(id), b.parent(id));
    EXPECT_EQ(a.weight(id), b.weight(id));
    EXPECT_EQ(a.child_weight_sum(id), b.child_weight_sum(id));
    EXPECT_EQ(a.wbar(id), b.wbar(id));
    ASSERT_EQ(a.num_children(id), b.num_children(id));
    for (std::size_t k = 0; k < a.num_children(id); ++k)
      EXPECT_EQ(a.children(id)[k], b.children(id)[k]);
  }
}

TEST(Snapshot, RoundTripPreservesEverything) {
  const Tree original = random_tree(11);
  const std::string path = temp_path("roundtrip.otree");
  core::save_snapshot(path, original);
  const Tree mapped = core::load_snapshot(path);
  EXPECT_FALSE(original.is_mapped());
  EXPECT_TRUE(mapped.is_mapped());
  expect_same_tree(original, mapped);
}

TEST(Snapshot, RoundTripSumModel) {
  const Tree original = random_tree(12, 70, MemoryModel::kSumInOut);
  const std::string path = temp_path("roundtrip_sum.otree");
  core::save_snapshot(path, original);
  const Tree mapped = core::load_snapshot(path);
  EXPECT_EQ(mapped.memory_model(), MemoryModel::kSumInOut);
  expect_same_tree(original, mapped);
}

TEST(Snapshot, SingleNodeTree) {
  const Tree one = core::make_tree({{core::kNoNode, 7}});
  const std::string path = temp_path("single.otree");
  core::save_snapshot(path, one);
  expect_same_tree(one, core::load_snapshot(path));
}

TEST(Snapshot, ProbeReportsHeader) {
  const Tree tree = random_tree(13);
  const std::string path = temp_path("probe.otree");
  core::save_snapshot(path, tree);
  const core::SnapshotInfo info = core::probe_snapshot(path);
  EXPECT_EQ(info.nodes, tree.size());
  EXPECT_EQ(info.model, tree.memory_model());
  EXPECT_EQ(info.root, tree.root());
  EXPECT_EQ(info.max_wbar, tree.min_feasible_memory());
  EXPECT_EQ(info.total_weight, tree.total_weight());
  EXPECT_EQ(info.tree_hash, tree.canonical_hash());
}

// The acceptance differential: a mapped tree must plan bit-identically to
// its from_parents twin under every strategy and both memory models.
TEST(Snapshot, MappedPlansBitIdenticalToOwnedPlans) {
  for (const MemoryModel model : {MemoryModel::kMaxInOut, MemoryModel::kSumInOut}) {
    const Tree owned = random_tree(21, 90, model);
    const std::string path = temp_path("differential.otree");
    core::save_snapshot(path, owned);
    const Tree mapped = core::load_snapshot(path);
    const Weight memory = owned.min_feasible_memory() * 3 / 2;
    for (const core::Strategy strategy : core::all_strategies()) {
      const core::StrategyOutcome a = core::run_strategy(strategy, owned, memory);
      const core::StrategyOutcome b = core::run_strategy(strategy, mapped, memory);
      EXPECT_EQ(a.schedule, b.schedule) << core::strategy_name(strategy);
      EXPECT_EQ(a.evaluation.io, b.evaluation.io) << core::strategy_name(strategy);
      EXPECT_EQ(a.evaluation.io_volume, b.evaluation.io_volume);
      EXPECT_EQ(a.evaluation.peak_resident, b.evaluation.peak_resident);
      EXPECT_EQ(a.evaluation.evictions, b.evaluation.evictions);
    }
  }
}

// TreeBuilder on a mapped tree must promote to an owned arena (the file is
// read-only) and then behave exactly like a builder on the owned twin.
TEST(Snapshot, BuilderPromotesMappedStorageCopyOnWrite) {
  const Tree owned = random_tree(31, 40);
  const std::string path = temp_path("cow.otree");
  core::save_snapshot(path, owned);
  const Tree mapped = core::load_snapshot(path);

  core::TreeBuilder from_mapped(mapped);
  core::TreeBuilder from_owned(owned);
  const NodeId victim = owned.root();
  const Weight tau = owned.weight(victim) / 2;
  EXPECT_EQ(from_mapped.expand(victim, tau), from_owned.expand(victim, tau));
  expect_same_tree(from_owned.tree(), from_mapped.tree());
  EXPECT_FALSE(from_mapped.tree().is_mapped());

  // The builder copied; the snapshot file and the mapped original are
  // untouched.
  expect_same_tree(core::load_snapshot(path), mapped);
  EXPECT_EQ(mapped.size(), owned.size());
}

// Copies share storage; mutating a copy through TreeBuilder must not leak
// into the original (use_count > 1 forces the clone).
TEST(Snapshot, SharedOwnedStorageIsCopyOnWrite) {
  const Tree original = random_tree(32, 30);
  const std::uint64_t hash_before = original.canonical_hash();
  Tree copy = original;  // shares the arena
  core::TreeBuilder builder(std::move(copy));
  (void)builder.expand(original.root(), 0);
  EXPECT_EQ(original.canonical_hash(), hash_before);
  EXPECT_EQ(original.size() + 2, builder.tree().size());
}

TEST(Snapshot, MoveResetsSource) {
  Tree a = random_tree(33, 20);
  const std::size_t n = a.size();
  const Tree b = std::move(a);
  EXPECT_EQ(b.size(), n);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): pinned contract
}

// ---------------------------------------------------------------------------
// Corrupt-snapshot rejection. Each case writes a damaged file and expects a
// std::runtime_error whose message names the file.

std::vector<char> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_rejected(const std::string& path, bool header_damage = true) {
  try {
    (void)core::load_snapshot(path);
    FAIL() << "load_snapshot accepted a corrupt file: " << path;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error does not name the file: " << e.what();
  }
  // probe reads only the header, so it agrees with load exactly when the
  // damage is header-visible (body-level damage is load's job to catch).
  if (header_damage) {
    EXPECT_THROW((void)core::probe_snapshot(path), std::runtime_error);
  }
}

std::string corrupt_copy(const std::string& name, const Tree& tree,
                         const std::function<void(std::vector<char>&)>& damage) {
  const std::string good = temp_path("good_" + name);
  const std::string bad = temp_path(name);
  core::save_snapshot(good, tree);
  std::vector<char> bytes = read_file(good);
  damage(bytes);
  write_file(bad, bytes);
  return bad;
}

TEST(SnapshotRejection, MissingFile) {
  const std::string path = temp_path("no_such.otree");
  expect_rejected(path);
}

TEST(SnapshotRejection, TruncatedHeader) {
  const Tree tree = random_tree(41, 20);
  expect_rejected(corrupt_copy("truncated_header.otree", tree,
                               [](std::vector<char>& b) { b.resize(17); }));
}

TEST(SnapshotRejection, TruncatedBody) {
  const Tree tree = random_tree(42, 20);
  expect_rejected(corrupt_copy("truncated_body.otree", tree,
                               [](std::vector<char>& b) { b.resize(b.size() - 5); }));
}

TEST(SnapshotRejection, BadMagic) {
  const Tree tree = random_tree(43, 20);
  expect_rejected(
      corrupt_copy("bad_magic.otree", tree, [](std::vector<char>& b) { b[0] = 'X'; }));
}

TEST(SnapshotRejection, WrongVersion) {
  const Tree tree = random_tree(44, 20);
  expect_rejected(corrupt_copy("bad_version.otree", tree, [](std::vector<char>& b) {
    const std::uint32_t v = 99;
    std::memcpy(b.data() + 8, &v, sizeof v);
  }));
}

TEST(SnapshotRejection, WrongEndianness) {
  const Tree tree = random_tree(45, 20);
  expect_rejected(corrupt_copy("bad_endian.otree", tree, [](std::vector<char>& b) {
    // Byte-swapped tag: what a big-endian writer would have produced.
    const std::uint32_t v = 0x04030201;
    std::memcpy(b.data() + 12, &v, sizeof v);
  }));
}

TEST(SnapshotRejection, NodeCountInconsistentWithFileSize) {
  const Tree tree = random_tree(46, 20);
  expect_rejected(corrupt_copy("bad_nodes.otree", tree, [](std::vector<char>& b) {
    const std::uint64_t n = 1000000;  // header claims 10^6 nodes, file has 20
    std::memcpy(b.data() + 24, &n, sizeof n);
  }));
}

TEST(SnapshotRejection, ZeroNodeCount) {
  const Tree tree = random_tree(47, 20);
  expect_rejected(corrupt_copy("zero_nodes.otree", tree, [](std::vector<char>& b) {
    const std::uint64_t n = 0;
    std::memcpy(b.data() + 24, &n, sizeof n);
  }));
}

TEST(SnapshotRejection, RootOutOfRange) {
  const Tree tree = random_tree(48, 20);
  expect_rejected(corrupt_copy("bad_root.otree", tree, [](std::vector<char>& b) {
    const std::int64_t r = 20;  // == nodes, one past the last valid id
    std::memcpy(b.data() + 32, &r, sizeof r);
  }));
}

TEST(SnapshotRejection, InvalidMemoryModel) {
  const Tree tree = random_tree(49, 20);
  expect_rejected(corrupt_copy("bad_model.otree", tree, [](std::vector<char>& b) {
    const std::uint32_t m = 7;
    std::memcpy(b.data() + 16, &m, sizeof m);
  }));
}

TEST(SnapshotRejection, BrokenCsrBookends) {
  const Tree tree = random_tree(50, 20);
  const std::size_t n = tree.size();
  expect_rejected(corrupt_copy("bad_csr.otree", tree,
                               [n](std::vector<char>& b) {
                                 const std::int64_t wrong = 5;  // child_offset[0] must be 0
                                 std::memcpy(b.data() + 64 + 24 * n, &wrong, sizeof wrong);
                               }),
                  /*header_damage=*/false);
}

TEST(SnapshotRejection, EmptyFile) {
  const std::string path = temp_path("empty.otree");
  write_file(path, {});
  expect_rejected(path);
}

}  // namespace
}  // namespace ooctree
