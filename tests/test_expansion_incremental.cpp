// Differential tests for the incremental expansion engine: the
// TreeBuilder-maintained tree, the in-place/batch ExpandedTree operations
// and the incremental rec_expand must be *bit-identical* to the retained
// reference implementations (Tree::from_parents rebuilds, expand_rebuild,
// rec_expand_reference) on every observable quantity — schedules, I/O
// volumes, expansion volumes, peaks — under both memory models.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/expansion.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"
#include "src/core/tree_builder.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/treegen/shapes.hpp"
#include "src/treegen/weights.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::ExpandedTree;
using core::IoFunction;
using core::kNoNode;
using core::MemoryModel;
using core::NodeId;
using core::RecExpandOptions;
using core::RecExpandResult;
using core::Tree;
using core::TreeBuilder;
using core::Weight;

/// Asserts that two trees are indistinguishable through the whole public
/// Tree interface (structure, derived quantities, aggregates).
void expect_same_tree(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.memory_model(), b.memory_model());
  EXPECT_EQ(a.total_weight(), b.total_weight());
  EXPECT_EQ(a.min_feasible_memory(), b.min_feasible_memory());
  for (std::size_t k = 0; k < a.size(); ++k) {
    const auto i = static_cast<NodeId>(k);
    EXPECT_EQ(a.parent(i), b.parent(i)) << "node " << k;
    EXPECT_EQ(a.weight(i), b.weight(i)) << "node " << k;
    EXPECT_EQ(a.child_weight_sum(i), b.child_weight_sum(i)) << "node " << k;
    EXPECT_EQ(a.wbar(i), b.wbar(i)) << "node " << k;
    const auto ca = a.children(i);
    const auto cb = b.children(i);
    ASSERT_EQ(ca.size(), cb.size()) << "node " << k;
    for (std::size_t j = 0; j < ca.size(); ++j) EXPECT_EQ(ca[j], cb[j]) << "node " << k;
  }
  EXPECT_EQ(a.postorder(), b.postorder());
}

void expect_same_expanded(const ExpandedTree& a, const ExpandedTree& b) {
  expect_same_tree(a.tree, b.tree);
  EXPECT_EQ(a.origin, b.origin);
  ASSERT_EQ(a.role.size(), b.role.size());
  for (std::size_t k = 0; k < a.role.size(); ++k) EXPECT_EQ(a.role[k], b.role[k]) << "node " << k;
  EXPECT_EQ(a.expansion_volume, b.expansion_volume);
}

Tree with_model(const Tree& t, MemoryModel model) {
  return t.memory_model() == model ? t : t.with_memory_model(model);
}

TEST(TreeBuilder, MatchesFromParentsRebuildOverRandomExpansionSequences) {
  util::Rng rng(1201);
  for (int rep = 0; rep < 20; ++rep) {
    const MemoryModel model =
        rep % 2 == 0 ? MemoryModel::kMaxInOut : MemoryModel::kSumInOut;
    Tree seed = with_model(test::small_random_tree(14, 12, rng), model);
    TreeBuilder builder(seed);
    std::vector<NodeId> parent(seed.size());
    std::vector<Weight> weight(seed.size());
    for (std::size_t k = 0; k < seed.size(); ++k) {
      parent[k] = seed.parent(static_cast<NodeId>(k));
      weight[k] = seed.weight(static_cast<NodeId>(k));
    }
    for (int step = 0; step < 25; ++step) {
      const auto i = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(parent.size()) - 1));
      const Weight w = weight[static_cast<std::size_t>(i)];
      const Weight tau = rng.uniform_int(0, w);
      const auto [i2, i3] = builder.expand(i, tau);
      EXPECT_EQ(static_cast<std::size_t>(i2), parent.size());
      EXPECT_EQ(static_cast<std::size_t>(i3), parent.size() + 1);
      // Mirror the expansion on raw arrays and rebuild from scratch.
      parent.push_back(i3);
      parent.push_back(parent[static_cast<std::size_t>(i)]);
      parent[static_cast<std::size_t>(i)] = i2;
      weight.push_back(w - tau);
      weight.push_back(w);
      const Tree rebuilt = Tree::from_parents(parent, weight, model);
      expect_same_tree(builder.tree(), rebuilt);
    }
  }
}

TEST(TreeBuilder, ExpandingTheRootRerootsTheTree) {
  const Tree t = core::make_tree({{kNoNode, 4}, {0, 2}, {0, 3}});
  TreeBuilder builder(t);
  const auto [i2, i3] = builder.expand(t.root(), 4);
  EXPECT_EQ(builder.tree().root(), i3);
  EXPECT_EQ(builder.tree().parent(i3), kNoNode);
  EXPECT_EQ(builder.tree().parent(i2), i3);
  EXPECT_EQ(builder.tree().parent(0), i2);
  EXPECT_EQ(builder.tree().weight(i2), 0);
  EXPECT_EQ(builder.tree().weight(i3), 4);
}

TEST(TreeBuilder, RejectsBadArguments) {
  TreeBuilder builder(core::make_tree({{kNoNode, 2}, {0, 5}}));
  EXPECT_THROW((void)builder.expand(7, 1), std::invalid_argument);
  EXPECT_THROW((void)builder.expand(1, -1), std::invalid_argument);
  EXPECT_THROW((void)builder.expand(1, 6), std::invalid_argument);
}

TEST(ExpansionIncremental, ExpandMatchesRebuildReference) {
  util::Rng rng(1213);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = rep % 2 == 0 ? test::small_random_tree(12, 10, rng)
                                : test::small_random_wide_tree(12, 10, rng);
    ExpandedTree fast = ExpandedTree::identity(t);
    ExpandedTree slow = ExpandedTree::identity(t);
    for (int step = 0; step < 10; ++step) {
      const auto i = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(fast.tree.size()) - 1));
      const Weight tau = rng.uniform_int(0, fast.tree.weight(i));
      fast = fast.expand(i, tau);
      slow = slow.expand_rebuild(i, tau);
      expect_same_expanded(fast, slow);
    }
  }
}

TEST(ExpansionIncremental, BatchExpandMatchesSequentialExpansion) {
  util::Rng rng(1217);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = test::small_random_tree(13, 9, rng);
    IoFunction io(t.size(), 0);
    for (std::size_t k = 0; k < t.size(); ++k) {
      // Mix zero and positive taus; rep 0 gives *every* node tau > 0
      // (weights from small_random_tree are always >= 1).
      const Weight w = t.weight(static_cast<NodeId>(k));
      io[k] = (rep == 0) ? 1 : rng.uniform_int(0, w);
    }
    ExpandedTree batch = ExpandedTree::identity(t);
    batch.expand_all(io);
    ExpandedTree sequential = ExpandedTree::identity(t);
    for (std::size_t k = 0; k < t.size(); ++k)
      if (io[k] > 0) sequential = sequential.expand_rebuild(static_cast<NodeId>(k), io[k]);
    expect_same_expanded(batch, sequential);
  }
}

TEST(ExpansionIncremental, InPlaceOperationsAreExceptionSafe) {
  // A failed in-place expansion must leave the ExpandedTree untouched (the
  // tree is moved into the TreeBuilder, so validation has to happen first).
  const Tree t = core::make_tree({{kNoNode, 2}, {0, 5}, {1, 3}});
  ExpandedTree e = ExpandedTree::identity(t);
  EXPECT_THROW((void)e.expand_in_place(9, 1), std::invalid_argument);
  EXPECT_THROW((void)e.expand_in_place(1, -1), std::invalid_argument);
  EXPECT_THROW((void)e.expand_in_place(1, 6), std::invalid_argument);
  IoFunction bad(t.size(), 0);
  bad[2] = 4;  // > weight(2) == 3
  EXPECT_THROW(e.expand_all(bad), std::invalid_argument);
  expect_same_expanded(e, ExpandedTree::identity(t));
  e.expand_in_place(1, 2);  // still fully usable afterwards
  EXPECT_EQ(e.tree.size(), t.size() + 2);
}

TEST(ExpansionIncremental, ScheduleFromIoOnAllPositiveTau) {
  // The satellite case for the batch API: a tree where *every* node
  // (including the root) carries tau > 0, so schedule_from_io expands all
  // of them in one batch. The resulting schedule must be a valid traversal
  // within the I/O budget it was given.
  util::Rng rng(1223);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = test::small_random_tree(11, 8, rng);
    IoFunction io(t.size(), 0);
    for (std::size_t k = 0; k < t.size(); ++k)
      io[k] = std::max<Weight>(1, t.weight(static_cast<NodeId>(k)) / 2);
    // With every datum partially spilled, the expanded tree's optimal peak
    // is at most the in-core peak; use that bound so a schedule must exist.
    const Weight memory = core::opt_minmem(t).peak;
    const auto sched = core::schedule_from_io(t, io, memory);
    ASSERT_TRUE(sched.has_value());
    EXPECT_TRUE(core::is_topological_order(t, *sched));
    const core::FifResult fif = core::simulate_fif(t, *sched, memory);
    ASSERT_TRUE(fif.feasible);
    Weight budget = 0;
    for (const Weight x : io) budget += x;
    EXPECT_LE(fif.io_volume, budget);
    test::expect_valid_traversal(t, *sched, fif.io, memory);
  }
}

void expect_same_rec_expand(const RecExpandResult& a, const RecExpandResult& b) {
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.evaluation.io_volume, b.evaluation.io_volume);
  EXPECT_EQ(a.evaluation.io, b.evaluation.io);
  EXPECT_EQ(a.evaluation.peak_resident, b.evaluation.peak_resident);
  EXPECT_EQ(a.expansion_volume, b.expansion_volume);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.final_peak, b.final_peak);
}

TEST(RecExpandIncremental, MatchesReferenceOnRandomTreesBothModels) {
  util::Rng rng(1229);
  for (int rep = 0; rep < 24; ++rep) {
    const std::size_t n = 20 + static_cast<std::size_t>(rng.uniform_int(0, 80));
    Tree t = rep % 3 == 2 ? test::small_random_wide_tree(n, 12, rng)
                          : test::small_random_tree(n, 12, rng);
    if (rep % 2 == 1) t = t.with_memory_model(MemoryModel::kSumInOut);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    for (const Weight m : {lb, lb + (peak - lb) / 10, (lb + peak) / 2}) {
      for (const bool full : {true, false}) {
        RecExpandOptions opts;
        if (!full) opts.max_expansions_per_node = 2;
        const RecExpandResult inc = core::rec_expand(t, m, opts);
        const RecExpandResult ref = core::rec_expand_reference(t, m, opts);
        expect_same_rec_expand(inc, ref);
      }
    }
  }
}

TEST(RecExpandIncremental, MatchesReferenceOnStructuredShapes) {
  util::Rng rng(1231);
  std::vector<Tree> shapes;
  {
    std::vector<Weight> w(40);
    for (auto& x : w) x = rng.uniform_int(1, 50);
    shapes.push_back(treegen::chain_tree(w));
  }
  shapes.push_back(
      treegen::with_uniform_weights(treegen::caterpillar_tree(15, 3, 1), 1, 30, rng));
  shapes.push_back(treegen::with_uniform_weights(treegen::star_tree(12, 1, 1), 1, 30, rng));
  shapes.push_back(
      treegen::with_uniform_weights(treegen::complete_kary_tree(2, 5, 1), 1, 30, rng));
  for (const Tree& t : shapes) {
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    for (const Weight m : {lb, (lb + peak) / 2}) {
      const RecExpandResult inc = core::full_rec_expand(t, m);
      const RecExpandResult ref = core::rec_expand_reference(t, m, RecExpandOptions{});
      expect_same_rec_expand(inc, ref);
    }
  }
}

TEST(RecExpandIncremental, MatchesReferenceUnderAllVictimRules) {
  util::Rng rng(1237);
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = test::small_random_tree(30, 10, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = (lb + peak) / 2;
    for (const core::VictimRule rule :
         {core::VictimRule::kLatestParent, core::VictimRule::kEarliestParent,
          core::VictimRule::kLargestIo, core::VictimRule::kFirstScheduled}) {
      RecExpandOptions opts;
      opts.victim_rule = rule;
      expect_same_rec_expand(core::rec_expand(t, m, opts),
                             core::rec_expand_reference(t, m, opts));
    }
  }
}

TEST(RecExpandIncremental, MatchesReferenceUnderExpansionCaps) {
  util::Rng rng(1249);
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = test::small_random_tree(40, 15, rng);
    const Weight m = t.min_feasible_memory();
    RecExpandOptions opts;
    opts.max_expansions_per_node = 1 + static_cast<std::size_t>(rep % 3);
    opts.global_expansion_cap = 2 + static_cast<std::size_t>(rep % 5);
    expect_same_rec_expand(core::rec_expand(t, m, opts),
                           core::rec_expand_reference(t, m, opts));
  }
}

TEST(RecExpandIncremental, MatchesReferenceOnSynthInstances) {
  // Mid-sized SYNTH trees (the paper's dataset shape) at the paper's three
  // memory bounds — the configuration bench_recexpand_scaling tracks.
  util::Rng rng(20170208);
  for (int rep = 0; rep < 4; ++rep) {
    const Tree t = treegen::synth_instance(220, 1, 100, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m11 = lb + (peak - lb) / 10;  // close to LB: many expansions
    for (const Weight m : {lb, m11, peak - 1}) {
      expect_same_rec_expand(core::full_rec_expand(t, m),
                             core::rec_expand_reference(t, m, RecExpandOptions{}));
      RecExpandOptions two;
      two.max_expansions_per_node = 2;
      expect_same_rec_expand(core::rec_expand(t, m, two),
                             core::rec_expand_reference(t, m, two));
    }
  }
}

}  // namespace
}  // namespace ooctree
