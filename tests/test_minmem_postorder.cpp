// Tests for Liu's best peak-memory postorder (POSTORDERMINMEM).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/treegen/catalan.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::peak_memory;
using core::postorder_minmem;
using core::Schedule;
using core::Tree;
using core::Weight;

/// True iff `order` never interrupts a subtree: once a node of subtree T_i
/// is started, all of T_i finishes before any node outside T_i runs.
bool is_postorder_traversal(const Tree& t, const Schedule& order) {
  // Equivalent check: for every node, its subtree occupies a contiguous
  // range of the schedule ending at the node itself.
  std::vector<std::size_t> pos(t.size());
  for (std::size_t k = 0; k < order.size(); ++k) pos[static_cast<std::size_t>(order[k])] = k;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<core::NodeId>(i);
    const std::size_t sub = t.subtree_size(id);
    // Earliest position among subtree nodes must be pos[i] - sub + 1.
    std::size_t lo = pos[i];
    for (const core::NodeId d : t.postorder(id)) lo = std::min(lo, pos[static_cast<std::size_t>(d)]);
    if (lo != pos[i] + 1 - sub) return false;
  }
  return true;
}

TEST(PostOrderMinMem, SchedulesArePostorders) {
  util::Rng rng(3);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_wide_tree(10, 9, rng);
    const auto r = postorder_minmem(t);
    EXPECT_TRUE(core::is_topological_order(t, r.schedule));
    EXPECT_TRUE(is_postorder_traversal(t, r.schedule));
  }
}

TEST(PostOrderMinMem, PeakMatchesSimulation) {
  util::Rng rng(5);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(10, 20, rng);
    const auto r = postorder_minmem(t);
    EXPECT_EQ(r.peak, peak_memory(t, r.schedule))
        << "analytic S_root must equal the simulated peak of the schedule";
  }
}

TEST(PostOrderMinMem, OptimalAmongAllPostorders) {
  // Exhaustive check: enumerate every postorder (all child permutations)
  // on small trees and verify none beats the analytic result.
  util::Rng rng(9);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_wide_tree(7, 8, rng);
    const auto r = postorder_minmem(t);
    Weight best = std::numeric_limits<Weight>::max();
    core::for_each_topological_order(t, [&](const Schedule& s) {
      if (is_postorder_traversal(t, s)) best = std::min(best, peak_memory(t, s));
    });
    EXPECT_EQ(r.peak, best);
  }
}

TEST(PostOrderMinMem, ChainIsExact) {
  const Tree chain = make_tree({{kNoNode, 2}, {0, 5}, {1, 3}, {2, 7}});
  // Bottom-up peaks: 7, max(3,7)=7, max(5,3)=5, max(2,5)=5 -> S = 7.
  const auto r = postorder_minmem(chain);
  EXPECT_EQ(r.peak, 7);
  EXPECT_EQ(r.schedule, (Schedule{3, 2, 1, 0}));
}

TEST(PostOrderMinMem, ChildOrderBySMinusW) {
  //    root(1) with children a (S=10, w=1) and b (S=6, w=5).
  //    a: 1 <- leaf 10 ; b: 5 <- leaf 6.
  const Tree t = make_tree({{kNoNode, 1}, {0, 1}, {1, 10}, {0, 5}, {3, 6}});
  // a first: peak max(10, 1+6) = 10; b first: max(6, 5+10) = 15.
  const auto r = postorder_minmem(t);
  EXPECT_EQ(r.peak, 10);
  EXPECT_EQ(r.schedule.front(), 2) << "subtree with larger S - w must go first";
}

TEST(PostOrderMinMem, StorageIsMonotone) {
  util::Rng rng(13);
  const Tree t = test::small_random_tree(30, 15, rng);
  const auto r = postorder_minmem(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<core::NodeId>(i);
    if (t.parent(id) != kNoNode) {
      EXPECT_LE(r.storage[i], r.storage[static_cast<std::size_t>(t.parent(id))]);
    }
    EXPECT_GE(r.storage[i], t.wbar(id));
  }
}

TEST(PostOrderMinMem, SingleNode) {
  const auto r = postorder_minmem(make_tree({{kNoNode, 6}}));
  EXPECT_EQ(r.peak, 6);
  EXPECT_EQ(r.schedule, Schedule{0});
}

}  // namespace
}  // namespace ooctree
