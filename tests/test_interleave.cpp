// Tests for the interleaving lemma (paper, Theorem 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/interleave.hpp"
#include "src/util/rng.hpp"

namespace ooctree {
namespace {

using core::InterleaveItem;
using core::interleave_cost;
using core::optimal_interleave_cost;
using core::optimal_interleave_order;

TEST(Interleave, CostOfFixedOrder) {
  const std::vector<InterleaveItem> items{{5, 2}, {4, 1}, {7, 3}};
  // Order 0,1,2: max(5, 2+4, 3+7) = 10.
  EXPECT_EQ(interleave_cost(items, {0, 1, 2}), 10);
  // Order 2,0,1: max(7, 3+5, 5+4) = 9.
  EXPECT_EQ(interleave_cost(items, {2, 0, 1}), 9);
}

TEST(Interleave, OptimalMatchesBruteForce) {
  util::Rng rng(42);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 1 + rng.index(7);
    std::vector<InterleaveItem> items(n);
    for (auto& it : items) {
      it.residue = rng.uniform_int(0, 10);
      it.peak = it.residue + rng.uniform_int(0, 10);  // peak >= residue
    }
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      best = std::min(best, interleave_cost(items, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(optimal_interleave_cost(items), best);
  }
}

TEST(Interleave, SortsByPeakMinusResidue) {
  const std::vector<InterleaveItem> items{{3, 3}, {10, 1}, {5, 2}};
  const auto order = optimal_interleave_order(items);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Interleave, StableOnTies) {
  const std::vector<InterleaveItem> items{{4, 2}, {6, 4}, {3, 1}};
  // All have peak - residue = 2: original order preserved.
  EXPECT_EQ(optimal_interleave_order(items), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Interleave, EmptyAndSingleton) {
  EXPECT_EQ(optimal_interleave_cost({}), 0);
  EXPECT_EQ(optimal_interleave_cost({{7, 3}}), 7);
}

}  // namespace
}  // namespace ooctree
