// Tests for the atomic-writes variant (the NP-complete model of [3]).
#include <gtest/gtest.h>

#include "src/core/atomic_io.hpp"
#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/minmem_optimal.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::AtomicVictimRule;
using core::kNoNode;
using core::make_tree;
using core::simulate_atomic;
using core::Tree;
using core::Weight;

TEST(AtomicIo, NoSpillWhenMemoryAmple) {
  const Tree t = make_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  const auto r = simulate_atomic(t, {2, 1, 0}, 100);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.io_volume, 0);
}

TEST(AtomicIo, WholeDataOnly) {
  util::Rng rng(1201);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(10, 10, rng);
    const Weight m = t.min_feasible_memory() + 2;
    const auto r = simulate_atomic(t, t.postorder(), m);
    ASSERT_TRUE(r.feasible);
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_TRUE(r.io[i] == 0 || r.io[i] == t.weight(static_cast<core::NodeId>(i)))
          << "tau must be atomic";
    }
    test::expect_valid_traversal(t, t.postorder(), r.io, m);
  }
}

TEST(AtomicIo, AtLeastFractionalFif) {
  // Partial writes can only help: fractional FiF lower-bounds the atomic
  // volume for the same schedule.
  util::Rng rng(1213);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(12, 10, rng)
                                  : test::small_random_wide_tree(12, 10, rng);
    const Weight m = t.min_feasible_memory() + 3;
    const auto schedule = core::opt_minmem(t).schedule;
    const Weight fractional = core::simulate_fif(t, schedule, m).io_volume;
    for (const auto rule : {AtomicVictimRule::kFurthestInFuture,
                            AtomicVictimRule::kSmallestSufficient, AtomicVictimRule::kLargest,
                            AtomicVictimRule::kSmallest}) {
      const auto r = simulate_atomic(t, schedule, m, rule);
      ASSERT_TRUE(r.feasible);
      EXPECT_GE(r.io_volume, fractional);
    }
  }
}

TEST(AtomicIo, CoincidesWithFractionalOnHomogeneousTrees) {
  // With unit weights every write is atomic anyway, so the two models give
  // the same optimum W(T).
  util::Rng rng(1217);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(8, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::homogeneous_min_peak(t);
    for (Weight m = lb; m <= peak; ++m) {
      const Weight exact = core::homogeneous_optimal_io(t, m);
      EXPECT_EQ(core::brute_force_min_io_atomic(t, m).io_volume, exact) << "M=" << m;
    }
  }
}

TEST(AtomicIo, BruteForceBoundsHeuristic) {
  util::Rng rng(1223);
  int nontrivial = 0;
  for (int rep = 0; rep < 200 && nontrivial < 25; ++rep) {
    const Tree t = test::small_random_tree(8, 8, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    ++nontrivial;
    const Weight m = (lb + peak) / 2;
    const auto exact = core::brute_force_min_io_atomic(t, m);
    const auto heur = core::atomic_heuristic(t, m);
    ASSERT_TRUE(heur.feasible);
    EXPECT_GE(heur.io_volume, exact.io_volume);
    // And the atomic optimum is at least the fractional optimum.
    EXPECT_GE(exact.io_volume, core::brute_force_min_io(t, m).objective);
  }
  EXPECT_GE(nontrivial, 10);
}

TEST(AtomicIo, AtomicCostsStrictlyMoreSomewhere) {
  // The partial-write relaxation is the paper's point: exhibit an instance
  // where atomic writes are forced to move strictly more volume. Two
  // chains with heavy tops and heavy leaves: whichever leaf runs second
  // overflows by 2 while the other chain's top (8 or 10) is live, so the
  // fractional model writes 2 units where the atomic model dumps a whole
  // top datum.
  //   root(1) <- A1(10) <- A2(12 leaf);  root <- B1(8) <- B2(12 leaf); M=18
  const Tree t = make_tree({{kNoNode, 1}, {0, 10}, {1, 12}, {0, 8}, {3, 12}});
  const Weight m = 18;
  const Weight fractional = core::brute_force_min_io(t, m).objective;
  const Weight atomic = core::brute_force_min_io_atomic(t, m).io_volume;
  EXPECT_EQ(fractional, 2);  // run B's chain first, shave 2 units off B1
  EXPECT_EQ(atomic, 8);      // the whole of B1 must go
  EXPECT_LT(fractional, atomic);
}

TEST(AtomicIo, SmallestSufficientAvoidsOverEviction) {
  // Active data 9 and 3; deficit 2: FiF may spill whichever is consumed
  // later, smallest-sufficient spills the 3.
  //   root(1) <- x(9), y(3), z(1); z <- leaf(8)
  const Tree t = make_tree({{kNoNode, 1}, {0, 9}, {0, 3}, {0, 1}, {3, 8}});
  // Schedule x, y, leaf, z, root with M = 14: at leaf, active {x:9, y:3},
  // wbar(leaf)=8 -> budget 6, deficit 6... adjust: M=16: budget 8, deficit 4.
  const auto r = simulate_atomic(t, {1, 2, 4, 3, 0}, 16,
                                 AtomicVictimRule::kSmallestSufficient);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.io_volume, 9) << "deficit 4: only the 9 covers it alone";
  const auto r2 = simulate_atomic(t, {1, 2, 4, 3, 0}, 21,
                                  AtomicVictimRule::kSmallestSufficient);
  ASSERT_TRUE(r2.feasible);
  // M=21: budget 13, resident 12 -> no eviction at the leaf... choose M=19:
  const auto r3 = simulate_atomic(t, {1, 2, 4, 3, 0}, 19,
                                  AtomicVictimRule::kSmallestSufficient);
  ASSERT_TRUE(r3.feasible);
  EXPECT_EQ(r3.io_volume, 3) << "deficit 1: the 3 is the smallest sufficient";
}

TEST(AtomicIo, BruteForceGuardsAndErrors) {
  const Tree big = treegen::star_tree(10, 1, 1);
  EXPECT_THROW((void)core::brute_force_min_io_atomic(big, 5, 9), std::invalid_argument);
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}});
  EXPECT_THROW((void)core::brute_force_min_io_atomic(t, 5), std::runtime_error);
}

TEST(AtomicIo, RejectsBadSchedule) {
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}});
  EXPECT_THROW((void)simulate_atomic(t, {0, 1}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
