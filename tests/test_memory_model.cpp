// Tests for the second transient-memory model (sum of inputs + output,
// Liu's classic pebbling model) and its interaction with every algorithm.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/core/rec_expand.hpp"
#include "src/core/strategies.hpp"
#include "src/core/tree_io.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::MemoryModel;
using core::Tree;
using core::Weight;

Tree sum_tree(const std::vector<std::pair<core::NodeId, Weight>>& nodes) {
  std::vector<core::NodeId> parent;
  std::vector<Weight> weight;
  for (const auto& [p, w] : nodes) {
    parent.push_back(p);
    weight.push_back(w);
  }
  return Tree::from_parents(std::move(parent), std::move(weight), MemoryModel::kSumInOut);
}

TEST(MemoryModel, WbarFormulas) {
  //      0(5) <- 1(3), 2(4); 1 <- 3(2)
  const Tree max_t = make_tree({{kNoNode, 5}, {0, 3}, {0, 4}, {1, 2}});
  const Tree sum_t = max_t.with_memory_model(MemoryModel::kSumInOut);
  EXPECT_EQ(max_t.wbar(0), 7);       // max(5, 3+4)
  EXPECT_EQ(sum_t.wbar(0), 12);      // 5 + 3 + 4
  EXPECT_EQ(max_t.wbar(1), 3);       // max(3, 2)
  EXPECT_EQ(sum_t.wbar(1), 5);       // 3 + 2
  EXPECT_EQ(max_t.wbar(3), 2);       // leaf: both models agree
  EXPECT_EQ(sum_t.wbar(3), 2);
  EXPECT_EQ(sum_t.memory_model(), MemoryModel::kSumInOut);
  EXPECT_EQ(max_t.memory_model(), MemoryModel::kMaxInOut);
}

TEST(MemoryModel, SumModelNeedsAtLeastAsMuchMemory) {
  util::Rng rng(1501);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree max_t = test::small_random_tree(20, 15, rng);
    const Tree sum_t = max_t.with_memory_model(MemoryModel::kSumInOut);
    EXPECT_GE(sum_t.min_feasible_memory(), max_t.min_feasible_memory());
    EXPECT_GE(core::opt_minmem(sum_t).peak, core::opt_minmem(max_t).peak);
    EXPECT_GE(core::postorder_minmem(sum_t).peak, core::postorder_minmem(max_t).peak);
  }
}

TEST(MemoryModel, OptMinMemStillExactUnderSumModel) {
  // The hill-valley machinery is generic in wbar: it must stay exact.
  util::Rng rng(1511);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t =
        test::small_random_tree(8, 9, rng).with_memory_model(MemoryModel::kSumInOut);
    EXPECT_EQ(core::opt_minmem(t).peak, core::brute_force_min_peak(t).objective)
        << t.to_string();
  }
}

TEST(MemoryModel, StrategiesValidUnderSumModel) {
  util::Rng rng(1523);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t =
        test::small_random_tree(25, 12, rng).with_memory_model(MemoryModel::kSumInOut);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    const Weight m = std::max(lb, (lb + peak) / 2);
    for (const core::Strategy s : core::all_strategies()) {
      const auto out = core::run_strategy(s, t, m);
      ASSERT_TRUE(out.evaluation.feasible) << core::strategy_name(s);
      test::expect_valid_traversal(t, out.schedule, out.evaluation.io, m);
    }
  }
}

TEST(MemoryModel, PostOrderMinIoPredictionHoldsUnderSumModel) {
  util::Rng rng(1531);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t =
        test::small_random_wide_tree(15, 10, rng).with_memory_model(MemoryModel::kSumInOut);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::postorder_minmem(t).peak;
    for (const Weight m : {lb, (lb + peak) / 2, peak}) {
      const auto r = core::postorder_minio(t, m);
      EXPECT_EQ(r.predicted_io, core::simulate_fif(t, r.schedule, m).io_volume) << "M=" << m;
    }
  }
}

TEST(MemoryModel, ModelsDisagreeOnConcreteTree) {
  // The chain 0(2) <- 1(3) <- 2(4): forced order, but the peaks differ:
  // max model: max(4, max(3,4), max(2,3)) = 4; sum model: 4, 3+4, 2+3 = 7.
  const Tree max_t = make_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  const Tree sum_t = sum_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  EXPECT_EQ(core::opt_minmem(max_t).peak, 4);
  EXPECT_EQ(core::opt_minmem(sum_t).peak, 7);
  // I/O under M = 5: max model none; sum model must spill.
  EXPECT_EQ(core::fif_io_volume(max_t, {2, 1, 0}, 5), 0);
  EXPECT_GT(core::fif_io_volume(sum_t, {2, 1, 0}, 7), -1);
  EXPECT_EQ(core::fif_io_volume(sum_t, {2, 1, 0}, 7), 0);
}

TEST(MemoryModel, TreeIoRoundTripsTheModel) {
  const Tree t = sum_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  std::ostringstream out;
  core::write_tree(out, t);
  std::istringstream in(out.str());
  const Tree back = core::read_tree(in);
  EXPECT_EQ(back.memory_model(), MemoryModel::kSumInOut);
  EXPECT_EQ(back.wbar(back.root()), t.wbar(t.root()));
  // Default trees stay on the paper's model.
  std::ostringstream out2;
  core::write_tree(out2, t.with_memory_model(MemoryModel::kMaxInOut));
  std::istringstream in2(out2.str());
  EXPECT_EQ(core::read_tree(in2).memory_model(), MemoryModel::kMaxInOut);
}

TEST(MemoryModel, SubtreeAndExpansionPropagate) {
  const Tree t =
      sum_tree({{kNoNode, 2}, {0, 3}, {1, 4}, {0, 1}});
  EXPECT_EQ(t.subtree(1).memory_model(), MemoryModel::kSumInOut);
  const auto expanded = core::ExpandedTree::identity(t).expand(1, 2);
  EXPECT_EQ(expanded.tree.memory_model(), MemoryModel::kSumInOut);
}

TEST(MemoryModel, HomogeneousTheoryGuarded) {
  const Tree t = sum_tree({{kNoNode, 1}, {0, 1}});
  EXPECT_THROW((void)core::homogeneous_labels(t, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
