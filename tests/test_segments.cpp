// Tests for the hill-valley decomposition utility.
#include <gtest/gtest.h>

#include "src/core/minmem_optimal.hpp"
#include "src/core/segments.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::hill_valley_decomposition;
using core::hill_valley_pairs;
using core::Tree;
using core::Weight;

TEST(Segments, NormalizationInvariants) {
  util::Rng rng(1701);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(25, 15, rng)
                                  : test::small_random_wide_tree(25, 15, rng);
    for (const auto& schedule : {t.postorder(), core::opt_minmem(t).schedule}) {
      const auto segments = hill_valley_decomposition(t, schedule);
      ASSERT_FALSE(segments.empty());
      for (std::size_t s = 0; s + 1 < segments.size(); ++s) {
        EXPECT_GT(segments[s].hill, segments[s + 1].hill);
        EXPECT_LT(segments[s].valley, segments[s + 1].valley);
        EXPECT_LT(segments[s].end, segments[s + 1].end);
      }
      EXPECT_EQ(segments.back().end, t.size());
      EXPECT_EQ(segments.back().valley, t.weight(t.root()));
      // The first hill is the schedule's peak memory.
      Weight max_hill = 0;
      for (const auto& s : segments) max_hill = std::max(max_hill, s.hill);
      EXPECT_EQ(segments.front().hill, max_hill);
      EXPECT_EQ(max_hill, core::peak_memory(t, schedule));
    }
  }
}

TEST(Segments, MatchesOptMinMemCertificate) {
  // The decomposition of OptMinMem's own schedule must reproduce the
  // segment certificate the algorithm built internally.
  util::Rng rng(1709);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(20, 12, rng);
    const auto opt = core::opt_minmem(t);
    EXPECT_EQ(hill_valley_pairs(t, opt.schedule), opt.segments) << t.to_string();
  }
}

TEST(Segments, ChainCollapsesToOneSegment) {
  // A monotone chain profile has a single hill and valley.
  const Tree chain = treegen::chain_tree({1, 2, 3, 4, 5});
  const auto segments = hill_valley_decomposition(chain, chain.postorder());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].hill, 5);
  EXPECT_EQ(segments[0].valley, 1);
}

TEST(Segments, DecreasingHillsGiveMultipleSegments) {
  // Hills must decrease and valleys increase for a cut to survive:
  //   root(6) <- A(2) <- leafA(9);  root <- B(3) <- leafB(5)
  // processed A chain, B chain, root gives hills 9, 7, 6 over valleys
  // 2, 5, 6 — three segments.
  const Tree t = core::make_tree({{core::kNoNode, 6}, {0, 2}, {1, 9}, {0, 3}, {3, 5}});
  const core::Schedule s{2, 1, 4, 3, 0};
  const auto segments = hill_valley_pairs(t, s);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], (std::pair<Weight, Weight>{9, 2}));  // A chain
  EXPECT_EQ(segments[1], (std::pair<Weight, Weight>{7, 5}));  // B chain on top of A's output
  EXPECT_EQ(segments[2], (std::pair<Weight, Weight>{6, 6}));  // the root itself
}

TEST(Segments, EarlierSmallerHillsMergeIntoThePeak) {
  // The canonical decomposition never cuts before the global peak: a small
  // first chain followed by a bigger one collapses to one segment.
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 2}, {1, 9}, {0, 3}, {3, 8}});
  const auto segments = hill_valley_pairs(t, {2, 1, 4, 3, 0});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].first, 10);  // global peak: leafB with A's output live
  EXPECT_EQ(segments[0].second, 1);  // the root's output
}

TEST(Segments, RejectsBadSchedule) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}});
  EXPECT_THROW((void)hill_valley_decomposition(t, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
