// Tests for the Furthest-in-the-Future eviction simulator (Theorem 1).
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::Schedule;
using core::simulate_fif;
using core::Tree;
using core::Weight;

TEST(Fif, NoIoWhenMemoryIsAmple) {
  const Tree t = make_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  const core::FifResult r = simulate_fif(t, {2, 1, 0}, 100);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.io_volume, 0);
  EXPECT_EQ(r.peak_resident, 4);
}

TEST(Fif, IoIsZeroIffPeakFits) {
  util::Rng rng(11);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(8, 9, rng);
    const Schedule order = t.postorder();
    const Weight peak = core::peak_memory(t, order);
    EXPECT_EQ(simulate_fif(t, order, peak).io_volume, 0);
    if (peak > t.min_feasible_memory()) {
      EXPECT_GT(simulate_fif(t, order, peak - 1).io_volume, 0);
    }
  }
}

TEST(Fif, InfeasibleWhenWbarExceedsMemory) {
  const Tree t = make_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  EXPECT_FALSE(simulate_fif(t, {2, 1, 0}, 3).feasible);
  EXPECT_EQ(core::fif_io_volume(t, {2, 1, 0}, 3), -1);
}

TEST(Fif, RejectsNonTopologicalSchedule) {
  const Tree t = make_tree({{kNoNode, 2}, {0, 3}, {1, 4}});
  EXPECT_THROW((void)simulate_fif(t, {0, 1, 2}, 10), std::invalid_argument);
}

TEST(Fif, EvictsFurthestInFutureFirst) {
  // Root 0 with three chains; the schedule leaves data 1, 2, 3 active with
  // consumers at different times. A squeeze should evict the one whose
  // parent runs last.
  //   0(1) <- 1(4) , 2(4), 3(4); 1 <- 4(leaf 6); 2 <- 5(leaf 6); 3 <- 6(leaf 6)
  const Tree t = make_tree(
      {{kNoNode, 1}, {0, 4}, {0, 4}, {0, 4}, {1, 6}, {2, 6}, {3, 6}});
  // Schedule: 4,1 (chain A), 5,2 (chain B), 6,3 (chain C), 0.
  // M = 12: executing 5 needs active {1:4} + 6 = 10 fits; executing 6 needs
  // {1:4, 2:4} + 6 = 14 -> evict 2 units. Victim must be the child of the
  // latest-scheduled parent among active {1 (parent 0), 2 (parent 0)} — both
  // consumed by the root, tie broken by id, so node 2 loses 2 units.
  const core::FifResult r = simulate_fif(t, {4, 1, 5, 2, 6, 3, 0}, 12);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.io_volume, 2);
  EXPECT_EQ(r.io[2], 2);
  EXPECT_EQ(r.io[1], 0);
}

TEST(Fif, EvictionSkipsChildrenOfCurrentNode) {
  // Node 1's datum must not be evicted while node 0 (its parent) runs.
  //   0(1) <- 1(5), 2(5); 2 <- 3(leaf 9)
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 5}, {2, 9}});
  // Schedule 1, 3, 2, 0 with M = 14: executing 3 has active {1:5}: 5+9=14 ok;
  // 2: active {1:5} + wbar(2)=9 -> 14 ok; 0: children 1,2 pinned: wbar=10 ok.
  const core::FifResult r = simulate_fif(t, {1, 3, 2, 0}, 14);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.io_volume, 0);
}

TEST(Fif, PartialEvictionAmounts) {
  //   0(1) <- 1(10), 2(3); 2 <- 3(leaf 8)
  const Tree t = make_tree({{kNoNode, 1}, {0, 10}, {0, 3}, {2, 8}});
  // Schedule 1, 3, 2, 0; M = 13. Executing 3: active {1:10} + 8 = 18 ->
  // evict 5 of node 1 (partial). Executing 2: active {1:5} + wbar(2)=8 = 13
  // fits. Root: children 10+3 pinned -> wbar 13 fits (1 read back).
  const core::FifResult r = simulate_fif(t, {1, 3, 2, 0}, 13);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.io[1], 5);
  EXPECT_EQ(r.io_volume, 5);
}

TEST(Fif, ReturnsValidTraversal) {
  util::Rng rng(23);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t = test::small_random_tree(9, 12, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::peak_memory(t, t.postorder());
    for (const Weight m : {lb, (lb + peak) / 2, peak}) {
      (void)test::checked_fif_io(t, t.postorder(), m);
    }
  }
}

TEST(Fif, IoMonotoneInMemory) {
  util::Rng rng(31);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = test::small_random_wide_tree(10, 8, rng);
    const Schedule order = t.postorder();
    const Weight lb = t.min_feasible_memory();
    Weight previous = std::numeric_limits<Weight>::max();
    for (Weight m = lb; m <= lb + 20; ++m) {
      const Weight io = simulate_fif(t, order, m).io_volume;
      EXPECT_LE(io, previous) << "more memory must not increase FiF I/O";
      previous = io;
    }
  }
}

TEST(Fif, FifBeatsOrMatchesAnyValidIoFunction) {
  // Theorem 1: FiF is optimal for a fixed schedule. Cross-check against the
  // exhaustively best tau on small instances by trying all topological
  // orders: for each order, no valid traversal can use less I/O than FiF.
  util::Rng rng(47);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = test::small_random_tree(6, 6, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight m = lb + 2;
    core::for_each_topological_order(t, [&](const Schedule& s) {
      const core::FifResult fif = simulate_fif(t, s, m);
      ASSERT_TRUE(fif.feasible);
      // Any tau that writes less than FiF somewhere must be invalid:
      // validate the FiF tau and a family of reductions of it.
      test::expect_valid_traversal(t, s, fif.io, m);
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (fif.io[i] > 0) {
          core::IoFunction reduced = fif.io;
          reduced[i] -= 1;
          EXPECT_TRUE(core::validate_traversal(t, s, reduced, m).has_value())
              << "reducing FiF tau stayed valid: FiF was not minimal";
        }
      }
    });
  }
}

TEST(Fif, PeakResidentNeverExceedsMemory) {
  util::Rng rng(59);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = test::small_random_wide_tree(12, 10, rng);
    const Weight m = t.min_feasible_memory() + 3;
    const core::FifResult r = simulate_fif(t, t.postorder(), m);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.peak_resident, m);
  }
}

}  // namespace
}  // namespace ooctree
