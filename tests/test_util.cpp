// Tests for the util library: CSV, ASCII plots, args, thread pool, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "src/util/args.hpp"
#include "src/util/ascii_plot.hpp"
#include "src/util/csv.hpp"
#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"

namespace ooctree {
namespace {

TEST(Csv, WritesQuotedRows) {
  const std::string path = testing::TempDir() + "/ooctree_csv_test.csv";
  {
    util::CsvWriter csv(path, {"name", "value", "note"});
    csv.row({"plain", std::int64_t{42}, "with,comma"});
    csv.row({"q\"uote", 1.5, "line"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value,note");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,42,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"q\"\"uote\",1.5,line");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(util::CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}), std::runtime_error);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  util::Series s1{"alpha", {0.0, 1.0}, {0.0, 1.0}};
  util::Series s2{"beta", {0.0, 1.0}, {1.0, 0.0}};
  util::PlotOptions opts;
  opts.width = 40;
  opts.height = 10;
  opts.x_label = "x";
  opts.y_label = "y";
  const std::string plot = util::render_plot({s1, s2}, opts);
  EXPECT_NE(plot.find("alpha"), std::string::npos);
  EXPECT_NE(plot.find("beta"), std::string::npos);
  EXPECT_NE(plot.find('A'), std::string::npos);
  EXPECT_NE(plot.find('B'), std::string::npos);
  EXPECT_NE(plot.find('y'), std::string::npos);
}

TEST(Args, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--n", "30",  "--flag", "--name=x,y",
                        "pos1", "--ratio", "0.5", "pos2"};
  const auto args = util::Args::parse(9, argv);
  EXPECT_EQ(args.get_int("n", 0), 30);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("name", ""), "x,y");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Args, ThrowsOnBadNumbers) {
  const char* argv[] = {"prog", "--n", "abc"};
  const auto args = util::Args::parse(3, argv);
  EXPECT_THROW((void)args.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::runtime_error);
}

TEST(Args, RejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--n", "12abc", "--ratio", "0.5x", "--pi", "3.14.15"};
  const auto args = util::Args::parse(7, argv);
  EXPECT_THROW((void)args.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::runtime_error);
  EXPECT_THROW((void)args.get_double("ratio", 0.0), std::runtime_error);
  EXPECT_THROW((void)args.get_double("pi", 0.0), std::runtime_error);
}

TEST(Args, AcceptsFullNumericParses) {
  const char* argv[] = {"prog", "--n", "-42", "--ratio", "2.5e-1", "--whole", "3."};
  const auto args = util::Args::parse(7, argv);
  EXPECT_EQ(args.get_int("n", 0), -42);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("whole", 0.0), 3.0);
  EXPECT_THROW((void)args.get_int("ratio", 0), std::runtime_error);  // "2.5e-1" is not an int
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ReusableAcrossCalls) {
  util::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 250);
}

TEST(Rng, DeterministicAndInRange) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.uniform_int(5, 9);
    EXPECT_EQ(x, b.uniform_int(5, 9));
    EXPECT_GE(x, 5);
    EXPECT_LE(x, 9);
  }
}

TEST(Rng, ForkDiverges) {
  util::Rng a(7);
  util::Rng child = a.fork();
  bool differs = false;
  util::Rng fresh(7);
  util::Rng child2 = fresh.fork();
  for (int i = 0; i < 10; ++i) {
    if (child.uniform_int(0, 1000000) != child2.uniform_int(0, 1000000)) differs = false;
  }
  // Same seed -> same fork stream; mostly a determinism check.
  EXPECT_FALSE(differs);
}

TEST(Rng, SplitmixMatchesReferenceVectors) {
  // Reference outputs of the splitmix64 standard (Vigna's splitmix64.c)
  // from state 0: pinning them keeps derived seeds stable across releases
  // — cached results and recorded baselines depend on these streams.
  EXPECT_EQ(util::splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(util::splitmix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
  static_assert(util::splitmix64(0) == 0xe220a8397b1dcdafULL);  // constexpr-usable
}

TEST(Rng, DerivedSeedsAreStableAndWellSeparated) {
  const std::uint64_t base = util::derive_seed(20170208, 1);
  EXPECT_EQ(base, util::derive_seed(20170208, 1));  // pure function of inputs
  // Nearby request ids and nearby service seeds land far apart.
  EXPECT_NE(util::derive_seed(20170208, 2), base);
  EXPECT_NE(util::derive_seed(20170209, 1), base);
  // Streams must differ from the raw seed itself (no id-0 passthrough).
  EXPECT_NE(util::derive_seed(20170208, 0), 20170208u);
}

TEST(Stopwatch, MeasuresElapsed) {
  util::Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.millis(), 1000.0);
}

}  // namespace
}  // namespace ooctree
