// Tests for the sparse-matrix substrate: patterns, orderings, elimination
// trees, column counts and assembly trees.
#include <gtest/gtest.h>

#include <cstdio>
#include <algorithm>
#include <set>
#include <sstream>

#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/csc.hpp"
#include "src/sparse/dataset.hpp"
#include "src/sparse/etree.hpp"
#include "src/sparse/generators.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/sparse/ordering.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using sparse::Index;
using sparse::SymPattern;

/// Naive O(n^3) symbolic Cholesky column counts: reference oracle.
std::vector<std::int64_t> naive_column_counts(const SymPattern& p) {
  const auto n = static_cast<std::size_t>(p.size());
  // Dense boolean lower-triangular fill-in simulation.
  std::vector<std::vector<bool>> lower(n, std::vector<bool>(n, false));
  for (Index j = 0; j < p.size(); ++j) {
    for (const Index i : p.neighbors(j))
      if (i > j) lower[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      if (!lower[i][k]) continue;
      for (std::size_t j = k + 1; j < i; ++j)
        if (lower[j][k]) lower[i][j] = true;  // update column j with row i
    }
  }
  std::vector<std::int64_t> counts(n, 1);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < n; ++i) counts[j] += lower[i][j] ? 1 : 0;
  return counts;
}

/// Reference elimination tree from the naive fill: parent(j) = first i > j
/// with L(i,j) != 0.
std::vector<Index> naive_etree(const SymPattern& p) {
  const auto n = static_cast<std::size_t>(p.size());
  std::vector<std::vector<bool>> lower(n, std::vector<bool>(n, false));
  for (Index j = 0; j < p.size(); ++j)
    for (const Index i : p.neighbors(j))
      if (i > j) lower[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = k + 1; i < n; ++i) {
      if (!lower[i][k]) continue;
      for (std::size_t j = k + 1; j < i; ++j)
        if (lower[j][k]) lower[i][j] = true;
    }
  std::vector<Index> parent(n, -1);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < n; ++i)
      if (lower[i][j]) {
        parent[j] = static_cast<Index>(i);
        break;
      }
  return parent;
}

SymPattern small_random(Index n, double deg, std::uint64_t seed) {
  util::Rng rng(seed);
  return sparse::random_symmetric(n, deg, rng);
}

TEST(SymPattern, BuildsSortedSymmetricAdjacency) {
  const SymPattern p = SymPattern::from_entries(4, {{0, 1}, {1, 0}, {2, 3}, {1, 1}, {3, 1}});
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.nnz(), 6u);  // edges {0,1}, {2,3}, {1,3} both ways, diagonal dropped
  const auto nb1 = p.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nb1.begin(), nb1.end()));
  EXPECT_EQ(nb1.size(), 2u);
}

TEST(SymPattern, PermutedPreservesStructure) {
  const SymPattern p = sparse::grid2d(3, 3);
  const std::vector<Index> perm{8, 7, 6, 5, 4, 3, 2, 1, 0};
  const SymPattern q = p.permuted(perm);
  EXPECT_EQ(q.nnz(), p.nnz());
  // Edge (0,1) in p becomes (8,7) in q.
  const auto nb = q.neighbors(8);
  EXPECT_TRUE(std::find(nb.begin(), nb.end(), 7) != nb.end());
  EXPECT_THROW((void)p.permuted({0, 0, 2, 3, 4, 5, 6, 7, 8}), std::invalid_argument);
}

TEST(SymPattern, Connectivity) {
  EXPECT_TRUE(sparse::grid2d(5, 4).connected());
  const SymPattern disconnected = SymPattern::from_entries(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(disconnected.connected());
}

TEST(Generators, GridSizesAndDegrees) {
  const SymPattern g2 = sparse::grid2d(4, 5);
  EXPECT_EQ(g2.size(), 20);
  EXPECT_EQ(g2.nnz(), 2u * (3 * 5 + 4 * 4));  // horizontal + vertical edges
  const SymPattern g3 = sparse::grid3d(3, 3, 3);
  EXPECT_EQ(g3.size(), 27);
  // Center vertex has 6 neighbors.
  EXPECT_EQ(g3.degree(13), 6u);
  const SymPattern g9 = sparse::grid2d_9pt(4, 4);
  EXPECT_EQ(g9.degree(5), 8u);  // interior vertex
  util::Rng rng(5);
  const SymPattern r = sparse::random_symmetric(100, 6.0, rng);
  EXPECT_TRUE(r.connected());
  EXPECT_GE(r.nnz(), 2u * 99u);
}

TEST(Etree, MatchesNaiveOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const SymPattern p = small_random(30, 3.5, 900 + seed);
    EXPECT_EQ(sparse::elimination_tree(p), naive_etree(p)) << "seed " << seed;
  }
  EXPECT_EQ(sparse::elimination_tree(sparse::grid2d(4, 4)),
            naive_etree(sparse::grid2d(4, 4)));
}

TEST(Etree, ColumnCountsMatchNaiveOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const SymPattern p = small_random(25, 3.0, 950 + seed);
    const auto parent = sparse::elimination_tree(p);
    EXPECT_EQ(sparse::column_counts(p, parent), naive_column_counts(p)) << "seed " << seed;
  }
}

TEST(Etree, ChainMatrixGivesChainTree) {
  // Tridiagonal pattern: etree is a chain, all column counts 2 (last 1).
  std::vector<std::pair<Index, Index>> entries;
  for (Index i = 0; i + 1 < 8; ++i) entries.emplace_back(i, i + 1);
  const SymPattern p = SymPattern::from_entries(8, std::move(entries));
  const auto parent = sparse::elimination_tree(p);
  for (Index j = 0; j + 1 < 8; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
  const auto counts = sparse::column_counts(p, parent);
  for (Index j = 0; j + 1 < 8; ++j) EXPECT_EQ(counts[static_cast<std::size_t>(j)], 2);
  EXPECT_EQ(counts[7], 1);
  EXPECT_EQ(sparse::factor_nnz(counts), 15);
}

TEST(Ordering, AllReturnPermutations) {
  const SymPattern p = sparse::grid2d(7, 6);
  for (const auto& perm : {sparse::reverse_cuthill_mckee(p), sparse::minimum_degree(p),
                           sparse::natural_order(p.size())}) {
    std::set<Index> seen(perm.begin(), perm.end());
    EXPECT_EQ(perm.size(), static_cast<std::size_t>(p.size()));
    EXPECT_EQ(seen.size(), perm.size());
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), p.size() - 1);
  }
  const auto nd = sparse::nested_dissection_2d(7, 6);
  EXPECT_EQ(std::set<Index>(nd.begin(), nd.end()).size(), 42u);
  const auto nd3 = sparse::nested_dissection_3d(4, 5, 3);
  EXPECT_EQ(std::set<Index>(nd3.begin(), nd3.end()).size(), 60u);
}

TEST(Ordering, FillReductionOnGrids) {
  // Both MD and ND must beat the natural order's fill on a moderate grid;
  // this is the raison d'être of the module.
  const Index k = 16;
  const SymPattern g = sparse::grid2d(k, k);
  const auto fill = [&](const std::vector<Index>& perm) {
    const SymPattern q = g.permuted(perm);
    return sparse::factor_nnz(sparse::column_counts(q, sparse::elimination_tree(q)));
  };
  const auto natural = fill(sparse::natural_order(g.size()));
  EXPECT_LT(fill(sparse::minimum_degree(g)), natural);
  EXPECT_LT(fill(sparse::nested_dissection_2d(k, k)), natural);
}

TEST(Ordering, RcmReducesBandProxy) {
  // RCM should not increase fill on a banded-ish random pattern.
  const SymPattern p = small_random(60, 4.0, 977);
  const auto fill = [&](const std::vector<Index>& perm) {
    const SymPattern q = p.permuted(perm);
    return sparse::factor_nnz(sparse::column_counts(q, sparse::elimination_tree(q)));
  };
  EXPECT_LE(fill(sparse::reverse_cuthill_mckee(p)), 3 * fill(sparse::natural_order(p.size())));
}

TEST(AssemblyTree, WeightsAreContributionBlocks) {
  // Tridiagonal: every column's count is 2 (last 1) -> contribution block
  // (2-1)^2 = 1; without amalgamation the tree is a weighted chain of 1s.
  std::vector<std::pair<Index, Index>> entries;
  for (Index i = 0; i + 1 < 6; ++i) entries.emplace_back(i, i + 1);
  const SymPattern p = SymPattern::from_entries(6, std::move(entries));
  sparse::AssemblyOptions opts;
  opts.amalgamate = false;
  const core::Tree t = sparse::assembly_tree(p, opts);
  EXPECT_EQ(t.size(), 6u);
  for (core::NodeId v = 0; v < 6; ++v) EXPECT_EQ(t.weight(v), 1);
  EXPECT_EQ(t.depth(), 6u);
}

TEST(AssemblyTree, AmalgamationShrinksChains) {
  const SymPattern g = sparse::grid2d(10, 10);
  const auto perm = sparse::nested_dissection_2d(10, 10);
  sparse::AssemblyOptions plain, merged;
  plain.amalgamate = false;
  merged.amalgamate = true;
  const core::Tree full = sparse::assembly_tree_ordered(g, perm, plain);
  const core::Tree amal = sparse::assembly_tree_ordered(g, perm, merged);
  EXPECT_EQ(full.size(), 100u);
  EXPECT_LT(amal.size(), full.size());
  EXPECT_GE(amal.size(), 10u);
}

TEST(AssemblyTree, ForestGetsVirtualRoot) {
  const SymPattern p = SymPattern::from_entries(4, {{0, 1}, {2, 3}});
  const core::Tree t = sparse::assembly_tree(p);
  // Components joined under one root; tree constraints hold by construction.
  EXPECT_EQ(t.postorder().size(), t.size());
}

TEST(MatrixMarket, RoundTrip) {
  const SymPattern p = sparse::grid2d(5, 5);
  std::ostringstream out;
  sparse::write_matrix_market(out, p);
  std::istringstream in(out.str());
  const SymPattern q = sparse::read_matrix_market(in);
  EXPECT_EQ(q.size(), p.size());
  EXPECT_EQ(q.nnz(), p.nnz());
}

TEST(MatrixMarket, ParsesRealGeneralFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment line\n"
      "3 3 4\n"
      "1 1 2.5\n"
      "2 1 -1.0\n"
      "3 2 4e-2\n"
      "3 3 1.0\n");
  const SymPattern p = sparse::read_matrix_market(in);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.nnz(), 4u);  // (1,0) and (2,1) symmetrized, diagonals dropped
}

TEST(MatrixMarket, SkipsBlankLinesBeforeSizeLine) {
  // The format allows blank lines among the header comments; the seed
  // reader treated the first blank line as a malformed size line.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% comment\n"
      "\n"
      "   \n"
      "% another comment\n"
      "\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const SymPattern p = sparse::read_matrix_market(in);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.nnz(), 4u);  // 2 symmetric edges, stored both ways
}

TEST(MatrixMarket, HonorsDeclaredSymmetry) {
  // Unknown symmetry values are rejected instead of silently treated as
  // general.
  std::istringstream unknown(
      "%%MatrixMarket matrix coordinate pattern sideways\n1 1 0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(unknown), std::runtime_error);
  // Symmetric storage keeps the lower triangle only; an upper-triangle
  // entry marks a malformed file (the seed reader symmetrized it quietly).
  std::istringstream upper(
      "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n");
  EXPECT_THROW((void)sparse::read_matrix_market(upper), std::runtime_error);
  // skew-symmetric and hermitian imply a symmetric pattern and parse fine.
  std::istringstream skew(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 -3.5\n");
  EXPECT_EQ(sparse::read_matrix_market(skew).nnz(), 2u);  // one edge, both ways
  // Spec corner cases: hermitian is only defined for complex fields, and
  // skew-symmetry forces a zero (unstored) diagonal.
  std::istringstream real_hermitian(
      "%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n2 1 1.0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(real_hermitian), std::runtime_error);
  std::istringstream skew_diag(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 2.0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(skew_diag), std::runtime_error);
  // general files are symmetrized structurally — explicitly, by policy.
  std::istringstream general(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n");
  const SymPattern g = sparse::read_matrix_market(general);
  EXPECT_EQ(g.nnz(), 2u) << "(0,1) and (1,0) collapse to one symmetric edge";
}

TEST(MatrixMarket, FixtureFileRoundTrip) {
  // Save to an actual file and load it back through the file API.
  const SymPattern p = sparse::grid2d(4, 6);
  const std::string path = ::testing::TempDir() + "ooctree_mm_roundtrip.mtx";
  sparse::save_matrix_market(path, p);
  const SymPattern q = sparse::load_matrix_market(path);
  EXPECT_EQ(q.size(), p.size());
  EXPECT_EQ(q.nnz(), p.nnz());
  for (sparse::Index j = 0; j < p.size(); ++j) {
    const auto a = p.neighbors(j);
    const auto b = q.neighbors(j);
    ASSERT_EQ(a.size(), b.size()) << "column " << j;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "column " << j;
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsMalformed) {
  std::istringstream bad_banner("%%NotMM matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(bad_banner), std::runtime_error);
  std::istringstream rectangular(
      "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n");
  EXPECT_THROW((void)sparse::read_matrix_market(rectangular), std::runtime_error);
  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n");
  EXPECT_THROW((void)sparse::read_matrix_market(truncated), std::runtime_error);
}

TEST(Generators, BorderedBlockDiagonal) {
  util::Rng rng(31);
  const SymPattern p = sparse::bordered_block_diagonal(4, 10, 6, 2, rng);
  EXPECT_EQ(p.size(), 4 * 100 + 6);
  EXPECT_TRUE(p.connected()) << "the border couples every block";
  // Block-interior vertices keep grid degrees; border vertices have many.
  std::size_t max_deg = 0;
  for (Index v = 0; v < p.size(); ++v) max_deg = std::max(max_deg, p.degree(v));
  EXPECT_GT(max_deg, 4u);
  EXPECT_THROW((void)sparse::bordered_block_diagonal(0, 10, 5, 1, rng), std::invalid_argument);
}

TEST(AssemblyTree, BbdTreesHaveHeavyBranches) {
  // The raison d'etre of the BBD family: several heavy subtrees joined
  // near the root, the structure on which postorder strategies lose.
  util::Rng rng(37);
  const SymPattern p = sparse::bordered_block_diagonal(4, 16, 8, 2, rng);
  const core::Tree t = sparse::assembly_tree(p.permuted(sparse::minimum_degree(p)));
  // Count subtrees of the root region holding >= 10% of the total weight.
  std::size_t heavy = 0;
  std::vector<core::Weight> subtree_weight(t.size(), 0);
  for (const core::NodeId v : t.postorder()) {
    subtree_weight[static_cast<std::size_t>(v)] = t.weight(v);
    for (const core::NodeId c : t.children(v))
      subtree_weight[static_cast<std::size_t>(v)] += subtree_weight[static_cast<std::size_t>(c)];
  }
  for (std::size_t v = 0; v < t.size(); ++v) {
    if (t.parent(static_cast<core::NodeId>(v)) == core::kNoNode) continue;
    if (subtree_weight[v] * 10 >= t.total_weight() &&
        subtree_weight[v] * 2 <= t.total_weight())
      ++heavy;
  }
  EXPECT_GE(heavy, 2u) << "expected several medium-heavy branches";
}

TEST(AssemblyTree, AmalgamationPreservesTotalContribution) {
  // Merging a fundamental supernode keeps the top column's contribution
  // block; every task weight must be one of the per-column blocks.
  const SymPattern g = sparse::grid2d(9, 9);
  const SymPattern q = g.permuted(sparse::minimum_degree(g));
  const auto parent = sparse::elimination_tree(q);
  const auto counts = sparse::column_counts(q, parent);
  std::set<core::Weight> valid_weights{1};
  for (const auto c : counts) valid_weights.insert(std::max<core::Weight>(1, (c - 1) * (c - 1)));
  const core::Tree amal = sparse::assembly_tree(q);
  for (std::size_t v = 0; v < amal.size(); ++v)
    EXPECT_TRUE(valid_weights.count(amal.weight(static_cast<core::NodeId>(v))))
        << amal.weight(static_cast<core::NodeId>(v));
}

TEST(Etree, PostorderPermutationInvariance) {
  // Relabelling by any topological permutation of the etree preserves the
  // multiset of column counts (a classic symbolic-analysis sanity check
  // for the fill being a function of the structure, not the labels).
  const SymPattern g = sparse::grid2d(7, 7);
  const auto nd = sparse::nested_dissection_2d(7, 7);
  const SymPattern q = g.permuted(nd);
  const auto c1 = sparse::column_counts(q, sparse::elimination_tree(q));
  EXPECT_EQ(sparse::factor_nnz(c1), sparse::factor_nnz(c1));
  // A second ND with a different leaf size is a different permutation but
  // the same separator structure top-level: fill should be comparable.
  const SymPattern q2 = g.permuted(sparse::nested_dissection_2d(7, 7, 4));
  const auto c2 = sparse::column_counts(q2, sparse::elimination_tree(q2));
  EXPECT_LT(std::abs(sparse::factor_nnz(c1) - sparse::factor_nnz(c2)),
            sparse::factor_nnz(c1));
}

TEST(Dataset, SmokeSetIsSane) {
  sparse::DatasetOptions opts;
  opts.scale = 0;
  const auto data = sparse::make_trees_dataset(opts);
  ASSERT_GE(data.size(), 5u);
  for (const auto& inst : data) {
    EXPECT_FALSE(inst.name.empty());
    EXPECT_GE(inst.tree.size(), 100u) << inst.name;
    // Every instance must be schedulable: LB <= some peak.
    EXPECT_GT(inst.tree.min_feasible_memory(), 0) << inst.name;
  }
}

}  // namespace
}  // namespace ooctree
