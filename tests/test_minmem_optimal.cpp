// Tests for Liu's optimal peak-memory traversal (OPTMINMEM) — the
// hill-valley segment algorithm. The key oracle is exhaustive search on
// small trees: every shape x weight combination must match the brute-force
// optimum exactly.
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/treegen/paper_trees.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::opt_minmem;
using core::peak_memory;
using core::Tree;
using core::Weight;

TEST(OptMinMem, PeakMatchesScheduleSimulation) {
  util::Rng rng(101);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t = test::small_random_tree(10, 12, rng);
    const auto r = opt_minmem(t);
    EXPECT_TRUE(core::is_topological_order(t, r.schedule));
    EXPECT_EQ(r.peak, peak_memory(t, r.schedule));
  }
}

TEST(OptMinMem, MatchesBruteForceOnRandomTrees) {
  util::Rng rng(103);
  for (int rep = 0; rep < 80; ++rep) {
    const Tree t = test::small_random_tree(8, 9, rng);
    const auto opt = opt_minmem(t);
    const auto bf = core::brute_force_min_peak(t);
    EXPECT_EQ(opt.peak, bf.objective) << t.to_string();
  }
}

TEST(OptMinMem, MatchesBruteForceOnWideTrees) {
  util::Rng rng(107);
  for (int rep = 0; rep < 60; ++rep) {
    const Tree t = test::small_random_wide_tree(8, 7, rng);
    EXPECT_EQ(opt_minmem(t).peak, core::brute_force_min_peak(t).objective) << t.to_string();
  }
}

TEST(OptMinMem, ExhaustiveOverAllShapesOfSize6) {
  // Every binary-tree shape with 6 nodes, three deterministic weight
  // patterns each: the optimal algorithm must equal brute force everywhere.
  const auto count = treegen::catalan_number(6);
  util::Rng rng(109);
  for (treegen::u128 rank = 0; rank < count; ++rank) {
    const Tree shape = treegen::unrank_binary_tree(6, rank);
    for (int wpat = 0; wpat < 3; ++wpat) {
      const Tree t = (wpat == 0)
                         ? shape
                         : treegen::with_uniform_weights(shape, 1, wpat == 1 ? 4 : 20, rng);
      EXPECT_EQ(opt_minmem(t).peak, core::brute_force_min_peak(t).objective);
    }
  }
}

TEST(OptMinMem, NeverWorseThanBestPostorder) {
  util::Rng rng(113);
  for (int rep = 0; rep < 50; ++rep) {
    const Tree t = test::small_random_tree(40, 30, rng);
    EXPECT_LE(opt_minmem(t).peak, core::postorder_minmem(t).peak);
  }
}

TEST(OptMinMem, StrictlyBeatsPostorderSomewhere) {
  // The classic example where interrupting a subtree helps (paper Sec. 2:
  // postorders are arbitrarily worse). Use Figure 2(b): optimal peak is 8,
  // while any postorder (chain after chain) pays 9.
  const auto inst = treegen::fig2b();
  EXPECT_EQ(opt_minmem(inst.tree).peak, 8);
  EXPECT_EQ(core::postorder_minmem(inst.tree).peak, 9);
}

TEST(OptMinMem, HomogeneousPeakEqualsLabel) {
  // Lemmas 1+2: on homogeneous trees the optimal peak is l(root).
  util::Rng rng(127);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree shape = treegen::uniform_binary_tree_exact(12, rng);
    EXPECT_EQ(opt_minmem(shape).peak, core::homogeneous_min_peak(shape));
  }
}

TEST(OptMinMem, SegmentsAreNormalized) {
  util::Rng rng(131);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = test::small_random_tree(20, 15, rng);
    const auto r = opt_minmem(t);
    ASSERT_FALSE(r.segments.empty());
    for (std::size_t s = 0; s + 1 < r.segments.size(); ++s) {
      EXPECT_GT(r.segments[s].first, r.segments[s + 1].first) << "hills must strictly decrease";
      EXPECT_LT(r.segments[s].second, r.segments[s + 1].second)
          << "valleys must strictly increase";
    }
    EXPECT_EQ(r.segments.front().first, r.peak);
    EXPECT_EQ(r.segments.back().second, t.weight(t.root()));
  }
}

TEST(OptMinMem, DeepChainNoStackOverflow) {
  std::vector<core::NodeId> parent(120000, kNoNode);
  std::vector<Weight> weight(parent.size());
  for (std::size_t i = 1; i < parent.size(); ++i) parent[i] = static_cast<core::NodeId>(i - 1);
  for (std::size_t i = 0; i < weight.size(); ++i) weight[i] = 1 + static_cast<Weight>(i % 17);
  const Tree chain = Tree::from_parents(std::move(parent), std::move(weight));
  const auto r = opt_minmem(chain);
  EXPECT_EQ(r.peak, peak_memory(chain, r.schedule));
  // A chain admits exactly one topological order, so the peak is forced.
  EXPECT_EQ(r.peak, peak_memory(chain, chain.postorder()));
}

TEST(OptMinMem, AllPeaksMatchPerSubtreeRuns) {
  util::Rng rng(137);
  const Tree t = test::small_random_tree(25, 10, rng);
  const auto peaks = core::opt_minmem_all_peaks(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<core::NodeId>(i);
    std::vector<core::NodeId> old_ids;
    const Tree sub = t.subtree(id, &old_ids);
    EXPECT_EQ(peaks[i], opt_minmem(sub).peak) << "subtree rooted at " << id;
    if (t.parent(id) != kNoNode) {
      EXPECT_LE(peaks[i], peaks[static_cast<std::size_t>(t.parent(id))]) << "peak monotonicity";
    }
  }
}

TEST(OptMinMem, PeakOnlyVariantAgrees) {
  util::Rng rng(139);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_wide_tree(30, 12, rng);
    EXPECT_EQ(core::opt_minmem_peak(t, t.root()), opt_minmem(t).peak);
  }
}

TEST(OptMinMem, SingleNodeAndStar) {
  EXPECT_EQ(opt_minmem(make_tree({{kNoNode, 4}})).peak, 4);
  // Star: root(1) with leaves 5, 6, 7: all leaves resident -> 18.
  const Tree star = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}, {0, 7}});
  EXPECT_EQ(opt_minmem(star).peak, 18);
}

}  // namespace
}  // namespace ooctree
