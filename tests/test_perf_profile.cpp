// Tests for performance-profile computation (Section 6.2).
#include <gtest/gtest.h>

#include <set>

#include "src/core/perf_profile.hpp"

namespace ooctree {
namespace {

using core::AlgorithmPerformance;
using core::io_performance;
using core::performance_profiles;
using core::profile_at;

TEST(PerfProfile, IoPerformanceDefinition) {
  EXPECT_DOUBLE_EQ(io_performance(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(io_performance(10, 10), 2.0);
  EXPECT_DOUBLE_EQ(io_performance(4, 1), 1.25);
}

TEST(PerfProfile, SingleAlgorithmIsAlwaysBest) {
  const auto curves = performance_profiles({{"only", {1.0, 1.5, 2.0}}});
  ASSERT_EQ(curves.size(), 1u);
  EXPECT_DOUBLE_EQ(profile_at(curves[0], 0.0), 1.0);
}

TEST(PerfProfile, TwoAlgorithms) {
  // A best on 2 of 3 instances; B best on 1; B within 10% on one more.
  const AlgorithmPerformance a{"A", {1.0, 1.0, 2.0}};
  const AlgorithmPerformance b{"B", {1.05, 2.0, 1.0}};
  const auto curves = performance_profiles({a, b});
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_NEAR(profile_at(curves[0], 0.0), 2.0 / 3.0, 1e-12);  // A best twice
  EXPECT_NEAR(profile_at(curves[1], 0.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(profile_at(curves[1], 0.05), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(profile_at(curves[0], 1.0), 1.0, 1e-12);  // A within 100% everywhere
  EXPECT_NEAR(profile_at(curves[1], 1.0), 1.0, 1e-12);
}

TEST(PerfProfile, CurvesAreMonotone) {
  const auto curves = performance_profiles(
      {{"A", {1.0, 1.4, 1.1, 3.0}}, {"B", {1.2, 1.0, 1.1, 1.0}}});
  for (const auto& c : curves) {
    for (std::size_t i = 0; i + 1 < c.fraction.size(); ++i) {
      EXPECT_LE(c.fraction[i], c.fraction[i + 1]);
      EXPECT_LT(c.overhead[i], c.overhead[i + 1]);
    }
    EXPECT_DOUBLE_EQ(c.fraction.back(), 1.0);
    EXPECT_GE(c.overhead.front(), 0.0);
  }
}

TEST(PerfProfile, TiesCountForBoth) {
  const auto curves = performance_profiles({{"A", {1.0}}, {"B", {1.0}}});
  EXPECT_DOUBLE_EQ(profile_at(curves[0], 0.0), 1.0);
  EXPECT_DOUBLE_EQ(profile_at(curves[1], 0.0), 1.0);
}

TEST(PerfProfile, RaggedInputThrows) {
  EXPECT_THROW(performance_profiles({{"A", {1.0, 2.0}}, {"B", {1.0}}}), std::invalid_argument);
  EXPECT_THROW(performance_profiles({{"A", {}}}), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
