// util::ThreadPool submit/future contract: result delivery, exception
// propagation, the 0-thread fallback, drain-then-stop shutdown, and a
// multi-producer stress test (exercised under the asan-ubsan preset like
// every suite). parallel_for basics live in test_util.cpp; this suite
// covers the asynchronous side added for the planning service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace ooctree {
namespace {

TEST(ThreadPoolSubmit, FuturesDeliverTheirOwnResults) {
  util::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  // Each future resolves to its own task's value, independent of the order
  // the workers picked the tasks up in.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolSubmit, VoidTasksComplete) {
  util::ThreadPool pool(2);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([&hits] { hits.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPoolSubmit, ExceptionsPropagateThroughTheFuture) {
  util::ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolSubmit, ParallelForFirstExceptionWinsWhileFuturesKeepWorking) {
  // The two idioms share one queue: a throwing parallel_for must not
  // disturb submitted futures, and the parallel_for caller still gets the
  // "first one wins" contract.
  util::ThreadPool pool(4);
  auto future = pool.submit([] { return 41; });
  EXPECT_THROW(
      pool.parallel_for(64, [](std::size_t i) { if (i % 2 == 0) throw std::logic_error("even"); }),
      std::logic_error);
  EXPECT_EQ(future.get(), 41);
}

TEST(ThreadPoolSubmit, ZeroThreadFallbackUsesHardwareConcurrency) {
  util::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);  // never a zero-worker pool
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolSubmit, ShutdownDrainsQueuedFutures) {
  std::atomic<int> completed{0};
  std::vector<std::future<int>> futures;
  {
    // One slow worker and a deep queue: most tasks are still queued when
    // the destructor runs. Drain-then-stop means every one still executes.
    util::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([i, &completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
        return i;
      }));
  }
  EXPECT_EQ(completed.load(), 50);
  for (int i = 0; i < 50; ++i) {
    auto& f = futures[static_cast<std::size_t>(i)];
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get(), i);
  }
}

TEST(ThreadPoolSubmit, MultiProducerStress) {
  util::ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<int>> futures;
      futures.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        futures.push_back(pool.submit([value] { return value; }));
      }
      for (auto& f : futures) sum.fetch_add(f.get());
    });
  }
  for (auto& t : producers) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace ooctree
