// util::ThreadPool submit/future contract: result delivery, exception
// propagation, the 0-thread fallback, drain-then-stop shutdown, and a
// multi-producer stress test (exercised under the asan-ubsan preset like
// every suite). parallel_for basics live in test_util.cpp; this suite
// covers the asynchronous side added for the planning service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace ooctree {
namespace {

TEST(ThreadPoolSubmit, FuturesDeliverTheirOwnResults) {
  util::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  // Each future resolves to its own task's value, independent of the order
  // the workers picked the tasks up in.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolSubmit, VoidTasksComplete) {
  util::ThreadPool pool(2);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([&hits] { hits.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPoolSubmit, ExceptionsPropagateThroughTheFuture) {
  util::ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolSubmit, ParallelForFirstExceptionWinsWhileFuturesKeepWorking) {
  // The two idioms share one queue: a throwing parallel_for must not
  // disturb submitted futures, and the parallel_for caller still gets the
  // "first one wins" contract.
  util::ThreadPool pool(4);
  auto future = pool.submit([] { return 41; });
  EXPECT_THROW(
      pool.parallel_for(64, [](std::size_t i) { if (i % 2 == 0) throw std::logic_error("even"); }),
      std::logic_error);
  EXPECT_EQ(future.get(), 41);
}

TEST(ThreadPoolSubmit, ZeroThreadFallbackUsesHardwareConcurrency) {
  util::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);  // never a zero-worker pool
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolSubmit, ShutdownDrainsQueuedFutures) {
  std::atomic<int> completed{0};
  std::vector<std::future<int>> futures;
  {
    // One slow worker and a deep queue: most tasks are still queued when
    // the destructor runs. Drain-then-stop means every one still executes.
    util::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([i, &completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
        return i;
      }));
  }
  EXPECT_EQ(completed.load(), 50);
  for (int i = 0; i < 50; ++i) {
    auto& f = futures[static_cast<std::size_t>(i)];
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get(), i);
  }
}

TEST(ThreadPoolBounded, TrySubmitShedsAtCapacityAndRecovers) {
  // One worker blocked on a gate, capacity 2: the first two extra submits
  // fill the queue, the next try_submit must shed (nullopt) instead of
  // growing the queue, and a plain submit must throw. Once the gate opens
  // everything queued still runs and capacity is available again.
  util::ThreadPool pool(1, /*queue_capacity=*/2);
  EXPECT_EQ(pool.queue_capacity(), 2u);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> started;
  auto blocker = pool.submit([open, &started] { started.set_value(); open.wait(); });
  started.get_future().wait();  // the worker is now busy, not queued

  auto q1 = pool.try_submit([] { return 1; });
  auto q2 = pool.try_submit([] { return 2; });
  ASSERT_TRUE(q1.has_value());
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(pool.queue_depth(), 2u);

  auto rejected = pool.try_submit([] { return 3; });
  EXPECT_FALSE(rejected.has_value());          // bounded: shed, not queued
  EXPECT_THROW((void)pool.submit([] { return 4; }), std::runtime_error);
  EXPECT_EQ(pool.queue_depth(), 2u);           // the bound held throughout

  gate.set_value();
  blocker.get();
  EXPECT_EQ(q1->get(), 1);
  EXPECT_EQ(q2->get(), 2);
  // Queue drained: capacity is available again.
  auto after = pool.try_submit([] { return 5; });
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->get(), 5);
}

TEST(ThreadPoolBounded, UnboundedDefaultNeverSheds) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.queue_capacity(), 0u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    auto f = pool.try_submit([i] { return i; });
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (int i = 0; i < 200; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPoolBounded, TrySubmitAfterShutdownReturnsNullopt) {
  util::ThreadPool pool(1, 4);
  pool.shutdown();
  EXPECT_FALSE(pool.try_submit([] { return 1; }).has_value());
}

TEST(ThreadPoolBounded, ParallelForIsExemptFromTheBound) {
  // parallel_for's drive tasks are structured helpers, not queued work
  // items — a tiny bound must not deadlock or shed iterations.
  util::ThreadPool pool(4, /*queue_capacity=*/1);
  std::atomic<int> hits{0};
  pool.parallel_for(64, [&hits](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolSubmit, MultiProducerStress) {
  util::ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<int>> futures;
      futures.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        futures.push_back(pool.submit([value] { return value; }));
      }
      for (auto& f : futures) sum.fetch_add(f.get());
    });
  }
  for (auto& t : producers) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace ooctree
