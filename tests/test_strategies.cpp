// Tests for the uniform strategy runner and the paper's qualitative
// orderings between strategies.
#include <gtest/gtest.h>

#include "src/core/lower_bounds.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/strategies.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::all_strategies;
using core::run_strategy;
using core::Strategy;
using core::Tree;
using core::Weight;

TEST(Strategies, NamesAreStable) {
  EXPECT_EQ(core::strategy_name(Strategy::kPostOrderMinIo), "PostOrderMinIO");
  EXPECT_EQ(core::strategy_name(Strategy::kOptMinMem), "OptMinMem");
  EXPECT_EQ(core::strategy_name(Strategy::kRecExpand), "RecExpand");
  EXPECT_EQ(core::strategy_name(Strategy::kFullRecExpand), "FullRecExpand");
  EXPECT_EQ(all_strategies().size(), 4u);
  EXPECT_EQ(core::cheap_strategies().size(), 3u);
}

TEST(Strategies, AllProduceValidTraversals) {
  util::Rng rng(701);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = test::small_random_tree(30, 40, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    const Weight m = std::max(lb, (lb + peak) / 2);
    for (const Strategy s : all_strategies()) {
      const auto out = run_strategy(s, t, m);
      ASSERT_TRUE(out.evaluation.feasible) << core::strategy_name(s);
      test::expect_valid_traversal(t, out.schedule, out.evaluation.io, m);
      EXPECT_GE(out.io_volume(), core::io_lower_bound_peak_gap(t, m));
    }
  }
}

TEST(Strategies, ZeroIoAtOptimalPeak) {
  util::Rng rng(709);
  const Tree t = test::small_random_tree(40, 20, rng);
  const Weight peak = core::opt_minmem(t).peak;
  // At M = peak, OptMinMem and the expansion heuristics need no I/O; the
  // postorder strategy may still pay (postorder peak >= optimal peak).
  EXPECT_EQ(run_strategy(Strategy::kOptMinMem, t, peak).io_volume(), 0);
  EXPECT_EQ(run_strategy(Strategy::kRecExpand, t, peak).io_volume(), 0);
  EXPECT_EQ(run_strategy(Strategy::kFullRecExpand, t, peak).io_volume(), 0);
}

TEST(Strategies, RecExpandNeverWorseThanOptMinMemOnAverage) {
  // Section 6: RecExpand improves on OptMinMem in the vast majority of
  // cases and is never dramatically worse. Aggregate check over a batch of
  // mid-memory instances.
  util::Rng rng(719);
  std::int64_t opt_total = 0, rec_total = 0;
  int rec_wins = 0, opt_wins = 0;
  for (int rep = 0; rep < 30; ++rep) {
    const Tree t = test::small_random_tree(60, 50, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = (lb + peak) / 2;
    const Weight io_opt = run_strategy(Strategy::kOptMinMem, t, m).io_volume();
    const Weight io_rec = run_strategy(Strategy::kRecExpand, t, m).io_volume();
    opt_total += io_opt;
    rec_total += io_rec;
    rec_wins += (io_rec < io_opt) ? 1 : 0;
    opt_wins += (io_opt < io_rec) ? 1 : 0;
  }
  EXPECT_LE(rec_total, opt_total) << "RecExpand must not lose in aggregate";
  EXPECT_GE(rec_wins, opt_wins);
}

TEST(Strategies, HomogeneousPostorderIsUnbeatable) {
  // Theorem 4: on homogeneous trees no strategy beats PostOrderMinIO.
  util::Rng rng(727);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(20, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = std::max(lb, (lb + peak) / 2);
    const Weight post = run_strategy(Strategy::kPostOrderMinIo, t, m).io_volume();
    for (const Strategy s : all_strategies()) {
      EXPECT_GE(run_strategy(s, t, m).io_volume(), post) << core::strategy_name(s);
    }
  }
}

}  // namespace
}  // namespace ooctree
