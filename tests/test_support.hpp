// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "src/core/fif_simulator.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"
#include "src/treegen/catalan.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/treegen/shapes.hpp"
#include "src/treegen/weights.hpp"
#include "src/util/rng.hpp"

namespace ooctree::test {

/// A small random tree: uniform binary shape (exact Catalan sampling) with
/// weights uniform in [1, w_hi].
inline core::Tree small_random_tree(std::size_t n, core::Weight w_hi, util::Rng& rng) {
  // Exact Catalan sampling tops out at n = 65 (128-bit counts); we switch
  // to the O(n) Rémy-based sampler — just as uniform — at n = 60 already,
  // comfortably below that limit.
  const core::Tree shape = n <= 60 ? treegen::uniform_binary_tree_exact(n, rng)
                                   : treegen::uniform_binary_tree(n, rng);
  return treegen::with_uniform_weights(shape, 1, w_hi, rng);
}

/// A random tree with unbounded degree (recursive attachment), weights in
/// [1, w_hi] — exercises high fan-in nodes the binary sampler cannot reach.
inline core::Tree small_random_wide_tree(std::size_t n, core::Weight w_hi, util::Rng& rng) {
  const core::Tree shape = treegen::random_recursive_tree(n, rng);
  return treegen::with_uniform_weights(shape, 1, w_hi, rng);
}

/// Asserts that (schedule, io) is a valid traversal under `memory`.
inline void expect_valid_traversal(const core::Tree& tree, const core::Schedule& schedule,
                                   const core::IoFunction& io, core::Weight memory) {
  const auto problem = core::validate_traversal(tree, schedule, io, memory);
  EXPECT_FALSE(problem.has_value()) << *problem;
}

/// FiF-evaluates a schedule and asserts the result is a valid traversal.
inline core::Weight checked_fif_io(const core::Tree& tree, const core::Schedule& schedule,
                                   core::Weight memory) {
  const core::FifResult r = core::simulate_fif(tree, schedule, memory);
  EXPECT_TRUE(r.feasible);
  expect_valid_traversal(tree, schedule, r.io, memory);
  return r.io_volume;
}

/// Pinned fixture for the transient-reservation accounting fix (PR 3),
/// shared by the sequential pager (tests/test_pager.cpp) and the paged
/// parallel engine (tests/test_paged_parallel.cpp): working space must be
/// *reserved* in the frame accounting, not just checked as head-room. With
/// root wbar = 10 the leaf output (2) plus the root's transient extra (8)
/// peaks at exactly 10 allocated frames with zero I/O — and one unit less
/// memory is infeasible.
struct TransientReservationFixture {
  core::Tree tree;
  core::Schedule schedule;
  core::Weight feasible_memory;    ///< peak == this, no I/O
  core::Weight infeasible_memory;  ///< one unit below: must be rejected
  std::int64_t expected_peak_frames;
};

inline TransientReservationFixture transient_reservation_fixture() {
  return {core::make_tree({{core::kNoNode, 10}, {0, 2}}), {1, 0}, 10, 9, 10};
}

/// Pinned fixture for write-at-most-once accounting (PR 3), shared by both
/// engines: datum B (4 pages at page_size 1) is partially evicted twice on
/// the way down a chain — 2 pages, then 1 more — so the correct write
/// count is 3 distinct dirty pages across 2 eviction events, not "whole
/// datum per event" (8) nor the event count (2).
/// ids: 0=root(w1); 1=B(w4); 2=s4(w1); 3=s3(w4); 4=s2(w1); 5=s1(w3);
/// chain s1 -> s2 -> s3 -> s4 -> root, B -> root. LB = wbar(root) = 5.
struct ThrashFixture {
  core::Tree tree;
  core::Schedule schedule;
  core::Weight memory;
  std::int64_t expected_pages_written;
  std::int64_t expected_pages_read;
  std::int64_t expected_eviction_events;
  std::int64_t expected_peak_frames;
};

inline ThrashFixture thrash_fixture() {
  return {core::make_tree({{core::kNoNode, 1}, {0, 4}, {0, 1}, {2, 4}, {3, 1}, {4, 3}}),
          {1, 5, 4, 3, 2, 0},
          5,
          3,
          3,
          2,
          5};
}

}  // namespace ooctree::test
