// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "src/core/fif_simulator.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"
#include "src/treegen/catalan.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/treegen/shapes.hpp"
#include "src/treegen/weights.hpp"
#include "src/util/rng.hpp"

namespace ooctree::test {

/// A small random tree: uniform binary shape (exact Catalan sampling) with
/// weights uniform in [1, w_hi].
inline core::Tree small_random_tree(std::size_t n, core::Weight w_hi, util::Rng& rng) {
  // Exact Catalan sampling tops out at n = 65 (128-bit counts); we switch
  // to the O(n) Rémy-based sampler — just as uniform — at n = 60 already,
  // comfortably below that limit.
  const core::Tree shape = n <= 60 ? treegen::uniform_binary_tree_exact(n, rng)
                                   : treegen::uniform_binary_tree(n, rng);
  return treegen::with_uniform_weights(shape, 1, w_hi, rng);
}

/// A random tree with unbounded degree (recursive attachment), weights in
/// [1, w_hi] — exercises high fan-in nodes the binary sampler cannot reach.
inline core::Tree small_random_wide_tree(std::size_t n, core::Weight w_hi, util::Rng& rng) {
  const core::Tree shape = treegen::random_recursive_tree(n, rng);
  return treegen::with_uniform_weights(shape, 1, w_hi, rng);
}

/// Asserts that (schedule, io) is a valid traversal under `memory`.
inline void expect_valid_traversal(const core::Tree& tree, const core::Schedule& schedule,
                                   const core::IoFunction& io, core::Weight memory) {
  const auto problem = core::validate_traversal(tree, schedule, io, memory);
  EXPECT_FALSE(problem.has_value()) << *problem;
}

/// FiF-evaluates a schedule and asserts the result is a valid traversal.
inline core::Weight checked_fif_io(const core::Tree& tree, const core::Schedule& schedule,
                                   core::Weight memory) {
  const core::FifResult r = core::simulate_fif(tree, schedule, memory);
  EXPECT_TRUE(r.feasible);
  expect_valid_traversal(tree, schedule, r.io, memory);
  return r.io_volume;
}

}  // namespace ooctree::test
