// Tests for the page-granular out-of-core simulator and its policies.
#include <gtest/gtest.h>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/iosim/pager.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::Tree;
using core::Weight;
using iosim::PagerConfig;
using iosim::PagerStats;
using iosim::Policy;
using iosim::run_pager;

PagerConfig config(Weight memory, Policy p, Weight page = 1) {
  PagerConfig c;
  c.memory = memory;
  c.page_size = page;
  c.policy = p;
  return c;
}

TEST(Pager, BeladyUnitPagesMatchesAnalyticFif) {
  // The cornerstone cross-validation: with page_size = 1 the pager under
  // Belady must reproduce core::simulate_fif write-for-write.
  util::Rng rng(901);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(14, 12, rng)
                                  : test::small_random_wide_tree(14, 12, rng);
    const auto schedule = core::opt_minmem(t).schedule;
    const Weight lb = t.min_feasible_memory();
    for (const Weight m : {lb, lb + 3, lb + 10}) {
      const auto fif = core::simulate_fif(t, schedule, m);
      const PagerStats pager = run_pager(t, schedule, config(m, Policy::kBelady));
      ASSERT_EQ(pager.feasible, fif.feasible);
      if (fif.feasible) {
        EXPECT_EQ(pager.pages_written, fif.io_volume) << t.to_string() << " M=" << m;
        EXPECT_EQ(pager.pages_read, fif.io_volume) << "reads must mirror writes";
      }
    }
  }
}

TEST(Pager, NoIoWithAmpleMemory) {
  util::Rng rng(907);
  const Tree t = test::small_random_tree(20, 10, rng);
  const auto schedule = t.postorder();
  for (const Policy p : {Policy::kBelady, Policy::kLru, Policy::kFifo, Policy::kRandom,
                         Policy::kLargestFirst}) {
    const PagerStats s = run_pager(t, schedule, config(100000, p));
    EXPECT_TRUE(s.feasible);
    EXPECT_EQ(s.pages_written, 0) << iosim::policy_name(p);
  }
}

TEST(Pager, BeladyIsNeverBeatenByOtherPolicies) {
  // Theorem 1 in practice: for a fixed schedule, Belady's write count is a
  // lower bound over all policies (page_size 1 so amounts are exact).
  util::Rng rng(911);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_tree(16, 10, rng);
    const auto schedule = core::opt_minmem(t).schedule;
    const Weight m = t.min_feasible_memory() + 4;
    const auto belady = run_pager(t, schedule, config(m, Policy::kBelady));
    ASSERT_TRUE(belady.feasible);
    for (const Policy p : {Policy::kLru, Policy::kFifo, Policy::kRandom, Policy::kLargestFirst}) {
      const auto other = run_pager(t, schedule, config(m, p));
      ASSERT_TRUE(other.feasible) << iosim::policy_name(p);
      EXPECT_GE(other.pages_written, belady.pages_written) << iosim::policy_name(p);
    }
  }
}

TEST(Pager, PageGranularityRoundsUp) {
  // With pages of 4 units, a 6-unit datum occupies 2 pages; evicting it
  // writes page multiples.
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 6}, {0, 2}, {2, 8}});
  // Schedule 1, 3, 2, 0. Units: at node 3, active {1:6} + wbar(3)=8.
  // In pages of 4: frames = M/4; datum 1 = 2 pages, leaf 8 = 2 pages.
  const PagerConfig c = config(14, Policy::kBelady, 4);  // 3 frames
  const PagerStats s = run_pager(t, {1, 3, 2, 0}, c);
  ASSERT_TRUE(s.feasible);
  EXPECT_GT(s.pages_written, 0);
  EXPECT_EQ(s.pages_written % 1, 0);
  EXPECT_EQ(s.write_volume(c), s.pages_written * 4);
}

TEST(Pager, InfeasibleWhenWorkingSetExceedsFrames) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}, {0, 6}});
  const PagerStats s = run_pager(t, {1, 2, 0}, config(10, Policy::kBelady));
  EXPECT_FALSE(s.feasible);
}

TEST(Pager, RejectsBadSchedule) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}});
  EXPECT_THROW((void)run_pager(t, {0, 1}, config(10, Policy::kBelady)), std::invalid_argument);
  PagerConfig c = config(10, Policy::kBelady);
  c.page_size = 0;
  EXPECT_THROW((void)run_pager(t, {1, 0}, c), std::invalid_argument);
}

TEST(Pager, RandomPolicyIsDeterministicPerSeed) {
  util::Rng rng(919);
  const Tree t = test::small_random_tree(16, 10, rng);
  const auto schedule = t.postorder();
  PagerConfig c = config(t.min_feasible_memory() + 2, Policy::kRandom);
  c.seed = 77;
  const auto a = run_pager(t, schedule, c);
  const auto b = run_pager(t, schedule, c);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.eviction_events, b.eviction_events);
}

TEST(Pager, TransientReservationPinsPeak) {
  // The transient working space of a step is *reserved* in frames_used
  // (seed bug: step 2 only checked the head-room and folded it into
  // peak_frames_used without allocating it). The fixture is shared with
  // the paged parallel engine (tests/test_paged_parallel.cpp), so both
  // engines stay pinned to the same accounting.
  const auto fx = test::transient_reservation_fixture();
  const PagerStats s = run_pager(fx.tree, fx.schedule, config(fx.feasible_memory, Policy::kBelady));
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.peak_frames_used, fx.expected_peak_frames);
  EXPECT_EQ(s.pages_written, 0);
  EXPECT_EQ(s.pages_read, 0);
  EXPECT_FALSE(
      run_pager(fx.tree, fx.schedule, config(fx.infeasible_memory, Policy::kBelady)).feasible);
}

TEST(Pager, ThrashedDatumWritesEachPageOnce) {
  // Satellite bug: every eviction charged pages_written, conflating write
  // volume with eviction events (see test::thrash_fixture for the exact
  // construction, shared with the paged parallel engine).
  const auto fx = test::thrash_fixture();
  ASSERT_EQ(fx.tree.min_feasible_memory(), fx.memory);
  const PagerStats s = run_pager(fx.tree, fx.schedule, config(fx.memory, Policy::kBelady));
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.eviction_events, fx.expected_eviction_events);
  EXPECT_EQ(s.pages_written, fx.expected_pages_written)
      << "each of B's evicted pages is written exactly once";
  EXPECT_EQ(s.pages_read, fx.expected_pages_read) << "reads mirror writes";
  EXPECT_EQ(s.pages_dropped_clean, 0);
  EXPECT_EQ(s.peak_frames_used, fx.expected_peak_frames);
  // The analytic FiF counter agrees with the per-page accounting.
  const auto fif = core::simulate_fif(fx.tree, fx.schedule, fx.memory);
  ASSERT_TRUE(fif.feasible);
  EXPECT_EQ(s.pages_written, fif.io_volume);
}

TEST(Pager, PeakFramesBounded) {
  util::Rng rng(929);
  const Tree t = test::small_random_tree(16, 10, rng);
  const Weight m = t.min_feasible_memory() + 5;
  const auto s = run_pager(t, t.postorder(), config(m, Policy::kLru));
  ASSERT_TRUE(s.feasible);
  EXPECT_LE(s.peak_frames_used, m);  // page_size 1: frames == units
}

}  // namespace
}  // namespace ooctree
