// Differential suite for the paged parallel engine (simulate_parallel_paged).
//
// The paged engine is the shared transactional-start core of the parallel
// subsystem; this suite pins its three anchors:
//   * page_size = 1 + no disk model  ==  simulate_parallel bit-identically
//     (the unit engine is that specialization — the test guards the
//     contract against future re-specialization);
//   * workers = 1 + sequential order + no backfill  ==  iosim::run_pager's
//     page-I/O accounting on the same schedule, for every page size;
//   * the same configuration at page_size = 1  ==  the sequential FiF
//     simulator's I/O volume and peak.
// It also reuses the pinned PR 3 fixtures (transient reservation,
// write-at-most-once thrashing) from test_support.hpp so the pager and the
// paged parallel engine stay pinned to one accounting, and pins the
// read-cost model: spilled pages delay dependent task starts by exactly
// DiskModel::transfer_time.
#include <gtest/gtest.h>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/iosim/pager.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::EvictionPolicy;
using core::MemoryModel;
using core::Schedule;
using core::Tree;
using core::Weight;
using iosim::PagerConfig;
using iosim::PagerStats;
using parallel::PagedParallelConfig;
using parallel::PagedParallelResult;
using parallel::ParallelConfig;
using parallel::ParallelResult;
using parallel::Priority;
using parallel::simulate_parallel;
using parallel::simulate_parallel_paged;

void expect_base_identical(const ParallelResult& a, const ParallelResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.io_volume, b.io_volume) << label;
  EXPECT_EQ(a.io, b.io) << label;
  EXPECT_EQ(a.peak_resident, b.peak_resident) << label;
  EXPECT_EQ(a.start_order, b.start_order) << label;
  EXPECT_EQ(a.start_time, b.start_time) << label;
  EXPECT_EQ(a.finish_time, b.finish_time) << label;
  EXPECT_EQ(a.busy_time, b.busy_time) << label;
  EXPECT_EQ(a.failed_starts, b.failed_starts) << label;
}

PagedParallelConfig paged_config(const ParallelConfig& base, Weight page_size) {
  PagedParallelConfig c;
  c.base = base;
  c.page_size = page_size;
  return c;
}

ParallelConfig sequential_config(Weight memory) {
  ParallelConfig c;
  c.workers = 1;
  c.memory = memory;
  c.priority = Priority::kSequentialOrder;
  c.backfill = false;
  return c;
}

// Anchor 1: at page_size = 1 with free reads the paged engine must equal
// the unit engine bit-for-bit across workers x priorities x policies
// (including kRandom — the eviction draw sequences must coincide).
TEST(PagedParallel, UnitPageMatchesUnitEngineAcrossSweep) {
  util::Rng rng(25001);
  const std::vector<Priority> priorities{Priority::kSequentialOrder, Priority::kCriticalPath,
                                         Priority::kHeaviestSubtree};
  const std::vector<EvictionPolicy> policies{EvictionPolicy::kBelady, EvictionPolicy::kLru,
                                             EvictionPolicy::kRandom};
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 14, rng)
                                  : test::small_random_wide_tree(40, 14, rng);
    const Weight lb = t.min_feasible_memory();
    for (const Weight m : {lb, lb + 7}) {
      for (const int workers : {1, 2, 4}) {
        for (const Priority priority : priorities) {
          for (const EvictionPolicy policy : policies) {
            ParallelConfig c;
            c.workers = workers;
            c.memory = m;
            c.priority = priority;
            c.evict = policy;
            c.seed = 31u + static_cast<std::uint64_t>(rep);
            const PagedParallelResult paged = simulate_parallel_paged(t, paged_config(c, 1));
            const ParallelResult unit = simulate_parallel(t, c);
            expect_base_identical(paged.base, unit,
                                  "rep=" + std::to_string(rep) + " w=" + std::to_string(workers) +
                                      " M=" + std::to_string(m) +
                                      " policy=" + core::eviction_policy_name(policy));
            // Page accounting degenerates exactly: every evicted page is
            // dirty in this control flow, and pages are units.
            EXPECT_EQ(paged.pages_written, unit.io_volume);
            EXPECT_EQ(paged.pages_dropped_clean, 0);
            EXPECT_EQ(paged.peak_frames_used, unit.peak_resident);
            EXPECT_EQ(paged.frames, m);
          }
        }
      }
    }
  }
}

// Anchor 2: one worker following the reference order with no backfill is
// the sequential paging model — page I/O must match iosim::run_pager on
// the same schedule for every page size and deterministic policy.
TEST(PagedParallel, SingleWorkerSequentialMatchesPager) {
  util::Rng rng(25013);
  const std::vector<EvictionPolicy> policies{EvictionPolicy::kBelady, EvictionPolicy::kLru,
                                             EvictionPolicy::kFifo,
                                             EvictionPolicy::kLargestFirst};
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(28, 12, rng)
                                  : test::small_random_wide_tree(28, 12, rng);
    const Schedule schedule = core::opt_minmem(t).schedule;
    for (const Weight page : {Weight{1}, Weight{3}, Weight{4}, Weight{7}}) {
      const Weight min_frames = iosim::min_feasible_frames(t, page);
      for (const Weight slack : {Weight{0}, Weight{2}, Weight{6}}) {
        const Weight memory = (min_frames + slack) * page;
        for (const EvictionPolicy policy : policies) {
          PagerConfig pc;
          pc.page_size = page;
          pc.memory = memory;
          pc.policy = policy;
          const PagerStats pager = iosim::run_pager(t, schedule, pc);

          ParallelConfig base = sequential_config(memory);
          base.evict = policy;
          const PagedParallelResult paged =
              simulate_parallel_paged(t, paged_config(base, page), schedule);

          const std::string label = "rep=" + std::to_string(rep) +
                                    " page=" + std::to_string(page) +
                                    " slack=" + std::to_string(slack) +
                                    " policy=" + core::eviction_policy_name(policy);
          ASSERT_EQ(paged.base.feasible, pager.feasible) << label;
          if (!pager.feasible) continue;
          EXPECT_EQ(paged.base.start_order, schedule) << label;
          EXPECT_EQ(paged.pages_written, pager.pages_written) << label;
          EXPECT_EQ(paged.pages_read, pager.pages_read) << label;
          EXPECT_EQ(paged.pages_dropped_clean, pager.pages_dropped_clean) << label;
          EXPECT_EQ(paged.peak_frames_used, pager.peak_frames_used) << label;
          EXPECT_EQ(paged.base.io_volume, pager.write_volume(pc)) << label;
        }
      }
    }
  }
}

// Anchor 3: the same sequential configuration at page_size = 1 reproduces
// the analytic FiF counter's I/O volume and peak, under both memory models.
TEST(PagedParallel, SingleWorkerSequentialUnitPageCollapsesToFif) {
  util::Rng rng(25031);
  for (const MemoryModel model : {MemoryModel::kMaxInOut, MemoryModel::kSumInOut}) {
    for (int rep = 0; rep < 10; ++rep) {
      const Tree t = test::small_random_tree(30, 12, rng).with_memory_model(model);
      const Schedule ref = core::opt_minmem(t).schedule;
      const Weight lb = t.min_feasible_memory();
      for (const Weight m : {lb, lb + 4, lb + 12}) {
        const auto fif = core::simulate_fif(t, ref, m);
        ASSERT_TRUE(fif.feasible);
        const PagedParallelResult r =
            simulate_parallel_paged(t, paged_config(sequential_config(m), 1), ref);
        ASSERT_TRUE(r.base.feasible);
        EXPECT_EQ(r.base.io_volume, fif.io_volume)
            << "model=" << static_cast<int>(model) << " rep=" << rep << " M=" << m;
        EXPECT_EQ(r.base.peak_resident, fif.peak_resident)
            << "model=" << static_cast<int>(model) << " rep=" << rep << " M=" << m;
      }
    }
  }
}

// PR 3's transient-reservation pin, replayed against the paged engine
// through the shared fixture: working space is allocated, not head-room.
TEST(PagedParallel, TransientReservationSharedPin) {
  const auto fx = test::transient_reservation_fixture();
  const PagedParallelResult ok = simulate_parallel_paged(
      fx.tree, paged_config(sequential_config(fx.feasible_memory), 1), fx.schedule);
  ASSERT_TRUE(ok.base.feasible);
  EXPECT_EQ(ok.peak_frames_used, fx.expected_peak_frames);
  EXPECT_EQ(ok.pages_written, 0);
  EXPECT_EQ(ok.pages_read, 0);
  const PagedParallelResult bad = simulate_parallel_paged(
      fx.tree, paged_config(sequential_config(fx.infeasible_memory), 1), fx.schedule);
  EXPECT_FALSE(bad.base.feasible);
}

// PR 3's write-at-most-once pin through the shared thrash fixture: the
// paged engine charges 3 distinct dirty pages over 2 eviction events, and
// agrees with the pager and the analytic counter.
TEST(PagedParallel, ThrashSharedPinWritesEachPageOnce) {
  const auto fx = test::thrash_fixture();
  const PagedParallelResult r = simulate_parallel_paged(
      fx.tree, paged_config(sequential_config(fx.memory), 1), fx.schedule);
  ASSERT_TRUE(r.base.feasible);
  EXPECT_EQ(r.pages_written, fx.expected_pages_written);
  EXPECT_EQ(r.pages_read, fx.expected_pages_read);
  EXPECT_EQ(r.eviction_events, fx.expected_eviction_events);
  EXPECT_EQ(r.peak_frames_used, fx.expected_peak_frames);
  EXPECT_EQ(r.pages_dropped_clean, 0);
}

// The read-cost model: spilled pages delay dependent task starts by
// exactly DiskModel::transfer_time(volume, transfers). On the thrash
// fixture all 3 read-back pages arrive in one transfer when the root
// starts, so the makespan grows by latency + volume/bandwidth while
// busy_time (useful work) is unchanged.
TEST(PagedParallel, ReadStallDelaysDependentStarts) {
  const auto fx = test::thrash_fixture();
  PagedParallelConfig free_reads = paged_config(sequential_config(fx.memory), 1);
  const PagedParallelResult base = simulate_parallel_paged(fx.tree, free_reads, fx.schedule);
  ASSERT_TRUE(base.base.feasible);
  ASSERT_EQ(base.pages_read, 3);

  PagedParallelConfig costed = free_reads;
  costed.disk = iosim::DiskModel{2.0, 1.0};  // latency 2, bandwidth 1 unit per time unit
  const PagedParallelResult r = simulate_parallel_paged(fx.tree, costed, fx.schedule);
  ASSERT_TRUE(r.base.feasible);
  EXPECT_EQ(r.read_transfers, 1);
  EXPECT_DOUBLE_EQ(r.read_stall, 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(r.base.makespan, base.base.makespan + 5.0);
  EXPECT_DOUBLE_EQ(r.base.busy_time, base.base.busy_time);
  // Identical residency decisions: the stall changes time, not paging.
  EXPECT_EQ(r.pages_written, base.pages_written);
  EXPECT_EQ(r.pages_read, base.pages_read);
}

// In the fixed-order regime (one worker, sequential order, no backfill)
// the execution sequence cannot react to time, so every stall serializes:
// makespan decomposes exactly into the free-read makespan plus the total
// read stall, and a pointwise cheaper disk gives a pointwise smaller
// stall. (With several workers and backfill this is NOT an invariant —
// stalls shift completions, reorder the ready queue, and can produce
// Graham-style anomalies where a costlier disk finishes sooner.)
TEST(PagedParallel, ReadCostDecomposesInFixedOrderRegime) {
  util::Rng rng(25043);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = test::small_random_tree(35, 12, rng);
    const ParallelConfig base = sequential_config(t.min_feasible_memory() + 2);
    PagedParallelConfig cheap = paged_config(base, 2);
    PagedParallelConfig costly = cheap;
    cheap.disk = iosim::DiskModel{0.1, 100.0};
    costly.disk = iosim::DiskModel{1.0, 10.0};
    const PagedParallelResult free_run = simulate_parallel_paged(t, paged_config(base, 2));
    const PagedParallelResult cheap_run = simulate_parallel_paged(t, cheap);
    const PagedParallelResult costly_run = simulate_parallel_paged(t, costly);
    ASSERT_TRUE(free_run.base.feasible);
    // Same order, same residency decisions, same page movement.
    EXPECT_EQ(cheap_run.base.start_order, free_run.base.start_order) << "rep=" << rep;
    EXPECT_EQ(cheap_run.pages_read, costly_run.pages_read) << "rep=" << rep;
    EXPECT_DOUBLE_EQ(cheap_run.base.makespan, free_run.base.makespan + cheap_run.read_stall)
        << "rep=" << rep;
    EXPECT_DOUBLE_EQ(costly_run.base.makespan, free_run.base.makespan + costly_run.read_stall)
        << "rep=" << rep;
    EXPECT_LE(cheap_run.read_stall, costly_run.read_stall) << "rep=" << rep;
  }
}

// Paged invariants across a sweep: write-at-most-once per page, I/O in
// page multiples, allocated frames bounded by the frame count, and reads
// never exceed what was spilled.
TEST(PagedParallel, PageAccountingInvariants) {
  util::Rng rng(25057);
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 14, rng)
                                  : test::small_random_wide_tree(40, 14, rng);
    for (const Weight page : {Weight{1}, Weight{3}, Weight{8}}) {
      const Weight memory = (iosim::min_feasible_frames(t, page) + 2) * page;
      for (const int workers : {1, 2, 4}) {
        ParallelConfig base;
        base.workers = workers;
        base.memory = memory;
        const PagedParallelResult r = simulate_parallel_paged(t, paged_config(base, page));
        const std::string label = "rep=" + std::to_string(rep) + " page=" +
                                  std::to_string(page) + " w=" + std::to_string(workers);
        ASSERT_TRUE(r.base.feasible) << label;
        EXPECT_LE(r.peak_frames_used, r.frames) << label;
        EXPECT_EQ(r.base.io_volume, r.pages_written * page) << label;
        EXPECT_LE(r.pages_read, r.pages_written + r.pages_dropped_clean) << label;
        std::int64_t written_pages = 0;
        for (std::size_t i = 0; i < t.size(); ++i) {
          EXPECT_EQ(r.base.io[i] % page, 0) << label << " node " << i;
          const Weight cap = iosim::page_count(t.weight(static_cast<core::NodeId>(i)), page);
          EXPECT_LE(r.base.io[i] / page, cap) << label << " node " << i << " written twice";
          written_pages += r.base.io[i] / page;
        }
        EXPECT_EQ(written_pages, r.pages_written) << label;
      }
    }
  }
}

// Frame-level infeasibility: one frame below min_feasible_frames must be
// rejected even with backfill, at any worker count.
TEST(PagedParallel, InfeasibleBelowMinFeasibleFrames) {
  util::Rng rng(25071);
  const Tree t = test::small_random_tree(24, 10, rng);
  for (const Weight page : {Weight{2}, Weight{5}}) {
    const Weight min_frames = iosim::min_feasible_frames(t, page);
    for (const int workers : {1, 4}) {
      ParallelConfig base;
      base.workers = workers;
      base.memory = (min_frames - 1) * page;
      EXPECT_FALSE(simulate_parallel_paged(t, paged_config(base, page)).base.feasible);
      base.memory = min_frames * page;
      EXPECT_TRUE(simulate_parallel_paged(t, paged_config(base, page)).base.feasible);
    }
  }
}

TEST(PagedParallel, RejectsBadConfig) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 1}});
  ParallelConfig base;
  base.memory = 10;
  EXPECT_THROW((void)simulate_parallel_paged(t, paged_config(base, 0)), std::invalid_argument);
  EXPECT_THROW((void)simulate_parallel_paged(t, paged_config(base, -3)), std::invalid_argument);
  PagedParallelConfig bad_workers = paged_config(base, 1);
  bad_workers.base.workers = 0;
  EXPECT_THROW((void)simulate_parallel_paged(t, bad_workers), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
