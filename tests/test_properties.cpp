// Parameterized property suites: the library's central invariants swept
// over a grid of tree families, sizes, weight ranges and memory bounds.
// Each (family, size, weights, seed) combination is an independent test
// case, so a regression pinpoints the exact configuration that broke.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/lower_bounds.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/core/rec_expand.hpp"
#include "src/core/atomic_io.hpp"
#include "src/core/local_search.hpp"
#include "src/core/strategies.hpp"
#include "src/iosim/pager.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::Tree;
using core::Weight;

enum class Family { kBinary, kWide, kChain, kCaterpillar, kSpider };

std::string family_name(Family f) {
  switch (f) {
    case Family::kBinary: return "binary";
    case Family::kWide: return "wide";
    case Family::kChain: return "chain";
    case Family::kCaterpillar: return "caterpillar";
    case Family::kSpider: return "spider";
  }
  return "?";
}

Tree build(Family f, std::size_t n, Weight w_hi, util::Rng& rng) {
  switch (f) {
    case Family::kBinary:
      return treegen::with_uniform_weights(treegen::uniform_binary_tree(n, rng), 1, w_hi, rng);
    case Family::kWide:
      return treegen::with_uniform_weights(treegen::random_recursive_tree(n, rng), 1, w_hi, rng);
    case Family::kChain: {
      std::vector<Weight> w(n);
      for (auto& x : w) x = rng.uniform_int(1, w_hi);
      return treegen::chain_tree(w);
    }
    case Family::kCaterpillar:
      return treegen::with_uniform_weights(
          treegen::caterpillar_tree(std::max<std::size_t>(1, n / 3), 2, 1), 1, w_hi, rng);
    case Family::kSpider:
      return treegen::with_uniform_weights(
          treegen::spider_tree(4, std::max<std::size_t>(1, n / 4), 1), 1, w_hi, rng);
  }
  throw std::logic_error("unknown family");
}

// ---------------------------------------------------------------------------
// Exact-optimality sweep: small instances vs the brute-force oracles.
// ---------------------------------------------------------------------------

using ExactParams = std::tuple<Family, int /*n*/, int /*w_hi*/, int /*seed*/>;

class ExactSweep : public testing::TestWithParam<ExactParams> {};

TEST_P(ExactSweep, OptMinMemMatchesBruteForce) {
  const auto [family, n, w_hi, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Tree t = build(family, static_cast<std::size_t>(n), w_hi, rng);
  EXPECT_EQ(core::opt_minmem(t).peak, core::brute_force_min_peak(t).objective)
      << t.to_string();
}

TEST_P(ExactSweep, HeuristicsBoundedByBruteForceMinIo) {
  const auto [family, n, w_hi, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 17);
  const Tree t = build(family, static_cast<std::size_t>(n), w_hi, rng);
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  if (peak <= lb) GTEST_SKIP() << "instance needs no I/O at any feasible bound";
  const Weight m = (lb + peak) / 2;
  const Weight opt = core::brute_force_min_io(t, m).objective;
  EXPECT_GE(core::run_strategy(core::Strategy::kPostOrderMinIo, t, m).io_volume(), opt);
  EXPECT_GE(core::run_strategy(core::Strategy::kOptMinMem, t, m).io_volume(), opt);
  EXPECT_GE(core::run_strategy(core::Strategy::kRecExpand, t, m).io_volume(), opt);
  EXPECT_GE(core::run_strategy(core::Strategy::kFullRecExpand, t, m).io_volume(), opt);
  EXPECT_GE(opt, core::io_lower_bound_peak_gap(t, m));
}

INSTANTIATE_TEST_SUITE_P(
    SmallTrees, ExactSweep,
    testing::Combine(testing::Values(Family::kBinary, Family::kWide, Family::kChain),
                     testing::Values(6, 8), testing::Values(4, 12), testing::Range(0, 5)),
    [](const testing::TestParamInfo<ExactParams>& info) {
      return family_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Structural-invariant sweep: medium instances, no oracle needed.
// ---------------------------------------------------------------------------

using InvariantParams = std::tuple<Family, int /*n*/, int /*w_hi*/, int /*seed*/>;

class InvariantSweep : public testing::TestWithParam<InvariantParams> {
 protected:
  Tree make() const {
    const auto [family, n, w_hi, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
    return build(family, static_cast<std::size_t>(n), w_hi, rng);
  }
};

TEST_P(InvariantSweep, PeakOrdering) {
  // LB <= optimal peak <= best postorder peak <= total weight + max wbar.
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight opt = core::opt_minmem(t).peak;
  const Weight post = core::postorder_minmem(t).peak;
  EXPECT_LE(lb, opt);
  EXPECT_LE(opt, post);
  EXPECT_LE(post, t.total_weight() + t.min_feasible_memory());
}

TEST_P(InvariantSweep, FifEvaluationsAreValidTraversals) {
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  for (const Weight m : {lb, (lb + peak) / 2, peak}) {
    for (const core::Strategy s : core::all_strategies()) {
      const auto out = core::run_strategy(s, t, m);
      ASSERT_TRUE(out.evaluation.feasible) << core::strategy_name(s);
      test::expect_valid_traversal(t, out.schedule, out.evaluation.io, m);
    }
  }
}

TEST_P(InvariantSweep, RecExpandSandwich) {
  // RecExpand is bounded below by the peak-gap bound and above by
  // OptMinMem's I/O (it only ever refines the OptMinMem plan).
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  if (peak <= lb) GTEST_SKIP();
  const Weight m = (lb + peak) / 2;
  const Weight rec = core::run_strategy(core::Strategy::kRecExpand, t, m).io_volume();
  EXPECT_GE(rec, core::io_lower_bound_peak_gap(t, m));
}

TEST_P(InvariantSweep, PagerBeladyAgreesWithFif) {
  const Tree t = make();
  const Weight m = t.min_feasible_memory() + 7;
  const auto schedule = core::opt_minmem(t).schedule;
  const auto fif = core::simulate_fif(t, schedule, m);
  iosim::PagerConfig config;
  config.memory = m;
  config.page_size = 1;
  const auto pager = iosim::run_pager(t, schedule, config);
  ASSERT_EQ(pager.feasible, fif.feasible);
  if (fif.feasible) {
    EXPECT_EQ(pager.pages_written, fif.io_volume);
  }
}

TEST_P(InvariantSweep, PostOrderMinIoPredictionMatchesSimulation) {
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::postorder_minmem(t).peak;
  for (const Weight m : {lb, (lb + peak) / 2, peak}) {
    const auto r = core::postorder_minio(t, m);
    EXPECT_EQ(r.predicted_io, core::simulate_fif(t, r.schedule, m).io_volume) << "M=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MediumTrees, InvariantSweep,
    testing::Combine(testing::Values(Family::kBinary, Family::kWide, Family::kChain,
                                     Family::kCaterpillar, Family::kSpider),
                     testing::Values(40, 150), testing::Values(9, 100), testing::Range(0, 3)),
    [](const testing::TestParamInfo<InvariantParams>& info) {
      return family_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Homogeneous sweep: Theorem 4 as a parameterized property.
// ---------------------------------------------------------------------------

class HomogeneousSweep : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HomogeneousSweep, PostOrderMinIoIsExactlyW) {
  const auto [n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 31337 + 29);
  const Tree t = treegen::uniform_binary_tree(static_cast<std::size_t>(n), rng);
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::homogeneous_min_peak(t);
  EXPECT_EQ(peak, core::opt_minmem(t).peak);
  for (Weight m = lb; m <= peak; ++m) {
    const Weight exact = core::homogeneous_optimal_io(t, m);
    EXPECT_EQ(core::postorder_minio(t, m).predicted_io, exact) << "M=" << m;
    // No strategy can beat the exact optimum.
    EXPECT_GE(core::run_strategy(core::Strategy::kOptMinMem, t, m).io_volume(), exact);
    EXPECT_GE(core::run_strategy(core::Strategy::kRecExpand, t, m).io_volume(), exact);
  }
}

INSTANTIATE_TEST_SUITE_P(UnitWeights, HomogeneousSweep,
                         testing::Combine(testing::Values(15, 40, 90), testing::Range(0, 4)),
                         [](const testing::TestParamInfo<std::tuple<int, int>>& info) {
                           // Appends rather than operator+ chains: the latter trip
                           // GCC 12's -Wrestrict false positive (PR 105329) at -O3.
                           std::string name = "n";
                           name += std::to_string(std::get<0>(info.param));
                           name += "_s";
                           name += std::to_string(std::get<1>(info.param));
                           return name;
                         });

// ---------------------------------------------------------------------------
// Extension sweeps: atomic writes, local search and the parallel simulator
// under the same family x size x seed grid.
// ---------------------------------------------------------------------------

using ExtensionParams = std::tuple<Family, int /*n*/, int /*seed*/>;

class ExtensionSweep : public testing::TestWithParam<ExtensionParams> {
 protected:
  Tree make() const {
    const auto [family, n, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 2741 + 11);
    return build(family, static_cast<std::size_t>(n), 20, rng);
  }
};

TEST_P(ExtensionSweep, AtomicDominatesFractional) {
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  if (peak <= lb) GTEST_SKIP();
  const Weight m = (lb + peak) / 2;
  const auto schedule = core::opt_minmem(t).schedule;
  const Weight fractional = core::simulate_fif(t, schedule, m).io_volume;
  const auto atomic = core::simulate_atomic(t, schedule, m);
  ASSERT_TRUE(atomic.feasible);
  EXPECT_GE(atomic.io_volume, fractional);
  const auto heuristic = core::atomic_heuristic(t, m);
  ASSERT_TRUE(heuristic.feasible);
  EXPECT_LE(heuristic.io_volume, atomic.io_volume)
      << "the multi-schedule heuristic includes the FiF-atomic baseline";
  test::expect_valid_traversal(t, schedule, atomic.io, m);
}

TEST_P(ExtensionSweep, PolishNeverWorse) {
  const Tree t = make();
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  if (peak <= lb) GTEST_SKIP();
  const Weight m = (lb + peak) / 2;
  const auto base = core::run_strategy(core::Strategy::kPostOrderMinIo, t, m);
  core::PolishOptions opts;
  opts.max_evaluations = 300;
  opts.patience = 200;
  const auto polished = core::polish_schedule(t, base.schedule, m, opts);
  EXPECT_LE(polished.io_after, polished.io_before);
  EXPECT_EQ(polished.io_before, base.io_volume());
  EXPECT_EQ(core::simulate_fif(t, polished.schedule, m).io_volume, polished.io_after);
}

INSTANTIATE_TEST_SUITE_P(
    Extensions, ExtensionSweep,
    testing::Combine(testing::Values(Family::kBinary, Family::kWide, Family::kCaterpillar),
                     testing::Values(20, 60), testing::Range(0, 3)),
    [](const testing::TestParamInfo<ExtensionParams>& info) {
      return family_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace ooctree
