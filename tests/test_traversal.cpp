// Tests for schedules, validity conditions and in-core memory profiles
// (paper, Section 3.1).
#include <gtest/gtest.h>

#include "src/core/traversal.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::kNoNode;
using core::make_tree;
using core::Schedule;
using core::Tree;
using core::Weight;

// Chain 0 <- 1 <- 2 (leaf), weights 2, 3, 4.
Tree chain3() { return make_tree({{kNoNode, 2}, {0, 3}, {1, 4}}); }

TEST(Traversal, TopologicalOrderAccepts) {
  const Tree t = chain3();
  EXPECT_TRUE(core::is_topological_order(t, {2, 1, 0}));
}

TEST(Traversal, TopologicalOrderRejects) {
  const Tree t = chain3();
  EXPECT_FALSE(core::is_topological_order(t, {0, 1, 2}));   // parent first
  EXPECT_FALSE(core::is_topological_order(t, {2, 1}));      // wrong length
  EXPECT_FALSE(core::is_topological_order(t, {2, 2, 0}));   // duplicate
  EXPECT_FALSE(core::is_topological_order(t, {2, 0, 1}));   // 0 before child 1
}

TEST(Traversal, MemoryProfileOfChain) {
  const Tree t = chain3();
  // leaf 2: mem 4; node 1: max(3, 4) = 4; node 0: max(2, 3) = 3.
  EXPECT_EQ(core::memory_profile(t, {2, 1, 0}), (std::vector<Weight>{4, 4, 3}));
  EXPECT_EQ(core::peak_memory(t, {2, 1, 0}), 4);
}

TEST(Traversal, MemoryProfileWithSiblings) {
  //     0(1)
  //    _/ \_
  //  1(5)   2(6)
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}});
  // Execute 1 then 2: profiles 5, then 5 + 6 = 11; root: max(1, 11) = 11.
  EXPECT_EQ(core::memory_profile(t, {1, 2, 0}), (std::vector<Weight>{5, 11, 11}));
  EXPECT_EQ(core::peak_memory(t, {1, 2, 0}), 11);
}

TEST(Traversal, ValidateAcceptsInCoreRun) {
  const Tree t = chain3();
  const core::IoFunction no_io(t.size(), 0);
  EXPECT_FALSE(core::validate_traversal(t, {2, 1, 0}, no_io, 4).has_value());
}

TEST(Traversal, ValidateRejectsTooSmallMemory) {
  const Tree t = chain3();
  const core::IoFunction no_io(t.size(), 0);
  const auto problem = core::validate_traversal(t, {2, 1, 0}, no_io, 3);
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("memory exceeded"), std::string::npos);
}

TEST(Traversal, ValidateAcceptsWithIo) {
  //     0(1)
  //    _/ \_
  //  1(5)   2(6)   M = 8: writing 3 units of node 1 makes step 2 fit
  //  (during node 2: active 5-3=2 plus wbar 6 = 8), and children are read
  //  back for the root (wbar(0) = 11 > 8)... so M=8 is infeasible overall.
  const Tree t = make_tree({{kNoNode, 1}, {0, 5}, {0, 6}});
  core::IoFunction io(t.size(), 0);
  io[1] = 3;
  // wbar(root) = 11 > 8: invalid whatever tau is.
  EXPECT_TRUE(core::validate_traversal(t, {1, 2, 0}, io, 8).has_value());
  // With M = 11 and tau = 0 everything fits.
  EXPECT_FALSE(core::validate_traversal(t, {1, 2, 0}, core::IoFunction(t.size(), 0), 11)
                   .has_value());
}

TEST(Traversal, ValidatePartialIoExactBudget) {
  // Chain with a side datum: 0(2) <- {1(3), 2(2)}; 1 <- 3(4 leaf).
  //      executing 3 (w4), then 2 (w2), then 1, then 0.
  const Tree t = make_tree({{kNoNode, 2}, {0, 3}, {0, 2}, {1, 4}});
  // At step of node 2 (wbar 2), active: 3 (w 4). M = 5 requires tau(3) >= 1.
  core::IoFunction io(t.size(), 0);
  const Schedule s{3, 2, 1, 0};
  EXPECT_TRUE(core::validate_traversal(t, s, io, 5).has_value());
  io[3] = 1;
  // Now step 2: active 4-1=3 + wbar 2 = 5 fits; step 1 (wbar(1)=max(3,4)=4):
  // active = {2: w2}: 2+4 = 6 > 5 -> still invalid.
  EXPECT_TRUE(core::validate_traversal(t, s, io, 5).has_value());
  io[2] = 1;
  // Step 1: active 2-1=1 + 4 = 5 fits; root: active {} children 3+2 = 5 = wbar.
  EXPECT_FALSE(core::validate_traversal(t, s, io, 5).has_value());
}

TEST(Traversal, ValidateRejectsTauOutOfRange) {
  const Tree t = chain3();
  core::IoFunction io(t.size(), 0);
  io[2] = 5;  // w(2) = 4
  EXPECT_TRUE(core::validate_traversal(t, {2, 1, 0}, io, 100).has_value());
  io[2] = -1;
  EXPECT_TRUE(core::validate_traversal(t, {2, 1, 0}, io, 100).has_value());
}

TEST(Traversal, IoVolumeSums) {
  core::Traversal tr;
  tr.io = {0, 3, 2, 0};
  EXPECT_EQ(tr.io_volume(), 5);
}

TEST(Traversal, PeakMemoryMatchesProfileMax) {
  util::Rng rng(7);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(9, 10, rng);
    const auto order = t.postorder();
    const auto profile = core::memory_profile(t, order);
    EXPECT_EQ(core::peak_memory(t, order),
              *std::max_element(profile.begin(), profile.end()));
  }
}

}  // namespace
}  // namespace ooctree
