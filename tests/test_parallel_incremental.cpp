// Differential oracle for the indexed parallel engine (PR 3).
//
// simulate_parallel (EvictionIndex + heap ready queue + transactional
// starts) must be observationally identical to the retained scan-based
// simulate_parallel_reference, and at one worker following the reference
// order both must collapse to the sequential FiF simulator. Mirrors the
// test_expansion_incremental suite from PR 2.
#include <gtest/gtest.h>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::EvictionPolicy;
using core::MemoryModel;
using core::Tree;
using core::Weight;
using parallel::ParallelConfig;
using parallel::ParallelResult;
using parallel::Priority;
using parallel::simulate_parallel;
using parallel::simulate_parallel_reference;

void expect_identical(const ParallelResult& a, const ParallelResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.io_volume, b.io_volume) << label;
  EXPECT_EQ(a.io, b.io) << label;
  EXPECT_EQ(a.peak_resident, b.peak_resident) << label;
  EXPECT_EQ(a.start_order, b.start_order) << label;
  EXPECT_EQ(a.start_time, b.start_time) << label;
  EXPECT_EQ(a.finish_time, b.finish_time) << label;
  EXPECT_EQ(a.busy_time, b.busy_time) << label;
  EXPECT_EQ(a.failed_starts, b.failed_starts) << label;
}

std::string label(std::size_t rep, int workers, int priority, Weight m) {
  return "rep=" + std::to_string(rep) + " workers=" + std::to_string(workers) +
         " priority=" + std::to_string(priority) + " M=" + std::to_string(m);
}

// workers = 1 + the reference order + no backfill is exactly the paper's
// sequential model: both engines must reproduce the FiF simulator's I/O
// volume and peak, under both transient-memory models.
TEST(ParallelIncremental, SingleWorkerSequentialOrderCollapsesToFif) {
  util::Rng rng(24001);
  for (const MemoryModel model : {MemoryModel::kMaxInOut, MemoryModel::kSumInOut}) {
    for (int rep = 0; rep < 15; ++rep) {
      const Tree base = (rep % 2 == 0) ? test::small_random_tree(30, 12, rng)
                                       : test::small_random_wide_tree(30, 12, rng);
      const Tree t = base.with_memory_model(model);
      const auto ref = core::opt_minmem(t).schedule;
      const Weight lb = t.min_feasible_memory();
      for (const Weight m : {lb, lb + 3, lb + 10}) {
        const auto fif = core::simulate_fif(t, ref, m);
        ASSERT_TRUE(fif.feasible);
        ParallelConfig c;
        c.workers = 1;
        c.memory = m;
        c.priority = Priority::kSequentialOrder;
        c.backfill = false;
        for (const bool incremental : {false, true}) {
          const ParallelResult r = incremental ? simulate_parallel(t, c, ref)
                                               : simulate_parallel_reference(t, c, ref);
          ASSERT_TRUE(r.feasible);
          EXPECT_EQ(r.start_order, ref);
          EXPECT_EQ(r.io_volume, fif.io_volume)
              << "engine=" << incremental << " model=" << static_cast<int>(model)
              << " rep=" << rep << " M=" << m;
          EXPECT_EQ(r.peak_resident, fif.peak_resident)
              << "engine=" << incremental << " model=" << static_cast<int>(model)
              << " rep=" << rep << " M=" << m;
        }
      }
    }
  }
}

// The heart of the PR: both engines bit-identical over the full
// workers x priority sweep on the SYNTH sampler, at several memory bounds.
TEST(ParallelIncremental, NewEngineMatchesReferenceAcrossSweep) {
  util::Rng rng(24007);
  const std::vector<Priority> priorities{Priority::kSequentialOrder, Priority::kCriticalPath,
                                         Priority::kHeaviestSubtree};
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(45, 15, rng)
                                  : test::small_random_wide_tree(45, 15, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    for (const Weight m : {lb, (lb + peak) / 2, peak + 5}) {
      for (const int workers : {1, 2, 4, 8}) {
        for (std::size_t p = 0; p < priorities.size(); ++p) {
          ParallelConfig c;
          c.workers = workers;
          c.memory = m;
          c.priority = priorities[p];
          expect_identical(simulate_parallel(t, c), simulate_parallel_reference(t, c),
                           label(static_cast<std::size_t>(rep), workers,
                                 static_cast<int>(p), m));
        }
      }
    }
  }
}

// Backfill off: strict priority order must also agree.
TEST(ParallelIncremental, NoBackfillMatchesReference) {
  util::Rng rng(24019);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = test::small_random_tree(35, 12, rng);
    const Weight lb = t.min_feasible_memory();
    ParallelConfig c;
    c.workers = 3;
    c.memory = lb + 6;
    c.backfill = false;
    expect_identical(simulate_parallel(t, c), simulate_parallel_reference(t, c),
                     "no-backfill rep=" + std::to_string(rep));
  }
}

// The deterministic non-Belady policies ride through the same comparator
// conventions in both engines.
TEST(ParallelIncremental, DeterministicPoliciesMatchReference) {
  util::Rng rng(24023);
  const std::vector<EvictionPolicy> policies{EvictionPolicy::kLru, EvictionPolicy::kFifo,
                                             EvictionPolicy::kLargestFirst};
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 12, rng)
                                  : test::small_random_wide_tree(40, 12, rng);
    const Weight lb = t.min_feasible_memory();
    for (const EvictionPolicy policy : policies) {
      for (const int workers : {2, 4}) {
        ParallelConfig c;
        c.workers = workers;
        c.memory = lb + 4;
        c.evict = policy;
        expect_identical(simulate_parallel(t, c), simulate_parallel_reference(t, c),
                         core::eviction_policy_name(policy) +
                             " workers=" + std::to_string(workers) +
                             " rep=" + std::to_string(rep));
      }
    }
  }
}

// Random eviction cannot be pinned across engines (the candidate orders
// differ) but must be deterministic per seed and stay a valid execution.
TEST(ParallelIncremental, RandomPolicyDeterministicPerSeed) {
  util::Rng rng(24029);
  const Tree t = test::small_random_tree(40, 12, rng);
  ParallelConfig c;
  c.workers = 4;
  c.memory = t.min_feasible_memory() + 3;
  c.evict = EvictionPolicy::kRandom;
  c.seed = 99;
  const auto a = simulate_parallel(t, c);
  const auto b = simulate_parallel(t, c);
  expect_identical(a, b, "same seed");
  ASSERT_TRUE(a.feasible);
  EXPECT_LE(a.peak_resident, c.memory);
}

// Regression for the failed-start eviction leak (seed bug): make_room used
// to flush victims and charge io_volume before try_start reported failure,
// so every backfill retry of a task that did not fit re-charged I/O that
// never corresponded to a real spill. The tree below keeps a high-priority
// task B (wbar 8, ready once its two children complete) failing round after
// round while a side chain backfills; the exact I/O of the fixed engines is
// pinned, and every output is written at most once.
TEST(ParallelIncremental, FailedStartsChargeNoIo) {
  // Node ids:        0=root(w1); 1=B(w1); 2,3=B's children (w4 each);
  //                  4=a3(w2)<-5=a2(w2)<-6=a1(w2); 7=d1(w2, child of root).
  const Tree t = core::make_tree({{core::kNoNode, 1},
                                  {0, 1},
                                  {1, 4},
                                  {1, 4},
                                  {0, 2},
                                  {4, 2},
                                  {5, 2},
                                  {0, 2}});
  ASSERT_EQ(t.min_feasible_memory(), 8);  // wbar(B) = 4 + 4
  ParallelConfig c;
  c.workers = 2;
  c.memory = 9;
  c.priority = Priority::kCriticalPath;
  const ParallelResult r = simulate_parallel(t, c);
  const ParallelResult ref = simulate_parallel_reference(t, c);
  expect_identical(r, ref, "failed-start regression");
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.failed_starts, 0) << "B must fail to fit at least once";
  // Each output can spill at most once (it is read back only when its
  // parent starts) — the seed engine violated the aggregate by flushing
  // victims for starts that never happened.
  Weight spill_cap = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(r.io[i], t.weight(static_cast<core::NodeId>(i))) << "node " << i;
    if (static_cast<core::NodeId>(i) != t.root()) spill_cap += t.weight(static_cast<core::NodeId>(i));
  }
  EXPECT_LE(r.io_volume, spill_cap);
  // Pinned: only the spills forced by successful starts are charged
  // (3 units of one B-child, 1 of a2, 2 of d1). The seed engine reported 8
  // on this instance — the extra 2 units were flushed for B tries that
  // never started.
  EXPECT_EQ(r.io_volume, 6);
}

}  // namespace
}  // namespace ooctree
