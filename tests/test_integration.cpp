// Cross-module integration tests: the full pipeline from matrices to
// scheduled out-of-core executions, mirroring what the benchmark harnesses
// do at small scale.
#include <gtest/gtest.h>

#include "src/core/lower_bounds.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/perf_profile.hpp"
#include "src/core/strategies.hpp"
#include "src/iosim/pager.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/generators.hpp"
#include "src/sparse/ordering.hpp"
#include "src/util/thread_pool.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::Strategy;
using core::Tree;
using core::Weight;

TEST(Integration, GridToScheduledExecution) {
  // grid -> ND ordering -> assembly tree -> mid-memory bound -> all
  // strategies produce valid executions whose pager replay agrees.
  const auto g = sparse::grid2d(20, 20);
  const Tree t = sparse::assembly_tree_ordered(g, sparse::nested_dissection_2d(20, 20));
  const Weight lb = t.min_feasible_memory();
  const Weight peak = core::opt_minmem(t).peak;
  ASSERT_GT(peak, lb) << "instance must be I/O-bound for the test to bite";
  const Weight m = (lb + peak - 1) / 2;
  for (const Strategy s : core::all_strategies()) {
    const auto out = core::run_strategy(s, t, m);
    ASSERT_TRUE(out.evaluation.feasible);
    test::expect_valid_traversal(t, out.schedule, out.evaluation.io, m);
    // Unit-page Belady replay must agree with the analytic evaluation.
    iosim::PagerConfig pc;
    pc.memory = m;
    pc.page_size = 1;
    const auto replay = iosim::run_pager(t, out.schedule, pc);
    ASSERT_TRUE(replay.feasible);
    EXPECT_EQ(replay.pages_written, out.evaluation.io_volume) << core::strategy_name(s);
  }
}

TEST(Integration, PaperMemoryBoundsOrdering) {
  // On every instance: I/O at M1 = LB >= I/O at Mmid >= I/O at M2 = Peak-1,
  // for every strategy (monotonicity of the whole pipeline).
  util::Rng rng(1001);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = treegen::synth_instance(120, 1, 100, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight mid = (lb + peak - 1) / 2;
    for (const Strategy s : core::cheap_strategies()) {
      const Weight io_m1 = core::run_strategy(s, t, lb).io_volume();
      const Weight io_mid = core::run_strategy(s, t, std::max(lb, mid)).io_volume();
      const Weight io_m2 = core::run_strategy(s, t, peak - 1).io_volume();
      EXPECT_GE(io_m1, io_mid) << core::strategy_name(s);
      EXPECT_GE(io_mid, io_m2) << core::strategy_name(s);
    }
  }
}

TEST(Integration, MiniPerformanceProfileRun) {
  // A miniature Figure-4 run: 12 SYNTH instances, three strategies, the
  // profile computation must rank RecExpand at least as high as OptMinMem
  // at every overhead threshold.
  util::Rng rng(1009);
  std::vector<core::AlgorithmPerformance> algos;
  for (const Strategy s : core::cheap_strategies())
    algos.push_back({core::strategy_name(s), {}});
  int instances = 0;
  while (instances < 12) {
    const Tree t = treegen::synth_instance(150, 1, 100, rng);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = std::max(lb, (lb + peak - 1) / 2);
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const auto out = core::run_strategy(core::cheap_strategies()[a], t, m);
      algos[a].performance.push_back(core::io_performance(m, out.io_volume()));
    }
    ++instances;
  }
  const auto curves = core::performance_profiles(algos);
  ASSERT_EQ(curves.size(), 3u);
  // RecExpand (index 1) dominates OptMinMem (index 0) pointwise.
  for (const double tau : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    EXPECT_GE(core::profile_at(curves[1], tau) + 1e-12, core::profile_at(curves[0], tau))
        << "tau=" << tau;
  }
}

TEST(Integration, ParallelStrategyEvaluationIsDeterministic) {
  // The bench harnesses fan instances across a thread pool; results must
  // not depend on scheduling.
  util::Rng rng(1013);
  std::vector<Tree> trees;
  for (int i = 0; i < 8; ++i) trees.push_back(treegen::synth_instance(100, 1, 50, rng));
  std::vector<Weight> serial(trees.size()), parallel_io(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const Weight m = trees[i].min_feasible_memory() + 5;
    serial[i] = core::run_strategy(Strategy::kRecExpand, trees[i], m).io_volume();
  }
  util::parallel_for(trees.size(), [&](std::size_t i) {
    const Weight m = trees[i].min_feasible_memory() + 5;
    parallel_io[i] = core::run_strategy(Strategy::kRecExpand, trees[i], m).io_volume();
  });
  EXPECT_EQ(serial, parallel_io);
}

TEST(Integration, LowerBoundsHoldAcrossThePipeline) {
  const auto g = sparse::grid2d(14, 14);
  for (const bool amalg : {false, true}) {
    sparse::AssemblyOptions opts;
    opts.amalgamate = amalg;
    const Tree t = sparse::assembly_tree_ordered(g, sparse::minimum_degree(g), opts);
    const Weight lb = t.min_feasible_memory();
    const Weight peak = core::opt_minmem(t).peak;
    if (peak <= lb) continue;
    const Weight m = (lb + peak - 1) / 2;
    const Weight bound = core::io_lower_bound_peak_gap(t, m);
    for (const Strategy s : core::all_strategies())
      EXPECT_GE(core::run_strategy(s, t, m).io_volume(), bound) << core::strategy_name(s);
  }
}

}  // namespace
}  // namespace ooctree
