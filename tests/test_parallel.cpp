// Tests for the parallel out-of-core simulator (the paper's future-work
// direction, Section 7).
#include <gtest/gtest.h>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::Tree;
using core::Weight;
using parallel::CostModel;
using parallel::ParallelConfig;
using parallel::ParallelResult;
using parallel::Priority;
using parallel::simulate_parallel;

ParallelConfig config(int workers, Weight memory,
                      Priority priority = Priority::kCriticalPath) {
  ParallelConfig c;
  c.workers = workers;
  c.memory = memory;
  c.priority = priority;
  return c;
}

void expect_execution_is_consistent(const Tree& t, const ParallelResult& r, Weight memory,
                                    int workers) {
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(core::is_topological_order(t, r.start_order));
  EXPECT_LE(r.peak_resident, memory);
  // Dependencies respected in time: a child finishes before its parent starts.
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto id = static_cast<core::NodeId>(i);
    if (t.parent(id) != core::kNoNode) {
      EXPECT_LE(r.finish_time[i] - 1e-9,
                r.start_time[static_cast<std::size_t>(t.parent(id))]);
    }
    EXPECT_GE(r.finish_time[i], r.start_time[i]);
  }
  // Never more than `workers` tasks overlap.
  for (std::size_t i = 0; i < t.size(); ++i) {
    int overlap = 0;
    for (std::size_t j = 0; j < t.size(); ++j) {
      if (r.start_time[j] <= r.start_time[i] + 1e-9 &&
          r.start_time[i] < r.finish_time[j] - 1e-9)
        ++overlap;
    }
    EXPECT_LE(overlap, workers);
  }
  // Classic bounds.
  EXPECT_GE(r.makespan + 1e-9, parallel::critical_path(t, CostModel::kWbar));
  EXPECT_GE(r.makespan * workers + 1e-9, parallel::total_work(t, CostModel::kWbar));
}

TEST(Parallel, SingleWorkerSequentialOrderMatchesFif) {
  // One worker following a sequential schedule is exactly the sequential
  // model: identical I/O volume.
  util::Rng rng(1301);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = test::small_random_tree(25, 12, rng);
    const auto ref = core::opt_minmem(t).schedule;
    const Weight m = t.min_feasible_memory() + 4;
    const auto seq = core::simulate_fif(t, ref, m);
    const auto par = simulate_parallel(t, config(1, m, Priority::kSequentialOrder), ref);
    ASSERT_TRUE(par.feasible);
    EXPECT_EQ(par.start_order, ref);
    EXPECT_EQ(par.io_volume, seq.io_volume);
  }
}

TEST(Parallel, ExecutionsAreConsistent) {
  util::Rng rng(1307);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 10, rng)
                                  : test::small_random_wide_tree(40, 10, rng);
    // Truly ample for *parallel* execution: all reservations plus all live
    // outputs can coexist (sum of wbar over the tree). The sequential peak
    // is NOT enough once several branches run concurrently.
    Weight ample = 0;
    for (std::size_t v = 0; v < t.size(); ++v) ample += t.wbar(static_cast<core::NodeId>(v));
    for (const int workers : {1, 2, 4}) {
      for (const Priority p :
           {Priority::kCriticalPath, Priority::kHeaviestSubtree, Priority::kSequentialOrder}) {
        const auto r = simulate_parallel(t, config(workers, ample, p));
        expect_execution_is_consistent(t, r, ample, workers);
        EXPECT_EQ(r.io_volume, 0) << "ample memory must need no I/O";
      }
    }
  }
}

TEST(Parallel, TightMemoryStillFeasibleWithIo) {
  util::Rng rng(1319);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree t = test::small_random_tree(30, 10, rng);
    const Weight m = t.min_feasible_memory();
    for (const int workers : {1, 2, 4}) {
      const auto r = simulate_parallel(t, config(workers, m));
      expect_execution_is_consistent(t, r, m, workers);
    }
  }
}

TEST(Parallel, MoreWorkersNeverIncreaseMakespanOnWideTree) {
  // A star is embarrassingly parallel: makespan must shrink with workers
  // when memory is ample.
  const Tree star = treegen::star_tree(16, 3, 1);
  const Weight ample = star.total_weight() * 2;
  double previous = std::numeric_limits<double>::infinity();
  for (const int workers : {1, 2, 4, 8}) {
    const auto r = simulate_parallel(star, config(workers, ample));
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.makespan, previous + 1e-9) << workers << " workers";
    previous = r.makespan;
  }
}

TEST(Parallel, ParallelismCostsIoUnderTightMemory) {
  // The tension the paper's future work targets: with memory close to the
  // sequential in-core peak, running several branches concurrently forces
  // spills that one worker avoids. Aggregate over a batch.
  util::Rng rng(1321);
  Weight io_one = 0, io_four = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = test::small_random_tree(60, 20, rng);
    const Weight m = core::opt_minmem(t).peak;
    io_one += simulate_parallel(t, config(1, m, Priority::kSequentialOrder),
                                core::opt_minmem(t).schedule)
                  .io_volume;
    io_four += simulate_parallel(t, config(4, m)).io_volume;
  }
  EXPECT_EQ(io_one, 0) << "one worker at the in-core peak needs no I/O";
  EXPECT_GT(io_four, 0) << "four workers at the same bound must spill somewhere";
}

TEST(Parallel, UtilizationWithinBounds) {
  util::Rng rng(1327);
  const Tree t = test::small_random_tree(80, 10, rng);
  const auto r = simulate_parallel(t, config(4, core::opt_minmem(t).peak + 50));
  // A tight-ish bound: the run may spill but must stay consistent.
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.utilization(4), 0.0);
  EXPECT_LE(r.utilization(4), 1.0 + 1e-9);
}

TEST(Parallel, InfeasibleBelowLb) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}, {0, 6}});
  const auto r = simulate_parallel(t, config(2, 5));
  EXPECT_FALSE(r.feasible);
}

TEST(Parallel, RejectsBadConfig) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}});
  EXPECT_THROW((void)simulate_parallel(t, config(0, 10)), std::invalid_argument);
  EXPECT_THROW((void)simulate_parallel(t, config(2, 10), {0, 1}), std::invalid_argument);
}

TEST(Parallel, CriticalPathAndWork) {
  const Tree chain = treegen::chain_tree({2, 3, 4});
  EXPECT_DOUBLE_EQ(parallel::critical_path(chain, CostModel::kUnit), 3.0);
  EXPECT_DOUBLE_EQ(parallel::total_work(chain, CostModel::kUnit), 3.0);
  // wbar costs: leaf 4, mid max(3,4)=4, root max(2,3)=3 -> path 11.
  EXPECT_DOUBLE_EQ(parallel::critical_path(chain, CostModel::kWbar), 11.0);
}

}  // namespace
}  // namespace ooctree
