// Tests for execution tracing and the disk time model.
#include <gtest/gtest.h>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/iosim/trace.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::Tree;
using core::Weight;
using iosim::trace_execution;
using iosim::TraceEvent;

TEST(Trace, AgreesWithFifSimulator) {
  util::Rng rng(1401);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(15, 12, rng)
                                  : test::small_random_wide_tree(15, 12, rng);
    const auto schedule = core::opt_minmem(t).schedule;
    for (const Weight m :
         {t.min_feasible_memory(), t.min_feasible_memory() + 5}) {
      const auto fif = core::simulate_fif(t, schedule, m);
      const auto trace = trace_execution(t, schedule, m);
      ASSERT_EQ(trace.feasible, fif.feasible);
      if (!fif.feasible) continue;
      EXPECT_EQ(trace.written, fif.io_volume);
      EXPECT_EQ(trace.read, fif.io_volume) << "every write is read back";
      EXPECT_EQ(trace.peak_resident, fif.peak_resident);
    }
  }
}

TEST(Trace, EventsAreComplete) {
  util::Rng rng(1409);
  const Tree t = test::small_random_tree(20, 10, rng);
  const Weight m = t.min_feasible_memory() + 2;
  const auto trace = trace_execution(t, t.postorder(), m);
  ASSERT_TRUE(trace.feasible);
  std::size_t computes = 0;
  Weight written = 0, read = 0;
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEvent::Kind::kCompute: ++computes; break;
      case TraceEvent::Kind::kWrite: written += e.amount; break;
      case TraceEvent::Kind::kRead: read += e.amount; break;
    }
    EXPECT_GT(e.amount, 0);
    EXPECT_LE(e.resident_after, m + t.min_feasible_memory());
  }
  EXPECT_EQ(computes, t.size());
  EXPECT_EQ(written, trace.written);
  EXPECT_EQ(read, trace.read);
}

TEST(Trace, ResidentNeverExceedsMemoryAtWrites) {
  util::Rng rng(1423);
  const Tree t = test::small_random_tree(25, 15, rng);
  const Weight m = t.min_feasible_memory() + 3;
  const auto trace = trace_execution(t, core::opt_minmem(t).schedule, m);
  ASSERT_TRUE(trace.feasible);
  EXPECT_LE(trace.peak_resident, m);
}

TEST(Trace, DiskModelArithmetic) {
  iosim::DiskModel disk;
  disk.latency_s = 0.001;
  disk.bandwidth_per_s = 1000.0;
  EXPECT_DOUBLE_EQ(disk.transfer_time(500, 2), 0.002 + 0.5);

  iosim::ExecutionTrace trace;
  trace.events.push_back({TraceEvent::Kind::kWrite, 0, 0, 300, 0});
  trace.events.push_back({TraceEvent::Kind::kRead, 1, 0, 300, 0});
  trace.events.push_back({TraceEvent::Kind::kCompute, 1, 1, 10, 0});
  EXPECT_DOUBLE_EQ(iosim::io_time(trace, disk), 0.002 + 600.0 / 1000.0);
}

TEST(Trace, FormatContainsStepsAndTotals) {
  util::Rng rng(1427);
  const Tree t = test::small_random_tree(10, 10, rng);
  const Weight m = t.min_feasible_memory() + 1;
  const auto trace = trace_execution(t, t.postorder(), m);
  const std::string text = iosim::format_trace(t, trace, m);
  EXPECT_NE(text.find("written"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Trace, RejectsBadSchedule) {
  const Tree t = core::make_tree({{core::kNoNode, 1}, {0, 5}});
  EXPECT_THROW((void)trace_execution(t, {0, 1}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ooctree
