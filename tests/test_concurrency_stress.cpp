// High-contention stress suite — the workload the tsan preset exists for.
// Every test here drives >= 8 threads into the concurrent production path:
// PlanService duplicate storms over the three dedup layers, explicit
// ThreadPool::shutdown() racing a pack of submitters, sharded ResultCache
// eviction under concurrent hits, and mixed submit/parallel_for traffic on
// one pool. The sizes are deliberately modest per operation (single-core
// CI runners, 5-15x TSan slowdown) but the interleaving count is not: each
// test performs thousands of lock acquisitions across independent mutexes,
// which is what ThreadSanitizer needs to explore orderings. The suite also
// runs under release/dev/asan-ubsan like every other suite; the audit()
// sweeps at the end assert the shared state survived the storm intact in
// any preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/service/plan_service.hpp"
#include "src/service/result_cache.hpp"
#include "src/util/thread_pool.hpp"

namespace ooctree {
namespace {

using service::CacheKey;
using service::PlanRequest;
using service::PlanResponse;
using service::PlanService;
using service::PlanStats;
using service::ResultCache;
using service::ServiceConfig;

/// A value-determined generator request: duplicates of one spec share the
/// fingerprint, the canonical key and (while racing) the in-flight entry.
PlanRequest synth_request(std::int64_t id, std::uint64_t spec_seed, std::size_t nodes = 48) {
  PlanRequest request;
  request.id = id;
  request.nodes = nodes;
  request.seed = spec_seed;  // explicit: duplicates share the value-spec
  request.memory_lb = 1.25;
  return request;
}

TEST(ConcurrencyStress, DuplicateStormServesOneSharedComputation) {
  // 256 copies of one spec race through 8 workers: exactly one computation
  // may run at a time (leader), everyone else must attach to it or hit the
  // cache — and every response must hand out the *same* immutable object.
  PlanService planner(ServiceConfig{.threads = 8});
  constexpr int kRequests = 256;
  std::vector<PlanRequest> batch;
  batch.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) batch.push_back(synth_request(i, 4242));
  auto futures = planner.submit_batch(std::move(batch));

  std::vector<PlanResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());

  ASSERT_TRUE(responses.front().stats->ok) << responses.front().stats->error;
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.stats->ok) << r.stats->error;
    // Pointer equality, not value equality: dedup layers share the object.
    EXPECT_EQ(r.stats.get(), responses.front().stats.get());
  }
  const auto stats = planner.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.computed + stats.cached + stats.coalesced, stats.completed);
  EXPECT_GE(stats.computed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  planner.audit(/*quiescent=*/true);
}

TEST(ConcurrencyStress, MixedSpecStormStaysDeterministicPerSpec) {
  // 24 distinct specs x 12 duplicates, shuffled across 8 workers: each
  // spec's responses must agree with each other *and* with a single-thread
  // reference service — scheduling order must not leak into results.
  constexpr int kSpecs = 24;
  constexpr int kRepeats = 12;
  PlanService planner(ServiceConfig{.threads = 8});
  std::vector<PlanRequest> batch;
  batch.reserve(kSpecs * kRepeats);
  for (int repeat = 0; repeat < kRepeats; ++repeat)
    for (int spec = 0; spec < kSpecs; ++spec)
      batch.push_back(synth_request(repeat * kSpecs + spec, 1000 + spec));
  auto futures = planner.submit_batch(std::move(batch));
  std::vector<PlanResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());

  PlanService reference(ServiceConfig{.threads = 1});
  for (int spec = 0; spec < kSpecs; ++spec) {
    const PlanResponse expect = reference.plan(synth_request(9000 + spec, 1000 + spec));
    ASSERT_TRUE(expect.stats->ok) << expect.stats->error;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const PlanResponse& got = responses[static_cast<std::size_t>(repeat * kSpecs + spec)];
      ASSERT_TRUE(got.stats->ok) << got.stats->error;
      EXPECT_TRUE(service::identical(*got.stats, *expect.stats)) << "spec " << spec;
    }
  }
  const auto stats = planner.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kSpecs * kRepeats));
  EXPECT_EQ(stats.computed + stats.cached + stats.coalesced, stats.completed);
  planner.audit(/*quiescent=*/true);
}

TEST(ConcurrencyStress, AuditIsSafeWhileRequestsAreInFlight) {
  // The monotone-counter audit must hold at *every* instant, so hammer it
  // from a dedicated thread while 8 workers serve a duplicate-heavy batch.
  PlanService planner(ServiceConfig{.threads = 8});
  std::vector<PlanRequest> batch;
  for (int i = 0; i < 192; ++i) batch.push_back(synth_request(i, 7 + (i % 6)));
  auto futures = planner.submit_batch(std::move(batch));

  std::atomic<bool> done{false};
  std::thread auditor([&] {
    while (!done.load()) planner.audit();  // must never throw mid-flight
  });
  for (auto& f : futures) (void)f.get();
  done.store(true);
  auditor.join();
  planner.audit(/*quiescent=*/true);
}

TEST(ConcurrencyStress, ShutdownRacingSubmittersLosesNoFuture) {
  // 8 producers hammer submit() while the main thread shuts the pool down.
  // The contract under the race: each submit either enqueues (its future
  // must then resolve — drain-then-stop) or throws; nothing hangs, nothing
  // is dropped, and the executed count equals the accepted count.
  util::ThreadPool pool(4);
  constexpr int kProducers = 8;
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 4000; ++i) {
        try {
          futures[static_cast<std::size_t>(p)].push_back(pool.submit([&executed, i] {
            executed.fetch_add(1);
            return i;
          }));
          accepted.fetch_add(1);
        } catch (const std::runtime_error&) {
          return;  // shutdown won the race: stop producing
        }
      }
    });
  }
  go.store(true);
  std::this_thread::yield();
  pool.shutdown();  // races the producers on purpose
  for (auto& t : producers) t.join();
  pool.shutdown();  // idempotent second call is a no-op

  std::int64_t resolved = 0;
  for (int p = 0; p < kProducers; ++p)
    for (auto& f : futures[static_cast<std::size_t>(p)]) {
      EXPECT_GE(f.get(), 0);  // resolves, never broken_promise
      ++resolved;
    }
  EXPECT_EQ(resolved, accepted.load());
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_THROW((void)pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ConcurrencyStress, ShardedCacheSurvivesEvictionUnderConcurrentHits) {
  // Small capacity + hot keyspace: constant eviction while 8 threads mix
  // gets and puts and a ninth runs the full-consistency audit in a loop.
  // Values are tagged with their key so any cross-key corruption surfaces.
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kKeys = 256;
  ResultCache cache(kCapacity, 8);
  std::atomic<bool> done{false};
  std::thread auditor([&] {
    while (!done.load()) cache.audit();  // shard-locked: safe mid-traffic
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&cache, w] {
      for (std::uint64_t i = 0; i < 3000; ++i) {
        const std::uint64_t k = (i * 31 + static_cast<std::uint64_t>(w) * 977) % kKeys;
        const CacheKey key{k, 0xabcdULL};
        if (i % 3 == 0) {
          auto value = std::make_shared<PlanStats>();
          value->io_volume = static_cast<core::Weight>(k);
          cache.put(key, std::move(value));
        } else if (auto hit = cache.get(key)) {
          // A hit must carry its own key's payload.
          if (hit->io_volume != static_cast<core::Weight>(k))
            FAIL() << "cross-key corruption at key " << k;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  done.store(true);
  auditor.join();

  cache.audit();
  const auto counters = cache.counters();
  EXPECT_LE(counters.entries, counters.capacity);
  EXPECT_EQ(counters.insertions, counters.evictions + counters.entries);
  EXPECT_GT(counters.evictions, 0u) << "capacity must actually churn";
  EXPECT_GT(counters.hits, 0u);
}

TEST(ConcurrencyStress, MixedSubmitAndParallelForTraffic) {
  // Both idioms share one queue: 4 threads run blocking parallel_fors
  // while 4 others stream futures through the same pool.
  util::ThreadPool pool(8);
  std::atomic<std::int64_t> loop_hits{0};
  std::atomic<std::int64_t> future_sum{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round)
        pool.parallel_for(64, [&loop_hits](std::size_t) { loop_hits.fetch_add(1); });
    });
    callers.emplace_back([&] {
      std::vector<std::future<int>> futures;
      futures.reserve(400);
      for (int i = 0; i < 400; ++i) futures.push_back(pool.submit([i] { return i; }));
      for (auto& f : futures) future_sum.fetch_add(f.get());
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(loop_hits.load(), 4 * 20 * 64);
  EXPECT_EQ(future_sum.load(), 4 * (399 * 400 / 2));
}

}  // namespace
}  // namespace ooctree
