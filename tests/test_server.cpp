// Multi-tenant server suite (src/server/): weighted deficit-round-robin
// fairness (proportional shares, starvation bounds, in-flight caps, the
// fusion-rider extract path), bounded admission (shed / block-to-deadline
// policies, watermark hysteresis, counter conservation, close semantics),
// batch fusion bit-identity against independent computes across strategies
// and memory models, and PlanServer end-to-end: the overload storm (every
// future resolves, the queue bound holds), fairness under a backlog, fused
// dispatches, and drain-on-destruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"
#include "src/core/strategies.hpp"
#include "src/core/tree.hpp"
#include "src/server/admission.hpp"
#include "src/server/fair_scheduler.hpp"
#include "src/server/plan_server.hpp"
#include "src/service/plan_service.hpp"
#include "src/service/request_io.hpp"
#include "src/util/rng.hpp"
#include "tests/test_support.hpp"

namespace ooctree {
namespace {

using server::Admission;
using server::AdmissionConfig;
using server::AdmissionQueue;
using server::FairScheduler;
using server::OverloadPolicy;
using server::PlanServer;
using server::ServerConfig;
using server::ServerResponse;
using server::ServerStats;
using service::PlanRequest;
using service::PlanResponse;
using service::PlanService;
using service::Served;
using service::ServiceConfig;
using service::TreeSource;

/// A small synthetic-spec request with an explicit seed, so every request
/// built from the same (seed, nodes) materializes the same tree.
PlanRequest synth_request(std::int64_t id, std::uint64_t seed, std::size_t nodes = 120,
                          double memory_lb = 1.2) {
  PlanRequest request;
  request.id = id;
  request.nodes = nodes;
  request.seed = seed;
  request.memory_lb = memory_lb;
  return request;
}

/// A deliberately expensive request used to keep the single dispatch worker
/// busy while a test stages the scheduler queue behind it.
PlanRequest plug_request(const std::string& tenant) {
  PlanRequest request = synth_request(-1, 4242, 60000, 1.02);
  request.tenant = tenant;
  request.strategy = core::Strategy::kFullRecExpand;
  return request;
}

/// Polls until the server has dispatched at least `n` requests (the plug
/// is on a worker, so requests submitted now will queue behind it).
void wait_for_dispatches(const PlanServer& srv, std::uint64_t n) {
  while (srv.stats().dispatched < n)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// ---------------------------------------------------------------------------
// FairScheduler (unit-tested with T = int; the server instantiates it with
// its queue items — same template, same arithmetic).
// ---------------------------------------------------------------------------

TEST(FairScheduler, WeightedSharesAreProportionalOverABusyInterval) {
  FairScheduler<int> sched;
  sched.set_weight("heavy", 3.0);
  sched.set_weight("light", 1.0);
  for (int i = 0; i < 40; ++i) {
    sched.push("heavy", i);
    sched.push("light", i);
  }
  int heavy = 0;
  int light = 0;
  for (int i = 0; i < 24; ++i) {
    auto item = sched.pop();
    ASSERT_TRUE(item.has_value());
    (item->first == "heavy" ? heavy : light)++;
    sched.end_inflight(item->first);
  }
  // DRR with both tenants backlogged: exactly weight-proportional.
  EXPECT_EQ(heavy, 18);
  EXPECT_EQ(light, 6);
}

TEST(FairScheduler, EqualWeightsBoundStarvationOfASmallTenant) {
  FairScheduler<int> sched;
  for (int i = 0; i < 100; ++i) sched.push("hot", i);
  for (int i = 0; i < 5; ++i) sched.push("cold", i);
  // With equal weights the cold tenant is served every other dispatch, so
  // its 5 requests all leave within the first 10 pops — the starvation
  // bound the fairness bench pins at the server level.
  int cold_served = 0;
  for (int i = 0; i < 10; ++i) {
    auto item = sched.pop();
    ASSERT_TRUE(item.has_value());
    if (item->first == "cold") ++cold_served;
    sched.end_inflight(item->first);
  }
  EXPECT_EQ(cold_served, 5);
}

TEST(FairScheduler, FractionalWeightsServeEveryOtherRound) {
  // weight 0.5 vs 1.0: the half-weight tenant needs two ring visits to
  // earn one request of credit, giving a strict 1:2 service pattern.
  FairScheduler<int> sched;
  sched.set_weight("half", 0.5);
  sched.set_weight("full", 1.0);
  for (int i = 0; i < 30; ++i) {
    sched.push("half", i);
    sched.push("full", i);
  }
  int half = 0;
  int full = 0;
  for (int i = 0; i < 30; ++i) {
    auto item = sched.pop();
    ASSERT_TRUE(item.has_value());
    (item->first == "half" ? half : full)++;
    sched.end_inflight(item->first);
  }
  EXPECT_EQ(half, 10);
  EXPECT_EQ(full, 20);
}

TEST(FairScheduler, InflightCapSkipsSaturatedTenants) {
  FairScheduler<int> sched(1.0, /*inflight_cap=*/1);
  sched.push("a", 1);
  sched.push("a", 2);
  sched.push("b", 7);

  auto first = sched.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, "a");
  // "a" is at its cap; the next dispatch must come from "b" even though
  // "a" still has queued work and ring priority.
  auto second = sched.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, "b");
  // Everything eligible is capped or empty now.
  EXPECT_FALSE(sched.eligible());
  EXPECT_FALSE(sched.pop().has_value());
  EXPECT_EQ(sched.queued(), 1u);

  sched.end_inflight("a");
  auto third = sched.pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->first, "a");
  EXPECT_EQ(third->second, 2);
}

TEST(FairScheduler, ExtractIfPullsRidersWithoutChargingTheDeficit) {
  FairScheduler<int> sched(1.0, /*inflight_cap=*/1);
  for (int v : {1, 2, 3, 4}) sched.push("a", v);
  for (int v : {10, 11, 12}) sched.push("b", v);

  // Riders are pulled in ring order then queue order, ignore the in-flight
  // cap, and honor the limit.
  auto even = sched.extract_if([](int v) { return v % 2 == 0; }, 2);
  ASSERT_EQ(even.size(), 2u);
  EXPECT_EQ(even[0].second, 2);
  EXPECT_EQ(even[1].second, 4);
  EXPECT_EQ(even[0].first, "a");
  EXPECT_EQ(sched.queued(), 5u);
  EXPECT_EQ(sched.inflight(), 2u);  // riders count as dispatched work

  auto rest = sched.extract_if([](int v) { return v >= 10; }, 100);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].second, 10);
  EXPECT_EQ(rest[2].second, 12);
  for (const auto& [tenant, value] : even) sched.end_inflight(tenant);
  for (const auto& [tenant, value] : rest) sched.end_inflight(tenant);
  EXPECT_EQ(sched.inflight(), 0u);

  // The cap never applied to riders, but pop() still enforces it.
  auto lead = sched.pop();
  ASSERT_TRUE(lead.has_value());
  EXPECT_EQ(lead->first, "a");
  EXPECT_EQ(lead->second, 1);
}

TEST(FairScheduler, CountersTrackPerTenantAccounting) {
  FairScheduler<int> sched;
  sched.set_weight("b", 2.0);
  sched.push("a", 1);
  sched.push("b", 2);
  sched.push("b", 3);
  auto item = sched.pop();
  ASSERT_TRUE(item.has_value());

  const auto counters = sched.counters();
  ASSERT_EQ(counters.size(), 2u);  // name-sorted: a, b
  EXPECT_EQ(counters[0].tenant, "a");
  EXPECT_EQ(counters[1].tenant, "b");
  EXPECT_EQ(counters[0].pushed, 1u);
  EXPECT_EQ(counters[1].pushed, 2u);
  EXPECT_DOUBLE_EQ(counters[1].weight, 2.0);
  EXPECT_EQ(counters[0].served + counters[1].served, 1u);
  EXPECT_EQ(counters[0].queued + counters[1].queued, 2u);
}

TEST(FairScheduler, InvalidWeightsAndPhantomCompletionsThrow) {
  EXPECT_THROW(FairScheduler<int>(0.0), std::invalid_argument);
  FairScheduler<int> sched;
  EXPECT_THROW(sched.set_weight("a", -1.0), std::invalid_argument);
  EXPECT_THROW(sched.end_inflight("ghost"), std::logic_error);
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, ShedsAtDepthAndRecoversOnRelease) {
  AdmissionQueue queue(AdmissionConfig{.depth = 2});
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);
  EXPECT_EQ(queue.acquire(), Admission::kShedFull);
  queue.release();
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);

  const auto counters = queue.counters();
  EXPECT_EQ(counters.submitted, 4u);
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_EQ(counters.shed_full, 1u);
  EXPECT_EQ(counters.submitted, counters.admitted + counters.shed());
  EXPECT_EQ(counters.depth, 2u);
  EXPECT_EQ(counters.peak, 2u);
}

TEST(AdmissionQueue, BlockPolicyTimesOutWithoutARelease) {
  AdmissionQueue queue(AdmissionConfig{
      .depth = 1, .policy = OverloadPolicy::kBlock, .block_timeout_ms = 25.0});
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.acquire(), Admission::kShedTimeout);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 20);
  const auto counters = queue.counters();
  EXPECT_EQ(counters.blocked, 1u);
  EXPECT_EQ(counters.shed_timeout, 1u);
  EXPECT_EQ(counters.submitted, counters.admitted + counters.shed());
}

TEST(AdmissionQueue, BlockPolicyWakesOnRelease) {
  AdmissionQueue queue(AdmissionConfig{
      .depth = 1, .policy = OverloadPolicy::kBlock, .block_timeout_ms = 10000.0});
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);
  std::thread releaser([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.release();
  });
  // Well under the 10 s deadline: the release wakes the waiter.
  EXPECT_EQ(queue.acquire(), Admission::kAdmitted);
  releaser.join();
  EXPECT_EQ(queue.counters().blocked, 1u);
}

TEST(AdmissionQueue, WatermarksAddHysteresisToTheOverloadSignal) {
  AdmissionQueue queue(AdmissionConfig{
      .depth = 8, .high_watermark = 6, .low_watermark = 2});
  for (int i = 0; i < 5; ++i) ASSERT_EQ(queue.acquire(), Admission::kAdmitted);
  EXPECT_FALSE(queue.overloaded());
  ASSERT_EQ(queue.acquire(), Admission::kAdmitted);  // depth 6: crosses high
  EXPECT_TRUE(queue.overloaded());
  queue.release(3);  // depth 3: between the marks — still overloaded
  EXPECT_TRUE(queue.overloaded());
  queue.release(1);  // depth 2: back at low — clears
  EXPECT_FALSE(queue.overloaded());
  EXPECT_EQ(queue.counters().overload_entries, 1u);
}

TEST(AdmissionQueue, DefaultWatermarksDeriveFromDepth) {
  AdmissionQueue queue(AdmissionConfig{.depth = 8});
  EXPECT_EQ(queue.config().high_watermark, 6u);  // 3·depth/4
  EXPECT_EQ(queue.config().low_watermark, 4u);   // depth/2
}

TEST(AdmissionQueue, CloseShedsNewcomersAndWakesBlockedWaiters) {
  AdmissionQueue queue(AdmissionConfig{
      .depth = 1, .policy = OverloadPolicy::kBlock, .block_timeout_ms = 10000.0});
  ASSERT_EQ(queue.acquire(), Admission::kAdmitted);
  std::promise<Admission> verdict;
  std::thread waiter([&queue, &verdict] { verdict.set_value(queue.acquire()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it block
  queue.close();
  EXPECT_EQ(verdict.get_future().get(), Admission::kShedClosed);
  waiter.join();
  EXPECT_EQ(queue.acquire(), Admission::kShedClosed);
  const auto counters = queue.counters();
  EXPECT_EQ(counters.shed_closed, 2u);
  EXPECT_EQ(counters.submitted, counters.admitted + counters.shed());
}

TEST(AdmissionQueue, InvalidConfigsAndOverReleaseThrow) {
  EXPECT_THROW(AdmissionQueue(AdmissionConfig{.depth = 0}), std::invalid_argument);
  EXPECT_THROW(AdmissionQueue(AdmissionConfig{.depth = 4, .block_timeout_ms = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(AdmissionQueue(AdmissionConfig{.depth = 4, .high_watermark = 2,
                                              .low_watermark = 3}),
               std::invalid_argument);
  EXPECT_THROW(AdmissionQueue(AdmissionConfig{.depth = 4, .high_watermark = 5,
                                              .low_watermark = 1}),
               std::invalid_argument);
  AdmissionQueue queue(AdmissionConfig{.depth = 4});
  ASSERT_EQ(queue.acquire(), Admission::kAdmitted);
  EXPECT_THROW(queue.release(2), std::logic_error);
}

TEST(AdmissionQueue, PolicyNamesRoundTrip) {
  EXPECT_EQ(server::overload_policy_name(OverloadPolicy::kShed), "shed");
  EXPECT_EQ(server::overload_policy_name(OverloadPolicy::kBlock), "block");
  EXPECT_EQ(server::overload_policy_from_name("shed"), OverloadPolicy::kShed);
  EXPECT_EQ(server::overload_policy_from_name("reject"), OverloadPolicy::kShed);
  EXPECT_EQ(server::overload_policy_from_name("block"), OverloadPolicy::kBlock);
  EXPECT_EQ(server::overload_policy_from_name("wait"), OverloadPolicy::kBlock);
  EXPECT_THROW((void)server::overload_policy_from_name("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batch fusion (PlanService::plan_fused)
// ---------------------------------------------------------------------------

TEST(PlanFused, BitIdenticalToIndependentPlansAcrossStrategiesAndModels) {
  // The acceptance gate of the fusion layer: K requests over one tree at
  // different memory bounds, every strategy, both memory models — the
  // fused batch must match K independent cache-free computes bit for bit.
  const core::Strategy strategies[] = {
      core::Strategy::kPostOrderMinIo, core::Strategy::kOptMinMem,
      core::Strategy::kRecExpand, core::Strategy::kFullRecExpand};
  const core::MemoryModel models[] = {core::MemoryModel::kMaxInOut,
                                      core::MemoryModel::kSumInOut};
  const double bounds[] = {1.05, 1.3, 2.0};

  std::vector<PlanRequest> batch;
  std::int64_t id = 0;
  for (const auto model : models)
    for (const auto strategy : strategies)
      for (const double lb : bounds) {
        PlanRequest request = synth_request(++id, /*seed=*/77, /*nodes=*/120, lb);
        request.model = model;
        request.strategy = strategy;
        batch.push_back(request);
      }

  PlanService fused_service(ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false});
  const std::vector<PlanResponse> fused = fused_service.plan_fused(batch);
  ASSERT_EQ(fused.size(), batch.size());

  PlanService independent(ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(fused[i].stats->ok) << fused[i].stats->error;
    EXPECT_EQ(fused[i].served, Served::kFused);
    EXPECT_EQ(fused[i].id, batch[i].id);
    const PlanResponse reference = independent.plan(batch[i]);
    ASSERT_TRUE(reference.stats->ok) << reference.stats->error;
    EXPECT_TRUE(service::identical(*fused[i].stats, *reference.stats))
        << "strategy " << core::strategy_name(batch[i].strategy) << " lb "
        << batch[i].memory_lb;
  }
  EXPECT_EQ(fused_service.stats().fused, batch.size());
  EXPECT_NO_THROW(fused_service.audit(/*quiescent=*/true));
}

TEST(PlanFused, SingletonGroupsTakeTheOrdinaryServePath) {
  PlanService planner(ServiceConfig{.threads = 1});
  // Different explicit seeds: different trees, no group to fuse.
  const std::vector<PlanRequest> batch = {synth_request(1, 101), synth_request(2, 102)};
  const std::vector<PlanResponse> responses = planner.plan_fused(batch);
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.stats->ok) << response.stats->error;
    EXPECT_EQ(response.served, Served::kComputed);
  }
  EXPECT_EQ(planner.stats().fused, 0u);
}

TEST(PlanFused, WarmCacheStillAnswersFusedMembers) {
  PlanService planner(ServiceConfig{.threads = 1});
  const PlanRequest warm = synth_request(1, 55, 120, 1.3);
  const PlanResponse seeded = planner.plan(warm);
  ASSERT_TRUE(seeded.stats->ok);

  std::vector<PlanRequest> batch = {warm, warm, warm};
  batch[1].id = 2;
  batch[1].memory_lb = 1.6;  // same tree, new bound: a real fused compute
  batch[2].id = 3;
  batch[2].memory_lb = 1.9;
  const std::vector<PlanResponse> responses = planner.plan_fused(batch);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].served, Served::kCached);
  EXPECT_EQ(responses[0].stats.get(), seeded.stats.get());  // the same object
  EXPECT_EQ(responses[1].served, Served::kFused);
  EXPECT_EQ(responses[2].served, Served::kFused);
  EXPECT_NO_THROW(planner.audit(/*quiescent=*/true));
}

TEST(PlanFused, MemberFailuresStayPerMember) {
  PlanService planner(ServiceConfig{.threads = 1});
  std::vector<PlanRequest> batch = {synth_request(1, 33), synth_request(2, 33),
                                    synth_request(3, 33)};
  batch[1].page_size = 16;  // paged replay without a parallel config: invalid
  batch[2].memory = 1;      // absolute bound below LB: resolve_memory fails
  const std::vector<PlanResponse> responses = planner.plan_fused(batch);
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_TRUE(responses[0].stats->ok) << responses[0].stats->error;
  EXPECT_FALSE(responses[1].stats->ok);
  EXPECT_NE(responses[1].stats->error.find("page_size"), std::string::npos);
  EXPECT_FALSE(responses[2].stats->ok);
  EXPECT_NO_THROW(planner.audit(/*quiescent=*/true));
}

TEST(RecExpandSharedPeaks, OverloadMatchesSelfComputedPeaks) {
  util::Rng rng(9);
  const core::Tree tree = test::small_random_tree(150, 50, rng);
  const std::vector<core::Weight> peaks = core::opt_minmem_all_peaks(tree);
  core::RecExpandOptions options;
  options.max_expansions_per_node = 2;
  for (const double factor : {1.05, 1.2, 1.6}) {
    const auto memory = static_cast<core::Weight>(static_cast<double>(peaks.back()) * factor);
    const core::RecExpandResult direct = core::rec_expand(tree, memory, options);
    const core::RecExpandResult shared = core::rec_expand(tree, memory, options, peaks);
    EXPECT_EQ(direct.schedule, shared.schedule);
    EXPECT_EQ(direct.evaluation.io_volume, shared.evaluation.io_volume);
    EXPECT_EQ(direct.expansion_volume, shared.expansion_volume);
    EXPECT_EQ(direct.expansions, shared.expansions);
    EXPECT_EQ(direct.final_peak, shared.final_peak);
  }
}

TEST(RecExpandSharedPeaks, WrongSizedPeaksThrow) {
  util::Rng rng(10);
  const core::Tree tree = test::small_random_tree(40, 50, rng);
  std::vector<core::Weight> peaks = core::opt_minmem_all_peaks(tree);
  peaks.pop_back();
  EXPECT_THROW((void)core::rec_expand(tree, peaks.back() * 2, core::RecExpandOptions{}, peaks),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PlanServer end-to-end
// ---------------------------------------------------------------------------

TEST(PlanServer, OverloadStormShedsButNeverLosesAFuture) {
  // Offered load far beyond capacity against a tiny admission queue: the
  // depth bound must hold, the excess must shed as ok=false (never an
  // exception, never unbounded queueing), and every single future must
  // resolve. Run under TSan like every suite.
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false};
  config.workers = 1;
  config.admission.depth = 8;
  config.fuse = false;  // unique seeds anyway; keep dispatches 1:1

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::future<ServerResponse>> futures(
      static_cast<std::size_t>(kProducers * kPerProducer));
  {
    PlanServer srv(config);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&srv, &futures, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const int index = p * kPerProducer + i;
          PlanRequest request = synth_request(index + 1, static_cast<std::uint64_t>(index + 1),
                                              /*nodes=*/300);
          request.tenant = "tenant-" + std::to_string(p);
          futures[static_cast<std::size_t>(index)] = srv.submit(std::move(request));
        }
      });
    }
    for (auto& producer : producers) producer.join();
    srv.drain();

    const ServerStats stats = srv.stats();
    EXPECT_EQ(stats.admission.submitted, static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_EQ(stats.admission.submitted, stats.admission.admitted + stats.admission.shed());
    EXPECT_LE(stats.admission.peak, config.admission.depth);  // the bound held
    EXPECT_GT(stats.admission.shed(), 0u);                    // overload really shed
    EXPECT_EQ(stats.dispatched, stats.admission.admitted);    // drained completely
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_NO_THROW(srv.service().audit(/*quiescent=*/true));

    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    for (auto& future : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
      const ServerResponse response = future.get();
      if (response.shed) {
        ++shed;
        EXPECT_FALSE(response.plan.stats->ok);
        EXPECT_EQ(response.plan.served, Served::kShed);
        EXPECT_EQ(response.dispatch_seq, 0u);
      } else {
        ++ok;
        EXPECT_TRUE(response.plan.stats->ok) << response.plan.stats->error;
        EXPECT_GT(response.dispatch_seq, 0u);
      }
    }
    EXPECT_EQ(ok, stats.admission.admitted);
    EXPECT_EQ(shed, stats.admission.shed());
    // Re-read futures vector outside the loop would move-from twice; done.
  }
}

TEST(PlanServer, ShedResponseCarriesTheReason) {
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1};
  config.workers = 1;
  config.admission.depth = 1;

  PlanServer srv(config);
  auto plug = srv.submit(plug_request("plug"));
  wait_for_dispatches(srv, 1);  // the worker is busy; its slot is released

  PlanRequest queued = synth_request(2, 9, 80);
  queued.tenant = "acme";
  auto waiting = srv.submit(queued);  // holds the only slot

  PlanRequest rejected = synth_request(3, 10, 80);
  rejected.tenant = "acme";
  const ServerResponse shed = srv.submit(rejected).get();  // resolves immediately
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.tenant, "acme");
  EXPECT_EQ(shed.plan.served, Served::kShed);
  EXPECT_FALSE(shed.plan.stats->ok);
  EXPECT_NE(shed.plan.stats->error.find("admission queue at capacity"), std::string::npos);
  EXPECT_EQ(shed.dispatch_seq, 0u);
  EXPECT_EQ(shed.plan.id, 3);

  srv.drain();
  EXPECT_TRUE(plug.get().plan.stats->ok);
  EXPECT_TRUE(waiting.get().plan.stats->ok);
}

TEST(PlanServer, EqualWeightTenantsInterleaveUnderBacklog) {
  // One worker, a slow plug on it, then a hot tenant's backlog of 30 and a
  // cold tenant's 10 staged behind it. Equal weights: DRR alternates, so
  // every cold request dispatches within the first ~2k slots — the cold
  // tenant is never starved behind the hot one's queue.
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1};
  config.workers = 1;
  config.fuse = false;

  PlanServer srv(config);
  auto plug = srv.submit(plug_request("plug"));
  wait_for_dispatches(srv, 1);

  std::vector<std::future<ServerResponse>> hot;
  std::vector<std::future<ServerResponse>> cold;
  for (int i = 0; i < 30; ++i) {
    PlanRequest request = synth_request(100 + i, static_cast<std::uint64_t>(100 + i), 80);
    request.tenant = "hot";
    hot.push_back(srv.submit(std::move(request)));
  }
  for (int i = 0; i < 10; ++i) {
    PlanRequest request = synth_request(200 + i, static_cast<std::uint64_t>(200 + i), 80);
    request.tenant = "cold";
    cold.push_back(srv.submit(std::move(request)));
  }
  srv.drain();
  (void)plug.get();

  std::vector<std::uint64_t> cold_seqs;
  for (auto& future : cold) {
    const ServerResponse response = future.get();
    ASSERT_TRUE(response.plan.stats->ok) << response.plan.stats->error;
    cold_seqs.push_back(response.dispatch_seq);
  }
  std::sort(cold_seqs.begin(), cold_seqs.end());
  for (std::size_t k = 0; k < cold_seqs.size(); ++k) {
    // k-th cold dispatch within ~2(k+1) of the start (+ plug + slack for
    // any dispatches that slipped in while the backlog was being staged).
    EXPECT_LE(cold_seqs[k], 2 * (k + 1) + 5)
        << "cold request " << k << " starved behind the hot backlog";
  }
  for (auto& future : hot) EXPECT_TRUE(future.get().plan.stats->ok);

  const ServerStats stats = srv.stats();
  bool saw_hot = false;
  bool saw_cold = false;
  for (const auto& tenant : stats.tenants) {
    if (tenant.tenant == "hot") {
      saw_hot = true;
      EXPECT_EQ(tenant.pushed, 30u);
      EXPECT_EQ(tenant.served, 30u);
    }
    if (tenant.tenant == "cold") {
      saw_cold = true;
      EXPECT_EQ(tenant.pushed, 10u);
      EXPECT_EQ(tenant.served, 10u);
    }
  }
  EXPECT_TRUE(saw_hot);
  EXPECT_TRUE(saw_cold);
}

TEST(PlanServer, WeightsSkewTheDispatchShare) {
  // hot at weight 3 vs cold at weight 1, both backlogged behind a plug:
  // the first dispatch window must be split roughly 3:1.
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1};
  config.workers = 1;
  config.fuse = false;
  config.weights = {{"hot", 3.0}, {"cold", 1.0}};

  PlanServer srv(config);
  auto plug = srv.submit(plug_request("plug"));
  wait_for_dispatches(srv, 1);

  std::vector<std::future<ServerResponse>> futures;
  for (int i = 0; i < 24; ++i) {
    PlanRequest request = synth_request(300 + i, static_cast<std::uint64_t>(300 + i), 80);
    request.tenant = "hot";
    futures.push_back(srv.submit(std::move(request)));
  }
  for (int i = 0; i < 8; ++i) {
    PlanRequest request = synth_request(400 + i, static_cast<std::uint64_t>(400 + i), 80);
    request.tenant = "cold";
    futures.push_back(srv.submit(std::move(request)));
  }
  srv.drain();
  (void)plug.get();

  // Count the split among the first 16 post-plug dispatches: exact DRR
  // gives hot 12 / cold 4; allow slack for dispatches that slipped in
  // while the backlog was still being staged.
  int hot_early = 0;
  int cold_early = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServerResponse response = futures[i].get();
    ASSERT_TRUE(response.plan.stats->ok) << response.plan.stats->error;
    if (response.dispatch_seq >= 2 && response.dispatch_seq <= 17) {
      (i < 24 ? hot_early : cold_early)++;
    }
  }
  EXPECT_GE(hot_early, 10);
  EXPECT_LE(cold_early, 6);
  EXPECT_GE(cold_early, 2);  // ...but never starved outright
}

TEST(PlanServer, FusesQueuedSameTreeRequestsAndStaysBitIdentical) {
  // A slow plug from tenant "a" with an in-flight cap of 1 keeps the
  // worker from popping further "a" requests until the plug completes, so
  // the six same-tree requests staged behind it dispatch as one fused
  // group regardless of timing.
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false};
  config.workers = 1;
  config.tenant_inflight_cap = 1;
  config.fuse_limit = 16;

  PlanServer srv(config);
  auto plug = srv.submit(plug_request("a"));
  wait_for_dispatches(srv, 1);

  const double bounds[] = {1.05, 1.2, 1.4, 1.6, 1.8, 2.0};
  std::vector<PlanRequest> requests;
  std::vector<std::future<ServerResponse>> futures;
  std::int64_t id = 10;
  for (const double lb : bounds) {
    PlanRequest request = synth_request(++id, /*seed=*/88, /*nodes=*/150, lb);
    request.tenant = "a";
    requests.push_back(request);
    futures.push_back(srv.submit(std::move(request)));
  }
  srv.drain();
  ASSERT_TRUE(plug.get().plan.stats->ok);

  const ServerStats stats = srv.stats();
  EXPECT_GE(stats.fused_groups, 1u);
  EXPECT_GE(stats.fused_requests, std::size(bounds) - 1);  // one may lead alone at worst
  EXPECT_GE(srv.service().stats().fused, std::size(bounds) - 1);

  PlanService independent(ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServerResponse response = futures[i].get();
    ASSERT_TRUE(response.plan.stats->ok) << response.plan.stats->error;
    EXPECT_GT(response.dispatch_seq, 0u);
    const PlanResponse reference = independent.plan(requests[i]);
    ASSERT_TRUE(reference.stats->ok);
    EXPECT_TRUE(service::identical(*response.plan.stats, *reference.stats))
        << "memory_lb " << requests[i].memory_lb;
  }
  EXPECT_NO_THROW(srv.service().audit(/*quiescent=*/true));
}

TEST(PlanServer, DestructionDrainsEveryAdmittedFuture) {
  std::vector<std::future<ServerResponse>> futures;
  {
    ServerConfig config;
    config.service = ServiceConfig{.threads = 1};
    config.workers = 1;
    config.admission.depth = 64;
    PlanServer srv(config);
    for (int i = 0; i < 20; ++i)
      futures.push_back(srv.submit(synth_request(i + 1, static_cast<std::uint64_t>(i + 1), 80)));
  }  // drain-then-stop: the destructor serves everything admitted
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const ServerResponse response = future.get();
    EXPECT_FALSE(response.shed);
    EXPECT_TRUE(response.plan.stats->ok) << response.plan.stats->error;
  }
}

TEST(PlanServer, BlockPolicySmokeEveryFutureResolves) {
  ServerConfig config;
  config.service = ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false};
  config.workers = 1;
  config.admission.depth = 2;
  config.admission.policy = OverloadPolicy::kBlock;
  config.admission.block_timeout_ms = 20.0;
  config.fuse = false;

  std::vector<std::future<ServerResponse>> futures;
  PlanServer srv(config);
  for (int i = 0; i < 20; ++i)
    futures.push_back(srv.submit(synth_request(i + 1, static_cast<std::uint64_t>(i + 1), 300)));
  srv.drain();

  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  for (auto& future : futures) (future.get().shed ? shed : ok)++;
  const ServerStats stats = srv.stats();
  EXPECT_EQ(ok + shed, 20u);
  EXPECT_EQ(stats.admission.submitted, stats.admission.admitted + stats.admission.shed());
  EXPECT_EQ(ok, stats.admission.admitted);
  // Timed-out admissions (if any) shed with the timeout verdict, not full.
  EXPECT_EQ(stats.admission.shed_full, 0u);
}

// ---------------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------------

TEST(ServerRequests, TenantDecodesFromJsonlAndCsv) {
  const PlanRequest json =
      service::request_from_json(R"({"id": 3, "tenant": "acme", "nodes": 50})");
  EXPECT_EQ(json.tenant, "acme");
  EXPECT_EQ(json.id, 3);

  std::istringstream csv("id,tenant,nodes\n1,acme,50\n2,globex,60\n");
  const std::vector<PlanRequest> rows = service::read_requests_csv(csv);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tenant, "acme");
  EXPECT_EQ(rows[1].tenant, "globex");
  EXPECT_EQ(rows[1].nodes, 60u);
}

TEST(ServerRequests, ServedNamesCoverTheServerClasses) {
  EXPECT_EQ(service::served_name(Served::kFused), "fused");
  EXPECT_EQ(service::served_name(Served::kShed), "shed");
}

TEST(ServerRequests, TreeIdentityGroupsByMaterializedTree) {
  const std::uint64_t seed = 7;
  PlanRequest a = synth_request(1, seed);
  PlanRequest b = synth_request(2, seed, /*nodes=*/120, /*memory_lb=*/1.9);
  b.strategy = core::Strategy::kOptMinMem;
  b.tenant = "other";  // routing metadata never affects the identity
  EXPECT_EQ(service::tree_identity(a, a.seed), service::tree_identity(b, b.seed));

  PlanRequest c = synth_request(3, seed + 1);
  EXPECT_NE(service::tree_identity(a, a.seed), service::tree_identity(c, c.seed));
  PlanRequest d = synth_request(4, seed);
  d.model = core::MemoryModel::kSumInOut;  // different model: different tree
  EXPECT_NE(service::tree_identity(a, a.seed), service::tree_identity(d, d.seed));
}

}  // namespace
}  // namespace ooctree
