// Differential suite for the paged engine's disk pipeline
// (write_queue_depth / prefetch_window on ParallelConfig).
//
// The pipeline is strictly additive: both knobs at zero must reproduce the
// synchronous engine bit-for-bit (same code path, same RNG draws), with a
// disk model and without one. On top of that baseline the suite pins the
// pipelined accounting contracts:
//   * the write queue never holds more than write_queue_depth pending
//     transfers, and an effectively unbounded queue never stalls a worker;
//   * device-time conservation — disk_read_time + disk_write_time is the
//     pure transfer time, read_stall + write_stall is what workers actually
//     waited, and the pipeline can only hide time, not invent it;
//   * the prefetch ledger balances (issued == useful + wasted) and
//     prefetched pages are real reads charged to the shared disk;
//   * page accounting (write-at-most-once, frame bounds) survives the
//     asynchronous paths unchanged.
// The knobs are validated identically in the unit engines
// (simulate_parallel / simulate_parallel_reference) but inert there — the
// suite pins that parity too, so a future unit-engine disk model cannot
// silently diverge from the scan oracle.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/iosim/pager.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::EvictionPolicy;
using core::Tree;
using core::Weight;
using parallel::PagedParallelConfig;
using parallel::PagedParallelResult;
using parallel::ParallelConfig;
using parallel::ParallelResult;
using parallel::Priority;
using parallel::simulate_parallel;
using parallel::simulate_parallel_paged;
using parallel::simulate_parallel_reference;

void expect_base_identical(const ParallelResult& a, const ParallelResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.io_volume, b.io_volume) << label;
  EXPECT_EQ(a.io, b.io) << label;
  EXPECT_EQ(a.peak_resident, b.peak_resident) << label;
  EXPECT_EQ(a.start_order, b.start_order) << label;
  EXPECT_EQ(a.start_time, b.start_time) << label;
  EXPECT_EQ(a.finish_time, b.finish_time) << label;
  EXPECT_EQ(a.busy_time, b.busy_time) << label;
  EXPECT_EQ(a.failed_starts, b.failed_starts) << label;
}

void expect_paged_identical(const PagedParallelResult& a, const PagedParallelResult& b,
                            const std::string& label) {
  expect_base_identical(a.base, b.base, label);
  EXPECT_EQ(a.frames, b.frames) << label;
  EXPECT_EQ(a.pages_written, b.pages_written) << label;
  EXPECT_EQ(a.pages_read, b.pages_read) << label;
  EXPECT_EQ(a.pages_dropped_clean, b.pages_dropped_clean) << label;
  EXPECT_EQ(a.eviction_events, b.eviction_events) << label;
  EXPECT_EQ(a.peak_frames_used, b.peak_frames_used) << label;
  EXPECT_EQ(a.read_transfers, b.read_transfers) << label;
  EXPECT_EQ(a.read_stall, b.read_stall) << label;
  EXPECT_EQ(a.write_stall, b.write_stall) << label;
  EXPECT_EQ(a.write_queue_peak, b.write_queue_peak) << label;
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued) << label;
  EXPECT_EQ(a.prefetch_useful, b.prefetch_useful) << label;
  EXPECT_EQ(a.prefetch_wasted, b.prefetch_wasted) << label;
  EXPECT_EQ(a.disk_read_time, b.disk_read_time) << label;
  EXPECT_EQ(a.disk_write_time, b.disk_write_time) << label;
}

PagedParallelConfig paged_config(const ParallelConfig& base, Weight page_size) {
  PagedParallelConfig c;
  c.base = base;
  c.page_size = page_size;
  return c;
}

std::int64_t total_pages_of(const Tree& t, Weight page) {
  std::int64_t total = 0;
  for (const core::NodeId v : t.postorder()) total += iosim::page_count(t.weight(v), page);
  return total;
}

// Both knobs zero is the synchronous engine bit-for-bit: explicit zeros
// against a config that never mentions the pipeline, with a disk model
// attached, across workers x policies x memory levels (kRandom included —
// the eviction draw sequences must coincide, so the pipeline gate may not
// consume RNG state). The synchronous stall contract rides along: every
// transfer charges its full device time to the consuming worker.
TEST(DiskPipeline, ZeroKnobsBitIdenticalToSynchronousEngine) {
  util::Rng rng(27001);
  const std::vector<EvictionPolicy> policies{EvictionPolicy::kBelady, EvictionPolicy::kLru,
                                             EvictionPolicy::kRandom};
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 14, rng)
                                  : test::small_random_wide_tree(40, 14, rng);
    const Weight page = 3;
    const Weight min_frames = iosim::min_feasible_frames(t, page);
    for (const Weight slack : {Weight{0}, Weight{4}}) {
      for (const int workers : {1, 2, 4, 8}) {
        for (const EvictionPolicy policy : policies) {
          ParallelConfig base;
          base.workers = workers;
          base.memory = (min_frames + slack) * page;
          base.evict = policy;
          base.seed = 91u + static_cast<std::uint64_t>(rep);
          PagedParallelConfig plain = paged_config(base, page);
          plain.disk = iosim::DiskModel{0.5, 8.0};
          PagedParallelConfig zeros = plain;
          zeros.base.write_queue_depth = 0;
          zeros.base.prefetch_window = 0;
          const PagedParallelResult a = simulate_parallel_paged(t, plain);
          const PagedParallelResult b = simulate_parallel_paged(t, zeros);
          const std::string label = "rep=" + std::to_string(rep) +
                                    " w=" + std::to_string(workers) +
                                    " slack=" + std::to_string(slack) +
                                    " policy=" + core::eviction_policy_name(policy);
          expect_paged_identical(a, b, label);
          // Synchronous stall contract: reads charge the worker their full
          // device time, writes are free and nothing is ever queued.
          EXPECT_EQ(a.read_stall, a.disk_read_time) << label;
          EXPECT_EQ(a.disk_write_time, 0.0) << label;
          EXPECT_EQ(a.write_stall, 0.0) << label;
          EXPECT_EQ(a.write_queue_peak, 0) << label;
          EXPECT_EQ(a.prefetch_issued, 0) << label;
        }
      }
    }
  }
}

// Without a disk model the knobs are validated but inert — in the paged
// engine and in both unit engines, which must also stay bit-identical to
// each other (the scan oracle) for every knob value.
TEST(DiskPipeline, KnobsInertWithoutDiskAcrossEngines) {
  util::Rng rng(27011);
  for (int rep = 0; rep < 4; ++rep) {
    const Tree t = test::small_random_tree(36, 12, rng);
    ParallelConfig base;
    base.workers = 3;
    base.memory = t.min_feasible_memory() + 5;
    base.seed = 7u + static_cast<std::uint64_t>(rep);
    for (const int depth : {0, 2, 64}) {
      for (const int window : {0, 3, 64}) {
        ParallelConfig knobs = base;
        knobs.write_queue_depth = depth;
        knobs.prefetch_window = window;
        const std::string label = "rep=" + std::to_string(rep) + " d=" + std::to_string(depth) +
                                  " pf=" + std::to_string(window);
        expect_base_identical(simulate_parallel(t, knobs), simulate_parallel(t, base), label);
        expect_base_identical(simulate_parallel_reference(t, knobs), simulate_parallel(t, knobs),
                              label + " (scan oracle)");
        const PagedParallelResult paged = simulate_parallel_paged(t, paged_config(knobs, 2));
        expect_paged_identical(paged, simulate_parallel_paged(t, paged_config(base, 2)), label);
        EXPECT_EQ(paged.write_queue_peak, 0) << label;
        EXPECT_EQ(paged.prefetch_issued, 0) << label;
      }
    }
  }
}

// Negative knobs are rejected by every engine with the shared message.
TEST(DiskPipeline, NegativeKnobsRejectedByAllEngines) {
  util::Rng rng(27013);
  const Tree t = test::small_random_tree(12, 6, rng);
  for (const bool negative_window : {false, true}) {
    ParallelConfig c;
    c.memory = t.min_feasible_memory();
    if (negative_window)
      c.prefetch_window = -1;
    else
      c.write_queue_depth = -1;
    EXPECT_THROW(simulate_parallel(t, c), std::invalid_argument);
    EXPECT_THROW(simulate_parallel_reference(t, c), std::invalid_argument);
    EXPECT_THROW(simulate_parallel_paged(t, paged_config(c, 2)), std::invalid_argument);
  }
}

// The write queue is bounded by its knob: after any enqueue at most
// write_queue_depth transfers are pending (write_queue_peak ledger), and
// an effectively unbounded queue never back-pressures a worker. Page
// accounting survives the asynchronous path: write-at-most-once (written
// plus dropped-clean never exceeds the page population per eviction
// history), frames stay bounded, and the device-time ledgers are
// non-negative and consistent with the transfer counts.
TEST(DiskPipeline, WriteQueueBoundedAndConserving) {
  util::Rng rng(27017);
  for (int rep = 0; rep < 6; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(40, 14, rng)
                                  : test::small_random_wide_tree(40, 14, rng);
    const Weight page = 2;
    const Weight memory = iosim::min_feasible_frames(t, page) * page;
    for (const int workers : {1, 2, 4}) {
      for (const int depth : {1, 2, 4, 1 << 20}) {
        ParallelConfig base;
        base.workers = workers;
        base.memory = memory;
        base.seed = 5u + static_cast<std::uint64_t>(rep);
        base.write_queue_depth = depth;
        PagedParallelConfig cfg = paged_config(base, page);
        cfg.disk = iosim::DiskModel{0.25, 4.0};
        const PagedParallelResult r = simulate_parallel_paged(t, cfg);
        const std::string label = "rep=" + std::to_string(rep) + " w=" + std::to_string(workers) +
                                  " depth=" + std::to_string(depth);
        ASSERT_TRUE(r.base.feasible) << label;
        EXPECT_LE(r.write_queue_peak, depth) << label;
        if (depth == 1 << 20) {
          EXPECT_EQ(r.write_stall, 0.0) << label;
        }
        EXPECT_GE(r.write_stall, 0.0) << label;
        // Dirty pages flush exactly once: the written count can never
        // exceed the page population, however the queue reorders flushes.
        EXPECT_LE(r.pages_written, total_pages_of(t, page)) << label;
        EXPECT_LE(r.peak_frames_used, r.frames) << label;
        // Every queued flush is pure device time on the shared disk.
        if (r.pages_written > 0) {
          EXPECT_GT(r.disk_write_time, 0.0) << label;
        } else {
          EXPECT_EQ(r.disk_write_time, 0.0) << label;
        }
      }
    }
  }
}

// Device-time conservation: with a single worker the pipeline can hide
// transfer time under compute but never invent capacity — stall time is
// bounded by the pure device time of all transfers. (With several workers
// one busy device can stall many workers at once, so no such bound holds;
// only the single-worker ledger is an invariant.) The prefetch ledger
// balances exactly for every worker count: each page fetched ahead is
// later consumed or evicted, never both, never neither.
TEST(DiskPipeline, StallConservationAndPrefetchLedger) {
  util::Rng rng(27023);
  std::int64_t issued_total = 0;
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(48, 14, rng)
                                  : test::small_random_wide_tree(48, 14, rng);
    const Weight page = 2;
    const Weight memory = (iosim::min_feasible_frames(t, page) + 2) * page;
    for (const int workers : {1, 2, 4}) {
      ParallelConfig base;
      base.workers = workers;
      base.memory = memory;
      base.seed = 11u + static_cast<std::uint64_t>(rep);
      base.write_queue_depth = 4;
      base.prefetch_window = 4;
      PagedParallelConfig cfg = paged_config(base, page);
      cfg.disk = iosim::DiskModel{0.5, 4.0};
      const PagedParallelResult r = simulate_parallel_paged(t, cfg);
      const std::string label = "rep=" + std::to_string(rep) + " w=" + std::to_string(workers);
      ASSERT_TRUE(r.base.feasible) << label;
      if (workers == 1) {
        EXPECT_LE(r.read_stall + r.write_stall, r.disk_read_time + r.disk_write_time + 1e-9)
            << label;
      }
      EXPECT_EQ(r.prefetch_issued, r.prefetch_useful + r.prefetch_wasted) << label;
      // Prefetched pages are real reads on the shared device, so they are
      // part of the read ledger, not free.
      EXPECT_LE(r.prefetch_issued, r.pages_read) << label;
      issued_total += r.prefetch_issued;
    }
  }
  // The sweep runs at tight memory with a window: prefetching must have
  // actually happened somewhere or the suite is vacuous.
  EXPECT_GT(issued_total, 0);
}

// Under memory pressure with an aggressive window some prefetched pages
// get evicted before their consumer starts — the wasted ledger must see
// them. Aggregated across the sweep so the pin does not hinge on one
// seed's eviction history.
TEST(DiskPipeline, AggressivePrefetchProducesWaste) {
  util::Rng rng(27029);
  std::int64_t wasted_total = 0;
  std::int64_t useful_total = 0;
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(48, 14, rng)
                                  : test::small_random_wide_tree(48, 14, rng);
    const Weight page = 2;
    ParallelConfig base;
    base.workers = 4;
    base.memory = iosim::min_feasible_frames(t, page) * page;
    base.seed = 3u + static_cast<std::uint64_t>(rep);
    base.write_queue_depth = 4;
    base.prefetch_window = 8;
    PagedParallelConfig cfg = paged_config(base, page);
    cfg.disk = iosim::DiskModel{0.5, 2.0};
    const PagedParallelResult r = simulate_parallel_paged(t, cfg);
    ASSERT_TRUE(r.base.feasible) << "rep=" << rep;
    EXPECT_EQ(r.prefetch_issued, r.prefetch_useful + r.prefetch_wasted) << "rep=" << rep;
    wasted_total += r.prefetch_wasted;
    useful_total += r.prefetch_useful;
  }
  EXPECT_GT(wasted_total, 0);
  EXPECT_GT(useful_total, 0);
}

// The point of the pipeline: across a stall-heavy sweep the pipelined
// engine recovers read stall relative to the synchronous configuration
// (same config, knobs zeroed). Individual instances may regress —
// Graham-style anomalies are real — so the pin is aggregate.
TEST(DiskPipeline, PipelineRecoversReadStallInAggregate) {
  util::Rng rng(27031);
  double sync_stall = 0.0;
  double piped_stall = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    const Tree t = (rep % 2 == 0) ? test::small_random_tree(56, 14, rng)
                                  : test::small_random_wide_tree(56, 14, rng);
    const Weight page = 2;
    for (const int workers : {2, 4}) {
      ParallelConfig base;
      base.workers = workers;
      base.memory = std::max<Weight>(static_cast<Weight>(workers) * t.min_feasible_memory(),
                                     iosim::min_feasible_frames(t, page) * page);
      base.priority = Priority::kSequentialOrder;
      base.backfill_depth = 8;
      base.seed = 17u + static_cast<std::uint64_t>(rep);
      PagedParallelConfig sync = paged_config(base, page);
      sync.disk = iosim::DiskModel{0.5, 2.0};
      PagedParallelConfig piped = sync;
      piped.base.write_queue_depth = 4;
      piped.base.prefetch_window = 4;
      const PagedParallelResult s = simulate_parallel_paged(t, sync);
      const PagedParallelResult p = simulate_parallel_paged(t, piped);
      ASSERT_TRUE(s.base.feasible && p.base.feasible) << "rep=" << rep;
      sync_stall += s.read_stall;
      piped_stall += p.read_stall + p.write_stall;
    }
  }
  ASSERT_GT(sync_stall, 0.0);
  EXPECT_LT(piped_stall, sync_stall);
}

}  // namespace
}  // namespace ooctree
