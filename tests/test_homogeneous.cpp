// Tests for the Section 4.2 label machinery on homogeneous trees.
#include <gtest/gtest.h>

#include "src/core/brute_force.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/homogeneous.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/treegen/catalan.hpp"
#include "src/treegen/shapes.hpp"
#include "test_support.hpp"

namespace ooctree {
namespace {

using core::homogeneous_labels;
using core::homogeneous_optimal_io;
using core::kNoNode;
using core::make_tree;
using core::Tree;
using core::Weight;

TEST(Homogeneous, RejectsWeightedTrees) {
  const Tree t = make_tree({{kNoNode, 2}, {0, 1}});
  EXPECT_THROW((void)homogeneous_labels(t, 10), std::invalid_argument);
}

TEST(Homogeneous, LeafLabels) {
  const Tree t = make_tree({{kNoNode, 1}});
  const auto labels = homogeneous_labels(t, 5);
  EXPECT_EQ(labels.l[0], 1);
  EXPECT_EQ(labels.total_io, 0);
}

TEST(Homogeneous, LabelOfBalancedBinaryTree) {
  // Complete binary tree of depth d has l(root) = d + 1 in this model:
  // processing the second child keeps one sibling resident per level.
  for (std::size_t depth = 1; depth <= 5; ++depth) {
    const Tree t = treegen::complete_kary_tree(2, depth, 1);
    const auto labels = homogeneous_labels(t, 1000);
    EXPECT_EQ(labels.l[static_cast<std::size_t>(t.root())], static_cast<Weight>(depth))
        << "depth " << depth;
  }
}

TEST(Homogeneous, LabelOfChainIsOne) {
  const Tree chain = treegen::chain_tree({1, 1, 1, 1, 1});
  EXPECT_EQ(core::homogeneous_min_peak(chain), 1);
}

TEST(Homogeneous, LabelOfStar) {
  // Star with k leaves: children all have l = 1, so l(root) = 1 + (k-1) = k.
  for (std::size_t k = 1; k <= 6; ++k) {
    const Tree star = treegen::star_tree(k, 1, 1);
    EXPECT_EQ(core::homogeneous_min_peak(star), static_cast<Weight>(k));
  }
}

TEST(Homogeneous, PostorderScheduleAchievesW) {
  // Lemma 3 + Lemma 5: POSTORDER's FiF I/O equals W(T) exactly.
  util::Rng rng(301);
  for (int rep = 0; rep < 40; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(14, rng);
    const Weight peak = core::homogeneous_min_peak(t);
    for (Weight m = t.min_feasible_memory(); m <= peak; ++m) {
      const auto labels = homogeneous_labels(t, m);
      EXPECT_EQ(core::simulate_fif(t, labels.postorder, m).io_volume, labels.total_io)
          << t.to_string() << " M=" << m;
    }
  }
}

TEST(Homogeneous, WMatchesBruteForce) {
  // Lemma 5 (lower bound) + Lemma 3 (upper bound): W(T) is the exact
  // optimum; cross-check with exhaustive search over all traversals.
  util::Rng rng(307);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(8, rng);
    const Weight peak = core::homogeneous_min_peak(t);
    for (Weight m = t.min_feasible_memory(); m <= peak; ++m) {
      EXPECT_EQ(homogeneous_optimal_io(t, m), core::brute_force_min_io(t, m).objective)
          << t.to_string() << " M=" << m;
    }
  }
}

TEST(Homogeneous, WideTreesMatchBruteForce) {
  util::Rng rng(311);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = treegen::random_recursive_tree(8, rng);
    const Weight peak = core::homogeneous_min_peak(t);
    for (Weight m = t.min_feasible_memory(); m <= peak; ++m) {
      EXPECT_EQ(homogeneous_optimal_io(t, m), core::brute_force_min_io(t, m).objective);
    }
  }
}

TEST(Homogeneous, ZeroIoAtPeakMemory) {
  util::Rng rng(313);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = treegen::uniform_binary_tree_exact(12, rng);
    const Weight peak = core::homogeneous_min_peak(t);
    EXPECT_EQ(homogeneous_optimal_io(t, peak), 0);
    if (peak > t.min_feasible_memory()) {
      EXPECT_GT(homogeneous_optimal_io(t, peak - 1), 0);
    }
  }
}

TEST(Homogeneous, CLabelsRespectDefinition) {
  util::Rng rng(317);
  const Tree t = treegen::uniform_binary_tree_exact(20, rng);
  const Weight m = std::max<Weight>(t.min_feasible_memory(), core::homogeneous_min_peak(t) / 2);
  const auto labels = homogeneous_labels(t, m);
  EXPECT_EQ(labels.c[static_cast<std::size_t>(t.root())], 0);
  Weight total = 0;
  for (std::size_t v = 0; v < t.size(); ++v) {
    EXPECT_TRUE(labels.c[v] == 0 || labels.c[v] == 1);
    total += labels.w[v];
    // w(v) sums the children's c labels.
    Weight sum_c = 0;
    for (const core::NodeId child : t.children(static_cast<core::NodeId>(v)))
      sum_c += labels.c[static_cast<std::size_t>(child)];
    EXPECT_EQ(labels.w[v], sum_c);
  }
  EXPECT_EQ(labels.total_io, total);
}

TEST(Homogeneous, MonotoneInMemory) {
  util::Rng rng(331);
  const Tree t = treegen::uniform_binary_tree_exact(16, rng);
  Weight previous = std::numeric_limits<Weight>::max();
  for (Weight m = t.min_feasible_memory(); m <= core::homogeneous_min_peak(t); ++m) {
    const Weight io = homogeneous_optimal_io(t, m);
    EXPECT_LE(io, previous);
    previous = io;
  }
}

}  // namespace
}  // namespace ooctree
