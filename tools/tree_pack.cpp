// tree_pack — converts any tree source into a binary .otree snapshot.
//
//   tree_pack --in forest.tree --out forest.otree          # text format
//   tree_pack --in matrix.mtx --out matrix.otree           # multifrontal
//   tree_pack --synth 1000000 --seed 7 --out big.otree     # generator spec
//   tree_pack --probe big.otree                            # header dump
//
// Snapshots load by mmap with zero parsing (core/snapshot.hpp), so packing
// once turns a multi-second text parse into a constant-time map — the
// intended workflow for the 10^6-node instances bench_snapshot_scale runs.
#include <cstdio>
#include <exception>
#include <string>

#include "src/core/snapshot.hpp"
#include "src/core/tree.hpp"
#include "src/core/tree_io.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/sparse/ordering.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/util/args.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ooctree;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void usage(const std::string& program) {
  std::printf(
      "usage: %s --in FILE | --synth N [options] --out FILE.otree\n"
      "       %s --probe FILE.otree\n"
      "\n"
      "  --in FILE        input tree: .mtx (multifrontal assembly tree) or\n"
      "                   '<parent> <weight>' text (core/tree_io.hpp)\n"
      "  --synth N        generate an N-node SYNTH instance instead\n"
      "  --w-lo W         SYNTH minimum weight (default 1)\n"
      "  --w-hi W         SYNTH maximum weight (default 100)\n"
      "  --seed S         SYNTH generator seed (default 20170208)\n"
      "  --model M        memory model: max (default) or sum\n"
      "  --out FILE       .otree snapshot to write\n"
      "  --probe FILE     validate a snapshot and print its header\n",
      program.c_str(), program.c_str());
}

int run(const util::Args& args) {
  if (args.has("help")) {
    usage(args.program());
    return 0;
  }

  if (args.has("probe")) {
    const std::string path = args.get("probe", "");
    const core::SnapshotInfo info = core::probe_snapshot(path);
    std::printf("snapshot   %s\n", path.c_str());
    std::printf("nodes      %llu\n", static_cast<unsigned long long>(info.nodes));
    std::printf("model      %s\n", info.model == core::MemoryModel::kSumInOut ? "sum" : "max");
    std::printf("root       %d\n", info.root);
    std::printf("max_wbar   %lld\n", static_cast<long long>(info.max_wbar));
    std::printf("total_w    %lld\n", static_cast<long long>(info.total_weight));
    std::printf("tree_hash  %016llx\n", static_cast<unsigned long long>(info.tree_hash));
    return 0;
  }

  const std::string out = args.get("out", "");
  if (out.empty()) {
    usage(args.program());
    return 2;
  }
  const std::string model_name = args.get("model", "max");
  const core::MemoryModel model =
      model_name == "sum" ? core::MemoryModel::kSumInOut : core::MemoryModel::kMaxInOut;

  core::Tree tree = [&] {
    if (args.has("synth")) {
      const auto n = static_cast<std::size_t>(args.get_int("synth", 0));
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 20170208)));
      return treegen::synth_instance(n, args.get_int("w-lo", 1), args.get_int("w-hi", 100), rng);
    }
    const std::string in = args.get("in", "");
    if (in.empty()) throw std::runtime_error("tree_pack: need --in FILE or --synth N");
    if (ends_with(in, ".mtx")) {
      const auto pattern = sparse::load_matrix_market(in);
      return sparse::assembly_tree(pattern.permuted(sparse::minimum_degree(pattern)));
    }
    if (ends_with(in, ".otree")) return core::load_snapshot(in);  // re-pack / model change
    return core::load_tree(in);
  }();
  if (tree.memory_model() != model) tree = tree.with_memory_model(model);

  core::save_snapshot(out, tree);
  std::printf("packed %zu nodes -> %s (hash %016llx)\n", tree.size(), out.c_str(),
              static_cast<unsigned long long>(tree.canonical_hash()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Args::parse(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tree_pack: %s\n", e.what());
    return 1;
  }
}
