#!/usr/bin/env python3
"""clang-tidy driver with a ratcheting baseline.

Runs clang-tidy (configuration in .clang-tidy) over every first-party
translation unit in a compile_commands.json and normalises the findings to
(file, check) pairs with occurrence counts. The committed baseline,
tools/tidy_baseline.json, lists the findings we have consciously decided
to tolerate — each entry carries a one-line justification — and the gate
is a ratchet:

  * a finding NOT in the baseline fails the check (new debt is rejected);
  * a baselined finding that has disappeared is reported so the baseline
    can be shrunk (stale entries are not an error, only noise).

Usage:
    python3 tools/run_tidy.py --check [--build-dir build] [--strict]
    python3 tools/run_tidy.py --update-baseline [--build-dir build]
    python3 tools/run_tidy.py --self-test

Exit codes:
    0   clean (or skipped without --strict)
    1   new findings, or clang-tidy itself errored
    77  environment cannot run the check (no clang-tidy, or no
        compile_commands.json); ctest maps this to SKIPPED via
        SKIP_RETURN_CODE, CI's clang-tidy job passes --strict to turn it
        into a hard failure instead.

Registered as the clang_tidy_check ctest (see the Python tooling block in
CMakeLists.txt) next to docs_link_check; --self-test is registered as
tidy_driver_selftest and exercises the diff logic with canned findings so
the gate's behaviour is itself tested on machines without clang-tidy.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "tidy_baseline.json"
SKIP = 77

# warning lines look like:
#   /abs/path/src/core/tree.cpp:42:7: warning: ... [bugprone-foo,bugprone-bar]
DIAG = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<level>warning|error):\s+(?P<msg>.*?)\s+\[(?P<checks>[\w\-.,]+)\]\s*$",
    re.MULTILINE,
)


def find_clang_tidy() -> str | None:
    """The clang-tidy binary: $CLANG_TIDY, then PATH, then versioned names."""
    import os

    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", *(f"clang-tidy-{v}" for v in range(21, 12, -1))):
        if shutil.which(name):
            return name
    return None


def first_party_sources(build_dir: pathlib.Path) -> list[pathlib.Path]:
    """Repo-owned TUs from compile_commands.json: src/, tests/, bench/.

    Third-party TUs (GoogleTest via FetchContent, anything under the build
    tree) are excluded — their findings are not ours to fix.
    """
    db = build_dir / "compile_commands.json"
    entries = json.loads(db.read_text(encoding="utf-8"))
    wanted: list[pathlib.Path] = []
    for entry in entries:
        path = pathlib.Path(entry["file"])
        if not path.is_absolute():
            path = (pathlib.Path(entry["directory"]) / path).resolve()
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            continue
        if rel.parts[0] in ("src", "tests", "bench", "tools"):
            wanted.append(path)
    return sorted(set(wanted))


def normalise(findings_text: str) -> dict[str, int]:
    """Raw clang-tidy output -> {"relpath:check": count}.

    Deduplicated per (file, line, col, check) first, so a header included
    from N translation units contributes each diagnostic site once, then
    aggregated to (file, check) counts — line numbers are deliberately NOT
    part of the baseline key, so unrelated edits above a tolerated finding
    do not churn the baseline.
    """
    sites: set[tuple[str, str, str, str]] = set()
    for m in DIAG.finditer(findings_text):
        path = pathlib.Path(m.group("file"))
        try:
            shown = str(path.resolve().relative_to(REPO_ROOT))
        except ValueError:
            continue  # a system or third-party header slipped past the filter
        for check in m.group("checks").split(","):
            sites.add((shown, m.group("line"), m.group("col"), check))
    counts: dict[str, int] = {}
    for shown, _line, _col, check in sites:
        key = f"{shown}:{check}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline() -> dict[str, int]:
    """Committed baseline -> {"relpath:check": tolerated_count}."""
    if not BASELINE_PATH.exists():
        return {}
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {
        f"{e['file']}:{e['check']}": int(e.get("count", 1))
        for e in data.get("findings", [])
    }


def diff_against_baseline(
    current: dict[str, int], baseline: dict[str, int]
) -> tuple[list[str], list[str]]:
    """(new_findings, stale_entries) — the ratchet.

    A key is NEW if absent from the baseline or exceeding its tolerated
    count; STALE if baselined but no longer observed (or observed fewer
    times). New findings fail the gate; stale entries are advisory.
    """
    new: list[str] = []
    stale: list[str] = []
    for key in sorted(current):
        allowed = baseline.get(key, 0)
        if current[key] > allowed:
            new.append(f"{key} (found {current[key]}, baseline {allowed})")
    for key in sorted(baseline):
        if current.get(key, 0) < baseline[key]:
            stale.append(f"{key} (baseline {baseline[key]}, found {current.get(key, 0)})")
    return new, stale


def run_clang_tidy(tidy: str, build_dir: pathlib.Path) -> tuple[dict[str, int], int]:
    """All findings over the first-party TUs; (counts, tool_failures)."""
    sources = first_party_sources(build_dir)
    if not sources:
        print(f"no first-party sources in {build_dir}/compile_commands.json")
        return {}, 1
    chunks: list[str] = []
    failures = 0
    for i, source in enumerate(sources, start=1):
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", str(source)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            check=False,
        )
        chunks.append(proc.stdout)
        # clang-tidy exits non-zero on compile *errors* (broken include
        # paths, wrong std flag), which means the run is unsound, not that
        # the code has findings.
        if proc.returncode != 0 and "error:" in (proc.stdout + proc.stderr):
            sys.stderr.write(proc.stderr)
            failures += 1
        print(f"  [{i}/{len(sources)}] {source.relative_to(REPO_ROOT)}", flush=True)
    return normalise("\n".join(chunks)), failures


def resolve_build_dir(arg: str | None) -> pathlib.Path | None:
    """The build tree holding compile_commands.json (all presets export it)."""
    candidates = (
        [pathlib.Path(arg)]
        if arg
        else [REPO_ROOT / d for d in ("build", "build-dev", "build-asan", "build-tsan")]
    )
    for cand in candidates:
        if (cand / "compile_commands.json").exists():
            return cand
    return None


def self_test() -> int:
    """Prove the ratchet on canned findings — no clang-tidy required.

    This is what makes the gate trustworthy on machines that skip the real
    run: if the diff logic regressed, this fails everywhere.
    """
    canned = """\
/ROOT/src/core/tree.cpp:10:5: warning: uninitialised thing [bugprone-foo]
/ROOT/src/core/tree.cpp:99:1: warning: same check, new site [bugprone-foo]
/ROOT/src/core/tree.cpp:10:5: warning: duplicate of line one [bugprone-foo]
/ROOT/src/iosim/pager.cpp:7:2: warning: two checks at once [performance-x,bugprone-y]
/usr/include/c++/12/vector:1:1: warning: not ours [bugprone-z]
""".replace("/ROOT", str(REPO_ROOT))
    counts = normalise(canned)
    expect = {
        "src/core/tree.cpp:bugprone-foo": 2,  # three lines, one duplicate site
        "src/iosim/pager.cpp:performance-x": 1,
        "src/iosim/pager.cpp:bugprone-y": 1,
    }
    failures: list[str] = []
    if counts != expect:
        failures.append(f"normalise: got {counts!r}, want {expect!r}")

    baseline = {"src/core/tree.cpp:bugprone-foo": 2, "src/gone.cpp:bugprone-old": 1}
    new, stale = diff_against_baseline(counts, baseline)
    if [n.split(" ")[0] for n in new] != [
        "src/iosim/pager.cpp:bugprone-y",
        "src/iosim/pager.cpp:performance-x",
    ]:
        failures.append(f"diff new-findings: got {new!r}")
    if [s.split(" ")[0] for s in stale] != ["src/gone.cpp:bugprone-old"]:
        failures.append(f"diff stale-entries: got {stale!r}")

    # The ratchet must also catch count REGRESSIONS of a baselined check.
    grown = dict(counts)
    grown["src/core/tree.cpp:bugprone-foo"] = 3
    new2, _ = diff_against_baseline(grown, baseline)
    if not any(n.startswith("src/core/tree.cpp:bugprone-foo") for n in new2):
        failures.append("diff missed a count regression over the baseline")

    # And a clean run against an empty baseline must pass.
    new3, stale3 = diff_against_baseline({}, {})
    if new3 or stale3:
        failures.append("empty-vs-empty must be clean")

    for f in failures:
        print(f"SELF-TEST FAIL: {f}")
    print(f"self-test: {4 - len(failures)}/4 scenarios pass")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail on findings not in tools/tidy_baseline.json")
    mode.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings")
    mode.add_argument("--self-test", action="store_true",
                      help="exercise the diff logic with canned findings")
    parser.add_argument("--build-dir", default=None,
                        help="build tree with compile_commands.json "
                             "(default: first of build, build-dev, build-asan, build-tsan)")
    parser.add_argument("--strict", action="store_true",
                        help="treat a skipped environment as a failure (CI)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    tidy = find_clang_tidy()
    if tidy is None:
        print("clang-tidy not found on PATH (set $CLANG_TIDY to override)")
        return 1 if args.strict else SKIP
    build_dir = resolve_build_dir(args.build_dir)
    if build_dir is None:
        print("no compile_commands.json found; configure a preset first "
              "(all presets export it)")
        return 1 if args.strict else SKIP

    print(f"using {tidy} with {build_dir.relative_to(REPO_ROOT)}/compile_commands.json")
    current, tool_failures = run_clang_tidy(tidy, build_dir)
    if tool_failures:
        print(f"clang-tidy failed to parse {tool_failures} TU(s); run unsound")
        return 1

    if args.update_baseline:
        findings = [
            {"file": key.rsplit(":", 1)[0], "check": key.rsplit(":", 1)[1],
             "count": count, "reason": "TODO: one-line justification"}
            for key, count in sorted(current.items())
        ]
        BASELINE_PATH.write_text(
            json.dumps({"findings": findings}, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {BASELINE_PATH.relative_to(REPO_ROOT)}")
        return 0

    new, stale = diff_against_baseline(current, load_baseline())
    for n in new:
        print(f"NEW: {n}")
    for s in stale:
        print(f"stale baseline entry (shrink it): {s}")
    print(f"{sum(current.values())} finding(s), {len(new)} new, {len(stale)} stale")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
