#!/usr/bin/env python3
"""Smoke test for the plan_service streaming server mode.

Drives `plan_service --serve --stats` over a pipe the way a client would:
writes JSONL requests in two phases, *keeping stdin open* between them, and
requires each phase's responses to arrive before the next phase is written
— proving responses stream incrementally instead of being batched until
EOF. The second phase includes an exact duplicate (must be answered from
the service cache) and a malformed line (must come back ok=false in
submission order, not as a crash). After EOF the end-of-run stats summary
is validated and the exit code must be 2 (at least one failed response).

Usage: server_smoke.py <path-to-plan_service>
Requires only the Python 3 standard library. Exits nonzero on any failure.
"""

import json
import queue
import subprocess
import sys
import threading

TIMEOUT = 60.0  # generous per-phase watchdog; the requests are tiny


def fail(process, message):
    process.kill()
    print(f"server_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]

    process = subprocess.Popen(
        [binary, "--serve", "--stats", "--workers", "1"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    lines = queue.Queue()

    def pump():
        for line in process.stdout:
            lines.put(line.rstrip("\n"))
        lines.put(None)  # EOF marker

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    def send(requests):
        for request in requests:
            process.stdin.write(json.dumps(request) + "\n")
        process.stdin.flush()

    def receive(count):
        """Collects `count` response lines; the watchdog turns a stalled
        (non-incremental) server into a test failure instead of a hang."""
        responses = []
        for _ in range(count):
            try:
                line = lines.get(timeout=TIMEOUT)
            except queue.Empty:
                fail(process, f"timed out waiting for a response (got {len(responses)})")
            if line is None:
                fail(process, "server closed stdout before answering")
            responses.append(json.loads(line))
        return responses

    # Phase 1: three requests; responses must stream back while stdin is
    # still open (ids 2 and 3 share a tree and may fuse — both are fine).
    send([
        {"id": 1, "tenant": "alice", "nodes": 200, "seed": 7, "memory_lb": 1.2},
        {"id": 2, "tenant": "bob", "nodes": 300, "seed": 9, "memory_lb": 1.1},
        {"id": 3, "tenant": "alice", "nodes": 300, "seed": 9, "memory_lb": 1.5},
    ])
    first = receive(3)
    for response in first:
        if not response.get("ok"):
            fail(process, f"phase-1 response not ok: {response}")

    # Phase 2: a duplicate of id 1 (cache hit), a fresh request, and a
    # malformed line that must answer ok=false in order, not crash.
    send([
        {"id": 4, "tenant": "alice", "nodes": 200, "seed": 7, "memory_lb": 1.2},
        {"id": 5, "tenant": "bob", "nodes": 250, "seed": 11},
    ])
    process.stdin.write('{"id": 6, "bogus": 1}\n')
    process.stdin.flush()
    second = receive(3)

    if not second[0].get("ok") or second[0].get("served") != "cached":
        fail(process, f"duplicate was not served from cache: {second[0]}")
    if not second[1].get("ok"):
        fail(process, f"fresh request failed: {second[1]}")
    if second[2].get("ok") or "error" not in second[2]:
        fail(process, f"malformed line did not fail cleanly: {second[2]}")

    ids = [response["id"] for response in first + second]
    if ids != [1, 2, 3, 4, 5, 6]:
        fail(process, f"responses out of submission order: {ids}")

    # EOF: graceful drain, then the end-of-run stats summary.
    process.stdin.close()
    stats_line = lines.get(timeout=TIMEOUT)
    if stats_line is None:
        fail(process, "no stats summary after EOF")
    stats = json.loads(stats_line)
    if stats.get("submitted") != 5 or stats.get("dispatched") != 5:
        fail(process, f"stats disagree with the 5 decoded requests: {stats_line}")
    if stats.get("shed") != 0 or stats.get("queued") != 0:
        fail(process, f"unexpected shedding or leftover queue: {stats_line}")
    if stats.get("service", {}).get("cached", 0) < 1:
        fail(process, f"the duplicate never hit the cache: {stats_line}")
    tenants = {t["tenant"] for t in stats.get("tenants", [])}
    if not {"alice", "bob"} <= tenants:
        fail(process, f"tenant counters missing: {stats_line}")

    returncode = process.wait(timeout=TIMEOUT)
    if returncode != 2:  # one failed response => exit 2, the documented contract
        fail(process, f"expected exit code 2 (failures present), got {returncode}")

    print("server_smoke: PASS (incremental streaming, cache hit, clean decode "
          "failure, stats summary, exit code)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
