#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Verifies that every relative link in the given markdown files points at an
existing file or directory (anchors are stripped; intra-file anchors are
checked against the file's own headings). External http(s)/mailto links are
*not* fetched — the check must stay deterministic and offline — but their
URL syntax is sanity-checked.

Usage:
    python3 tools/check_links.py [file.md ...]

With no arguments, checks README.md, ROADMAP.md, CHANGES.md and every
*.md under docs/, relative to the repository root (the script's parent
directory). Exits non-zero listing every broken link. Run by CI
(.github/workflows/ci.yml, link-check job) and registered as the
docs_link_check ctest when a Python interpreter is available.
"""
from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# ![alt](img) and [text](target). Image links are extracted first and then
# replaced by their alt text, so badge patterns like [![CI](img)](target)
# yield both the image URL and the outer target. Inline code spans are
# stripped before either pass so that example snippets like
# `args.get("batch", "")` are not parsed as links.
IMAGE = re.compile(r"!\[([^\]\[]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN = re.compile(r"`[^`]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def link_targets(line: str) -> list[str]:
    """Every link target on the line: image URLs, then plain/badge links."""
    targets = [m.group(2) for m in IMAGE.finditer(line)]
    targets += [m.group(1) for m in LINK.finditer(IMAGE.sub(r"\1", line))]
    return targets


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation out."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_file(path: pathlib.Path) -> list[str]:
    errors: list[str] = []
    shown = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    text = path.read_text(encoding="utf-8")
    anchors = {github_anchor(h) for h in HEADING.findall(text)}
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in link_targets(CODE_SPAN.sub("", line)):
            where = f"{shown}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                if " " in target or target in ("http://", "https://", "mailto:"):
                    errors.append(f"{where}: malformed URL '{target}'")
                continue
            if target.startswith("#"):
                if target[1:] not in anchors:
                    errors.append(f"{where}: missing anchor '{target}'")
                continue
            rel, _, anchor = target.partition("#")
            dest = (path.parent / rel).resolve()
            if not dest.exists():
                errors.append(f"{where}: broken link '{target}'")
            elif anchor and dest.suffix == ".md":
                dest_anchors = {github_anchor(h)
                                for h in HEADING.findall(dest.read_text(encoding="utf-8"))}
                if anchor not in dest_anchors:
                    errors.append(f"{where}: missing anchor '#{anchor}' in {rel}")
    return errors


def main(argv: list[str]) -> int:
    if argv:
        files = [pathlib.Path(a).resolve() for a in argv]
    else:
        files = [REPO_ROOT / name for name in ("README.md", "ROADMAP.md", "CHANGES.md")]
        files += sorted((REPO_ROOT / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    errors: list[str] = [f"file not found: {f}" for f in missing]
    for f in files:
        if f.exists():
            errors.extend(check_file(f))
    for e in errors:
        print(e)
    checked = len(files) - len(missing)
    print(f"checked {checked} file(s): {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
