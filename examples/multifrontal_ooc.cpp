// Multifrontal out-of-core demo: the paper's motivating application.
//
//   $ ./multifrontal_ooc [--grid 60] [--ordering nd|md|rcm] [--fraction 0.5]
//
// Builds a 2D Laplacian, runs the full symbolic-analysis pipeline
// (fill-reducing ordering -> elimination tree -> column counts -> assembly
// tree with supernode amalgamation), then plans an out-of-core
// factorization under a memory budget that is a fraction of the in-core
// peak, comparing the paper's strategies and replaying the winner through
// the page-granular simulator.
#include <cstdio>
#include <stdexcept>

#include "src/core/minmem_optimal.hpp"
#include "src/core/strategies.hpp"
#include "src/iosim/pager.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/etree.hpp"
#include "src/sparse/generators.hpp"
#include "src/sparse/ordering.hpp"
#include "src/util/args.hpp"

int main(int argc, char** argv) {
  using namespace ooctree;
  using core::Weight;

  const auto args = util::Args::parse(argc, argv);
  const auto k = static_cast<sparse::Index>(args.get_int("grid", 60));
  const std::string ordering = args.get("ordering", "nd");
  const double fraction = args.get_double("fraction", 0.5);

  std::printf("== multifrontal out-of-core planning ==\n");
  std::printf("matrix: %d x %d grid Laplacian (n = %d)\n", k, k, k * k);

  const sparse::SymPattern pattern = sparse::grid2d(k, k);
  std::vector<sparse::Index> perm;
  if (ordering == "nd") {
    perm = sparse::nested_dissection_2d(k, k);
  } else if (ordering == "md") {
    perm = sparse::minimum_degree(pattern);
  } else if (ordering == "rcm") {
    perm = sparse::reverse_cuthill_mckee(pattern);
  } else {
    std::fprintf(stderr, "unknown --ordering %s (want nd|md|rcm)\n", ordering.c_str());
    return 1;
  }

  const sparse::SymPattern permuted = pattern.permuted(perm);
  const auto etree_parent = sparse::elimination_tree(permuted);
  const auto counts = sparse::column_counts(permuted, etree_parent);
  std::printf("ordering: %s; factor nnz = %lld\n", ordering.c_str(),
              (long long)sparse::factor_nnz(counts));

  const core::Tree tree = sparse::assembly_tree(permuted);
  std::printf("assembly tree: %zu supernodal tasks, depth %zu\n", tree.size(), tree.depth());

  const Weight lb = tree.min_feasible_memory();
  const Weight peak = core::opt_minmem_peak(tree, tree.root());
  const Weight memory =
      std::max(lb, static_cast<Weight>(static_cast<double>(peak) * fraction));
  std::printf("in-core peak %lld; LB %lld; planning with M = %lld (%.0f%% of peak)\n\n",
              (long long)peak, (long long)lb, (long long)memory, fraction * 100);

  if (peak <= memory) {
    std::printf("the whole factorization fits in memory: no I/O needed.\n");
    return 0;
  }

  core::Strategy best = core::Strategy::kOptMinMem;
  Weight best_io = -1;
  for (const core::Strategy s : core::cheap_strategies()) {
    const auto out = core::run_strategy(s, tree, memory);
    std::printf("  %-16s writes %10lld units (%.2f%% of factor traffic)\n",
                core::strategy_name(s).c_str(), (long long)out.io_volume(),
                100.0 * static_cast<double>(out.io_volume()) /
                    static_cast<double>(tree.total_weight()));
    if (best_io < 0 || out.io_volume() < best_io) {
      best_io = out.io_volume();
      best = s;
    }
  }

  // Replay the winner through the pager with a realistic page size.
  const auto plan = core::run_strategy(best, tree, memory);
  iosim::PagerConfig config;
  config.page_size = std::max<Weight>(1, memory / 1024);  // ~1Ki frames
  // Per-child page rounding can push a single task's working set past
  // memory/page frames; grant the pager the rounded-up minimum.
  config.memory = std::max(
      memory, iosim::min_feasible_frames(tree, config.page_size) * config.page_size);
  config.policy = iosim::Policy::kBelady;
  const auto replay = iosim::run_pager(tree, plan.schedule, config);
  if (!replay.feasible) throw std::runtime_error("pager replay infeasible");
  std::printf("\nwinner: %s; pager replay (page = %lld units): %lld pages written,"
              " %lld read back, peak %lld frames\n",
              core::strategy_name(best).c_str(), (long long)config.page_size,
              (long long)replay.pages_written, (long long)replay.pages_read,
              (long long)replay.peak_frames_used);
  return 0;
}
