// dataset_export: materialize the benchmark datasets as files.
//
//   $ ./dataset_export --out ./datasets [--synth 20] [--nodes 3000]
//                      [--trees-scale 1] [--mtx]
//
// Writes SYNTH instances as .tree files, the TREES instances as .tree
// files (and optionally the underlying matrices as .mtx), plus a stats.csv
// with the structural metrics of every instance (nodes, depth, leaves, LB,
// in-core peak). This gives downstream users the exact inputs behind the
// figures without linking against the library.
#include <cstdio>
#include <filesystem>

#include "src/core/minmem_optimal.hpp"
#include "src/core/tree_io.hpp"
#include "src/sparse/dataset.hpp"
#include "src/sparse/generators.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/util/args.hpp"
#include "src/util/csv.hpp"

int main(int argc, char** argv) {
  using namespace ooctree;
  using core::Weight;

  const auto args = util::Args::parse(argc, argv);
  const std::string out_dir = args.get("out", "./datasets");
  const int synth_count = static_cast<int>(args.get_int("synth", 20));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 3000));
  const int trees_scale = static_cast<int>(args.get_int("trees-scale", 1));

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  util::CsvWriter stats(out_dir + "/stats.csv",
                        {"name", "family", "nodes", "depth", "leaves", "total_weight", "lb",
                         "incore_peak"});
  const auto describe = [&](const std::string& name, const std::string& family,
                            const core::Tree& t) {
    std::size_t leaves = 0;
    for (std::size_t v = 0; v < t.size(); ++v)
      leaves += t.is_leaf(static_cast<core::NodeId>(v)) ? 1 : 0;
    stats.row({name, family, t.size(), t.depth(), leaves, t.total_weight(),
               t.min_feasible_memory(), core::opt_minmem_peak(t, t.root())});
  };

  // SYNTH instances.
  util::Rng rng(20170208);
  for (int i = 0; i < synth_count; ++i) {
    const core::Tree t = treegen::synth_instance(nodes, 1, 100, rng);
    const std::string name = "synth_" + std::to_string(i);
    core::save_tree(out_dir + "/" + name + ".tree", t);
    describe(name, "synth", t);
  }
  std::printf("wrote %d SYNTH trees (%zu nodes each)\n", synth_count, nodes);

  // TREES instances.
  sparse::DatasetOptions opts;
  opts.scale = trees_scale;
  const auto data = sparse::make_trees_dataset(opts);
  for (const auto& inst : data) {
    core::save_tree(out_dir + "/" + inst.name + ".tree", inst.tree);
    describe(inst.name, "trees", inst.tree);
  }
  std::printf("wrote %zu TREES instances (scale %d)\n", data.size(), trees_scale);

  // Optional: a sample matrix in Matrix Market format for the mtx path.
  if (args.has("mtx")) {
    sparse::save_matrix_market(out_dir + "/grid2d_60.mtx", sparse::grid2d(60, 60));
    std::printf("wrote grid2d_60.mtx\n");
  }

  std::printf("stats: %s/stats.csv\n", out_dir.c_str());
  return 0;
}
