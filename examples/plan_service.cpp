// plan_service: batch and streaming front-ends of the planning service.
//
//   $ ./plan_service --batch requests.jsonl [--threads 8] [--out results.csv]
//   $ ./plan_service --batch requests.csv --format csv
//   $ ./plan_service --demo
//   $ ./plan_service --serve [--workers 2 --queue-depth 64 --policy shed]
//
// Batch mode reads a whole request file (JSONL or CSV, see
// src/service/request_io.hpp for the schema), submits it to a PlanService,
// streams one result line per request as futures resolve in submission
// order, and closes with aggregate throughput.
//
// Serve mode (--serve) is the long-lived multi-tenant server: JSONL
// requests on stdin, one JSON response line on stdout per request —
// emitted incrementally in submission order as each plan completes, not
// batched at EOF — through a PlanServer (bounded admission with shed/block
// overload policies, weighted per-tenant fair scheduling, same-tree batch
// fusion). Requests that fail admission come back ok=false with
// served="shed". EOF or SIGTERM/SIGINT drains gracefully: every admitted
// request is answered before exit. --stats prints an end-of-run JSON
// summary (both modes); --stats-every N adds a periodic server stats line
// on stderr.
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/plan_server.hpp"
#include "src/service/plan_service.hpp"
#include "src/service/request_io.hpp"
#include "src/util/args.hpp"
#include "src/util/csv.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace ooctree;

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

void usage(const char* prog) {
  std::printf(
      "usage: %s (--batch FILE | --demo | --serve) [options]\n"
      "  --batch FILE      JSONL or CSV request batch (see src/service/request_io.hpp)\n"
      "  --format F        jsonl | csv | auto (default: auto-detect)\n"
      "  --demo            built-in 48-request demo batch (50%% repeated instances)\n"
      "  --serve           streaming server: JSONL on stdin, JSON lines on stdout\n"
      "  --threads N       service worker threads (default: hardware; serve: 1)\n"
      "  --cache N         result-cache capacity in entries, 0 disables (default 4096)\n"
      "  --seed S          service seed for derived request streams (default 20170208)\n"
      "  --out FILE        (batch) also write per-request results as CSV\n"
      "  --quiet           (batch) suppress per-request lines, summary only\n"
      "  --stats           end-of-run JSON stats summary on stdout\n"
      "server options (with --serve):\n"
      "  --workers N       dispatch workers (default 1)\n"
      "  --queue-depth N   admission bound (default 256)\n"
      "  --policy P        overload policy: shed | block (default shed)\n"
      "  --deadline-ms D   block policy: max wait for a slot (default 100)\n"
      "  --watermark-high N / --watermark-low N   overload hysteresis\n"
      "  --weights W       per-tenant weights, e.g. \"alice=3,bob=1\"\n"
      "  --default-weight W  weight of unlisted tenants (default 1)\n"
      "  --inflight-cap N  max concurrent dispatches per tenant (0 = off)\n"
      "  --no-fuse         disable same-tree batch fusion\n"
      "  --fuse-limit N    max requests per fused dispatch (default 16)\n"
      "  --stats-every N   periodic server stats line on stderr every N replies\n",
      prog);
}

/// The --demo batch: synth requests where half the ids repeat an earlier
/// instance (same explicit seed and spec), so the cache and coalescing
/// paths are exercised without any input file.
std::vector<service::PlanRequest> demo_batch() {
  std::vector<service::PlanRequest> requests;
  const int unique = 24;
  for (int k = 0; k < 2 * unique; ++k) {
    service::PlanRequest request;
    request.id = k + 1;
    request.nodes = 400;
    request.seed = 1000u + static_cast<std::uint64_t>(k % unique);  // repeat after `unique`
    request.memory_lb = 1.5;
    request.strategy = k % 3 == 0 ? core::Strategy::kPostOrderMinIo : core::Strategy::kRecExpand;
    if (k % 4 == 0) {
      parallel::ParallelConfig pc;
      pc.workers = 4;
      pc.priority = parallel::Priority::kSequentialOrder;
      if (k % 8 == 0) {
        request.page_size = 16;  // exercise the paged replay
        if (k % 16 == 0) {
          // ... and the memory-aware scheduler under a disk-cost model.
          pc.priority = parallel::Priority::kReservedCriticalPath;
          pc.backfill_depth = 8;
          pc.residency_aware = true;
          request.disk_latency = 0.5;
          request.disk_bandwidth = 64.0;
        }
      }
      request.parallel = pc;
    }
    requests.push_back(request);
  }
  return requests;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool blank_or_comment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// One JSON response line, printed incrementally as each plan completes.
void print_response_line(const server::ServerResponse& response) {
  const service::PlanStats& stats = *response.plan.stats;
  std::string out = "{\"id\":" + std::to_string(response.plan.id);
  if (!response.tenant.empty()) out += ",\"tenant\":\"" + json_escape(response.tenant) + "\"";
  out += ",\"ok\":";
  out += stats.ok ? "true" : "false";
  out += ",\"served\":\"" + service::served_name(response.plan.served) + "\"";
  if (stats.ok) {
    out += ",\"nodes\":" + std::to_string(stats.nodes);
    out += ",\"lb\":" + std::to_string(stats.lb);
    out += ",\"memory\":" + std::to_string(stats.memory);
    out += ",\"strategy\":\"" + core::strategy_name(stats.strategy) + "\"";
    out += ",\"io_volume\":" + std::to_string(stats.io_volume);
    out += ",\"peak_resident\":" + std::to_string(stats.peak_resident);
    out += ",\"evictions\":" + std::to_string(stats.evictions);
    if (stats.replayed) {
      out += ",\"workers\":" + std::to_string(stats.workers);
      out += ",\"makespan\":" + json_double(stats.makespan);
      out += ",\"parallel_io\":" + std::to_string(stats.parallel_io);
      if (stats.page_size > 0) {
        out += ",\"page_size\":" + std::to_string(stats.page_size);
        out += ",\"pages_written\":" + std::to_string(stats.pages_written);
        out += ",\"pages_read\":" + std::to_string(stats.pages_read);
        out += ",\"read_stall\":" + json_double(stats.read_stall);
        out += ",\"write_stall\":" + json_double(stats.write_stall);
        out += ",\"prefetch_issued\":" + std::to_string(stats.prefetch_issued);
        out += ",\"prefetch_useful\":" + std::to_string(stats.prefetch_useful);
        out += ",\"prefetch_wasted\":" + std::to_string(stats.prefetch_wasted);
      }
    }
  } else {
    out += ",\"error\":\"" + json_escape(stats.error) + "\"";
  }
  if (response.dispatch_seq > 0) {
    out += ",\"dispatch_seq\":" + std::to_string(response.dispatch_seq);
    out += ",\"wait_ms\":" + json_double(response.wait_seconds * 1e3);
  }
  out += ",\"ms\":" + json_double(response.plan.seconds * 1e3);
  out += "}";
  std::printf("%s\n", out.c_str());
  std::fflush(stdout);
}

std::string service_stats_json(const service::ServiceStats& stats) {
  std::string out = "{";
  out += "\"submitted\":" + std::to_string(stats.submitted);
  out += ",\"completed\":" + std::to_string(stats.completed);
  out += ",\"computed\":" + std::to_string(stats.computed);
  out += ",\"cached\":" + std::to_string(stats.cached);
  out += ",\"coalesced\":" + std::to_string(stats.coalesced);
  out += ",\"fused\":" + std::to_string(stats.fused);
  out += ",\"failed\":" + std::to_string(stats.failed);
  out += ",\"cache_hits\":" + std::to_string(stats.cache.hits);
  out += ",\"cache_misses\":" + std::to_string(stats.cache.misses);
  out += "}";
  return out;
}

std::string server_stats_json(const server::ServerStats& stats) {
  std::string out = "{";
  out += "\"submitted\":" + std::to_string(stats.admission.submitted);
  out += ",\"admitted\":" + std::to_string(stats.admission.admitted);
  out += ",\"shed\":" + std::to_string(stats.admission.shed());
  out += ",\"shed_full\":" + std::to_string(stats.admission.shed_full);
  out += ",\"shed_timeout\":" + std::to_string(stats.admission.shed_timeout);
  out += ",\"shed_closed\":" + std::to_string(stats.admission.shed_closed);
  out += ",\"queue_depth\":" + std::to_string(stats.admission.depth);
  out += ",\"queue_peak\":" + std::to_string(stats.admission.peak);
  out += ",\"overload_entries\":" + std::to_string(stats.admission.overload_entries);
  out += ",\"queued\":" + std::to_string(stats.queued);
  out += ",\"dispatched\":" + std::to_string(stats.dispatched);
  out += ",\"fused_groups\":" + std::to_string(stats.fused_groups);
  out += ",\"fused_requests\":" + std::to_string(stats.fused_requests);
  out += ",\"tenants\":[";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const server::TenantCounters& t = stats.tenants[i];
    if (i > 0) out += ",";
    out += "{\"tenant\":\"" + json_escape(t.tenant) + "\"";
    out += ",\"pushed\":" + std::to_string(t.pushed);
    out += ",\"served\":" + std::to_string(t.served);
    out += ",\"weight\":" + json_double(t.weight);
    out += "}";
  }
  out += "],\"service\":" + service_stats_json(stats.service);
  out += "}";
  return out;
}

server::ServerConfig server_config_from_args(const util::Args& args) {
  server::ServerConfig config;
  config.service.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  config.service.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
  config.service.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170208));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  config.admission.depth = static_cast<std::size_t>(args.get_int("queue-depth", 256));
  config.admission.policy = server::overload_policy_from_name(args.get("policy", "shed"));
  config.admission.block_timeout_ms = args.get_double("deadline-ms", 100.0);
  config.admission.high_watermark = static_cast<std::size_t>(args.get_int("watermark-high", 0));
  config.admission.low_watermark = static_cast<std::size_t>(args.get_int("watermark-low", 0));
  config.default_weight = args.get_double("default-weight", 1.0);
  config.tenant_inflight_cap = static_cast<std::size_t>(args.get_int("inflight-cap", 0));
  config.fuse = !args.has("no-fuse");
  config.fuse_limit = static_cast<std::size_t>(args.get_int("fuse-limit", 16));
  // --weights "alice=3,bob=1"
  const std::string weights = args.get("weights", "");
  std::size_t pos = 0;
  while (pos < weights.size()) {
    std::size_t comma = weights.find(',', pos);
    if (comma == std::string::npos) comma = weights.size();
    const std::string token = weights.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("--weights: expected tenant=weight, got '" + token + "'");
    server::TenantWeight w;
    w.tenant = token.substr(0, eq);
    w.weight = std::stod(token.substr(eq + 1));
    config.weights.push_back(std::move(w));
  }
  return config;
}

/// The streaming server loop: reader (this thread) decodes stdin lines and
/// submits; the printer thread resolves futures front-of-queue, so output
/// lines appear incrementally in submission order while later requests are
/// still being read. Decode failures become inline ok=false lines through
/// the same queue, keeping stdout ordered.
int run_serve(const util::Args& args) {
  server::PlanServer srv(server_config_from_args(args));
  const std::int64_t stats_every = args.get_int("stats-every", 0);

  std::deque<std::future<server::ServerResponse>> pending;
  std::mutex mutex;
  std::condition_variable cv;
  bool done_reading = false;
  std::atomic<std::uint64_t> failures{0};

  std::thread printer([&] {
    std::uint64_t printed = 0;
    for (;;) {
      std::future<server::ServerResponse> future;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) return;
        future = std::move(pending.front());
        pending.pop_front();
      }
      const server::ServerResponse response = future.get();
      if (!response.plan.stats->ok) failures.fetch_add(1);
      print_response_line(response);
      ++printed;
      if (stats_every > 0 && printed % static_cast<std::uint64_t>(stats_every) == 0) {
        std::fprintf(stderr, "stats %s\n", server_stats_json(srv.stats()).c_str());
        std::fflush(stderr);
      }
    }
  });

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::string line;
  std::int64_t line_number = 0;
  while (g_stop == 0 && std::getline(std::cin, line)) {
    ++line_number;
    if (blank_or_comment(line)) continue;
    std::future<server::ServerResponse> future;
    try {
      future = srv.submit(service::request_from_json(line, line_number));
    } catch (const std::exception& e) {
      // Decode errors resolve immediately through the same output queue.
      std::promise<server::ServerResponse> failed;
      server::ServerResponse response;
      response.plan.id = line_number;
      auto stats = std::make_shared<service::PlanStats>();
      stats->ok = false;
      stats->error = e.what();
      response.plan.stats = std::move(stats);
      failed.set_value(std::move(response));
      future = failed.get_future();
    }
    {
      const std::lock_guard lock(mutex);
      pending.push_back(std::move(future));
    }
    cv.notify_one();
  }

  {
    const std::lock_guard lock(mutex);
    done_reading = true;
  }
  cv.notify_all();
  printer.join();  // every submitted future resolved and printed
  srv.drain();

  if (args.has("stats")) {
    std::printf("%s\n", server_stats_json(srv.stats()).c_str());
    std::fflush(stdout);
  }
  return failures.load() == 0 ? 0 : 2;
}

int run_batch(const util::Args& args) {
  std::vector<service::PlanRequest> requests;
  if (args.has("batch")) {
    const std::string format_name = args.get("format", "auto");
    service::BatchFormat format = service::BatchFormat::kAuto;
    if (format_name == "jsonl") format = service::BatchFormat::kJsonl;
    else if (format_name == "csv") format = service::BatchFormat::kCsv;
    else if (format_name != "auto") throw std::runtime_error("unknown --format " + format_name);
    requests = service::load_requests(args.get("batch", ""), format);
  } else {
    requests = demo_batch();
  }
  if (requests.empty()) {
    std::fprintf(stderr, "batch is empty\n");
    return 1;
  }

  service::ServiceConfig config;
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170208));
  service::PlanService planner(config);

  std::unique_ptr<util::CsvWriter> csv;
  if (args.has("out"))
    csv.reset(new util::CsvWriter(
        args.get("out", ""),
        {"id", "served", "ok", "nodes", "lb", "memory", "strategy", "io_volume",
         "peak_resident", "workers", "makespan", "parallel_io", "failed_starts",
         "page_size", "pages_written", "pages_read", "read_stall", "write_stall",
         "prefetch_issued", "prefetch_useful", "prefetch_wasted", "seconds"}));

  const bool quiet = args.has("quiet");
  const std::size_t total = requests.size();
  util::Stopwatch wall;
  auto futures = planner.submit_batch(std::move(requests));

  std::size_t failures = 0;
  for (auto& future : futures) {
    const service::PlanResponse response = future.get();
    const service::PlanStats& stats = *response.stats;
    if (!stats.ok) ++failures;
    if (!quiet) {
      if (stats.ok) {
        std::printf("req %-6lld %-9s n=%-7zu M=%-10lld %-13s io=%-10lld peak=%-10lld",
                    (long long)response.id, service::served_name(response.served).c_str(),
                    stats.nodes, (long long)stats.memory,
                    core::strategy_name(stats.strategy).c_str(), (long long)stats.io_volume,
                    (long long)stats.peak_resident);
        if (stats.replayed) {
          std::printf(" workers=%d makespan=%.0f par_io=%lld", stats.workers, stats.makespan,
                      (long long)stats.parallel_io);
          if (stats.page_size > 0)
            std::printf(" page=%lld pw=%lld pr=%lld stall=%.0f", (long long)stats.page_size,
                        (long long)stats.pages_written, (long long)stats.pages_read,
                        stats.read_stall);
        }
        std::printf(" (%.2f ms)\n", response.seconds * 1e3);
      } else {
        std::printf("req %-6lld FAILED: %s\n", (long long)response.id, stats.error.c_str());
      }
    }
    if (csv != nullptr)
      csv->row({response.id, service::served_name(response.served), stats.ok ? 1 : 0,
                static_cast<std::int64_t>(stats.nodes), stats.lb, stats.memory,
                core::strategy_name(stats.strategy), stats.io_volume, stats.peak_resident,
                stats.workers, stats.makespan, stats.parallel_io, stats.failed_starts,
                stats.page_size, stats.pages_written, stats.pages_read, stats.read_stall,
                stats.write_stall, stats.prefetch_issued, stats.prefetch_useful,
                stats.prefetch_wasted, response.seconds});
  }
  const double seconds = wall.seconds();

  const service::ServiceStats stats = planner.stats();
  std::fprintf(stderr,
               "served %zu requests in %.3f s on %zu threads: %.1f req/s "
               "(%llu computed, %llu cached, %llu coalesced, %llu failed; "
               "cache %llu/%llu hits)\n",
               total, seconds, planner.threads(), static_cast<double>(total) / seconds,
               (unsigned long long)stats.computed, (unsigned long long)stats.cached,
               (unsigned long long)stats.coalesced, (unsigned long long)stats.failed,
               (unsigned long long)stats.cache.hits,
               (unsigned long long)(stats.cache.hits + stats.cache.misses));
  if (args.has("stats")) {
    std::printf("%s\n", service_stats_json(stats).c_str());
    std::fflush(stdout);
  }
  return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = util::Args::parse(argc, argv);
  try {
    if (args.has("serve")) return run_serve(args);
    if (args.has("batch") || args.has("demo")) return run_batch(args);
    usage(args.program().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
