// plan_service: streaming front-end of the planning service.
//
//   $ ./plan_service --batch requests.jsonl [--threads 8] [--out results.csv]
//   $ ./plan_service --batch requests.csv --format csv
//   $ ./plan_service --demo
//
// Reads a batch of planning requests (JSONL or CSV, see
// src/service/request_io.hpp for the schema), submits all of them to a
// PlanService, streams one result line per request as futures resolve in
// submission order, and closes with aggregate throughput: requests/sec,
// how many answers were computed vs served by the cache vs coalesced onto
// an in-flight twin, and the cache hit rate. This is the shape of the
// "many concurrent planning requests" deployment the ROADMAP north star
// asks for, runnable from a shell.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/service/plan_service.hpp"
#include "src/service/request_io.hpp"
#include "src/util/args.hpp"
#include "src/util/csv.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace ooctree;

void usage(const char* prog) {
  std::printf(
      "usage: %s (--batch FILE | --demo) [options]\n"
      "  --batch FILE      JSONL or CSV request batch (see src/service/request_io.hpp)\n"
      "  --format F        jsonl | csv | auto (default: auto-detect)\n"
      "  --demo            built-in 48-request demo batch (50%% repeated instances)\n"
      "  --threads N       service worker threads (default: hardware)\n"
      "  --cache N         result-cache capacity in entries, 0 disables (default 4096)\n"
      "  --seed S          service seed for derived request streams (default 20170208)\n"
      "  --out FILE        also write per-request results as CSV\n"
      "  --quiet           suppress per-request lines, print the summary only\n",
      prog);
}

/// The --demo batch: synth requests where half the ids repeat an earlier
/// instance (same explicit seed and spec), so the cache and coalescing
/// paths are exercised without any input file.
std::vector<service::PlanRequest> demo_batch() {
  std::vector<service::PlanRequest> requests;
  const int unique = 24;
  for (int k = 0; k < 2 * unique; ++k) {
    service::PlanRequest request;
    request.id = k + 1;
    request.nodes = 400;
    request.seed = 1000u + static_cast<std::uint64_t>(k % unique);  // repeat after `unique`
    request.memory_lb = 1.5;
    request.strategy = k % 3 == 0 ? core::Strategy::kPostOrderMinIo : core::Strategy::kRecExpand;
    if (k % 4 == 0) {
      parallel::ParallelConfig pc;
      pc.workers = 4;
      pc.priority = parallel::Priority::kSequentialOrder;
      if (k % 8 == 0) {
        request.page_size = 16;  // exercise the paged replay
        if (k % 16 == 0) {
          // ... and the memory-aware scheduler under a disk-cost model.
          pc.priority = parallel::Priority::kReservedCriticalPath;
          pc.backfill_depth = 8;
          pc.residency_aware = true;
          request.disk_latency = 0.5;
          request.disk_bandwidth = 64.0;
        }
      }
      request.parallel = pc;
    }
    requests.push_back(request);
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = util::Args::parse(argc, argv);
  try {
    std::vector<service::PlanRequest> requests;
    if (args.has("batch")) {
      const std::string format_name = args.get("format", "auto");
      service::BatchFormat format = service::BatchFormat::kAuto;
      if (format_name == "jsonl") format = service::BatchFormat::kJsonl;
      else if (format_name == "csv") format = service::BatchFormat::kCsv;
      else if (format_name != "auto") throw std::runtime_error("unknown --format " + format_name);
      requests = service::load_requests(args.get("batch", ""), format);
    } else if (args.has("demo")) {
      requests = demo_batch();
    } else {
      usage(args.program().c_str());
      return 1;
    }
    if (requests.empty()) {
      std::fprintf(stderr, "batch is empty\n");
      return 1;
    }

    service::ServiceConfig config;
    config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    config.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170208));
    service::PlanService planner(config);

    std::unique_ptr<util::CsvWriter> csv;
    if (args.has("out"))
      csv.reset(new util::CsvWriter(
          args.get("out", ""),
          {"id", "served", "ok", "nodes", "lb", "memory", "strategy", "io_volume",
           "peak_resident", "workers", "makespan", "parallel_io", "failed_starts",
           "page_size", "pages_written", "pages_read", "read_stall", "seconds"}));

    const bool quiet = args.has("quiet");
    const std::size_t total = requests.size();
    util::Stopwatch wall;
    auto futures = planner.submit_batch(std::move(requests));

    std::size_t failures = 0;
    for (auto& future : futures) {
      const service::PlanResponse response = future.get();
      const service::PlanStats& stats = *response.stats;
      if (!stats.ok) ++failures;
      if (!quiet) {
        if (stats.ok) {
          std::printf("req %-6lld %-9s n=%-7zu M=%-10lld %-13s io=%-10lld peak=%-10lld",
                      (long long)response.id, service::served_name(response.served).c_str(),
                      stats.nodes, (long long)stats.memory,
                      core::strategy_name(stats.strategy).c_str(), (long long)stats.io_volume,
                      (long long)stats.peak_resident);
          if (stats.replayed) {
            std::printf(" workers=%d makespan=%.0f par_io=%lld", stats.workers, stats.makespan,
                        (long long)stats.parallel_io);
            if (stats.page_size > 0)
              std::printf(" page=%lld pw=%lld pr=%lld stall=%.0f", (long long)stats.page_size,
                          (long long)stats.pages_written, (long long)stats.pages_read,
                          stats.read_stall);
          }
          std::printf(" (%.2f ms)\n", response.seconds * 1e3);
        } else {
          std::printf("req %-6lld FAILED: %s\n", (long long)response.id, stats.error.c_str());
        }
      }
      if (csv != nullptr)
        csv->row({response.id, service::served_name(response.served), stats.ok ? 1 : 0,
                  static_cast<std::int64_t>(stats.nodes), stats.lb, stats.memory,
                  core::strategy_name(stats.strategy), stats.io_volume, stats.peak_resident,
                  stats.workers, stats.makespan, stats.parallel_io, stats.failed_starts,
                  stats.page_size, stats.pages_written, stats.pages_read, stats.read_stall,
                  response.seconds});
    }
    const double seconds = wall.seconds();

    const service::ServiceStats stats = planner.stats();
    std::fprintf(stderr,
                 "served %zu requests in %.3f s on %zu threads: %.1f req/s "
                 "(%llu computed, %llu cached, %llu coalesced, %llu failed; "
                 "cache %llu/%llu hits)\n",
                 total, seconds, planner.threads(), static_cast<double>(total) / seconds,
                 (unsigned long long)stats.computed, (unsigned long long)stats.cached,
                 (unsigned long long)stats.coalesced, (unsigned long long)stats.failed,
                 (unsigned long long)stats.cache.hits,
                 (unsigned long long)(stats.cache.hits + stats.cache.misses));
    return failures == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
