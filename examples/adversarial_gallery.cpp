// Adversarial gallery: walks through the paper's counterexample families
// interactively, printing the trees, the annotated schedules and the
// step-by-step memory profiles — a guided tour of Sections 4.3/4.4.
//
//   $ ./adversarial_gallery [--memory 8] [--levels 3] [--k 3]
#include <cstdio>

#include "src/core/fif_simulator.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/traversal.hpp"
#include "src/treegen/paper_trees.hpp"
#include "src/util/args.hpp"

namespace {

using namespace ooctree;
using core::Weight;

void show(const char* title, const treegen::PaperInstance& inst) {
  std::printf("==== %s (M = %lld) ====\n%s", title, (long long)inst.memory,
              inst.tree.to_string().c_str());
  if (!inst.annotated_schedule.empty()) {
    std::printf("paper's schedule:");
    for (const core::NodeId v : inst.annotated_schedule) std::printf(" %d", v);
    const auto profile = core::memory_profile(inst.tree, inst.annotated_schedule);
    std::printf("\nno-I/O memory profile:");
    for (const Weight p : profile) std::printf(" %lld", (long long)p);
    const auto fif = core::simulate_fif(inst.tree, inst.annotated_schedule, inst.memory);
    std::printf("\nFiF under M: %lld I/O units\n", (long long)fif.io_volume);
  }
  const auto opt = core::opt_minmem(inst.tree);
  const auto opt_io = core::simulate_fif(inst.tree, opt.schedule, inst.memory);
  std::printf("OptMinMem: peak %lld, FiF I/O %lld\n", (long long)opt.peak,
              (long long)opt_io.io_volume);
  const auto post = core::postorder_minio(inst.tree, inst.memory);
  std::printf("PostOrderMinIO: %lld I/O units\n\n", (long long)post.predicted_io);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = util::Args::parse(argc, argv);
  const Weight m = args.get_int("memory", 8);
  const auto levels = static_cast<std::size_t>(args.get_int("levels", 3));
  const Weight k = args.get_int("k", 3);

  show("Figure 2(a): postorders pay per leaf, optimal pays 1",
       treegen::fig2a(levels, m % 2 == 0 ? m : m + 1));
  show("Figure 2(b): lowest peak forces extra I/O", treegen::fig2b());
  show("Figure 2(c): peak-optimal switching pays k(k+1) vs 2k", treegen::fig2c(k));
  show("Figure 6: expansion fixes OptMinMem", treegen::fig6());
  show("Figure 7: sometimes only the postorder wins", treegen::fig7());
  return 0;
}
