// ooc_planner: command-line out-of-core schedule planner.
//
//   $ ./ooc_planner --tree workload.tree --memory 1000 [--strategy recexpand]
//   $ ./ooc_planner --mtx matrix.mtx --memory-fraction 0.5
//   $ ./ooc_planner --batch requests.jsonl --threads 8
//   $ ./ooc_planner --demo
//
// Reads a task tree (text format, see src/core/tree_io.hpp) or a Matrix
// Market file (converted via the multifrontal pipeline), plans an
// out-of-core traversal under the given memory bound, and writes the plan
// (execution order + spill list) to stdout or --out. This is the tool a
// downstream user would wire into a solver driver. With --batch the CLI
// becomes a front-end of the planning service: the whole request batch
// (JSONL/CSV, src/service/request_io.hpp) runs through PlanService — the
// exact code path examples/plan_service.cpp serves — and a per-request
// summary is printed instead of a single plan.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/fif_simulator.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/strategies.hpp"
#include "src/core/local_search.hpp"
#include "src/core/tree_io.hpp"
#include "src/iosim/pager.hpp"
#include "src/parallel/parallel_sim.hpp"
#include "src/service/plan_service.hpp"
#include "src/service/request_io.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/sparse/ordering.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/util/args.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace ooctree;
using core::Weight;

void usage(const char* prog) {
  std::printf(
      "usage: %s (--tree FILE | --mtx FILE | --snapshot FILE | --batch FILE | --demo) "
      "[options]\n"
      "  --tree FILE         task tree in the '<parent> <weight>' text format\n"
      "  --mtx FILE          symmetric Matrix Market file (multifrontal pipeline)\n"
      "  --snapshot FILE     binary .otree snapshot, loaded by mmap (tools/tree_pack)\n"
      "  --batch FILE        JSONL/CSV request batch served through PlanService\n"
      "  --threads N         worker threads for --batch (default: hardware)\n"
      "  --persist DIR       persistent canonical cache directory for --batch\n"
      "  --demo              use a built-in random 500-node tree\n"
      "  --save-snapshot F   capture the loaded tree as a .otree snapshot for replay\n"
      "  --memory M          memory bound in units\n"
      "  --memory-fraction F bound = F * in-core peak (default 0.5)\n"
      "  --strategy S        postorder | optminmem | recexpand (default) | full\n"
      "  --polish            run local-search polishing on the planned schedule\n"
      "  --workers N         also simulate N-worker parallel execution of the plan\n"
      "  --evict P           parallel eviction policy: belady (default) | lru |\n"
      "                      fifo | random | largest\n"
      "  --priority P        replay start order: sequential-order (default) |\n"
      "                      critical-path | heaviest-subtree | reserved-critical-path\n"
      "  --backfill-depth K  ready tasks examined per free worker before the\n"
      "                      replay waits for memory (0 = unlimited, 1 = strict)\n"
      "  --reserve-penalty L memory-penalty strength of reserved-critical-path\n"
      "                      (default 1.0; 0 = plain critical-path)\n"
      "  --residency         prefer starts whose inputs are resident (paged\n"
      "                      replay with a disk model only)\n"
      "  --disk-latency S / --disk-bandwidth B\n"
      "                      charge read-backs S seconds per transfer plus\n"
      "                      volume/B against the paged makespan\n"
      "  --write-queue-depth Q\n"
      "                      bound the asynchronous eviction-write queue at Q\n"
      "                      transfers (paged replay with a disk model; 0 =\n"
      "                      synchronous free writes, the default)\n"
      "  --prefetch-window W look ahead W ready tasks and prefetch their\n"
      "                      evicted child pages into free frames (paged\n"
      "                      replay with a disk model; 0 = no prefetch)\n"
      "  --page-size P       simulate the plan page-granularly (P units per page)\n"
      "                      through the paged parallel engine; combine with\n"
      "                      --workers for a parallel paged replay (default 1\n"
      "                      worker, i.e. the sequential pager's accounting)\n"
      "  --validate FILE     check a previously written plan against the tree\n"
      "  --out FILE          write the plan there instead of stdout\n",
      prog);
}

/// --batch: serve the whole request file through the planning service and
/// print one summary line per request — the CLI and the service share one
/// code path.
int run_batch(const util::Args& args) {
  const auto requests = service::load_requests(args.get("batch", ""));
  if (requests.empty()) {
    std::fprintf(stderr, "batch is empty\n");
    return 1;
  }
  service::ServiceConfig config;
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.persist_dir = args.get("persist", "");
  service::PlanService planner(config);

  const std::size_t total = requests.size();
  util::Stopwatch wall;
  auto futures = planner.submit_batch(requests);
  std::size_t failures = 0;
  for (auto& future : futures) {
    const service::PlanResponse response = future.get();
    const service::PlanStats& stats = *response.stats;
    if (stats.ok) {
      std::printf("req %-6lld %-9s n=%-7zu M=%-10lld %-13s io=%-10lld peak=%lld\n",
                  (long long)response.id, service::served_name(response.served).c_str(),
                  stats.nodes, (long long)stats.memory,
                  core::strategy_name(stats.strategy).c_str(), (long long)stats.io_volume,
                  (long long)stats.peak_resident);
    } else {
      ++failures;
      std::printf("req %-6lld FAILED: %s\n", (long long)response.id, stats.error.c_str());
    }
  }
  const double seconds = wall.seconds();
  const service::ServiceStats stats = planner.stats();
  std::fprintf(stderr,
               "served %zu requests in %.3f s on %zu threads: %.1f req/s "
               "(%llu computed, %llu cached, %llu coalesced, %llu failed)\n",
               total, seconds, planner.threads(), static_cast<double>(total) / seconds,
               (unsigned long long)stats.computed, (unsigned long long)stats.cached,
               (unsigned long long)stats.coalesced, (unsigned long long)stats.failed);
  return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = util::Args::parse(argc, argv);
  try {
    if (args.has("batch")) return run_batch(args);
    core::Tree tree = [&] {
      if (args.has("tree")) return core::load_tree(args.get("tree", ""));
      if (args.has("snapshot")) return core::load_snapshot(args.get("snapshot", ""));
      if (args.has("mtx")) {
        const auto pattern = sparse::load_matrix_market(args.get("mtx", ""));
        return sparse::assembly_tree(
            pattern.permuted(sparse::minimum_degree(pattern)));
      }
      if (args.has("demo")) {
        util::Rng rng(12345);
        return treegen::synth_instance(500, 1, 100, rng);
      }
      usage(args.program().c_str());
      throw std::runtime_error("no input given");
    }();

    if (args.has("save-snapshot")) {
      const std::string path = args.get("save-snapshot", "");
      core::save_snapshot(path, tree);
      std::fprintf(stderr, "saved %zu-node snapshot to %s\n", tree.size(), path.c_str());
    }

    const Weight lb = tree.min_feasible_memory();
    const Weight peak = core::opt_minmem_peak(tree, tree.root());
    Weight memory = args.get_int("memory", 0);
    if (memory <= 0) {
      const double f = args.get_double("memory-fraction", 0.5);
      memory = std::max(lb, static_cast<Weight>(static_cast<double>(peak) * f));
    }
    if (memory < lb) {
      std::fprintf(stderr, "memory %lld below the feasibility bound LB=%lld\n",
                   (long long)memory, (long long)lb);
      return 1;
    }

    if (args.has("validate")) {
      // Re-check a stored plan: parse "step node spill" rows, rebuild the
      // traversal and run the Section 3.1 validity conditions.
      std::ifstream plan_file(args.get("validate", ""));
      if (!plan_file) throw std::runtime_error("cannot open --validate file");
      core::Schedule schedule;
      core::IoFunction io(tree.size(), 0);
      std::string line;
      while (std::getline(plan_file, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::size_t step = 0;
        core::NodeId node = 0;
        Weight spill = 0;
        if (!(ls >> step >> node >> spill)) throw std::runtime_error("malformed plan line");
        schedule.push_back(node);
        if (node < 0 || static_cast<std::size_t>(node) >= tree.size())
          throw std::runtime_error("plan references unknown node");
        io[static_cast<std::size_t>(node)] = spill;
      }
      const auto problem = core::validate_traversal(tree, schedule, io, memory);
      if (problem.has_value()) {
        std::fprintf(stderr, "INVALID plan: %s\n", problem->c_str());
        return 2;
      }
      Weight volume = 0;
      for (const Weight v : io) volume += v;
      std::fprintf(stderr, "plan is valid: %zu steps, %lld I/O units under M=%lld\n",
                   schedule.size(), (long long)volume, (long long)memory);
      return 0;
    }

    const core::Strategy strategy = core::strategy_from_name(args.get("strategy", "recexpand"));
    auto plan = core::run_strategy(strategy, tree, memory);
    if (args.has("polish")) {
      core::PolishOptions popts;
      popts.max_evaluations = 3000;
      const auto polished = core::polish_schedule(tree, plan.schedule, memory, popts);
      if (polished.io_after < plan.io_volume()) {
        std::fprintf(stderr, "polish improved the plan: %lld -> %lld I/O units\n",
                     (long long)plan.io_volume(), (long long)polished.io_after);
        plan.schedule = polished.schedule;
        plan.evaluation = core::simulate_fif(tree, plan.schedule, memory);
      }
    }

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (args.has("out")) {
      file.open(args.get("out", ""));
      if (!file) throw std::runtime_error("cannot open --out file");
      out = &file;
    }

    *out << "# ooc_planner plan\n"
         << "# tree: " << tree.size() << " tasks, total data " << tree.total_weight() << "\n"
         << "# LB " << lb << ", in-core peak " << peak << ", memory " << memory << "\n"
         << "# strategy " << core::strategy_name(strategy) << ", io volume "
         << plan.io_volume() << "\n"
         << "# columns: step node spill_after_completion\n";
    for (std::size_t t = 0; t < plan.schedule.size(); ++t) {
      const core::NodeId node = plan.schedule[t];
      *out << t << ' ' << node << ' ' << plan.evaluation.io[static_cast<std::size_t>(node)]
           << '\n';
    }

    std::fprintf(stderr, "planned %zu tasks with %s: %lld I/O units (LB %lld, peak %lld, M %lld)\n",
                 tree.size(), core::strategy_name(strategy).c_str(),
                 (long long)plan.io_volume(), (long long)lb, (long long)peak,
                 (long long)memory);

    // Optional: replay the plan through the shared-memory parallel engine
    // to see what the schedule costs once several workers contend for M.
    // --page-size switches to the paged engine (page-granular residency,
    // write-at-most-once accounting); alone it defaults to one worker,
    // which is exactly the sequential pager's model.
    if (args.has("workers") || args.has("page-size")) {
      parallel::ParallelConfig pc;
      pc.workers = static_cast<int>(args.get_int("workers", args.has("page-size") ? 1 : 2));
      pc.memory = memory;
      pc.priority = service::priority_from_name(args.get("priority", "sequential-order"));
      pc.backfill_depth = static_cast<int>(args.get_int("backfill-depth", 0));
      pc.reserve_penalty = args.get_double("reserve-penalty", 1.0);
      pc.residency_aware = args.has("residency");
      pc.write_queue_depth = static_cast<int>(args.get_int("write-queue-depth", 0));
      pc.prefetch_window = static_cast<int>(args.get_int("prefetch-window", 0));
      pc.evict = core::eviction_policy_from_name(args.get("evict", "belady"));
      if (args.has("page-size")) {
        parallel::PagedParallelConfig paged;
        paged.base = pc;
        paged.page_size = args.get_int("page-size", 1);
        if (args.get_double("disk-bandwidth", 0.0) > 0)
          paged.disk = iosim::DiskModel{args.get_double("disk-latency", 0.0),
                                        args.get_double("disk-bandwidth", 0.0)};
        const auto par = parallel::simulate_parallel_paged(tree, paged, plan.schedule);
        if (!par.base.feasible) {
          // Per-child page rounding raises the feasibility floor above LB.
          std::fprintf(stderr,
                       "paged replay infeasible: %lld frames of %lld units, need >= %lld "
                       "frames (M >= %lld)\n",
                       (long long)par.frames, (long long)paged.page_size,
                       (long long)iosim::min_feasible_frames(tree, paged.page_size),
                       (long long)(iosim::min_feasible_frames(tree, paged.page_size) *
                                   paged.page_size));
          return 1;
        }
        std::fprintf(stderr,
                     "paged replay (%d workers, %s priority, %s eviction, page %lld, "
                     "%lld frames): makespan %.0f, %lld pages written, %lld read, "
                     "read stall %.0f, utilization %.0f%%\n",
                     pc.workers, service::priority_name(pc.priority).c_str(),
                     core::eviction_policy_name(pc.evict).c_str(),
                     (long long)paged.page_size, (long long)par.frames, par.base.makespan,
                     (long long)par.pages_written, (long long)par.pages_read, par.read_stall,
                     100.0 * par.base.utilization(pc.workers));
        if (pc.write_queue_depth > 0 || pc.prefetch_window > 0)
          std::fprintf(stderr,
                       "disk pipeline (queue %d, window %d): write stall %.0f, "
                       "prefetch %lld pages issued, %lld useful, %lld wasted\n",
                       pc.write_queue_depth, pc.prefetch_window, par.write_stall,
                       (long long)par.prefetch_issued, (long long)par.prefetch_useful,
                       (long long)par.prefetch_wasted);
      } else {
        const auto par = parallel::simulate_parallel(tree, pc, plan.schedule);
        if (!par.feasible) {
          std::fprintf(stderr, "parallel replay infeasible under M=%lld\n", (long long)memory);
          return 1;
        }
        std::fprintf(stderr,
                     "parallel replay (%d workers, %s eviction): makespan %.0f, "
                     "%lld I/O units, utilization %.0f%%\n",
                     pc.workers, core::eviction_policy_name(pc.evict).c_str(), par.makespan,
                     (long long)par.io_volume, 100.0 * par.utilization(pc.workers));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
