// spill_timeline: visualize an out-of-core execution step by step.
//
//   $ ./spill_timeline [--nodes 30] [--seed 7] [--fraction 0.6]
//                      [--strategy recexpand] [--latency 1e-4] [--bandwidth 1e9]
//
// Plans a random tree under a reduced memory bound, prints the execution
// timeline (resident-memory bar + write/read annotations per step), and
// estimates wall-clock I/O time under a simple disk model — the "what will
// this actually do to my run time" view of a spill plan.
#include <cstdio>

#include "src/core/minmem_optimal.hpp"
#include "src/core/strategies.hpp"
#include "src/iosim/trace.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/util/args.hpp"

int main(int argc, char** argv) {
  using namespace ooctree;
  using core::Weight;

  const auto args = util::Args::parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("nodes", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double fraction = args.get_double("fraction", 0.6);

  util::Rng rng(seed);
  const core::Tree tree = treegen::synth_instance(n, 1, 100, rng);
  const Weight lb = tree.min_feasible_memory();
  const Weight peak = core::opt_minmem_peak(tree, tree.root());
  const Weight memory =
      std::max(lb, static_cast<Weight>(static_cast<double>(peak) * fraction));
  std::printf("tree: %zu nodes, LB %lld, in-core peak %lld, M = %lld\n\n", tree.size(),
              (long long)lb, (long long)peak, (long long)memory);

  const std::string strategy_name = args.get("strategy", "recexpand");
  const core::Strategy strategy = strategy_name == "postorder"
                                      ? core::Strategy::kPostOrderMinIo
                                      : (strategy_name == "optminmem"
                                             ? core::Strategy::kOptMinMem
                                             : core::Strategy::kRecExpand);
  const auto plan = core::run_strategy(strategy, tree, memory);

  const auto trace = iosim::trace_execution(tree, plan.schedule, memory);
  std::printf("%s\n", iosim::format_trace(tree, trace, memory).c_str());

  iosim::DiskModel disk;
  disk.latency_s = args.get_double("latency", 1e-4);
  disk.bandwidth_per_s = args.get_double("bandwidth", 1e9);
  std::printf("disk model: %.1e s latency, %.1e units/s bandwidth -> I/O time %.6f s\n",
              disk.latency_s, disk.bandwidth_per_s, iosim::io_time(trace, disk));
  return 0;
}
