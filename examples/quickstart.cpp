// Quickstart: build a small task tree, schedule it under a memory bound,
// and inspect the resulting out-of-core plan.
//
//   $ ./quickstart
//
// Walks through the library's central objects: Tree, the MinMem algorithms,
// the FiF evaluation of a schedule (Theorem 1), and the RecExpand heuristic
// that is the paper's contribution.
#include <cstdio>

#include "src/core/fif_simulator.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/core/rec_expand.hpp"
#include "src/core/tree.hpp"

int main() {
  using namespace ooctree;
  using core::kNoNode;
  using core::Weight;

  // A 9-node task tree: node 0 is the root; every node lists its parent
  // and the size of its output datum.
  //
  //            0 (w 1)
  //          __/ \__
  //       1 (3)     5 (3)
  //         |         |
  //       2 (5)     6 (5)
  //         |         |
  //       3 (2)     7 (2)
  //         |         |
  //       4 (6)     8 (6)
  const core::Tree tree = core::make_tree({
      {kNoNode, 1},
      {0, 3}, {1, 5}, {2, 2}, {3, 6},
      {0, 3}, {5, 5}, {6, 2}, {7, 6},
  });
  std::printf("task tree:\n%s\n", tree.to_string().c_str());

  // How much memory does the tree need?
  const Weight lb = tree.min_feasible_memory();
  const auto best_postorder = core::postorder_minmem(tree);
  const auto optimal = core::opt_minmem(tree);
  std::printf("minimum to process any single task (LB) : %lld\n", (long long)lb);
  std::printf("best postorder peak (Liu '86)           : %lld\n", (long long)best_postorder.peak);
  std::printf("optimal traversal peak (Liu '87)        : %lld\n", (long long)optimal.peak);

  // Give it less memory than the in-core peak: I/O becomes unavoidable.
  const Weight memory = 6;
  std::printf("\nmemory bound M = %lld\n", (long long)memory);

  // Any schedule is evaluated by the Furthest-in-the-Future rule, which is
  // optimal for that schedule (Theorem 1).
  const auto eval_opt = core::simulate_fif(tree, optimal.schedule, memory);
  std::printf("OptMinMem schedule + FiF evictions      : %lld I/O units\n",
              (long long)eval_opt.io_volume);

  // The best postorder for I/O (Agullo).
  const auto postorder = core::postorder_minio(tree, memory);
  std::printf("PostOrderMinIO                          : %lld I/O units\n",
              (long long)postorder.predicted_io);

  // The paper's heuristic: force unavoidable I/O into the tree structure
  // by node expansion, re-plan, repeat.
  const auto rec = core::full_rec_expand(tree, memory);
  std::printf("FullRecExpand                           : %lld I/O units"
              " (%zu expansions, %lld units expanded)\n",
              (long long)rec.evaluation.io_volume, rec.expansions,
              (long long)rec.expansion_volume);

  // Show the actual plan: execution order plus which outputs are spilled.
  std::printf("\nchosen plan (FullRecExpand):\n  order:");
  for (const core::NodeId v : rec.schedule) std::printf(" %d", v);
  std::printf("\n  spills:");
  for (std::size_t i = 0; i < rec.evaluation.io.size(); ++i)
    if (rec.evaluation.io[i] > 0)
      std::printf(" node %zu -> %lld units", i, (long long)rec.evaluation.io[i]);
  std::printf("\n");
  return 0;
}
