#include "src/sparse/csc.hpp"

#include <algorithm>
#include <stdexcept>

namespace ooctree::sparse {

SymPattern SymPattern::from_entries(Index n, std::vector<std::pair<Index, Index>> entries) {
  if (n <= 0) throw std::invalid_argument("SymPattern: n must be positive");
  // Symmetrize and drop the diagonal.
  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(entries.size() * 2);
  for (const auto& [i, j] : entries) {
    if (i < 0 || i >= n || j < 0 || j >= n) throw std::invalid_argument("SymPattern: index range");
    if (i == j) continue;
    edges.emplace_back(i, j);
    edges.emplace_back(j, i);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  SymPattern p;
  p.n_ = n;
  p.ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [j, i] : edges) (void)i, ++p.ptr_[static_cast<std::size_t>(j) + 1];
  for (std::size_t k = 0; k < static_cast<std::size_t>(n); ++k) p.ptr_[k + 1] += p.ptr_[k];
  p.row_.resize(edges.size());
  std::vector<std::int64_t> cursor(p.ptr_.begin(), p.ptr_.end() - 1);
  for (const auto& [j, i] : edges)
    p.row_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = i;
  return p;
}

SymPattern SymPattern::permuted(const std::vector<Index>& perm) const {
  if (perm.size() != static_cast<std::size_t>(n_))
    throw std::invalid_argument("SymPattern::permuted: wrong permutation length");
  std::vector<Index> inverse(perm.size(), -1);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    const Index old = perm[v];
    if (old < 0 || old >= n_ || inverse[static_cast<std::size_t>(old)] != -1)
      throw std::invalid_argument("SymPattern::permuted: not a permutation");
    inverse[static_cast<std::size_t>(old)] = static_cast<Index>(v);
  }
  std::vector<std::pair<Index, Index>> entries;
  entries.reserve(row_.size());
  for (Index j = 0; j < n_; ++j)
    for (const Index i : neighbors(j))
      if (i < j)
        entries.emplace_back(inverse[static_cast<std::size_t>(i)],
                             inverse[static_cast<std::size_t>(j)]);
  return from_entries(n_, std::move(entries));
}

bool SymPattern::connected() const {
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  std::vector<Index> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const Index v = stack.back();
    stack.pop_back();
    for (const Index u : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        ++count;
        stack.push_back(u);
      }
    }
  }
  return count == static_cast<std::size_t>(n_);
}

}  // namespace ooctree::sparse
