// Matrix Market (.mtx) I/O for symmetric patterns.
//
// The TREES dataset was built by the paper's authors from University of
// Florida collection matrices, which ship in this format. The reader
// accepts coordinate-format files (pattern / real / integer / complex) and
// honors the banner's symmetry field: symmetric / skew-symmetric /
// hermitian files must store the lower triangle (upper-triangle entries
// are rejected as malformed) and are expanded, `general` files are
// explicitly symmetrized structurally, and unknown symmetries are
// rejected. Blank lines before the size line are skipped per the format
// specification. The writer makes the synthetic generators exportable.
#pragma once

#include <iosfwd>
#include <string>

#include "src/sparse/csc.hpp"

namespace ooctree::sparse {

/// Parses a Matrix Market coordinate stream into a symmetric pattern.
/// Rectangular matrices are rejected. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] SymPattern read_matrix_market(std::istream& in);

/// Reads a .mtx file; throws std::runtime_error on failure.
[[nodiscard]] SymPattern load_matrix_market(const std::string& path);

/// Writes the pattern as "%%MatrixMarket matrix coordinate pattern
/// symmetric" (lower triangle).
void write_matrix_market(std::ostream& out, const SymPattern& pattern);

/// Writes to a file; throws std::runtime_error on failure.
void save_matrix_market(const std::string& path, const SymPattern& pattern);

}  // namespace ooctree::sparse
