// Elimination tree and symbolic column counts (Liu's algorithms).
//
// For a symmetric matrix A (pattern only) the elimination tree has
// parent(j) = min { i > j : L(i, j) != 0 } in the Cholesky factor L of A.
// It is computed in near-linear time with path-compressed ancestor links.
// Column counts |L(:, j)| follow from the row-subtree characterization:
// row i of L is the union of the paths in the etree from each k < i with
// A(i, k) != 0 up to i. Both are the classic building blocks of
// multifrontal symbolic analysis.
#pragma once

#include <vector>

#include "src/sparse/csc.hpp"

namespace ooctree::sparse {

/// parent[j] of the elimination tree; -1 for roots (the etree is a forest
/// when the matrix is reducible).
[[nodiscard]] std::vector<Index> elimination_tree(const SymPattern& pattern);

/// Column counts of the Cholesky factor including the diagonal:
/// counts[j] = |L(:, j)|. O(nnz(L)) time via row-subtree traversals.
[[nodiscard]] std::vector<std::int64_t> column_counts(const SymPattern& pattern,
                                                      const std::vector<Index>& parent);

/// Total factor size sum_j counts[j] (a classic fill metric).
[[nodiscard]] std::int64_t factor_nnz(const std::vector<std::int64_t>& counts);

}  // namespace ooctree::sparse
