// The TREES dataset: elimination/assembly trees standing in for the
// paper's 329 University of Florida matrices (see DESIGN.md for the
// substitution rationale). Instances mix 2D/3D grid Laplacians and random
// SPD patterns under nested-dissection, minimum-degree, RCM and natural
// orderings, spanning roughly the paper's 2k-40k node range before the
// Peak > LB filter.
#pragma once

#include <string>
#include <vector>

#include "src/core/tree.hpp"

namespace ooctree::sparse {

/// One dataset instance.
struct TreeInstance {
  std::string name;
  core::Tree tree;
};

/// Controls dataset size so quick runs stay quick.
struct DatasetOptions {
  int scale = 2;              ///< 0 = tiny smoke set; higher = more/larger instances
  bool include_3d = true;     ///< add 3D grid instances
  bool include_random = true; ///< add random SPD instances
  std::uint64_t seed = 20170208;  ///< paper submission date, for reproducibility
};

/// Builds the dataset. Instance counts: scale 0 ~ 8 trees, scale 1 ~ 40,
/// scale 2 ~ 130 (matching the paper's post-filter count), scale 3 ~ 300.
[[nodiscard]] std::vector<TreeInstance> make_trees_dataset(const DatasetOptions& options = {});

}  // namespace ooctree::sparse
