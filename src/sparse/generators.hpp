// Synthetic symmetric sparse patterns.
//
// The paper evaluates on 329 elimination trees built from University of
// Florida collection matrices. Offline, we substitute structurally similar
// matrices: discretized PDE operators (2D five-point and 3D seven-point
// grid Laplacians — the dominant family in the UF subset used by [3]) and
// random symmetric patterns. The downstream experiments only consume the
// elimination/assembly trees these produce.
#pragma once

#include "src/sparse/csc.hpp"
#include "src/util/rng.hpp"

namespace ooctree::sparse {

/// Five-point stencil on an nx-by-ny grid (2D Laplacian pattern).
[[nodiscard]] SymPattern grid2d(Index nx, Index ny);

/// Seven-point stencil on an nx-by-ny-by-nz grid (3D Laplacian pattern).
[[nodiscard]] SymPattern grid3d(Index nx, Index ny, Index nz);

/// Nine-point stencil on an nx-by-ny grid (2D with diagonal couplings).
[[nodiscard]] SymPattern grid2d_9pt(Index nx, Index ny);

/// Connected random symmetric pattern with roughly avg_degree neighbors
/// per vertex: a random spanning tree plus uniform random edges.
[[nodiscard]] SymPattern random_symmetric(Index n, double avg_degree, util::Rng& rng);

/// Bordered block-diagonal pattern: `blocks` independent grid-by-grid 2D
/// Laplacian blocks coupled through a chain border of `border` vertices
/// (each border vertex touches `couplings` random vertices per block).
/// Models domain-decomposed / arrowhead systems, whose elimination trees
/// have several heavy branches joined late — the structure on which
/// postorder traversals pay most.
[[nodiscard]] SymPattern bordered_block_diagonal(int blocks, Index grid, Index border,
                                                 int couplings, util::Rng& rng);

}  // namespace ooctree::sparse
