#include "src/sparse/etree.hpp"

namespace ooctree::sparse {

std::vector<Index> elimination_tree(const SymPattern& pattern) {
  const auto n = static_cast<std::size_t>(pattern.size());
  std::vector<Index> parent(n, -1);
  std::vector<Index> ancestor(n, -1);  // path-compressed virtual forest
  for (Index j = 0; j < pattern.size(); ++j) {
    for (const Index i : pattern.neighbors(j)) {
      if (i >= j) break;  // neighbors are sorted; only rows above j matter
      // Walk i's compressed path; everything on it gets ancestor j.
      Index r = i;
      while (ancestor[static_cast<std::size_t>(r)] != -1 &&
             ancestor[static_cast<std::size_t>(r)] != j) {
        const Index next = ancestor[static_cast<std::size_t>(r)];
        ancestor[static_cast<std::size_t>(r)] = j;
        r = next;
      }
      if (ancestor[static_cast<std::size_t>(r)] == -1) {
        ancestor[static_cast<std::size_t>(r)] = j;
        parent[static_cast<std::size_t>(r)] = j;
      }
    }
  }
  return parent;
}

std::vector<std::int64_t> column_counts(const SymPattern& pattern,
                                        const std::vector<Index>& parent) {
  const auto n = static_cast<std::size_t>(pattern.size());
  std::vector<std::int64_t> counts(n, 1);  // diagonal entries
  std::vector<Index> mark(n, -1);
  for (Index i = 0; i < pattern.size(); ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (const Index k : pattern.neighbors(i)) {
      if (k >= i) break;
      // Row subtree walk: climb from k towards i, counting new vertices.
      Index j = k;
      while (j != -1 && mark[static_cast<std::size_t>(j)] != i) {
        ++counts[static_cast<std::size_t>(j)];
        mark[static_cast<std::size_t>(j)] = i;
        j = parent[static_cast<std::size_t>(j)];
      }
    }
  }
  return counts;
}

std::int64_t factor_nnz(const std::vector<std::int64_t>& counts) {
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  return total;
}

}  // namespace ooctree::sparse
