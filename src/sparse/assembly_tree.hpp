// Assembly (task) trees for multifrontal factorization.
//
// In the multifrontal method every elimination-tree node assembles a dense
// frontal matrix from its children's *contribution blocks*, factors one (or
// a supernode's worth of) pivot column(s) and passes its own contribution
// block up. The out-of-core scheduling model of the paper treats the
// contribution block as the node's output datum: w_j = (|L(:,j)| - 1)^2 for
// a single column, or (colcount(top) - 1)^2 for a supernode. This module
// turns a symmetric pattern into that task tree, optionally amalgamating
// fundamental supernodes (single-child chains with colcount decreasing by
// exactly one), which is what real solvers schedule.
#pragma once

#include "src/core/tree.hpp"
#include "src/sparse/csc.hpp"
#include "src/sparse/etree.hpp"

namespace ooctree::sparse {

/// Options for assembly-tree construction.
struct AssemblyOptions {
  bool amalgamate = true;      ///< merge fundamental supernodes
  core::Weight min_weight = 1; ///< floor applied to every node weight
};

/// Builds the task tree of the (possibly permuted) pattern. A forest (from
/// a reducible matrix) is joined under a virtual root of weight
/// `min_weight`. Node weights are contribution-block sizes as described
/// above.
[[nodiscard]] core::Tree assembly_tree(const SymPattern& pattern,
                                       const AssemblyOptions& options = {});

/// Convenience: permute the pattern, then build its assembly tree.
[[nodiscard]] core::Tree assembly_tree_ordered(const SymPattern& pattern,
                                               const std::vector<Index>& perm,
                                               const AssemblyOptions& options = {});

}  // namespace ooctree::sparse
