#include "src/sparse/generators.hpp"

#include <stdexcept>

namespace ooctree::sparse {

namespace {
void check_dims(std::int64_t total) {
  if (total <= 0 || total > (std::int64_t{1} << 30))
    throw std::invalid_argument("grid generator: dimension out of range");
}
}  // namespace

SymPattern grid2d(Index nx, Index ny) {
  check_dims(std::int64_t{nx} * ny);
  std::vector<std::pair<Index, Index>> entries;
  entries.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 2);
  const auto id = [nx](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      if (x + 1 < nx) entries.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) entries.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return SymPattern::from_entries(nx * ny, std::move(entries));
}

SymPattern grid2d_9pt(Index nx, Index ny) {
  check_dims(std::int64_t{nx} * ny);
  std::vector<std::pair<Index, Index>> entries;
  const auto id = [nx](Index x, Index y) { return y * nx + x; };
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      if (x + 1 < nx) entries.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) entries.emplace_back(id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny) entries.emplace_back(id(x, y), id(x + 1, y + 1));
      if (x > 0 && y + 1 < ny) entries.emplace_back(id(x, y), id(x - 1, y + 1));
    }
  }
  return SymPattern::from_entries(nx * ny, std::move(entries));
}

SymPattern grid3d(Index nx, Index ny, Index nz) {
  check_dims(std::int64_t{nx} * ny * nz);
  std::vector<std::pair<Index, Index>> entries;
  const auto id = [nx, ny](Index x, Index y, Index z) { return (z * ny + y) * nx + x; };
  for (Index z = 0; z < nz; ++z) {
    for (Index y = 0; y < ny; ++y) {
      for (Index x = 0; x < nx; ++x) {
        if (x + 1 < nx) entries.emplace_back(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) entries.emplace_back(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) entries.emplace_back(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return SymPattern::from_entries(nx * ny * nz, std::move(entries));
}

SymPattern bordered_block_diagonal(int blocks, Index grid, Index border, int couplings,
                                   util::Rng& rng) {
  if (blocks <= 0 || grid <= 1 || border <= 0 || couplings < 0)
    throw std::invalid_argument("bordered_block_diagonal: bad parameters");
  std::vector<std::pair<Index, Index>> entries;
  const Index block_size = grid * grid;
  Index offset = 0;
  std::vector<Index> block_offsets;
  for (int b = 0; b < blocks; ++b) {
    block_offsets.push_back(offset);
    const SymPattern g = grid2d(grid, grid);
    for (Index j = 0; j < g.size(); ++j)
      for (const Index i : g.neighbors(j))
        if (i < j) entries.emplace_back(offset + i, offset + j);
    offset += block_size;
  }
  const Index border_start = offset;
  for (Index x = 0; x + 1 < border; ++x)
    entries.emplace_back(border_start + x, border_start + x + 1);
  for (int b = 0; b < blocks; ++b) {
    for (Index x = 0; x < border; ++x) {
      for (int c = 0; c < couplings; ++c) {
        const auto inside =
            static_cast<Index>(rng.index(static_cast<std::size_t>(block_size)));
        entries.emplace_back(block_offsets[static_cast<std::size_t>(b)] + inside,
                             border_start + x);
      }
    }
  }
  return SymPattern::from_entries(offset + border, std::move(entries));
}

SymPattern random_symmetric(Index n, double avg_degree, util::Rng& rng) {
  if (n <= 1) throw std::invalid_argument("random_symmetric: n must be > 1");
  std::vector<std::pair<Index, Index>> entries;
  // Spanning tree for connectivity (uniform attachment).
  for (Index v = 1; v < n; ++v)
    entries.emplace_back(v, static_cast<Index>(rng.index(static_cast<std::size_t>(v))));
  // Extra edges up to the requested density.
  const auto target = static_cast<std::int64_t>(avg_degree * n / 2.0);
  for (std::int64_t e = n - 1; e < target; ++e) {
    const auto a = static_cast<Index>(rng.index(static_cast<std::size_t>(n)));
    const auto b = static_cast<Index>(rng.index(static_cast<std::size_t>(n)));
    if (a != b) entries.emplace_back(a, b);
  }
  return SymPattern::from_entries(n, std::move(entries));
}

}  // namespace ooctree::sparse
