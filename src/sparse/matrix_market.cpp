#include "src/sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ooctree::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

}  // namespace

SymPattern read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("matrix market: empty stream");
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%matrixmarket" || object != "matrix")
    throw std::runtime_error("matrix market: bad banner");
  if (format != "coordinate")
    throw std::runtime_error("matrix market: only coordinate format supported");
  const bool has_values = field != "pattern";
  const int values_per_entry = (field == "complex") ? 2 : (has_values ? 1 : 0);
  // The symmetry field is part of the banner and must be honored, not
  // ignored: unknown symmetries are rejected, and `general` files are
  // symmetrized explicitly below (this reader produces symmetric patterns).
  if (symmetry != "general" && symmetry != "symmetric" && symmetry != "skew-symmetric" &&
      symmetry != "hermitian")
    throw std::runtime_error("matrix market: unknown symmetry '" + symmetry + "'");
  if (symmetry == "hermitian" && field != "complex")
    throw std::runtime_error("matrix market: hermitian requires a complex field");
  const bool declared_symmetric = symmetry != "general";

  // Skip comment and blank lines (both legal before the size line), then
  // read the size line.
  do {
    if (!std::getline(in, line)) throw std::runtime_error("matrix market: missing size line");
  } while (blank(line) || line[0] == '%');
  std::istringstream size_line(line);
  std::int64_t rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries))
    throw std::runtime_error("matrix market: malformed size line");
  if (rows != cols) throw std::runtime_error("matrix market: matrix is not square");
  if (rows <= 0 || rows > (std::int64_t{1} << 30))
    throw std::runtime_error("matrix market: dimension out of range");

  std::vector<std::pair<Index, Index>> coo;
  coo.reserve(static_cast<std::size_t>(entries));
  for (std::int64_t e = 0; e < entries; ++e) {
    std::int64_t i = 0, j = 0;
    if (!(in >> i >> j))
      throw std::runtime_error("matrix market: truncated entry list at entry " + std::to_string(e));
    for (int v = 0; v < values_per_entry; ++v) {
      double value = 0;
      if (!(in >> value)) throw std::runtime_error("matrix market: missing value");
    }
    if (i < 1 || i > rows || j < 1 || j > rows)
      throw std::runtime_error("matrix market: entry index out of range");
    if (declared_symmetric && i < j)
      throw std::runtime_error(
          "matrix market: " + symmetry +
          " file stores an upper-triangle entry (the format keeps the lower triangle only)");
    if (symmetry == "skew-symmetric" && i == j)
      throw std::runtime_error(
          "matrix market: skew-symmetric file stores a diagonal entry (A = -A^T forces a zero "
          "diagonal)");
    coo.emplace_back(static_cast<Index>(i - 1), static_cast<Index>(j - 1));
  }
  // Declared-symmetric files expand their stored triangle; `general` files
  // are structurally symmetrized (i,j) | (j,i) — the explicit policy for
  // feeding unsymmetric patterns into the symmetric multifrontal pipeline.
  return SymPattern::from_entries(static_cast<Index>(rows), std::move(coo));
}

SymPattern load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_matrix_market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const SymPattern& pattern) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  std::int64_t edges = 0;
  for (Index j = 0; j < pattern.size(); ++j)
    for (const Index i : pattern.neighbors(j)) edges += (i > j) ? 1 : 0;
  out << pattern.size() << ' ' << pattern.size() << ' ' << edges << '\n';
  for (Index j = 0; j < pattern.size(); ++j)
    for (const Index i : pattern.neighbors(j))
      if (i > j) out << (i + 1) << ' ' << (j + 1) << '\n';
}

void save_matrix_market(const std::string& path, const SymPattern& pattern) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_matrix_market: cannot open " + path);
  write_matrix_market(out, pattern);
  if (!out) throw std::runtime_error("save_matrix_market: write failed for " + path);
}

}  // namespace ooctree::sparse
