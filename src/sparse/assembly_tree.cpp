#include "src/sparse/assembly_tree.hpp"

#include <algorithm>

namespace ooctree::sparse {

namespace {
std::size_t uz(Index i) { return static_cast<std::size_t>(i); }
}  // namespace

core::Tree assembly_tree(const SymPattern& pattern, const AssemblyOptions& options) {
  const Index n = pattern.size();
  const std::vector<Index> parent = elimination_tree(pattern);
  const std::vector<std::int64_t> counts = column_counts(pattern, parent);

  // Supernode amalgamation: column j is merged into its parent p when j is
  // p's only child and counts[j] == counts[p] + 1 (fundamental supernode —
  // the rows below the pivot coincide). rep[j] = top column of j's
  // supernode.
  std::vector<Index> child_count(uz(n), 0);
  for (Index j = 0; j < n; ++j)
    if (parent[uz(j)] != -1) ++child_count[uz(parent[uz(j)])];

  std::vector<Index> rep(uz(n));
  for (Index j = 0; j < n; ++j) rep[uz(j)] = j;
  if (options.amalgamate) {
    // Scan top-down (columns are topologically numbered: parent > child).
    for (Index j = n - 1; j >= 0; --j) {
      const Index p = parent[uz(j)];
      if (p != -1 && child_count[uz(p)] == 1 && counts[uz(j)] == counts[uz(p)] + 1)
        rep[uz(j)] = rep[uz(p)];  // j joins its parent's supernode
      if (j == 0) break;
    }
  }

  // Compress supernodes to task ids; each supernode's weight comes from its
  // top column's contribution block.
  std::vector<core::NodeId> task_id(uz(n), core::kNoNode);
  std::vector<core::NodeId> task_parent;
  std::vector<core::Weight> task_weight;
  std::vector<Index> task_top;  // top column per task
  for (Index j = 0; j < n; ++j) {
    if (rep[uz(j)] != j) continue;
    task_id[uz(j)] = static_cast<core::NodeId>(task_parent.size());
    task_parent.push_back(core::kNoNode);  // fixed below
    const std::int64_t cb = counts[uz(j)] - 1;  // contribution block order
    task_weight.push_back(std::max<core::Weight>(options.min_weight, cb * cb));
    task_top.push_back(j);
  }
  for (std::size_t t = 0; t < task_top.size(); ++t) {
    const Index top = task_top[t];
    const Index p = parent[uz(top)];
    if (p != -1) task_parent[t] = task_id[uz(rep[uz(p)])];
  }

  // Join a forest under a virtual root.
  std::size_t roots = 0;
  for (const core::NodeId p : task_parent) roots += (p == core::kNoNode) ? 1 : 0;
  if (roots > 1) {
    const auto virtual_root = static_cast<core::NodeId>(task_parent.size());
    for (auto& p : task_parent)
      if (p == core::kNoNode) p = virtual_root;
    task_parent.push_back(core::kNoNode);
    task_weight.push_back(options.min_weight);
  }
  return core::Tree::from_parents(std::move(task_parent), std::move(task_weight));
}

core::Tree assembly_tree_ordered(const SymPattern& pattern, const std::vector<Index>& perm,
                                 const AssemblyOptions& options) {
  return assembly_tree(pattern.permuted(perm), options);
}

}  // namespace ooctree::sparse
