// Symmetric sparse matrix *pattern* in compressed form.
//
// The TREES dataset pipeline only needs structure (no numerical values):
// elimination trees and column counts are functions of the nonzero pattern
// of a symmetric matrix. The pattern stores both triangles, excludes the
// diagonal, and keeps every adjacency list sorted, which the ordering and
// symbolic-analysis code relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ooctree::sparse {

using Index = std::int32_t;

/// Symmetric adjacency pattern of an n x n matrix (structural graph).
class SymPattern {
 public:
  /// Builds from (i, j) entry pairs. Entries are symmetrized, deduplicated
  /// and diagonal entries dropped; indices must lie in [0, n).
  static SymPattern from_entries(Index n, std::vector<std::pair<Index, Index>> entries);

  [[nodiscard]] Index size() const { return n_; }

  /// Number of stored (off-diagonal, symmetric) entries: twice the number
  /// of undirected edges.
  [[nodiscard]] std::size_t nnz() const { return row_.size(); }

  /// Sorted neighbors of column/vertex j.
  [[nodiscard]] std::span<const Index> neighbors(Index j) const {
    const auto b = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(j)]);
    const auto e = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(j) + 1]);
    return {row_.data() + b, e - b};
  }

  [[nodiscard]] std::size_t degree(Index j) const { return neighbors(j).size(); }

  /// Applies a permutation: vertex v of the result is old vertex perm[v]
  /// (perm maps new labels to old labels).
  [[nodiscard]] SymPattern permuted(const std::vector<Index>& perm) const;

  /// True when the structural graph is connected.
  [[nodiscard]] bool connected() const;

 private:
  Index n_ = 0;
  std::vector<std::int64_t> ptr_;  // size n+1
  std::vector<Index> row_;
};

}  // namespace ooctree::sparse
