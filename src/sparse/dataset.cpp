#include "src/sparse/dataset.hpp"

#include <functional>

#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/generators.hpp"
#include "src/sparse/ordering.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace ooctree::sparse {

namespace {

AssemblyOptions amalg(bool on) {
  AssemblyOptions o;
  o.amalgamate = on;
  return o;
}

}  // namespace

std::vector<TreeInstance> make_trees_dataset(const DatasetOptions& options) {
  const int scale = options.scale;

  // Stage the instance recipes first, then build them in parallel: the
  // minimum-degree runs on the larger patterns dominate the cost.
  struct Recipe {
    std::string name;
    std::function<core::Tree()> build;
  };
  std::vector<Recipe> recipes;
  util::Rng rng(options.seed);

  // --- 2D grids, nested dissection (the bread-and-butter PDE family). ---
  {
    const Index k_lo = 45;
    const Index k_hi = scale >= 3 ? 200 : (scale == 2 ? 195 : (scale == 1 ? 115 : 55));
    const Index step = scale >= 2 ? 10 : 20;
    for (Index k = k_lo; k <= k_hi; k += step) {
      recipes.push_back({"grid2d_" + std::to_string(k) + "_nd", [k] {
                           const SymPattern g = grid2d(k, k);
                           return assembly_tree_ordered(g, nested_dissection_2d(k, k),
                                                        amalg(false));
                         }});
      recipes.push_back({"grid2d_" + std::to_string(k) + "_nd_amalg", [k] {
                           const SymPattern g = grid2d(k, k);
                           return assembly_tree_ordered(g, nested_dissection_2d(k, k),
                                                        amalg(true));
                         }});
    }
  }

  // --- 2D rectangular grids (anisotropic domains). ---
  if (scale >= 1) {
    for (const Index k : {40, 60, 80, 100}) {
      recipes.push_back(
          {"grid2d_" + std::to_string(k) + "x" + std::to_string(2 * k) + "_nd", [k] {
             const SymPattern g = grid2d(k, 2 * k);
             return assembly_tree_ordered(g, nested_dissection_2d(k, 2 * k), amalg(true));
           }});
    }
    for (const Index k : {50, 90, 130}) {
      recipes.push_back({"grid2d9_" + std::to_string(k) + "_nd", [k] {
                           const SymPattern g = grid2d_9pt(k, k);
                           return assembly_tree_ordered(g, nested_dissection_2d(k, k),
                                                        amalg(true));
                         }});
    }
  }

  // --- 2D grids, RCM (deep band-style trees). ---
  {
    const Index k_hi = scale >= 2 ? 140 : 60;
    for (Index k = 45; k <= k_hi; k += 15) {
      recipes.push_back({"grid2d_" + std::to_string(k) + "_rcm", [k] {
                           const SymPattern g = grid2d(k, k);
                           return assembly_tree_ordered(g, reverse_cuthill_mckee(g),
                                                        amalg(true));
                         }});
    }
  }

  // --- 2D grids, minimum degree (bushy trees). ---
  {
    const Index k_hi = scale >= 2 ? 95 : 55;
    for (Index k = 45; k <= k_hi; k += 10) {
      recipes.push_back({"grid2d_" + std::to_string(k) + "_md", [k] {
                           const SymPattern g = grid2d(k, k);
                           return assembly_tree_ordered(g, minimum_degree(g), amalg(false));
                         }});
      if (scale >= 2) {
        recipes.push_back({"grid2d_" + std::to_string(k) + "_md_amalg", [k] {
                             const SymPattern g = grid2d(k, k);
                             return assembly_tree_ordered(g, minimum_degree(g), amalg(true));
                           }});
      }
    }
  }

  // --- 3D grids. ---
  if (options.include_3d) {
    const Index k_hi = scale >= 3 ? 33 : (scale == 2 ? 31 : (scale == 1 ? 21 : 13));
    for (Index k = 13; k <= k_hi; k += 2) {
      recipes.push_back({"grid3d_" + std::to_string(k) + "_nd", [k] {
                           const SymPattern g = grid3d(k, k, k);
                           return assembly_tree_ordered(g, nested_dissection_3d(k, k, k),
                                                        amalg(false));
                         }});
    }
    if (scale >= 2) {
      for (const Index k : {13, 15}) {
        recipes.push_back({"grid3d_" + std::to_string(k) + "_md", [k] {
                             const SymPattern g = grid3d(k, k, k);
                             return assembly_tree_ordered(g, minimum_degree(g), amalg(false));
                           }});
      }
    }
  }

  // --- Bordered block-diagonal systems (domain decomposition style):
  // several heavy independent branches joined late, the structure that
  // separates the strategies most clearly on real collections. ---
  if (scale >= 1) {
    const std::vector<std::pair<int, Index>> shapes =
        scale >= 2 ? std::vector<std::pair<int, Index>>{{4, 30}, {4, 40}, {4, 50}, {6, 30},
                                                        {6, 40}, {6, 50}, {8, 30}, {8, 40},
                                                        {8, 50}, {12, 30}, {12, 40}}
                   : std::vector<std::pair<int, Index>>{{4, 30}, {8, 40}};
    for (const auto& [blocks, grid] : shapes) {
      const std::uint64_t seed = rng.engine()();
      recipes.push_back(
          {"bbd_" + std::to_string(blocks) + "x" + std::to_string(grid) + "_md",
           [blocks = blocks, grid = grid, seed] {
             util::Rng local(seed);
             const SymPattern g = bordered_block_diagonal(blocks, grid, 20, 2, local);
             return assembly_tree_ordered(g, minimum_degree(g), amalg(false));
           }});
    }
  }

  // --- Random SPD patterns under minimum degree (kept small: random
  // graphs fill in catastrophically, which is the realistic stress case
  // but also the expensive one). ---
  if (options.include_random) {
    const std::vector<Index> sizes = scale >= 2 ? std::vector<Index>{2000, 3000, 4000}
                                                : std::vector<Index>{2000};
    for (const Index n : sizes) {
      for (const double deg : {3.0, 6.0}) {
        const std::uint64_t seed = rng.engine()();
        recipes.push_back(
            {"rand_" + std::to_string(n) + "_d" + std::to_string(static_cast<int>(deg)) + "_md",
             [n, deg, seed] {
               util::Rng local(seed);
               const SymPattern g = random_symmetric(n, deg, local);
               return assembly_tree_ordered(g, minimum_degree(g), amalg(false));
             }});
        recipes.push_back(
            {"rand_" + std::to_string(n) + "_d" + std::to_string(static_cast<int>(deg)) + "_rcm",
             [n, deg, seed] {
               util::Rng local(seed);
               const SymPattern g = random_symmetric(n, deg, local);
               return assembly_tree_ordered(g, reverse_cuthill_mckee(g), amalg(true));
             }});
      }
    }
  }

  // Build all instances in parallel; the order of `out` follows recipes.
  std::vector<TreeInstance> out;
  out.reserve(recipes.size());
  for (const auto& r : recipes) out.push_back({r.name, core::make_tree({{core::kNoNode, 1}})});
  util::parallel_for(recipes.size(), [&](std::size_t i) { out[i].tree = recipes[i].build(); });
  return out;
}

}  // namespace ooctree::sparse
