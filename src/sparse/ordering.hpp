// Fill-reducing orderings for symmetric patterns.
//
// Each function returns a permutation `perm` with perm[new] = old, meant to
// be applied via SymPattern::permuted. Three classic families:
//   * reverse Cuthill-McKee: bandwidth reduction, produces deep, skinny
//     elimination trees;
//   * minimum degree (exact exterior degree on the elimination graph, with
//     element absorption): the classical fill heuristic, bushy trees;
//   * nested dissection for structured grids (geometric separators):
//     balanced trees, the standard choice for large PDE problems.
#pragma once

#include <vector>

#include "src/sparse/csc.hpp"

namespace ooctree::sparse {

/// Reverse Cuthill-McKee starting from a pseudo-peripheral vertex.
[[nodiscard]] std::vector<Index> reverse_cuthill_mckee(const SymPattern& pattern);

/// Exact minimum (exterior) degree with quotient-graph element absorption.
/// Intended for patterns up to a few tens of thousands of vertices.
[[nodiscard]] std::vector<Index> minimum_degree(const SymPattern& pattern);

/// Geometric nested dissection for an nx-by-ny 5- or 9-point grid: middle
/// separators, recursing until blocks of <= leaf_size vertices, which are
/// ordered locally. Returns a permutation for the grid's natural numbering
/// (vertex y*nx + x).
[[nodiscard]] std::vector<Index> nested_dissection_2d(Index nx, Index ny, Index leaf_size = 8);

/// Geometric nested dissection for an nx-by-ny-by-nz 7-point grid.
[[nodiscard]] std::vector<Index> nested_dissection_3d(Index nx, Index ny, Index nz,
                                                      Index leaf_size = 8);

/// The identity (natural) ordering.
[[nodiscard]] std::vector<Index> natural_order(Index n);

}  // namespace ooctree::sparse
