#include "src/sparse/ordering.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ooctree::sparse {

namespace {
std::size_t uz(Index i) { return static_cast<std::size_t>(i); }
}  // namespace

std::vector<Index> natural_order(Index n) {
  std::vector<Index> perm(uz(n));
  for (Index i = 0; i < n; ++i) perm[uz(i)] = i;
  return perm;
}

// ---------------------------------------------------------------------------
// Reverse Cuthill-McKee
// ---------------------------------------------------------------------------

namespace {

/// BFS from `start`; returns (levels, last vertex of the deepest level with
/// smallest degree) — the classic pseudo-peripheral probe.
std::pair<int, Index> bfs_depth(const SymPattern& p, Index start, std::vector<int>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::vector<Index> frontier{start};
  level[uz(start)] = 0;
  int depth = 0;
  Index far = start;
  while (!frontier.empty()) {
    std::vector<Index> next;
    for (const Index v : frontier) {
      for (const Index u : p.neighbors(v)) {
        if (level[uz(u)] == -1) {
          level[uz(u)] = level[uz(v)] + 1;
          next.push_back(u);
        }
      }
    }
    if (!next.empty()) {
      ++depth;
      // Smallest-degree vertex of the new deepest level.
      far = *std::min_element(next.begin(), next.end(), [&](Index a, Index b) {
        return p.degree(a) < p.degree(b);
      });
    }
    frontier = std::move(next);
  }
  return {depth, far};
}

}  // namespace

std::vector<Index> reverse_cuthill_mckee(const SymPattern& pattern) {
  const Index n = pattern.size();
  std::vector<Index> order;
  order.reserve(uz(n));
  std::vector<bool> placed(uz(n), false);
  std::vector<int> level(uz(n));

  for (Index seed = 0; seed < n; ++seed) {
    if (placed[uz(seed)]) continue;
    // Pseudo-peripheral start within this connected component.
    Index start = seed;
    int depth = -1;
    for (int iter = 0; iter < 8; ++iter) {
      const auto [d, far] = bfs_depth(pattern, start, level);
      if (d <= depth) break;
      depth = d;
      start = far;
    }
    // Cuthill-McKee BFS: visit neighbors by increasing degree.
    std::queue<Index> queue;
    queue.push(start);
    placed[uz(start)] = true;
    while (!queue.empty()) {
      const Index v = queue.front();
      queue.pop();
      order.push_back(v);
      std::vector<Index> fresh;
      for (const Index u : pattern.neighbors(v))
        if (!placed[uz(u)]) {
          placed[uz(u)] = true;
          fresh.push_back(u);
        }
      std::sort(fresh.begin(), fresh.end(),
                [&](Index a, Index b) { return pattern.degree(a) < pattern.degree(b); });
      for (const Index u : fresh) queue.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

// ---------------------------------------------------------------------------
// Minimum degree (quotient graph with element absorption, exact degrees)
// ---------------------------------------------------------------------------

std::vector<Index> minimum_degree(const SymPattern& pattern) {
  const Index n = pattern.size();
  // Variable adjacency (variables only) and element lists per variable.
  std::vector<std::vector<Index>> adj(uz(n));
  std::vector<std::vector<Index>> elems(uz(n));   // element ids = eliminated vertex
  std::vector<std::vector<Index>> evars(uz(n));   // element id -> its variables
  std::vector<bool> eliminated(uz(n), false);
  std::vector<bool> absorbed(uz(n), false);       // element absorbed into a newer one
  std::vector<Index> marker(uz(n), -1);
  std::vector<std::int64_t> degree(uz(n), 0);

  for (Index v = 0; v < n; ++v) {
    const auto nb = pattern.neighbors(v);
    adj[uz(v)].assign(nb.begin(), nb.end());
    degree[uz(v)] = static_cast<std::int64_t>(nb.size());
  }

  using Entry = std::pair<std::int64_t, Index>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (Index v = 0; v < n; ++v) heap.emplace(degree[uz(v)], v);

  // Reachable set of a variable v (marker-deduplicated, excludes v and
  // eliminated vertices): direct variable neighbors plus the variables of
  // its elements.
  std::vector<Index> reach_buffer;
  const auto reach = [&](Index v, Index stamp) -> const std::vector<Index>& {
    reach_buffer.clear();
    marker[uz(v)] = stamp;
    for (const Index u : adj[uz(v)]) {
      if (!eliminated[uz(u)] && marker[uz(u)] != stamp) {
        marker[uz(u)] = stamp;
        reach_buffer.push_back(u);
      }
    }
    for (const Index e : elems[uz(v)]) {
      if (absorbed[uz(e)]) continue;
      for (const Index u : evars[uz(e)]) {
        if (!eliminated[uz(u)] && marker[uz(u)] != stamp) {
          marker[uz(u)] = stamp;
          reach_buffer.push_back(u);
        }
      }
    }
    return reach_buffer;
  };

  std::vector<Index> order;
  order.reserve(uz(n));
  Index stamp = n;  // marker stamps beyond vertex ids stay unique
  while (order.size() < uz(n)) {
    // Lazy heap: skip stale entries.
    const auto [d, p] = heap.top();
    heap.pop();
    if (eliminated[uz(p)] || d != degree[uz(p)]) continue;

    // Eliminate p: its reachable set becomes element p.
    const std::vector<Index> vars = reach(p, stamp++);
    eliminated[uz(p)] = true;
    order.push_back(p);
    evars[uz(p)] = vars;
    for (const Index e : elems[uz(p)]) absorbed[uz(e)] = true;  // e subset of new element
    elems[uz(p)].clear();
    adj[uz(p)].clear();

    for (const Index u : vars) {
      // Drop absorbed elements and dead variable links; add element p.
      auto& ue = elems[uz(u)];
      ue.erase(std::remove_if(ue.begin(), ue.end(), [&](Index e) { return absorbed[uz(e)]; }),
               ue.end());
      ue.push_back(p);
      auto& ua = adj[uz(u)];
      ua.erase(std::remove_if(ua.begin(), ua.end(),
                              [&](Index w) { return eliminated[uz(w)]; }),
               ua.end());
      // Exact exterior degree and heap refresh.
      degree[uz(u)] = static_cast<std::int64_t>(reach(u, stamp++).size());
      heap.emplace(degree[uz(u)], u);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Geometric nested dissection
// ---------------------------------------------------------------------------

namespace {

void nd2d_recurse(Index nx, Index x0, Index x1, Index y0, Index y1, Index leaf_size,
                  std::vector<Index>& order) {
  const Index w = x1 - x0;
  const Index h = y1 - y0;
  if (static_cast<std::int64_t>(w) * h <= leaf_size || (w <= 2 && h <= 2)) {
    for (Index y = y0; y < y1; ++y)
      for (Index x = x0; x < x1; ++x) order.push_back(y * nx + x);
    return;
  }
  if (w >= h) {
    const Index xs = x0 + w / 2;  // vertical separator column
    nd2d_recurse(nx, x0, xs, y0, y1, leaf_size, order);
    nd2d_recurse(nx, xs + 1, x1, y0, y1, leaf_size, order);
    for (Index y = y0; y < y1; ++y) order.push_back(y * nx + xs);
  } else {
    const Index ys = y0 + h / 2;  // horizontal separator row
    nd2d_recurse(nx, x0, x1, y0, ys, leaf_size, order);
    nd2d_recurse(nx, x0, x1, ys + 1, y1, leaf_size, order);
    for (Index x = x0; x < x1; ++x) order.push_back(ys * nx + x);
  }
}

void nd3d_recurse(Index nx, Index ny, Index x0, Index x1, Index y0, Index y1, Index z0, Index z1,
                  Index leaf_size, std::vector<Index>& order) {
  const Index w = x1 - x0, h = y1 - y0, d = z1 - z0;
  const auto id = [nx, ny](Index x, Index y, Index z) { return (z * ny + y) * nx + x; };
  if (static_cast<std::int64_t>(w) * h * d <= leaf_size || (w <= 2 && h <= 2 && d <= 2)) {
    for (Index z = z0; z < z1; ++z)
      for (Index y = y0; y < y1; ++y)
        for (Index x = x0; x < x1; ++x) order.push_back(id(x, y, z));
    return;
  }
  if (w >= h && w >= d) {
    const Index xs = x0 + w / 2;
    nd3d_recurse(nx, ny, x0, xs, y0, y1, z0, z1, leaf_size, order);
    nd3d_recurse(nx, ny, xs + 1, x1, y0, y1, z0, z1, leaf_size, order);
    for (Index z = z0; z < z1; ++z)
      for (Index y = y0; y < y1; ++y) order.push_back(id(xs, y, z));
  } else if (h >= d) {
    const Index ys = y0 + h / 2;
    nd3d_recurse(nx, ny, x0, x1, y0, ys, z0, z1, leaf_size, order);
    nd3d_recurse(nx, ny, x0, x1, ys + 1, y1, z0, z1, leaf_size, order);
    for (Index z = z0; z < z1; ++z)
      for (Index x = x0; x < x1; ++x) order.push_back(id(x, ys, z));
  } else {
    const Index zs = z0 + d / 2;
    nd3d_recurse(nx, ny, x0, x1, y0, y1, z0, zs, leaf_size, order);
    nd3d_recurse(nx, ny, x0, x1, y0, y1, zs + 1, z1, leaf_size, order);
    for (Index y = y0; y < y1; ++y)
      for (Index x = x0; x < x1; ++x) order.push_back(id(x, y, zs));
  }
}

}  // namespace

std::vector<Index> nested_dissection_2d(Index nx, Index ny, Index leaf_size) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("nested_dissection_2d: bad dims");
  std::vector<Index> order;
  order.reserve(uz(nx) * uz(ny));
  nd2d_recurse(nx, 0, nx, 0, ny, leaf_size, order);
  return order;
}

std::vector<Index> nested_dissection_3d(Index nx, Index ny, Index nz, Index leaf_size) {
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("nested_dissection_3d: bad dims");
  std::vector<Index> order;
  order.reserve(uz(nx) * uz(ny) * uz(nz));
  nd3d_recurse(nx, ny, 0, nx, 0, ny, 0, nz, leaf_size, order);
  return order;
}

}  // namespace ooctree::sparse
