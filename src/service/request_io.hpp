// Decoding PlanRequest batches from JSONL and CSV streams.
//
// JSONL: one flat JSON object per line ('#' comments and blank lines are
// skipped). Keys — all optional, unknown keys rejected:
//   id, source ("synth" | "parents" | "tree" | "mtx"),
//   tenant                            (fair-scheduling key of the server;
//                                      routing metadata, never cached on)
//   nodes, w_lo, w_hi, seed           (synth generator spec)
//   parent [..], weight [..]          (inline parent-vector tree)
//   path                              (tree / mtx file sources)
//   model ("max" | "sum"),
//   memory, memory_lb, strategy ("postorder" | "optminmem" | "recexpand" |
//   "full"), and the parallel replay block: workers (> 0 enables the
//   replay), priority, evict, cost, backfill, backfill_depth (bounded
//   backfill look-ahead, 0 = unlimited), reserve_penalty (for
//   priority = reserved-critical-path), residency (bool, residency-aware
//   paged starts), evict_seed, page_size (> 0 switches the replay to the
//   paged engine, page-I/O stats in the response), disk_latency /
//   disk_bandwidth (> 0 charges read stalls; requires page_size).
// When "source" is absent it is inferred: a "path" ending in .mtx means
// mtx, any other path means tree, a "parent" array means parents,
// otherwise synth. When "id" is absent the 1-based line ordinal (JSONL) or
// data-row ordinal (CSV) is used.
//
// CSV: a header row naming a subset of the scalar keys above (parent/
// weight arrays are JSONL-only), then one request per row; empty cells
// keep the field's default. The same inference rules apply.
//
// The parser is deliberately minimal — flat objects, numbers, strings,
// booleans and integer arrays — so the service has no dependency beyond
// the standard library. Malformed input throws std::runtime_error with a
// line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/service/request.hpp"

namespace ooctree::service {

/// Batch file format selector; kAuto sniffs JSONL by a leading '{'.
enum class BatchFormat : std::uint8_t { kAuto, kJsonl, kCsv };

/// Decodes one JSONL object into a request. `fallback_id` is used when the
/// object has no "id" key. Throws std::runtime_error on malformed input.
[[nodiscard]] PlanRequest request_from_json(const std::string& line,
                                            std::int64_t fallback_id = 0);

/// Reads a whole JSONL stream.
[[nodiscard]] std::vector<PlanRequest> read_requests_jsonl(std::istream& in);

/// Reads a whole CSV stream (header row + one request per data row).
[[nodiscard]] std::vector<PlanRequest> read_requests_csv(std::istream& in);

/// Loads a batch file. kAuto decides per content: a first non-blank,
/// non-comment line starting with '{' is JSONL, anything else CSV.
[[nodiscard]] std::vector<PlanRequest> load_requests(const std::string& path,
                                                     BatchFormat format = BatchFormat::kAuto);

}  // namespace ooctree::service
