#include "src/service/plan_service.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/core/check.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"
#include "src/util/stopwatch.hpp"

namespace ooctree::service {

namespace {

/// Keyspace tag for request-fingerprint entries: keeps spec digests from
/// ever colliding with canonical (tree, params) keys, whose params half is
/// a salted splitmix chain and cannot equal this constant by accident.
constexpr std::uint64_t kFingerprintTag = 0xf19e5f19e5f19e51ULL;

std::shared_ptr<const PlanStats> error_stats(const std::string& message) {
  auto stats = std::make_shared<PlanStats>();
  stats->ok = false;
  stats->error = message;
  return stats;
}

}  // namespace

/// Per-tree shared planning state of one fused group. Only state that is a
/// *pure function of the tree alone* is shared — the OptMinMem schedule and
/// the opt_minmem_all_peaks vector, both memory-independent — so run() is
/// bit-identical to core::run_strategy by construction: kOptMinMem hands
/// out copies of the one optimal schedule run_strategy would recompute,
/// and the RecExpand variants call the rec_expand overload the 3-arg
/// entry point itself delegates to. kPostOrderMinIo is memory-dependent
/// and shares nothing beyond the materialized tree.
class PlanService::SharedPlanState {
 public:
  explicit SharedPlanState(const core::Tree& tree) : tree_(tree) {}

  [[nodiscard]] core::StrategyOutcome run(core::Strategy s, core::Weight memory) {
    core::StrategyOutcome out;
    out.strategy = s;
    switch (s) {
      case core::Strategy::kPostOrderMinIo:
        out.schedule = core::postorder_minio(tree_, memory).schedule;
        break;
      case core::Strategy::kOptMinMem:
        if (!optminmem_.has_value()) optminmem_ = core::opt_minmem(tree_).schedule;
        out.schedule = *optminmem_;
        break;
      case core::Strategy::kRecExpand: {
        core::RecExpandOptions options;
        options.max_expansions_per_node = 2;
        out.schedule = core::rec_expand(tree_, memory, options, peaks()).schedule;
        break;
      }
      case core::Strategy::kFullRecExpand:
        out.schedule = core::rec_expand(tree_, memory, core::RecExpandOptions{}, peaks()).schedule;
        break;
    }
    out.evaluation = core::simulate_fif(tree_, out.schedule, memory);
    return out;
  }

 private:
  [[nodiscard]] const std::vector<core::Weight>& peaks() {
    if (!all_peaks_.has_value()) all_peaks_ = core::opt_minmem_all_peaks(tree_);
    return *all_peaks_;
  }

  const core::Tree& tree_;
  std::optional<core::Schedule> optminmem_;
  std::optional<std::vector<core::Weight>> all_peaks_;
};

PlanService::PlanService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards, config.persist_dir),
      pool_(config.threads) {}

std::future<PlanResponse> PlanService::submit(PlanRequest request) {
  submitted_.fetch_add(1);
  return pool_.submit([this, request = std::move(request)] { return serve(request); });
}

std::vector<std::future<PlanResponse>> PlanService::submit_batch(
    std::vector<PlanRequest> requests) {
  std::vector<std::future<PlanResponse>> futures;
  futures.reserve(requests.size());
  for (PlanRequest& request : requests) futures.push_back(submit(std::move(request)));
  return futures;
}

PlanResponse PlanService::plan(const PlanRequest& request) {
  submitted_.fetch_add(1);
  return serve(request);
}

std::vector<PlanResponse> PlanService::plan_fused(const std::vector<PlanRequest>& requests) {
  std::vector<PlanResponse> responses(requests.size());
  std::vector<std::uint64_t> seeds(requests.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    seeds[i] = effective_seed(requests[i], config_.seed);
    groups[tree_identity(requests[i], seeds[i])].push_back(i);
  }
  // Process groups in first-member order so the batch is served
  // deterministically regardless of hash-map iteration order.
  std::vector<bool> handled(requests.size(), false);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (handled[i]) continue;
    const std::vector<std::size_t>& members = groups[tree_identity(requests[i], seeds[i])];
    for (const std::size_t m : members) handled[m] = true;
    if (members.size() == 1) {
      responses[i] = plan(requests[i]);  // singleton: ordinary serve() path
      continue;
    }
    submitted_.fetch_add(members.size());
    serve_group(requests, members, seeds, responses);
  }
  return responses;
}

void PlanService::serve_group(const std::vector<PlanRequest>& requests,
                              const std::vector<std::size_t>& members,
                              const std::vector<std::uint64_t>& seeds,
                              std::vector<PlanResponse>& responses) {
  const util::Stopwatch watch;

  // Static validation and the spec-fingerprint cache probe per member,
  // mirroring serve(); survivors proceed to the shared materialization.
  std::vector<std::size_t> pending;
  pending.reserve(members.size());
  for (const std::size_t i : members) {
    const PlanRequest& request = requests[i];
    const auto fail = [&](const char* message) {
      responses[i] = respond(request, error_stats(message), Served::kFused, watch.seconds());
    };
    if (request.page_size < 0) {
      fail("page_size must be >= 0");
    } else if (request.page_size > 0 && !request.parallel.has_value()) {
      fail("page_size requires a parallel replay config (workers)");
    } else if (request.disk_latency < 0 || request.disk_bandwidth < 0) {
      fail("disk_latency / disk_bandwidth must be >= 0");
    } else if (request.disk_latency > 0 && request.disk_bandwidth == 0) {
      fail("disk_latency requires disk_bandwidth > 0");
    } else if (request.disk_bandwidth > 0 && request.page_size == 0) {
      fail("a disk model requires a paged replay (page_size > 0)");
    } else if (request.parallel.has_value() &&
               (request.parallel->write_queue_depth > 0 || request.parallel->prefetch_window > 0) &&
               request.disk_bandwidth == 0) {
      fail("write_queue_depth / prefetch_window require a disk model (disk_bandwidth > 0)");
    } else {
      const std::optional<std::uint64_t> fingerprint = request_fingerprint(request, seeds[i]);
      std::shared_ptr<const PlanStats> hit;
      if (fingerprint.has_value() &&
          (hit = cache_.get(CacheKey{*fingerprint, kFingerprintTag})) != nullptr)
        responses[i] = respond(request, std::move(hit), Served::kCached, watch.seconds());
      else
        pending.push_back(i);
    }
  }
  if (pending.empty()) return;

  // One materialization for the whole group — members share tree_identity,
  // so they materialize bit-identical trees by construction.
  std::optional<core::Tree> tree;
  try {
    tree.emplace(materialize_tree(requests[pending.front()], seeds[pending.front()]));
  } catch (const std::exception& e) {
    for (const std::size_t i : pending)
      responses[i] = respond(requests[i], error_stats(e.what()), Served::kFused, watch.seconds());
    return;
  }

  SharedPlanState shared(*tree);
  for (const std::size_t i : pending) {
    const PlanRequest& request = requests[i];
    try {
      const core::Weight memory = resolve_memory(request, *tree);
      const CacheKey key{tree->canonical_hash(), params_fingerprint(request, memory, seeds[i])};
      const std::optional<std::uint64_t> fingerprint = request_fingerprint(request, seeds[i]);
      const CacheKey spec_key{fingerprint.value_or(0), kFingerprintTag};
      // The canonical probe also dedups *within* the group: an earlier
      // member with the same (memory, strategy, replay) put its result
      // just below, so later twins are cache hits, not recomputes.
      if (auto hit = cache_.get(key)) {
        if (fingerprint.has_value()) cache_.put(spec_key, hit, /*persistable=*/false);
        responses[i] = respond(request, std::move(hit), Served::kCached, watch.seconds());
        continue;
      }
      std::shared_ptr<const PlanStats> stats =
          finish_stats(request, *tree, memory, seeds[i], shared.run(request.strategy, memory));
      if (stats->ok) {
        cache_.put(key, stats, /*persistable=*/true);
        if (fingerprint.has_value()) cache_.put(spec_key, stats, /*persistable=*/false);
      }
      responses[i] = respond(request, std::move(stats), Served::kFused, watch.seconds());
    } catch (const std::exception& e) {
      responses[i] = respond(request, error_stats(e.what()), Served::kFused, watch.seconds());
    }
  }
}

PlanResponse PlanService::respond(const PlanRequest& request,
                                  std::shared_ptr<const PlanStats> stats, Served served,
                                  double seconds) {
  switch (served) {
    case Served::kComputed: computed_.fetch_add(1); break;
    case Served::kCached: cached_.fetch_add(1); break;
    case Served::kCoalesced: coalesced_.fetch_add(1); break;
    case Served::kFused: fused_.fetch_add(1); break;
    case Served::kShed: break;  // constructed by the server layer, never here
  }
  if (!stats->ok) failed_.fetch_add(1);
  completed_.fetch_add(1);
  PlanResponse response;
  response.id = request.id;
  response.stats = std::move(stats);
  response.served = served;
  response.seconds = seconds;
  return response;
}

PlanResponse PlanService::serve(const PlanRequest& request) {
  const util::Stopwatch watch;
  const std::uint64_t seed = effective_seed(request, config_.seed);

  const auto respond = [&](std::shared_ptr<const PlanStats> stats,
                           Served served) -> PlanResponse {
    return this->respond(request, std::move(stats), served, watch.seconds());
  };

  // Statically invalid page/replay combinations fail before any cache
  // lookup: they must neither collide with a valid request's keys nor pay
  // for planning before the error surfaces.
  if (request.page_size < 0)
    return respond(error_stats("page_size must be >= 0"), Served::kComputed);
  if (request.page_size > 0 && !request.parallel.has_value())
    return respond(error_stats("page_size requires a parallel replay config (workers)"),
                   Served::kComputed);
  if (request.disk_latency < 0 || request.disk_bandwidth < 0)
    return respond(error_stats("disk_latency / disk_bandwidth must be >= 0"), Served::kComputed);
  if (request.disk_latency > 0 && request.disk_bandwidth == 0)
    return respond(error_stats("disk_latency requires disk_bandwidth > 0"), Served::kComputed);
  if (request.disk_bandwidth > 0 && request.page_size == 0)
    return respond(error_stats("a disk model requires a paged replay (page_size > 0)"),
                   Served::kComputed);
  // The disk-pipeline knobs model transfers against the DiskModel timeline;
  // without one they would be silently inert — reject instead.
  if (request.parallel.has_value() &&
      (request.parallel->write_queue_depth > 0 || request.parallel->prefetch_window > 0) &&
      request.disk_bandwidth == 0)
    return respond(
        error_stats("write_queue_depth / prefetch_window require a disk model (disk_bandwidth "
                    "> 0)"),
        Served::kComputed);

  // Layer 1: spec fingerprint — value-determined requests skip the tree.
  const std::optional<std::uint64_t> fingerprint = request_fingerprint(request, seed);
  const CacheKey spec_key{fingerprint.value_or(0), kFingerprintTag};
  if (fingerprint.has_value()) {
    if (auto hit = cache_.get(spec_key)) return respond(std::move(hit), Served::kCached);
  }

  try {
    core::Tree tree = materialize_tree(request, seed);
    const core::Weight memory = resolve_memory(request, tree);

    // Layer 2: canonical key — identical instances from any source collapse.
    const CacheKey key{tree.canonical_hash(), params_fingerprint(request, memory, seed)};
    if (auto hit = cache_.get(key)) {
      // Spec-fingerprint entries are derivable from the request alone, so
      // they stay RAM-only (persistable=false); only canonical entries are
      // worth spilling across restarts.
      if (fingerprint.has_value()) cache_.put(spec_key, hit, /*persistable=*/false);
      return respond(std::move(hit), Served::kCached);
    }

    // Layer 3: coalesce with an identical computation already running.
    std::promise<std::shared_ptr<const PlanStats>> promise;
    bool leader = true;
    if (config_.coalesce) {
      std::shared_future<std::shared_ptr<const PlanStats>> pending;
      std::shared_ptr<const PlanStats> rechecked;
      {
        const std::lock_guard lock(inflight_mutex_);
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          pending = it->second;
          leader = false;
        } else if ((rechecked = cache_.get(key)) != nullptr) {
          // A previous leader finished (cache put + erase) between our
          // cache miss above and taking this lock; without the re-check a
          // second leader would recompute the same key.
          leader = false;
        } else {
          inflight_.emplace(key, promise.get_future().share());
        }
      }
      if (rechecked != nullptr) {
        if (fingerprint.has_value()) cache_.put(spec_key, rechecked, /*persistable=*/false);
        return respond(std::move(rechecked), Served::kCached);
      }
      if (!leader) return respond(pending.get(), Served::kCoalesced);
    }

    // compute() never throws: failures come back as ok=false stats, so the
    // promise below is always fulfilled and waiters can never hang. The
    // catch covers the cache insertion (allocation) — a registered leader
    // must fulfill its promise and clear the key on *every* exit, or the
    // stale entry would poison all future requests for this instance.
    std::shared_ptr<const PlanStats> stats;
    try {
      stats = compute(request, std::move(tree), memory, seed);
      if (stats->ok) {
        cache_.put(key, stats, /*persistable=*/true);
        if (fingerprint.has_value()) cache_.put(spec_key, stats, /*persistable=*/false);
      }
    } catch (...) {
      if (config_.coalesce) {
        promise.set_value(error_stats("planning aborted"));
        const std::lock_guard lock(inflight_mutex_);
        inflight_.erase(key);
      }
      throw;
    }
    if (config_.coalesce) {
      promise.set_value(stats);
      const std::lock_guard lock(inflight_mutex_);
      inflight_.erase(key);
    }
    return respond(std::move(stats), Served::kComputed);
  } catch (const std::exception& e) {
    return respond(error_stats(e.what()), Served::kComputed);
  }
}

std::shared_ptr<const PlanStats> PlanService::compute(const PlanRequest& request,
                                                      core::Tree tree, core::Weight memory,
                                                      std::uint64_t seed) const {
  try {
    return finish_stats(request, tree, memory, seed,
                        core::run_strategy(request.strategy, tree, memory));
  } catch (const std::exception& e) {
    return error_stats(e.what());
  }
}

std::shared_ptr<const PlanStats> PlanService::finish_stats(const PlanRequest& request,
                                                           const core::Tree& tree,
                                                           core::Weight memory,
                                                           std::uint64_t seed,
                                                           core::StrategyOutcome outcome) const {
  auto stats = std::make_shared<PlanStats>();
  try {
    stats->nodes = tree.size();
    stats->tree_hash = tree.canonical_hash();
    stats->total_weight = tree.total_weight();
    stats->lb = tree.min_feasible_memory();
    stats->memory = memory;
    stats->strategy = request.strategy;

    if (!outcome.evaluation.feasible)
      throw std::runtime_error("plan infeasible under the resolved memory bound");
    stats->schedule = std::move(outcome.schedule);
    stats->io = std::move(outcome.evaluation.io);
    stats->io_volume = outcome.evaluation.io_volume;
    stats->peak_resident = outcome.evaluation.peak_resident;
    stats->evictions = outcome.evaluation.evictions;

    if (request.parallel.has_value()) {
      // The unit replay is the page_size = 1 specialization of the paged
      // engine (free reads), so one call serves both request shapes; only
      // the page stats are gated on the request actually being paged.
      parallel::PagedParallelConfig paged;
      paged.base = *request.parallel;
      paged.base.memory = memory;
      if (paged.base.seed == 0) paged.base.seed = seed;
      paged.page_size = std::max<core::Weight>(1, request.page_size);
      if (request.disk_bandwidth > 0)
        paged.disk = iosim::DiskModel{request.disk_latency, request.disk_bandwidth};
      const parallel::PagedParallelResult replay =
          parallel::simulate_parallel_paged(tree, paged, stats->schedule);
      stats->replayed = true;
      stats->replay_feasible = replay.base.feasible;
      stats->workers = paged.base.workers;
      stats->makespan = replay.base.makespan;
      stats->parallel_io = replay.base.io_volume;
      stats->utilization = replay.base.utilization(paged.base.workers);
      stats->failed_starts = replay.base.failed_starts;
      if (request.page_size > 0) {
        stats->page_size = request.page_size;
        stats->pages_written = replay.pages_written;
        stats->pages_read = replay.pages_read;
        stats->read_stall = replay.read_stall;
        stats->write_stall = replay.write_stall;
        stats->prefetch_issued = replay.prefetch_issued;
        stats->prefetch_useful = replay.prefetch_useful;
        stats->prefetch_wasted = replay.prefetch_wasted;
      }
    }
    stats->ok = true;
  } catch (const std::exception& e) {
    auto failed = std::make_shared<PlanStats>();
    failed->ok = false;
    failed->error = e.what();
    return failed;
  }
  return stats;
}

void PlanService::audit(bool quiescent) const {
  // Counter relations that hold at every instant of serve(): the served
  // counters (computed/cached/coalesced) are bumped before completed_, and
  // nothing is served that was not submitted. Loads are monotone, so a
  // concurrent serve can only widen the inequalities, never break them —
  // read completed_ first and submitted_ last to keep the comparison safe.
  const std::uint64_t completed = completed_.load();
  const std::uint64_t failed = failed_.load();
  const std::uint64_t served =
      computed_.load() + cached_.load() + coalesced_.load() + fused_.load();
  const std::uint64_t submitted = submitted_.load();
  core::audit_check(completed <= served,
                    "PlanService: completed responses outnumber served ones");
  core::audit_check(served <= submitted, "PlanService: served responses outnumber submissions");
  core::audit_check(failed <= served, "PlanService: failed responses outnumber served ones");
  {
    const std::lock_guard lock(inflight_mutex_);
    if (quiescent)
      core::audit_check(inflight_.empty(),
                        "PlanService: in-flight computations left behind at quiescence");
    for (const auto& entry : inflight_)
      core::audit_check(entry.second.valid(), "PlanService: invalid in-flight future");
  }
  cache_.audit();
}

ServiceStats PlanService::stats() const {
  ServiceStats out;
  out.submitted = submitted_.load();
  out.completed = completed_.load();
  out.computed = computed_.load();
  out.cached = cached_.load();
  out.coalesced = coalesced_.load();
  out.fused = fused_.load();
  out.failed = failed_.load();
  out.cache = cache_.counters();
  return out;
}

}  // namespace ooctree::service
