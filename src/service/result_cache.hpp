// Sharded LRU result cache of the planning service.
//
// Maps 128-bit cache keys to immutable, shared PlanStats. Two keyspaces
// (distinguished by a tag folded into the key by the service) point at the
// same values: request fingerprints — answerable without touching the tree
// — and canonical tree-hash keys, which deduplicate identical instances
// arriving through different request spellings. Sharding bounds lock
// contention: each shard owns an independent mutex, hash map and intrusive
// LRU list, so concurrent workers only collide when their keys land on the
// same shard. Capacity is enforced per shard (total/shards, at least 1);
// eviction is strict LRU within the shard.
//
// Persistent mode: constructed with a directory, the cache spills evicted
// persistable entries (the service marks canonical-key entries persistable;
// fingerprint keys are cheap to recompute and stay RAM-only) to one binary
// .plan file per key, flushes the remaining persistable entries on
// destruction, preloads the directory on construction, and falls back to
// the directory on a RAM miss — so canonical plans survive restarts
// (pinned by the restart test in tests/test_service.cpp). Values are
// deterministic per key, so an existing file is never rewritten.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/service/request.hpp"
#include "src/util/rng.hpp"

namespace ooctree::service {

/// A cache key: the tree/fingerprint digest and the params digest.
struct CacheKey {
  std::uint64_t tree = 0;
  std::uint64_t params = 0;
  bool operator==(const CacheKey&) const = default;
};

/// The one 64-bit digest every consumer of a CacheKey derives from: the
/// shard selector takes its high bits, the shard's hash map (and the
/// service's in-flight table) its low bits, so the two stay decorrelated
/// while provably agreeing on the underlying mix (pinned by a test).
[[nodiscard]] inline std::uint64_t cache_key_digest(const CacheKey& k) {
  return util::splitmix64(util::splitmix64(k.tree) ^ k.params);
}

/// Hash functor for CacheKey maps (the cache shards and the service's
/// in-flight table).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(cache_key_digest(k));
  }
};

/// Counters, aggregated over shards.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spilled = 0;   ///< entries written to the persist directory
  std::uint64_t restored = 0;  ///< RAM misses answered from the directory
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// Thread-safe sharded LRU map from CacheKey to shared PlanStats.
class ResultCache {
 public:
  /// `capacity` = total entries across shards (0 disables the cache:
  /// get() always misses, put() is a no-op). `shards` is rounded up to a
  /// power of two. A non-empty `persist_dir` enables persistent mode: the
  /// directory is created if missing and preloaded into the cache.
  ResultCache(std::size_t capacity, std::size_t shards, std::string persist_dir = {});

  /// Flushes persistable entries to the persist directory (when enabled).
  ~ResultCache();

  /// The cached value, or nullptr on miss. A hit refreshes LRU recency.
  /// In persistent mode a RAM miss falls back to the directory; a restore
  /// counts as a hit (and re-inserts the entry).
  [[nodiscard]] std::shared_ptr<const PlanStats> get(const CacheKey& key);

  /// Inserts (or refreshes) key -> value, evicting the shard's LRU tail
  /// when over capacity. `persistable` marks the entry for spill/flush in
  /// persistent mode; refreshing an entry ORs the flags.
  void put(const CacheKey& key, std::shared_ptr<const PlanStats> value, bool persistable = true);

  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] bool enabled() const { return shard_capacity_ > 0; }
  [[nodiscard]] bool persistent() const { return !persist_dir_.empty(); }

  /// Shard routing, exposed so tests can pin that shard selection and
  /// bucket hashing derive from the same cache_key_digest.
  [[nodiscard]] std::size_t shard_index(const CacheKey& key) const {
    return static_cast<std::size_t>((cache_key_digest(key) >> 32) & shard_mask_);
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Full consistency sweep, throwing core::AuditError on drift: per
  /// shard, the hash map and the LRU list describe the same entries (same
  /// size, every map slot points at a list node carrying its own key, no
  /// null values), the shard respects its capacity, and the hit/miss/
  /// insertion/eviction counters are mutually consistent. Takes each shard
  /// lock in turn, so it is safe to call concurrently with get/put;
  /// compiled in every preset (see src/core/check.hpp).
  void audit() const;

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const PlanStats> value;
    bool persistable = false;
  };

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used; back = eviction candidate.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t spilled = 0;
    std::uint64_t restored = 0;
  };

  [[nodiscard]] Shard& shard_for(const CacheKey& key) { return *shards_[shard_index(key)]; }

  /// File path of a key's spilled entry inside persist_dir_.
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

  /// Writes one entry file unless it already exists (values are
  /// deterministic per key). Returns true when a file was written.
  bool spill(const CacheKey& key, const PlanStats& value) const;

  /// Loads a spilled entry; nullptr when absent or unreadable.
  [[nodiscard]] std::shared_ptr<const PlanStats> load_entry(const CacheKey& key) const;

  /// Inserts under the shard lock (the common body of put and restore).
  void insert_locked(Shard& shard, const CacheKey& key, std::shared_ptr<const PlanStats> value,
                     bool persistable);

  /// put() every entry found in persist_dir_ (constructor preload).
  void preload();

  std::size_t shard_capacity_ = 0;
  std::uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::string persist_dir_;
};

}  // namespace ooctree::service
