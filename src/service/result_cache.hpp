// Sharded LRU result cache of the planning service.
//
// Maps 128-bit cache keys to immutable, shared PlanStats. Two keyspaces
// (distinguished by a tag folded into the key by the service) point at the
// same values: request fingerprints — answerable without touching the tree
// — and canonical tree-hash keys, which deduplicate identical instances
// arriving through different request spellings. Sharding bounds lock
// contention: each shard owns an independent mutex, hash map and intrusive
// LRU list, so concurrent workers only collide when their keys land on the
// same shard. Capacity is enforced per shard (total/shards, at least 1);
// eviction is strict LRU within the shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/service/request.hpp"

namespace ooctree::service {

/// A cache key: the tree/fingerprint digest and the params digest.
struct CacheKey {
  std::uint64_t tree = 0;
  std::uint64_t params = 0;
  bool operator==(const CacheKey&) const = default;
};

/// Hash functor for CacheKey maps (the cache shards and the service's
/// in-flight table).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // The components are splitmix digests already; fold them.
    return static_cast<std::size_t>(k.tree ^ (k.params * 0x9e3779b97f4a7c15ULL));
  }
};

/// Counters, aggregated over shards.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// Thread-safe sharded LRU map from CacheKey to shared PlanStats.
class ResultCache {
 public:
  /// `capacity` = total entries across shards (0 disables the cache:
  /// get() always misses, put() is a no-op). `shards` is rounded up to a
  /// power of two.
  ResultCache(std::size_t capacity, std::size_t shards);

  /// The cached value, or nullptr on miss. A hit refreshes LRU recency.
  [[nodiscard]] std::shared_ptr<const PlanStats> get(const CacheKey& key);

  /// Inserts (or refreshes) key -> value, evicting the shard's LRU tail
  /// when over capacity.
  void put(const CacheKey& key, std::shared_ptr<const PlanStats> value);

  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] bool enabled() const { return shard_capacity_ > 0; }

  /// Full consistency sweep, throwing core::AuditError on drift: per
  /// shard, the hash map and the LRU list describe the same entries (same
  /// size, every map slot points at a list node carrying its own key, no
  /// null values), the shard respects its capacity, and the hit/miss/
  /// insertion/eviction counters are mutually consistent. Takes each shard
  /// lock in turn, so it is safe to call concurrently with get/put;
  /// compiled in every preset (see src/core/check.hpp).
  void audit() const;

 private:
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used; back = eviction candidate.
    std::list<std::pair<CacheKey, std::shared_ptr<const PlanStats>>> lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, CacheKeyHash> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(const CacheKey& key);

  std::size_t shard_capacity_ = 0;
  std::uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ooctree::service
