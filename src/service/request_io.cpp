#include "src/service/request_io.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "src/util/text.hpp"

namespace ooctree::service {

namespace {

// ---------------------------------------------------------------------------
// Minimal flat-JSON scanner: objects of string/number/bool/integer-array
// values. No nested objects — the request schema is flat by design.

struct JsonValue {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kArray } kind = Kind::kNumber;
  std::string str;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  bool boolean = false;
  std::vector<std::int64_t> array;
};

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  /// Parses the whole line as one object; calls visit(key, value) per pair.
  template <typename Visitor>
  void parse_object(Visitor&& visit) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        visit(key, parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after object");
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at column " + std::to_string(pos_ + 1) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  JsonValue parse_number_value() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = true;
    if (peek() == '.' || peek() == 'e' || peek() == 'E') {
      integral = false;
      if (peek() == '.') {
        ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      }
      if (peek() == 'e' || peek() == 'E') {
        ++pos_;
        if (peek() == '+' || peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(token.c_str(), nullptr);
    v.is_integer = integral;
    if (integral) v.integer = std::strtoll(token.c_str(), nullptr, 10);
    return v;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
    } else if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        for (;;) {
          skip_ws();
          const JsonValue item = parse_number_value();
          if (!item.is_integer) fail("array elements must be integers");
          v.array.push_back(item.integer);
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          break;
        }
      }
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
    } else {
      return parse_number_value();
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Field assignment shared by the JSONL and CSV decoders.

[[noreturn]] void unknown_key(const std::string& key) {
  throw std::runtime_error(
      "unknown request field '" + key +
      "' (id, tenant, source, nodes, w_lo, w_hi, seed, parent, weight, path, model, memory, "
      "memory_lb, strategy, workers, priority, evict, cost, backfill, backfill_depth, "
      "reserve_penalty, residency, evict_seed, page_size, disk_latency, disk_bandwidth, "
      "write_queue_depth, prefetch_window)");
}

/// Tracks which fields were given so source inference and replay gating
/// can run after all assignments.
struct DecodeState {
  PlanRequest request;
  bool has_source = false;
  bool has_id = false;
  int workers = 0;
  bool has_replay_field = false;  ///< any replay knob short of workers itself
  parallel::Priority priority = parallel::Priority::kSequentialOrder;
  core::EvictionPolicy evict = core::EvictionPolicy::kBelady;
  parallel::CostModel cost = parallel::CostModel::kWbar;
  bool backfill = true;
  int backfill_depth = 0;
  double reserve_penalty = 1.0;
  bool residency = false;
  int write_queue_depth = 0;
  int prefetch_window = 0;
  std::uint64_t evict_seed = 0;
};

core::MemoryModel model_from_name(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "max" || s == "maxinout") return core::MemoryModel::kMaxInOut;
  if (s == "sum" || s == "suminout") return core::MemoryModel::kSumInOut;
  throw std::runtime_error("unknown memory model '" + name + "' (max | sum)");
}

bool bool_from_cell(const std::string& key, const std::string& value) {
  const std::string s = util::to_lower(value);
  if (s == "1" || s == "true") return true;
  if (s == "0" || s == "false") return false;
  throw std::runtime_error("field '" + key + "': expected a boolean, got '" + value + "'");
}

void assign_string(DecodeState& state, const std::string& key, const std::string& value) {
  if (key == "source") {
    state.request.source = tree_source_from_name(value);
    state.has_source = true;
  } else if (key == "tenant") {
    state.request.tenant = value;
  } else if (key == "path") {
    state.request.path = value;
  } else if (key == "model") {
    state.request.model = model_from_name(value);
  } else if (key == "strategy") {
    state.request.strategy = core::strategy_from_name(value);
  } else if (key == "priority") {
    state.priority = priority_from_name(value);
    state.has_replay_field = true;
  } else if (key == "evict") {
    state.evict = core::eviction_policy_from_name(value);
    state.has_replay_field = true;
  } else if (key == "cost") {
    state.cost = cost_model_from_name(value);
    state.has_replay_field = true;
  } else {
    unknown_key(key);
  }
}

void assign_number(DecodeState& state, const std::string& key, std::int64_t integer,
                   double number, bool is_integer) {
  const auto require_int = [&]() {
    if (!is_integer)
      throw std::runtime_error("field '" + key + "' must be an integer");
    return integer;
  };
  if (key == "id") {
    state.request.id = require_int();
    state.has_id = true;
  } else if (key == "nodes") {
    const std::int64_t v = require_int();
    if (v <= 0) throw std::runtime_error("'nodes' must be positive");
    state.request.nodes = static_cast<std::size_t>(v);
  } else if (key == "w_lo") {
    state.request.w_lo = require_int();
  } else if (key == "w_hi") {
    state.request.w_hi = require_int();
  } else if (key == "seed") {
    state.request.seed = static_cast<std::uint64_t>(require_int());
  } else if (key == "memory") {
    state.request.memory = require_int();
  } else if (key == "memory_lb") {
    state.request.memory_lb = number;
  } else if (key == "workers") {
    const std::int64_t v = require_int();
    if (v < 0) throw std::runtime_error("'workers' must be >= 0");
    state.workers = static_cast<int>(v);
  } else if (key == "backfill_depth") {
    const std::int64_t v = require_int();
    if (v < 0) throw std::runtime_error("'backfill_depth' must be >= 0");
    state.backfill_depth = static_cast<int>(v);
    state.has_replay_field = true;
  } else if (key == "reserve_penalty") {
    if (number < 0) throw std::runtime_error("'reserve_penalty' must be >= 0");
    state.reserve_penalty = number;
    state.has_replay_field = true;
  } else if (key == "disk_latency") {
    if (number < 0) throw std::runtime_error("'disk_latency' must be >= 0");
    state.request.disk_latency = number;
    state.has_replay_field = true;
  } else if (key == "disk_bandwidth") {
    if (number < 0) throw std::runtime_error("'disk_bandwidth' must be >= 0");
    state.request.disk_bandwidth = number;
    state.has_replay_field = true;
  } else if (key == "write_queue_depth") {
    const std::int64_t v = require_int();
    if (v < 0) throw std::runtime_error("'write_queue_depth' must be >= 0");
    state.write_queue_depth = static_cast<int>(v);
    state.has_replay_field = true;
  } else if (key == "prefetch_window") {
    const std::int64_t v = require_int();
    if (v < 0) throw std::runtime_error("'prefetch_window' must be >= 0");
    state.prefetch_window = static_cast<int>(v);
    state.has_replay_field = true;
  } else if (key == "evict_seed") {
    state.evict_seed = static_cast<std::uint64_t>(require_int());
    state.has_replay_field = true;
  } else if (key == "page_size") {
    const std::int64_t v = require_int();
    if (v <= 0) throw std::runtime_error("'page_size' must be positive");
    state.request.page_size = v;
    state.has_replay_field = true;
  } else {
    unknown_key(key);
  }
}

/// Applies inference and the replay block, yielding the final request.
PlanRequest finish(DecodeState&& state, std::int64_t fallback_id) {
  PlanRequest& request = state.request;
  if (!state.has_id) request.id = fallback_id;
  if (!state.has_source) {
    if (!request.path.empty()) {
      const auto has_ext = [&](const char* ext, std::size_t len) {
        return request.path.size() >= len &&
               request.path.compare(request.path.size() - len, len, ext) == 0;
      };
      request.source = has_ext(".mtx", 4)     ? TreeSource::kMatrixMarket
                       : has_ext(".otree", 6) ? TreeSource::kSnapshot
                                              : TreeSource::kTreeFile;
    } else if (!request.parent.empty()) {
      request.source = TreeSource::kParents;
    } else {
      request.source = TreeSource::kSynth;
    }
  }
  if ((request.source == TreeSource::kTreeFile || request.source == TreeSource::kMatrixMarket ||
       request.source == TreeSource::kSnapshot) &&
      request.path.empty())
    throw std::runtime_error("file-based request needs a 'path'");
  if (request.source == TreeSource::kParents && request.parent.size() != request.weight.size())
    throw std::runtime_error("'parent' and 'weight' arrays must have equal length");
  if (state.workers > 0) {
    parallel::ParallelConfig pc;
    pc.workers = state.workers;
    pc.priority = state.priority;
    pc.evict = state.evict;
    pc.cost = state.cost;
    pc.backfill = state.backfill;
    pc.backfill_depth = state.backfill_depth;
    pc.reserve_penalty = state.reserve_penalty;
    pc.residency_aware = state.residency;
    pc.write_queue_depth = state.write_queue_depth;
    pc.prefetch_window = state.prefetch_window;
    pc.seed = state.evict_seed;  // 0 = derive from the request stream
    request.parallel = pc;
  } else if (state.has_replay_field) {
    // Silently dropping the replay block would report sequential-only
    // stats for a request that asked for a parallel evaluation.
    throw std::runtime_error(
        "replay fields (priority/evict/cost/backfill/backfill_depth/reserve_penalty/"
        "residency/evict_seed/page_size/disk_latency/disk_bandwidth/write_queue_depth/"
        "prefetch_window) require 'workers' > 0");
  }
  return std::move(request);
}

bool blank_or_comment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  // Trim surrounding whitespace per cell.
  for (std::string& s : cells) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    s = s.substr(b, e - b);
  }
  return cells;
}

bool csv_key_is_numeric(const std::string& key) {
  return key == "id" || key == "nodes" || key == "w_lo" || key == "w_hi" || key == "seed" ||
         key == "memory" || key == "memory_lb" || key == "workers" || key == "evict_seed" ||
         key == "page_size" || key == "backfill_depth" || key == "reserve_penalty" ||
         key == "disk_latency" || key == "disk_bandwidth" || key == "write_queue_depth" ||
         key == "prefetch_window";
}

}  // namespace

PlanRequest request_from_json(const std::string& line, std::int64_t fallback_id) {
  DecodeState state;
  JsonScanner scanner(line);
  scanner.parse_object([&](const std::string& key, const JsonValue& value) {
    switch (value.kind) {
      case JsonValue::Kind::kString:
        assign_string(state, key, value.str);
        break;
      case JsonValue::Kind::kNumber:
        assign_number(state, key, value.integer, value.number, value.is_integer);
        break;
      case JsonValue::Kind::kBool:
        if (key == "backfill") {
          state.backfill = value.boolean;
          state.has_replay_field = true;
        } else if (key == "residency") {
          state.residency = value.boolean;
          state.has_replay_field = true;
        } else {
          throw std::runtime_error("field '" + key + "' cannot be a boolean");
        }
        break;
      case JsonValue::Kind::kArray:
        if (key == "parent") {
          state.request.parent.assign(value.array.begin(), value.array.end());
        } else if (key == "weight") {
          state.request.weight.assign(value.array.begin(), value.array.end());
        } else {
          throw std::runtime_error("field '" + key + "' cannot be an array");
        }
        break;
    }
  });
  return finish(std::move(state), fallback_id);
}

std::vector<PlanRequest> read_requests_jsonl(std::istream& in) {
  std::vector<PlanRequest> requests;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (blank_or_comment(line)) continue;
    try {
      requests.push_back(request_from_json(line, line_number));
    } catch (const std::exception& e) {
      throw std::runtime_error("line " + std::to_string(line_number) + ": " + e.what());
    }
  }
  return requests;
}

std::vector<PlanRequest> read_requests_csv(std::istream& in) {
  std::vector<PlanRequest> requests;
  std::string line;
  std::vector<std::string> header;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (blank_or_comment(line)) continue;
    if (header.empty()) {
      header = split_csv_row(line);
      for (const std::string& key : header) {
        // Validate the header eagerly so a typo fails before row 1.
        if (!csv_key_is_numeric(key) && key != "tenant" && key != "source" && key != "path" &&
            key != "model" && key != "strategy" && key != "priority" && key != "evict" &&
            key != "cost" && key != "backfill" && key != "residency")
          unknown_key(key);
      }
      continue;
    }
    const std::vector<std::string> cells = split_csv_row(line);
    if (cells.size() != header.size())
      throw std::runtime_error("line " + std::to_string(line_number) + ": expected " +
                               std::to_string(header.size()) + " cells, got " +
                               std::to_string(cells.size()));
    try {
      DecodeState state;
      for (std::size_t k = 0; k < header.size(); ++k) {
        const std::string& key = header[k];
        const std::string& cell = cells[k];
        if (cell.empty()) continue;  // keep the field's default
        if (key == "backfill") {
          state.backfill = bool_from_cell(key, cell);
          state.has_replay_field = true;
        } else if (key == "residency") {
          state.residency = bool_from_cell(key, cell);
          state.has_replay_field = true;
        } else if (csv_key_is_numeric(key)) {
          std::size_t consumed = 0;
          const double number = std::stod(cell, &consumed);
          if (consumed != cell.size())
            throw std::runtime_error("field '" + key + "': malformed number '" + cell + "'");
          const bool is_integer = cell.find_first_of(".eE") == std::string::npos;
          assign_number(state, key, is_integer ? std::stoll(cell) : 0, number, is_integer);
        } else {
          assign_string(state, key, cell);
        }
      }
      requests.push_back(finish(std::move(state), static_cast<std::int64_t>(requests.size()) + 1));
    } catch (const std::exception& e) {
      throw std::runtime_error("line " + std::to_string(line_number) + ": " + e.what());
    }
  }
  if (header.empty()) throw std::runtime_error("CSV batch: missing header row");
  return requests;
}

std::vector<PlanRequest> load_requests(const std::string& path, BatchFormat format) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open batch file '" + path + "'");
  if (format == BatchFormat::kAuto) {
    std::string line;
    while (std::getline(in, line) && blank_or_comment(line)) {
    }
    std::size_t first = 0;
    while (first < line.size() && std::isspace(static_cast<unsigned char>(line[first]))) ++first;
    format = (first < line.size() && line[first] == '{') ? BatchFormat::kJsonl : BatchFormat::kCsv;
    in.clear();
    in.seekg(0);
  }
  return format == BatchFormat::kJsonl ? read_requests_jsonl(in) : read_requests_csv(in);
}

}  // namespace ooctree::service
