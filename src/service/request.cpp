#include "src/service/request.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/core/snapshot.hpp"
#include "src/core/tree_io.hpp"
#include "src/sparse/assembly_tree.hpp"
#include "src/sparse/matrix_market.hpp"
#include "src/sparse/ordering.hpp"
#include "src/treegen/random_binary.hpp"
#include "src/util/rng.hpp"
#include "src/util/text.hpp"

namespace ooctree::service {

namespace {

using util::to_lower;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return util::splitmix64(h ^ v); }

std::uint64_t mix_i64(std::uint64_t h, std::int64_t v) {
  return mix(h, static_cast<std::uint64_t>(v));
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

/// Folds the replay configuration into a digest. The replay seed only
/// enters under EvictionPolicy::kRandom — for every other policy it cannot
/// influence the result, and keeping it out lets requests that differ only
/// in their derived stream share one cache entry.
std::uint64_t mix_replay(std::uint64_t h, const PlanRequest& request, std::uint64_t seed) {
  // Mixed unconditionally: requests differing only in page_size or the disk
  // model must never share a key, even invalid ones (page_size without a
  // replay config) — those are rejected before the cache is consulted, but
  // the keyspace stays honest regardless.
  h = mix_i64(h, request.page_size);
  h = mix_double(h, request.disk_latency);
  h = mix_double(h, request.disk_bandwidth);
  if (!request.parallel.has_value()) return mix(h, 0x70ULL);
  const parallel::ParallelConfig& pc = *request.parallel;
  h = mix(h, 0x71ULL);
  h = mix_i64(h, pc.workers);
  h = mix(h, static_cast<std::uint64_t>(pc.cost));
  h = mix(h, static_cast<std::uint64_t>(pc.priority));
  h = mix(h, pc.backfill ? 1ULL : 0ULL);
  h = mix_i64(h, pc.backfill_depth);
  h = mix(h, pc.residency_aware ? 1ULL : 0ULL);
  h = mix_i64(h, pc.write_queue_depth);
  h = mix_i64(h, pc.prefetch_window);
  // Like the replay seed below, reserve_penalty only enters the key when it
  // can influence the result: every other priority ignores it.
  if (pc.priority == parallel::Priority::kReservedCriticalPath)
    h = mix_double(h, pc.reserve_penalty);
  h = mix(h, static_cast<std::uint64_t>(pc.evict));
  if (pc.evict == core::EvictionPolicy::kRandom)
    h = mix(h, pc.seed == 0 ? seed : pc.seed);
  return h;
}

}  // namespace

std::string tree_source_name(TreeSource s) {
  switch (s) {
    case TreeSource::kSynth: return "synth";
    case TreeSource::kParents: return "parents";
    case TreeSource::kTreeFile: return "tree";
    case TreeSource::kMatrixMarket: return "mtx";
    case TreeSource::kSnapshot: return "snapshot";
  }
  throw std::invalid_argument("tree_source_name: unknown source");
}

TreeSource tree_source_from_name(const std::string& name) {
  const std::string s = to_lower(name);
  if (s == "synth") return TreeSource::kSynth;
  if (s == "parents") return TreeSource::kParents;
  if (s == "tree" || s == "file") return TreeSource::kTreeFile;
  if (s == "mtx" || s == "matrixmarket") return TreeSource::kMatrixMarket;
  if (s == "snapshot" || s == "otree") return TreeSource::kSnapshot;
  throw std::invalid_argument("unknown tree source '" + name +
                              "' (synth | parents | tree | mtx | snapshot)");
}

std::string priority_name(parallel::Priority p) {
  switch (p) {
    case parallel::Priority::kSequentialOrder: return "sequential-order";
    case parallel::Priority::kCriticalPath: return "critical-path";
    case parallel::Priority::kHeaviestSubtree: return "heaviest-subtree";
    case parallel::Priority::kReservedCriticalPath: return "reserved-critical-path";
  }
  throw std::invalid_argument("priority_name: unknown priority");
}

parallel::Priority priority_from_name(const std::string& name) {
  const std::string s = to_lower(name);
  if (s == "sequential-order" || s == "sequential") return parallel::Priority::kSequentialOrder;
  if (s == "critical-path" || s == "critical") return parallel::Priority::kCriticalPath;
  if (s == "heaviest-subtree" || s == "heaviest") return parallel::Priority::kHeaviestSubtree;
  if (s == "reserved-critical-path" || s == "reserved")
    return parallel::Priority::kReservedCriticalPath;
  throw std::invalid_argument(
      "unknown priority '" + name +
      "' (sequential-order | critical-path | heaviest-subtree | reserved-critical-path)");
}

std::string cost_model_name(parallel::CostModel c) {
  switch (c) {
    case parallel::CostModel::kWbar: return "wbar";
    case parallel::CostModel::kWeight: return "weight";
    case parallel::CostModel::kUnit: return "unit";
  }
  throw std::invalid_argument("cost_model_name: unknown cost model");
}

parallel::CostModel cost_model_from_name(const std::string& name) {
  const std::string s = to_lower(name);
  if (s == "wbar") return parallel::CostModel::kWbar;
  if (s == "weight") return parallel::CostModel::kWeight;
  if (s == "unit") return parallel::CostModel::kUnit;
  throw std::invalid_argument("unknown cost model '" + name + "' (wbar | weight | unit)");
}

std::string served_name(Served s) {
  switch (s) {
    case Served::kComputed: return "computed";
    case Served::kCached: return "cached";
    case Served::kCoalesced: return "coalesced";
    case Served::kFused: return "fused";
    case Served::kShed: return "shed";
  }
  throw std::invalid_argument("served_name: unknown value");
}

bool identical(const PlanStats& a, const PlanStats& b) {
  return a.ok == b.ok && a.error == b.error && a.nodes == b.nodes &&
         a.tree_hash == b.tree_hash && a.total_weight == b.total_weight && a.lb == b.lb &&
         a.memory == b.memory && a.strategy == b.strategy && a.schedule == b.schedule &&
         a.io == b.io && a.io_volume == b.io_volume && a.peak_resident == b.peak_resident &&
         a.evictions == b.evictions && a.replayed == b.replayed &&
         a.replay_feasible == b.replay_feasible && a.workers == b.workers &&
         a.makespan == b.makespan && a.parallel_io == b.parallel_io &&
         a.utilization == b.utilization && a.failed_starts == b.failed_starts &&
         a.page_size == b.page_size && a.pages_written == b.pages_written &&
         a.pages_read == b.pages_read && a.read_stall == b.read_stall &&
         a.write_stall == b.write_stall && a.prefetch_issued == b.prefetch_issued &&
         a.prefetch_useful == b.prefetch_useful && a.prefetch_wasted == b.prefetch_wasted;
}

std::uint64_t effective_seed(const PlanRequest& request, std::uint64_t service_seed) {
  return request.seed != 0 ? request.seed
                           : util::derive_seed(service_seed,
                                               static_cast<std::uint64_t>(request.id));
}

core::Tree materialize_tree(const PlanRequest& request, std::uint64_t seed) {
  core::Tree tree = [&] {
    switch (request.source) {
      case TreeSource::kSynth: {
        if (request.nodes == 0) throw std::invalid_argument("synth request: nodes must be > 0");
        if (request.w_lo < 1 || request.w_hi < request.w_lo)
          throw std::invalid_argument("synth request: need 1 <= w_lo <= w_hi");
        util::Rng rng(seed);
        return treegen::synth_instance(request.nodes, request.w_lo, request.w_hi, rng);
      }
      case TreeSource::kParents:
        return core::Tree::from_parents(request.parent, request.weight, request.model);
      case TreeSource::kTreeFile:
        return core::load_tree(request.path);
      case TreeSource::kMatrixMarket: {
        const auto pattern = sparse::load_matrix_market(request.path);
        return sparse::assembly_tree(pattern.permuted(sparse::minimum_degree(pattern)));
      }
      case TreeSource::kSnapshot:
        return core::load_snapshot(request.path);
    }
    throw std::invalid_argument("materialize_tree: unknown source");
  }();
  if (tree.memory_model() != request.model) tree = tree.with_memory_model(request.model);
  return tree;
}

core::Weight resolve_memory(const PlanRequest& request, const core::Tree& tree) {
  const core::Weight lb = tree.min_feasible_memory();
  if (request.memory > 0) {
    if (request.memory < lb)
      throw std::invalid_argument("memory bound " + std::to_string(request.memory) +
                                  " below the feasibility bound LB=" + std::to_string(lb));
    return request.memory;
  }
  if (request.memory_lb < 1.0)
    throw std::invalid_argument("memory_lb multiple must be >= 1.0");
  return std::max(lb, static_cast<core::Weight>(static_cast<double>(lb) * request.memory_lb));
}

std::optional<std::uint64_t> request_fingerprint(const PlanRequest& request, std::uint64_t seed) {
  if (request.source == TreeSource::kTreeFile || request.source == TreeSource::kMatrixMarket ||
      request.source == TreeSource::kSnapshot)
    return std::nullopt;  // the answer depends on file content, not the spec
  std::uint64_t h = util::splitmix64(0xF1ULL);
  h = mix(h, static_cast<std::uint64_t>(request.source));
  h = mix(h, static_cast<std::uint64_t>(request.model));
  h = mix_i64(h, request.memory);
  h = mix_double(h, request.memory_lb);
  h = mix(h, static_cast<std::uint64_t>(request.strategy));
  if (request.source == TreeSource::kSynth) {
    h = mix(h, request.nodes);
    h = mix_i64(h, request.w_lo);
    h = mix_i64(h, request.w_hi);
    h = mix(h, seed);
  } else {
    h = mix(h, request.parent.size());
    for (const core::NodeId p : request.parent) h = mix_i64(h, p);
    for (const core::Weight w : request.weight) h = mix_i64(h, w);
  }
  return mix_replay(h, request, seed);
}

std::uint64_t params_fingerprint(const PlanRequest& request, core::Weight memory,
                                 std::uint64_t seed) {
  std::uint64_t h = util::splitmix64(0xA7ULL);
  h = mix_i64(h, memory);
  h = mix(h, static_cast<std::uint64_t>(request.strategy));
  return mix_replay(h, request, seed);
}

std::uint64_t tree_identity(const PlanRequest& request, std::uint64_t seed) {
  std::uint64_t h = util::splitmix64(0x7EE1DULL);
  h = mix(h, static_cast<std::uint64_t>(request.source));
  h = mix(h, static_cast<std::uint64_t>(request.model));
  switch (request.source) {
    case TreeSource::kSynth:
      h = mix(h, request.nodes);
      h = mix_i64(h, request.w_lo);
      h = mix_i64(h, request.w_hi);
      // The *effective* seed: synth requests with seed == 0 derive a
      // per-id stream, so two ids only share a tree when those streams
      // coincide — grouping on the raw spec would fuse different trees.
      h = mix(h, seed);
      break;
    case TreeSource::kParents:
      h = mix(h, request.parent.size());
      for (const core::NodeId p : request.parent) h = mix_i64(h, p);
      for (const core::Weight w : request.weight) h = mix_i64(h, w);
      break;
    case TreeSource::kTreeFile:
    case TreeSource::kMatrixMarket:
    case TreeSource::kSnapshot:
      h = mix(h, request.path.size());
      for (const char c : request.path) h = mix(h, static_cast<unsigned char>(c));
      break;
  }
  return h;
}

}  // namespace ooctree::service
