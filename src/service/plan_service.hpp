// PlanService — the asynchronous, batched, cached planning engine.
//
// The throughput front-end over the paper's algorithms: requests submitted
// through submit() run on a util::ThreadPool and resolve to
// std::future<PlanResponse>. Three layers keep repeated instances from
// recomputing:
//   1. request-fingerprint cache — value-determined requests (generator
//      specs, inline parent vectors) are answered from their spec digest
//      without materializing the tree;
//   2. canonical-tree cache — after materialization, the cache key is
//      (Tree::canonical_hash(), params digest), so the *same instance*
//      arriving as a generator spec, a parent vector or a file is served
//      from one entry;
//   3. in-flight coalescing — a request whose canonical key is currently
//      being computed attaches to that computation instead of duplicating
//      it (the leader never waits, so coalescing cannot deadlock even on a
//      single-thread pool).
// Both cache views share one sharded LRU store and hand out the same
// immutable PlanStats object, so cached, coalesced and computed responses
// are bit-identical (pinned by tests/test_service.cpp and the differential
// pass of bench_service_throughput).
//
// Determinism: a request's RNG stream is derived from (service seed,
// request id) via util::derive_seed, never from scheduling order — the
// same batch yields the same per-id results on 1 or 8 threads, shuffled or
// not. Failures (bad paths, infeasible bounds, malformed specs) become
// ok=false responses, never exceptions through the future, and are not
// cached.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/service/request.hpp"
#include "src/service/result_cache.hpp"
#include "src/util/thread_pool.hpp"

namespace ooctree::service {

/// Service knobs.
struct ServiceConfig {
  std::size_t threads = 0;            ///< worker threads; 0 = hardware concurrency
  std::size_t cache_capacity = 4096;  ///< total cached results; 0 disables caching
  std::size_t cache_shards = 16;      ///< rounded up to a power of two
  std::uint64_t seed = 20170208;      ///< base seed for derived request streams
  bool coalesce = true;               ///< share identical in-flight computations
  /// Non-empty: persistent canonical cache — evicted/live canonical
  /// entries are spilled to this directory and reloaded on construction,
  /// so identical instances are served from cache across restarts.
  std::string persist_dir = {};
};

/// Service-level counters (monotonic over the service lifetime).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t computed = 0;   ///< planned from scratch
  std::uint64_t cached = 0;     ///< served from the result cache
  std::uint64_t coalesced = 0;  ///< attached to an in-flight computation
  std::uint64_t fused = 0;      ///< computed inside a fused same-tree batch
  std::uint64_t failed = 0;     ///< ok=false responses
  CacheCounters cache;
};

/// Asynchronous batched planning front-end. Thread-safe; destruction
/// drains every submitted request (ThreadPool shutdown is drain-then-stop).
class PlanService {
 public:
  explicit PlanService(ServiceConfig config = {});

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Enqueues one request; the future resolves to its response. Never
  /// resolves to an exception for bad requests — those come back ok=false.
  [[nodiscard]] std::future<PlanResponse> submit(PlanRequest request);

  /// Enqueues a whole batch, returning futures in request order.
  [[nodiscard]] std::vector<std::future<PlanResponse>> submit_batch(
      std::vector<PlanRequest> requests);

  /// Serves one request synchronously on the calling thread — the same
  /// path submit() takes (cache, coalescing, counters included).
  [[nodiscard]] PlanResponse plan(const PlanRequest& request);

  /// Serves a batch synchronously with *fusion*: requests that materialize
  /// the same tree (equal tree_identity) share one materialization and the
  /// memory-independent planning passes — OptMinMem members share the one
  /// optimal schedule (it does not depend on M), RecExpand/FullRecExpand
  /// members share the opt_minmem_all_peaks bottom-up pass — instead of K
  /// independent full computes. Everything shared is a pure function of the
  /// tree alone, so fused responses are bit-identical to independent
  /// plan() calls (pinned by tests/test_server.cpp and the fusion rows of
  /// bench_service_throughput). Fused members respond Served::kFused; the
  /// cache layers still apply (hits respond kCached), singleton groups take
  /// the ordinary serve() path, and responses come back in request order.
  /// Fused members skip in-flight coalescing — a concurrent identical
  /// leader costs a duplicate compute, never a wrong answer.
  [[nodiscard]] std::vector<PlanResponse> plan_fused(const std::vector<PlanRequest>& requests);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t threads() const { return pool_.size(); }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Consistency sweep over the service counters, the in-flight table and
  /// the result cache, throwing core::AuditError on drift. Safe to call
  /// while requests are in flight: it only asserts the monotone relations
  /// that hold mid-serve (completed <= computed + cached + coalesced +
  /// fused <= submitted, every pending in-flight future valid) plus the
  /// full ResultCache::audit(). At quiescence (every future resolved) the
  /// in-flight table must be empty — pass `quiescent = true` to assert
  /// that and the exact completed == served-class balance.
  void audit(bool quiescent = false) const;

 private:
  class SharedPlanState;

  PlanResponse serve(const PlanRequest& request);
  void serve_group(const std::vector<PlanRequest>& requests,
                   const std::vector<std::size_t>& members,
                   const std::vector<std::uint64_t>& seeds,
                   std::vector<PlanResponse>& responses);
  PlanResponse respond(const PlanRequest& request, std::shared_ptr<const PlanStats> stats,
                       Served served, double seconds);
  [[nodiscard]] std::shared_ptr<const PlanStats> compute(const PlanRequest& request,
                                                         core::Tree tree, core::Weight memory,
                                                         std::uint64_t seed) const;
  /// Evaluates + replays an already-planned outcome into immutable stats.
  [[nodiscard]] std::shared_ptr<const PlanStats> finish_stats(const PlanRequest& request,
                                                              const core::Tree& tree,
                                                              core::Weight memory,
                                                              std::uint64_t seed,
                                                              core::StrategyOutcome outcome) const;

  ServiceConfig config_;
  ResultCache cache_;

  /// Canonical keys currently being computed; waiters share the leader's
  /// eventual PlanStats through a shared_future. Mutable so the const
  /// audit() sweep can take the lock.
  mutable std::mutex inflight_mutex_;
  std::unordered_map<CacheKey, std::shared_future<std::shared_ptr<const PlanStats>>,
                     CacheKeyHash>
      inflight_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> cached_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> fused_{0};
  std::atomic<std::uint64_t> failed_{0};

  /// Declared last on purpose: the pool is destroyed first, draining every
  /// queued serve() while the cache, in-flight table and counters above
  /// are still alive.
  util::ThreadPool pool_;
};

}  // namespace ooctree::service
