// Request/response vocabulary of the planning service (src/service/).
//
// A PlanRequest names a tree source (generator spec, explicit parent
// vector, tree file, or Matrix Market path), a memory bound (absolute or a
// multiple of the instance's feasibility bound LB), the planning Strategy,
// and an optional parallel-replay configuration. A PlanResponse carries an
// immutable, shareable PlanStats payload — everything deterministic about
// the answer — plus per-serve metadata (how it was served, how long it
// took). Keeping the deterministic payload separate is what lets the
// service cache hand the *same* PlanStats object to every duplicate
// request: cached and freshly computed responses are bit-identical by
// construction, which tests/test_service.cpp and the throughput bench pin.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/strategies.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"
#include "src/parallel/parallel_sim.hpp"

namespace ooctree::service {

/// Where a request's task tree comes from.
enum class TreeSource : std::uint8_t {
  kSynth,         ///< generator spec: uniform binary tree, uniform weights
  kParents,       ///< explicit parent/weight vectors in the request
  kTreeFile,      ///< '<parent> <weight>' text file (core/tree_io.hpp)
  kMatrixMarket,  ///< .mtx path through the multifrontal pipeline (sparse/)
  kSnapshot,      ///< .otree binary snapshot, mmap'd zero-copy (core/snapshot.hpp)
};

[[nodiscard]] std::string tree_source_name(TreeSource s);
[[nodiscard]] TreeSource tree_source_from_name(const std::string& name);

/// Parallel Priority / CostModel names, shared by the CLIs, the request
/// decoder and the response printers.
[[nodiscard]] std::string priority_name(parallel::Priority p);
[[nodiscard]] parallel::Priority priority_from_name(const std::string& name);
[[nodiscard]] std::string cost_model_name(parallel::CostModel c);
[[nodiscard]] parallel::CostModel cost_model_from_name(const std::string& name);

/// One planning request. Defaults describe a 500-node SYNTH instance
/// planned by RecExpand at M = 2×LB, no parallel replay.
struct PlanRequest {
  std::int64_t id = 0;  ///< caller-chosen; also salts the derived RNG stream

  /// Fair-scheduling key of the multi-tenant server (src/server/): requests
  /// from one tenant share a queue, weight and in-flight cap there. Pure
  /// routing metadata — never part of a fingerprint or cache key, so
  /// identical requests from different tenants still dedup to one compute.
  std::string tenant;

  TreeSource source = TreeSource::kSynth;
  // kSynth: `nodes` nodes, weights uniform in [w_lo, w_hi]. seed == 0 means
  // "derive from (service seed, request id)" — the deterministic default.
  std::size_t nodes = 500;
  core::Weight w_lo = 1;
  core::Weight w_hi = 100;
  std::uint64_t seed = 0;
  // kParents: the tree spelled out in the request.
  std::vector<core::NodeId> parent;
  std::vector<core::Weight> weight;
  // kTreeFile / kMatrixMarket / kSnapshot: on-disk instance.
  std::string path;

  /// Transient-memory model the tree is planned under.
  core::MemoryModel model = core::MemoryModel::kMaxInOut;

  /// Memory bound: `memory` wins when positive; otherwise the bound is
  /// max(LB, memory_lb × LB). An absolute bound below LB is an error.
  core::Weight memory = 0;
  double memory_lb = 2.0;

  core::Strategy strategy = core::Strategy::kRecExpand;

  /// When set, the planned schedule is replayed through the shared-memory
  /// parallel simulator. `parallel->memory` is overridden by the request's
  /// resolved bound; `parallel->seed == 0` means "use the request's derived
  /// RNG stream" (only consulted by EvictionPolicy::kRandom).
  std::optional<parallel::ParallelConfig> parallel;

  /// Page size of the replay in memory units. 0 (the default) replays
  /// unit-granular through simulate_parallel; > 0 replays through the
  /// paged engine (simulate_parallel_paged) with frames = memory /
  /// page_size and page-I/O stats in the response. Requires `parallel`.
  core::Weight page_size = 0;

  /// Disk-cost model of the paged replay: disk_bandwidth > 0 charges
  /// iosim::DiskModel{disk_latency, disk_bandwidth} read stalls against the
  /// makespan (and makes `parallel->residency_aware` meaningful). Requires
  /// page_size > 0; disk_latency alone (without a bandwidth) is an error.
  double disk_latency = 0.0;
  double disk_bandwidth = 0.0;
};

/// The deterministic payload of an answer. Immutable once built; duplicate
/// requests share one PlanStats through shared_ptr.
struct PlanStats {
  bool ok = false;
  std::string error;  ///< set when !ok; every other field is then default

  // Instance.
  std::size_t nodes = 0;
  std::uint64_t tree_hash = 0;  ///< Tree::canonical_hash()
  core::Weight total_weight = 0;
  core::Weight lb = 0;      ///< min feasible memory of the instance
  core::Weight memory = 0;  ///< resolved bound the plan was made under

  // Plan.
  core::Strategy strategy = core::Strategy::kRecExpand;
  core::Schedule schedule;
  core::IoFunction io;
  core::Weight io_volume = 0;
  core::Weight peak_resident = 0;
  std::int64_t evictions = 0;

  // Parallel replay (only when the request asked for one).
  bool replayed = false;
  bool replay_feasible = false;
  int workers = 0;
  double makespan = 0.0;
  core::Weight parallel_io = 0;
  double utilization = 0.0;
  std::int64_t failed_starts = 0;  ///< starts rejected for lack of memory

  // Paged replay (only when the request set page_size > 0): page-granular
  // I/O accounting from simulate_parallel_paged; parallel_io then equals
  // pages_written * page_size. read_stall is nonzero only under a disk
  // model (disk_bandwidth > 0): worker time spent waiting on read-backs.
  core::Weight page_size = 0;
  std::int64_t pages_written = 0;
  std::int64_t pages_read = 0;
  double read_stall = 0.0;

  // Disk pipeline (only when the replay set write_queue_depth or
  // prefetch_window under a disk model; all zero on the synchronous path).
  double write_stall = 0.0;          ///< worker time stalled on a full write queue
  std::int64_t prefetch_issued = 0;  ///< pages fetched ahead of their start
  std::int64_t prefetch_useful = 0;  ///< prefetched pages consumed by their start
  std::int64_t prefetch_wasted = 0;  ///< prefetched pages evicted before use
};

/// Field-by-field equality of the deterministic payload — the differential
/// check used to prove cached responses match recomputation exactly.
[[nodiscard]] bool identical(const PlanStats& a, const PlanStats& b);

/// How a response was produced.
enum class Served : std::uint8_t {
  kComputed,   ///< planned from scratch on a worker
  kCached,     ///< answered from the result cache
  kCoalesced,  ///< attached to an identical in-flight computation
  kFused,      ///< computed inside a fused same-tree batch (plan_fused)
  kShed,       ///< rejected by server admission control (ok=false)
};

[[nodiscard]] std::string served_name(Served s);

/// One answer. `stats` is never null; failures are PlanStats with ok=false.
struct PlanResponse {
  std::int64_t id = 0;
  std::shared_ptr<const PlanStats> stats;
  Served served = Served::kComputed;
  double seconds = 0.0;  ///< wall time serving this request on its worker
};

/// The RNG stream seed a request plans under: the request's own seed when
/// set, otherwise util::derive_seed(service_seed, request id).
[[nodiscard]] std::uint64_t effective_seed(const PlanRequest& request, std::uint64_t service_seed);

/// Materializes the request's tree (generates, decodes, or loads it) under
/// the request's memory model. Throws std::runtime_error /
/// std::invalid_argument on bad specs or unreadable files.
[[nodiscard]] core::Tree materialize_tree(const PlanRequest& request, std::uint64_t seed);

/// Resolves the request's memory bound against the materialized tree.
/// Throws std::invalid_argument when an absolute bound is below LB.
[[nodiscard]] core::Weight resolve_memory(const PlanRequest& request, const core::Tree& tree);

/// Fingerprint of a *value-determined* request: a 64-bit digest of every
/// field that determines the answer, computable without materializing the
/// tree. Path-based sources return nullopt — their answer depends on file
/// content, which only the canonical tree hash captures.
[[nodiscard]] std::optional<std::uint64_t> request_fingerprint(const PlanRequest& request,
                                                               std::uint64_t seed);

/// Digest of the non-tree parameters (resolved memory, strategy, replay
/// config): the params half of the canonical cache key.
[[nodiscard]] std::uint64_t params_fingerprint(const PlanRequest& request, core::Weight memory,
                                               std::uint64_t seed);

/// Digest of everything that determines which tree the request
/// materializes — source, memory model, and the spec (synth generator
/// parameters + effective seed, inline parent/weight vectors, or the
/// path string). Two requests with equal tree_identity materialize
/// bit-identical trees, so a fused batch (PlanService::plan_fused) can
/// share one materialization and one set of memory-independent planning
/// passes across them. Unlike Tree::canonical_hash() this needs no
/// materialization; unlike request_fingerprint it ignores the memory
/// bound, strategy and replay knobs. Path sources group by path string —
/// same-content-different-path trees simply fuse less, never wrongly.
[[nodiscard]] std::uint64_t tree_identity(const PlanRequest& request, std::uint64_t seed);

}  // namespace ooctree::service
