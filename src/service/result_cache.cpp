#include "src/service/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/core/check.hpp"

namespace ooctree::service {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// ---------------------------------------------------------------------------
// Spilled-entry files: one binary .plan per key, length-prefixed fields.
// The format is private to this translation unit; snapshots of *trees* are
// the public interchange format (core/snapshot.hpp), spilled plans are just
// the cache's own state. Unreadable or foreign files are treated as misses.

constexpr char kPlanMagic[8] = {'O', 'O', 'C', 'P', 'L', 'A', 'N', '\0'};
// Version 2: PlanStats grew the disk-pipeline block (write_stall +
// prefetch counters). Bumping invalidates spilled v1 plans — they decode
// as misses and are recomputed, never misread.
constexpr std::uint32_t kPlanVersion = 2;

void put_bytes(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

template <typename T>
void put_pod(std::ostream& os, const T& v) {
  put_bytes(os, &v, sizeof v);
}

void put_string(std::ostream& os, const std::string& s) {
  put_pod(os, static_cast<std::uint64_t>(s.size()));
  put_bytes(os, s.data(), s.size());
}

template <typename T>
void put_vector(std::ostream& os, const std::vector<T>& v) {
  put_pod(os, static_cast<std::uint64_t>(v.size()));
  put_bytes(os, v.data(), sizeof(T) * v.size());
}

bool get_bytes(std::istream& is, void* p, std::size_t n) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  return static_cast<bool>(is);
}

template <typename T>
bool get_pod(std::istream& is, T& v) {
  return get_bytes(is, &v, sizeof v);
}

bool get_string(std::istream& is, std::string& s) {
  std::uint64_t n = 0;
  if (!get_pod(is, n) || n > (1ULL << 32)) return false;
  s.resize(static_cast<std::size_t>(n));
  return n == 0 || get_bytes(is, s.data(), s.size());
}

template <typename T>
bool get_vector(std::istream& is, std::vector<T>& v) {
  std::uint64_t n = 0;
  if (!get_pod(is, n) || n > (1ULL << 32)) return false;
  v.resize(static_cast<std::size_t>(n));
  return n == 0 || get_bytes(is, v.data(), sizeof(T) * v.size());
}

void write_plan_file(std::ostream& os, const CacheKey& key, const PlanStats& s) {
  put_bytes(os, kPlanMagic, sizeof kPlanMagic);
  put_pod(os, kPlanVersion);
  put_pod(os, std::uint32_t{0});  // reserved
  put_pod(os, key.tree);
  put_pod(os, key.params);
  put_pod(os, static_cast<std::uint8_t>(s.ok));
  put_string(os, s.error);
  put_pod(os, static_cast<std::uint64_t>(s.nodes));
  put_pod(os, s.tree_hash);
  put_pod(os, s.total_weight);
  put_pod(os, s.lb);
  put_pod(os, s.memory);
  put_pod(os, static_cast<std::uint32_t>(s.strategy));
  put_vector(os, s.schedule);
  put_vector(os, s.io);
  put_pod(os, s.io_volume);
  put_pod(os, s.peak_resident);
  put_pod(os, s.evictions);
  put_pod(os, static_cast<std::uint8_t>(s.replayed));
  put_pod(os, static_cast<std::uint8_t>(s.replay_feasible));
  put_pod(os, s.workers);
  put_pod(os, s.makespan);
  put_pod(os, s.parallel_io);
  put_pod(os, s.utilization);
  put_pod(os, s.failed_starts);
  put_pod(os, s.page_size);
  put_pod(os, s.pages_written);
  put_pod(os, s.pages_read);
  put_pod(os, s.read_stall);
  put_pod(os, s.write_stall);
  put_pod(os, s.prefetch_issued);
  put_pod(os, s.prefetch_useful);
  put_pod(os, s.prefetch_wasted);
}

bool read_plan_file(std::istream& is, CacheKey& key, PlanStats& s) {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  if (!get_bytes(is, magic, sizeof magic) || std::memcmp(magic, kPlanMagic, sizeof magic) != 0)
    return false;
  if (!get_pod(is, version) || version != kPlanVersion || !get_pod(is, reserved)) return false;
  std::uint8_t ok = 0;
  std::uint8_t replayed = 0;
  std::uint8_t replay_feasible = 0;
  std::uint64_t nodes = 0;
  std::uint32_t strategy = 0;
  const bool good = get_pod(is, key.tree) && get_pod(is, key.params) && get_pod(is, ok) &&
                    get_string(is, s.error) && get_pod(is, nodes) && get_pod(is, s.tree_hash) &&
                    get_pod(is, s.total_weight) && get_pod(is, s.lb) && get_pod(is, s.memory) &&
                    get_pod(is, strategy) && get_vector(is, s.schedule) && get_vector(is, s.io) &&
                    get_pod(is, s.io_volume) && get_pod(is, s.peak_resident) &&
                    get_pod(is, s.evictions) && get_pod(is, replayed) &&
                    get_pod(is, replay_feasible) && get_pod(is, s.workers) &&
                    get_pod(is, s.makespan) && get_pod(is, s.parallel_io) &&
                    get_pod(is, s.utilization) && get_pod(is, s.failed_starts) &&
                    get_pod(is, s.page_size) && get_pod(is, s.pages_written) &&
                    get_pod(is, s.pages_read) && get_pod(is, s.read_stall) &&
                    get_pod(is, s.write_stall) && get_pod(is, s.prefetch_issued) &&
                    get_pod(is, s.prefetch_useful) && get_pod(is, s.prefetch_wasted);
  if (!good) return false;
  s.ok = ok != 0;
  s.nodes = static_cast<std::size_t>(nodes);
  s.strategy = static_cast<core::Strategy>(strategy);
  s.replayed = replayed != 0;
  s.replay_feasible = replay_feasible != 0;
  // Reject trailing garbage: the next read must hit EOF.
  return is.peek() == std::char_traits<char>::eof();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards, std::string persist_dir)
    : persist_dir_(std::move(persist_dir)) {
  const std::size_t count = round_up_pow2(std::max<std::size_t>(1, shards));
  shard_mask_ = count - 1;
  // Per-shard budget: ceil(capacity / count) so the total is never below
  // the requested capacity; 0 stays 0 (cache disabled).
  shard_capacity_ = capacity == 0 ? 0 : (capacity + count - 1) / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shards_.push_back(std::make_unique<Shard>());
  if (persistent() && enabled()) {
    std::filesystem::create_directories(persist_dir_);
    preload();
  }
}

ResultCache::~ResultCache() {
  if (!persistent() || !enabled()) return;
  // Flush: eviction only spills what falls off the LRU tail; entries still
  // resident at shutdown must reach disk too or a restart would lose them.
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    for (const Entry& e : shard->lru)
      if (e.persistable) spill(e.key, *e.value);
  }
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return persist_dir_ + "/" + hex16(key.tree) + "-" + hex16(key.params) + ".plan";
}

bool ResultCache::spill(const CacheKey& key, const PlanStats& value) const {
  const std::string path = entry_path(key);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) return false;  // deterministic per key
  const std::string tmp = path + ".tmp";
  std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_plan_file(os, key, value);
  os.flush();
  const bool ok = static_cast<bool>(os);
  os.close();
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::shared_ptr<const PlanStats> ResultCache::load_entry(const CacheKey& key) const {
  std::ifstream is(entry_path(key), std::ios::binary);
  if (!is) return nullptr;
  CacheKey stored;
  auto stats = std::make_shared<PlanStats>();
  if (!read_plan_file(is, stored, *stats) || !(stored == key)) return nullptr;
  return stats;
}

void ResultCache::preload() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(persist_dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".plan") continue;
    std::ifstream is(entry.path(), std::ios::binary);
    if (!is) continue;
    CacheKey key;
    auto stats = std::make_shared<PlanStats>();
    if (!read_plan_file(is, key, *stats)) continue;  // foreign/corrupt: skip
    put(key, std::move(stats), true);
  }
}

std::shared_ptr<const PlanStats> ResultCache::get(const CacheKey& key) {
  if (!enabled()) return nullptr;
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh recency
    ++shard.hits;
    return it->second->value;
  }
  if (persistent()) {
    if (std::shared_ptr<const PlanStats> restored = load_entry(key)) {
      insert_locked(shard, key, restored, true);
      ++shard.restored;
      ++shard.hits;
      return restored;
    }
  }
  ++shard.misses;
  return nullptr;
}

void ResultCache::insert_locked(Shard& shard, const CacheKey& key,
                                std::shared_ptr<const PlanStats> value, bool persistable) {
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->value = std::move(value);
    it->second->persistable = it->second->persistable || persistable;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(Entry{key, std::move(value), persistable});
  shard.map.emplace(key, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > shard_capacity_) {
    const Entry& victim = shard.lru.back();
    if (victim.persistable && persistent() && spill(victim.key, *victim.value)) ++shard.spilled;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::put(const CacheKey& key, std::shared_ptr<const PlanStats> value,
                      bool persistable) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  insert_locked(shard, key, std::move(value), persistable);
}

void ResultCache::audit() const {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    core::audit_check(shard->map.size() == shard->lru.size(),
                      "ResultCache: shard map and LRU list disagree on size");
    core::audit_check(shard->lru.size() <= shard_capacity_,
                      "ResultCache: shard holds more entries than its capacity");
    for (auto it = shard->lru.begin(); it != shard->lru.end(); ++it) {
      const auto slot = shard->map.find(it->key);
      core::audit_check(slot != shard->map.end(),
                        "ResultCache: LRU entry missing from the shard map");
      core::audit_check(slot->second == it, "ResultCache: shard map points at the wrong node");
      core::audit_check(it->value != nullptr, "ResultCache: cached value is null");
    }
    // Insertion and eviction are the only ways entries appear and leave,
    // so the counters must reproduce the shard's population exactly.
    core::audit_check(shard->insertions == shard->evictions + shard->lru.size(),
                      "ResultCache: insertion/eviction counters cannot produce this shard");
    // Every restore re-inserted an entry, and spills only happen on
    // eviction or shutdown flush.
    core::audit_check(shard->restored <= shard->insertions,
                      "ResultCache: more restores than insertions");
    core::audit_check(shard->spilled <= shard->evictions,
                      "ResultCache: more eviction spills than evictions");
  }
}

CacheCounters ResultCache::counters() const {
  CacheCounters total;
  total.capacity = shard_capacity_ * shards_.size();
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.spilled += shard->spilled;
    total.restored += shard->restored;
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace ooctree::service
