#include "src/service/result_cache.hpp"

#include <algorithm>

#include "src/core/check.hpp"
#include "src/util/rng.hpp"

namespace ooctree::service {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  const std::size_t count = round_up_pow2(std::max<std::size_t>(1, shards));
  shard_mask_ = count - 1;
  // Per-shard budget: ceil(capacity / count) so the total is never below
  // the requested capacity; 0 stays 0 (cache disabled).
  shard_capacity_ = capacity == 0 ? 0 : (capacity + count - 1) / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::shard_for(const CacheKey& key) {
  // Remix before selecting: the low bits of `tree` also pick hash-map
  // buckets inside the shard, and reusing them verbatim would correlate
  // the two.
  const std::uint64_t h = util::splitmix64(key.tree ^ key.params);
  return *shards_[static_cast<std::size_t>(h & shard_mask_)];
}

std::shared_ptr<const PlanStats> ResultCache::get(const CacheKey& key) {
  if (!enabled()) return nullptr;
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh recency
  ++shard.hits;
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, std::shared_ptr<const PlanStats> value) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.map.emplace(key, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::audit() const {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    core::audit_check(shard->map.size() == shard->lru.size(),
                      "ResultCache: shard map and LRU list disagree on size");
    core::audit_check(shard->lru.size() <= shard_capacity_,
                      "ResultCache: shard holds more entries than its capacity");
    for (auto it = shard->lru.begin(); it != shard->lru.end(); ++it) {
      const auto slot = shard->map.find(it->first);
      core::audit_check(slot != shard->map.end(),
                        "ResultCache: LRU entry missing from the shard map");
      core::audit_check(slot->second == it, "ResultCache: shard map points at the wrong node");
      core::audit_check(it->second != nullptr, "ResultCache: cached value is null");
    }
    // Insertion and eviction are the only ways entries appear and leave,
    // so the counters must reproduce the shard's population exactly.
    core::audit_check(shard->insertions == shard->evictions + shard->lru.size(),
                      "ResultCache: insertion/eviction counters cannot produce this shard");
  }
}

CacheCounters ResultCache::counters() const {
  CacheCounters total;
  total.capacity = shard_capacity_ * shards_.size();
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace ooctree::service
