#include "src/treegen/catalan.hpp"

#include <stdexcept>
#include <vector>

namespace ooctree::treegen {

namespace {

constexpr std::size_t kMaxCatalan = 65;

const std::vector<u128>& catalan_table() {
  static const std::vector<u128> table = [] {
    std::vector<u128> t(kMaxCatalan + 1);
    t[0] = 1;
    // C_{k+1} = C_k * 2(2k+1) / (k+2): exact at every step.
    for (std::size_t k = 0; k < kMaxCatalan; ++k)
      t[k + 1] = t[k] * 2 * (2 * k + 1) / (k + 2);
    return t;
  }();
  return table;
}

/// Recursive builder: emits the rank-th tree shape with `n` nodes rooted at
/// the next free id, appending (parent, weight=1) rows. Returns the root id.
core::NodeId build(std::size_t n, u128 rank, std::vector<core::NodeId>& parent) {
  // Split: left subtree of size i, right subtree of size n-1-i, ordered by
  // increasing i, then by left rank, then right rank.
  const auto root = static_cast<core::NodeId>(parent.size());
  parent.push_back(core::kNoNode);  // parent fixed by caller afterwards
  if (n == 1) return root;
  const auto& cat = catalan_table();
  std::size_t left = 0;
  for (;; ++left) {
    const u128 block = cat[left] * cat[n - 1 - left];
    if (rank < block) break;
    rank -= block;
  }
  const u128 right_count = cat[n - 1 - left];
  const u128 left_rank = rank / right_count;
  const u128 right_rank = rank % right_count;
  if (left > 0) {
    const core::NodeId l = build(left, left_rank, parent);
    parent[static_cast<std::size_t>(l)] = root;
  }
  if (n - 1 - left > 0) {
    const core::NodeId r = build(n - 1 - left, right_rank, parent);
    parent[static_cast<std::size_t>(r)] = root;
  }
  return root;
}

}  // namespace

u128 catalan_number(std::size_t n) {
  if (n > kMaxCatalan) throw std::invalid_argument("catalan_number: n too large for 128 bits");
  return catalan_table()[n];
}

core::Tree unrank_binary_tree(std::size_t n, u128 rank) {
  if (n == 0) throw std::invalid_argument("unrank_binary_tree: n must be positive");
  if (rank >= catalan_number(n)) throw std::invalid_argument("unrank_binary_tree: rank too large");
  std::vector<core::NodeId> parent;
  parent.reserve(n);
  build(n, rank, parent);
  return core::Tree::from_parents(std::move(parent), std::vector<core::Weight>(n, 1));
}

core::Tree uniform_binary_tree_exact(std::size_t n, util::Rng& rng) {
  const u128 total = catalan_number(n);
  // Rejection-free 128-bit uniform draw from two 64-bit halves.
  u128 r = (u128(rng.engine()()) << 64) | rng.engine()();
  r %= total;  // counts are tiny next to 2^128 for the n used in tests
  return unrank_binary_tree(n, r);
}

}  // namespace ooctree::treegen
