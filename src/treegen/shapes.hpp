// Deterministic tree shapes used throughout tests and benches.
#pragma once

#include <vector>

#include "src/core/tree.hpp"
#include "src/util/rng.hpp"

namespace ooctree::treegen {

/// A chain; weights are listed from the root down to the leaf.
[[nodiscard]] core::Tree chain_tree(const std::vector<core::Weight>& root_to_leaf);

/// A root with `leaves` leaf children; leaf weight w_leaf, root weight w_root.
[[nodiscard]] core::Tree star_tree(std::size_t leaves, core::Weight w_leaf, core::Weight w_root);

/// Complete k-ary tree of the given depth (depth 1 = single node), all
/// weights w.
[[nodiscard]] core::Tree complete_kary_tree(std::size_t arity, std::size_t depth, core::Weight w);

/// Caterpillar: a spine of `spine` nodes, each carrying `legs` leaf
/// children; all weights w.
[[nodiscard]] core::Tree caterpillar_tree(std::size_t spine, std::size_t legs, core::Weight w);

/// Spider: `legs` chains of length `leg_len` meeting at the root; all
/// weights w.
[[nodiscard]] core::Tree spider_tree(std::size_t legs, std::size_t leg_len, core::Weight w);

/// Uniform random recursive tree: node i attaches to a uniform node < i.
/// Unbounded degree; weights all 1 (assign with weights.hpp helpers).
[[nodiscard]] core::Tree random_recursive_tree(std::size_t n, util::Rng& rng);

}  // namespace ooctree::treegen
