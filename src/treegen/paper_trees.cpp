#include "src/treegen/paper_trees.hpp"

#include <stdexcept>

namespace ooctree::treegen {

using core::kNoNode;
using core::NodeId;
using core::Tree;
using core::Weight;

PaperInstance fig2a(std::size_t levels, Weight memory) {
  if (levels < 2) throw std::invalid_argument("fig2a: levels must be >= 2");
  if (memory < 4 || memory % 2 != 0) throw std::invalid_argument("fig2a: memory must be even, >= 4");
  const Weight m = memory;

  std::vector<NodeId> parent;
  std::vector<Weight> weight;
  std::vector<NodeId> schedule;  // the 1-I/O traversal of the figure
  const auto add = [&](NodeId p, Weight w) {
    parent.push_back(p);
    weight.push_back(w);
    return static_cast<NodeId>(parent.size() - 1);
  };

  // Base block (the figure's sigma 1..7). Parents are fixed afterwards for
  // nodes created before their parent, so create top-down per chain:
  // u1 (w=1) has children c6 (M/2 over the left leaf chain) and c5 (M/2
  // over the right leaf chain); each M/2 node tops a chain  1 -> M.
  const NodeId u1 = add(kNoNode, 1);
  const NodeId c6 = add(u1, m / 2);
  const NodeId n2 = add(c6, 1);
  const NodeId n1 = add(n2, m);
  const NodeId c5 = add(u1, m / 2);
  const NodeId n4 = add(c5, 1);
  const NodeId n3 = add(n4, m);
  schedule.insert(schedule.end(), {n1, n2, n3, n4, c5, c6, u1});

  // Levels 2..L: u_j (w=1; w for the top level the root) with children
  //   c (M/2) -> u_{j-1}   and   b (M/2) -> leaf (M-1).
  NodeId below = u1;
  for (std::size_t j = 2; j <= levels; ++j) {
    const NodeId uj = add(kNoNode, 1);
    const NodeId leaf = add(kNoNode, m - 1);
    const NodeId b = add(uj, m / 2);
    const NodeId c = add(uj, m / 2);
    parent[static_cast<std::size_t>(leaf)] = b;
    parent[static_cast<std::size_t>(below)] = c;  // the spine M/2 node carries the level below
    schedule.insert(schedule.end(), {leaf, b, c, uj});
    below = uj;
  }

  PaperInstance out{Tree::from_parents(std::move(parent), std::move(weight)), memory,
                    std::move(schedule)};
  return out;
}

PaperInstance fig2b() {
  // Node ids: 0 root (w1); left chain 1..4 (w 3,5,2,6 top-down);
  // right chain 5..8 (w 3,5,2,6 top-down). M = 6.
  const Tree tree = core::make_tree({
      {kNoNode, 1},  // 0 root
      {0, 3},        // 1
      {1, 5},        // 2
      {2, 2},        // 3
      {3, 6},        // 4 (left leaf)
      {0, 3},        // 5
      {5, 5},        // 6
      {6, 2},        // 7
      {7, 6},        // 8 (right leaf)
  });
  // The figure's OPTMINMEM order (peak 8, 4 I/Os under FiF).
  const core::Schedule annotated{8, 7, 4, 3, 2, 1, 6, 5, 0};
  return PaperInstance{tree, 6, annotated};
}

PaperInstance fig2c(Weight k) {
  if (k < 1) throw std::invalid_argument("fig2c: k must be >= 1");
  // Chain weights root -> leaf: 2k, 3k, 2k-1, 3k+1, ..., k, 4k
  // (interleaving {2k..k} and {3k..4k}); two identical chains under the
  // root; M = 4k.
  std::vector<Weight> chain;
  for (Weight i = 0; i <= k; ++i) {
    chain.push_back(2 * k - i);
    chain.push_back(3 * k + i);
  }

  std::vector<NodeId> parent{kNoNode};
  std::vector<Weight> weight{1};  // root
  std::vector<NodeId> right, left;
  for (int side = 0; side < 2; ++side) {
    NodeId up = 0;
    std::vector<NodeId>& chain_ids = (side == 0) ? right : left;
    for (const Weight w : chain) {
      parent.push_back(up);
      weight.push_back(w);
      up = static_cast<NodeId>(parent.size() - 1);
      chain_ids.push_back(up);
    }
  }

  // Annotated: chain-by-chain from the leaves (the 2k-I/O traversal).
  core::Schedule annotated;
  for (auto it = right.rbegin(); it != right.rend(); ++it) annotated.push_back(*it);
  for (auto it = left.rbegin(); it != left.rend(); ++it) annotated.push_back(*it);
  annotated.push_back(0);

  return PaperInstance{Tree::from_parents(std::move(parent), std::move(weight)), 4 * k,
                       std::move(annotated)};
}

PaperInstance fig6() {
  // 0 root(1); left chain 1(4) -> 2(8) -> 3(2, "a") -> 4(9 leaf);
  // right chain 5(6) -> 6(4, "b") -> 7(10 leaf). M = 10.
  const Tree tree = core::make_tree({
      {kNoNode, 1},  // 0
      {0, 4},        // 1
      {1, 8},        // 2
      {2, 2},        // 3 = a
      {3, 9},        // 4
      {0, 6},        // 5
      {5, 4},        // 6 = b
      {6, 10},       // 7
  });
  // OPTMINMEM of the figure: left branch to a, right branch to b, finish.
  const core::Schedule annotated{4, 3, 7, 6, 2, 1, 5, 0};
  return PaperInstance{tree, 10, annotated};
}

PaperInstance fig7() {
  // 0 root(1); 1 = c(3): children 2 = a(2) -> 3(7 leaf) and 4(3 leaf);
  // 5 = b(4) -> 6(7 leaf). M = 7.
  const Tree tree = core::make_tree({
      {kNoNode, 1},  // 0
      {0, 3},        // 1 = c
      {1, 2},        // 2 = a
      {2, 7},        // 3
      {1, 3},        // 4
      {0, 4},        // 5 = b
      {5, 7},        // 6
  });
  // The postorder (left subtree first) that achieves the optimal 3 I/Os.
  const core::Schedule annotated{3, 2, 4, 1, 6, 5, 0};
  return PaperInstance{tree, 7, annotated};
}

}  // namespace ooctree::treegen
