#include "src/treegen/shapes.hpp"

#include <stdexcept>

namespace ooctree::treegen {

using core::kNoNode;
using core::NodeId;
using core::Tree;
using core::Weight;

Tree chain_tree(const std::vector<Weight>& root_to_leaf) {
  if (root_to_leaf.empty()) throw std::invalid_argument("chain_tree: empty");
  std::vector<NodeId> parent(root_to_leaf.size(), kNoNode);
  for (std::size_t i = 1; i < root_to_leaf.size(); ++i) parent[i] = static_cast<NodeId>(i - 1);
  return Tree::from_parents(std::move(parent), std::vector<Weight>(root_to_leaf));
}

Tree star_tree(std::size_t leaves, Weight w_leaf, Weight w_root) {
  std::vector<NodeId> parent(leaves + 1, 0);
  parent[0] = kNoNode;
  std::vector<Weight> weight(leaves + 1, w_leaf);
  weight[0] = w_root;
  return Tree::from_parents(std::move(parent), std::move(weight));
}

Tree complete_kary_tree(std::size_t arity, std::size_t depth, Weight w) {
  if (arity == 0 || depth == 0) throw std::invalid_argument("complete_kary_tree: bad parameters");
  std::vector<NodeId> parent{kNoNode};
  std::size_t level_begin = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 1; d < depth; ++d) {
    const std::size_t next_begin = parent.size();
    for (std::size_t p = level_begin; p < level_begin + level_size; ++p)
      for (std::size_t c = 0; c < arity; ++c) parent.push_back(static_cast<NodeId>(p));
    level_begin = next_begin;
    level_size *= arity;
  }
  const std::size_t n = parent.size();
  return Tree::from_parents(std::move(parent), std::vector<Weight>(n, w));
}

Tree caterpillar_tree(std::size_t spine, std::size_t legs, Weight w) {
  if (spine == 0) throw std::invalid_argument("caterpillar_tree: empty spine");
  std::vector<NodeId> parent;
  // Spine first (node s-1 is the root end), then legs.
  parent.push_back(kNoNode);
  for (std::size_t s = 1; s < spine; ++s) parent.push_back(static_cast<NodeId>(s - 1));
  for (std::size_t s = 0; s < spine; ++s)
    for (std::size_t l = 0; l < legs; ++l) parent.push_back(static_cast<NodeId>(s));
  const std::size_t n = parent.size();
  return Tree::from_parents(std::move(parent), std::vector<Weight>(n, w));
}

Tree spider_tree(std::size_t legs, std::size_t leg_len, Weight w) {
  if (legs == 0 || leg_len == 0) throw std::invalid_argument("spider_tree: bad parameters");
  std::vector<NodeId> parent{kNoNode};
  for (std::size_t l = 0; l < legs; ++l) {
    NodeId up = 0;  // attach each chain to the root
    for (std::size_t k = 0; k < leg_len; ++k) {
      parent.push_back(up);
      up = static_cast<NodeId>(parent.size() - 1);
    }
  }
  const std::size_t n = parent.size();
  return Tree::from_parents(std::move(parent), std::vector<Weight>(n, w));
}

Tree random_recursive_tree(std::size_t n, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("random_recursive_tree: n must be positive");
  std::vector<NodeId> parent(n, kNoNode);
  for (std::size_t i = 1; i < n; ++i)
    parent[i] = static_cast<NodeId>(rng.index(i));
  return Tree::from_parents(std::move(parent), std::vector<Weight>(n, 1));
}

}  // namespace ooctree::treegen
