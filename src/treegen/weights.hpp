// Weight assignment helpers: reshape a tree's node weights while keeping
// its structure.
#pragma once

#include "src/core/tree.hpp"
#include "src/util/rng.hpp"

namespace ooctree::treegen {

/// Same structure, weights drawn uniformly from [lo, hi].
[[nodiscard]] core::Tree with_uniform_weights(const core::Tree& tree, core::Weight lo,
                                              core::Weight hi, util::Rng& rng);

/// Same structure, heavy-tailed weights: 10^u with u uniform in
/// [0, log10(hi)], rounded, clamped to [1, hi]. Models the skewed front
/// sizes of real elimination trees.
[[nodiscard]] core::Tree with_log_uniform_weights(const core::Tree& tree, core::Weight hi,
                                                  util::Rng& rng);

/// Same structure, every weight set to `w` (w=1 gives a homogeneous tree).
[[nodiscard]] core::Tree with_constant_weights(const core::Tree& tree, core::Weight w);

}  // namespace ooctree::treegen
