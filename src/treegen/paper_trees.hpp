// The paper's explicit example trees (Figures 2, 6 and 7), with the
// schedules the paper annotates, so the counterexample claims of Sections
// 4.3, 4.4 and Appendix A can be tested and benchmarked verbatim.
#pragma once

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::treegen {

/// A paper tree together with the paper's annotated schedule (when the
/// figure gives one) and the memory bound of the example.
struct PaperInstance {
  core::Tree tree;
  core::Weight memory = 0;
  core::Schedule annotated_schedule;  ///< empty when the figure shows none
};

/// Figure 2(a): the family showing POSTORDERMINIO performs Omega(n*M) I/Os
/// while the optimal traversal needs a single one. `levels` >= 2 controls
/// the height (the paper draws levels = 3, a 15-node tree); `memory` must
/// be even and >= 4. The annotated schedule is the 1-I/O traversal.
[[nodiscard]] PaperInstance fig2a(std::size_t levels, core::Weight memory);

/// Figure 2(b): 9-node two-chain tree, M = 6. OptMinMem reaches peak 8 at
/// the cost of 4 I/Os where a peak-9 chain-by-chain traversal needs only 3.
/// The annotated schedule is the OPTMINMEM order of the figure.
[[nodiscard]] PaperInstance fig2b();

/// Figure 2(c): two interleaved-weight chains of length 2k+2, M = 4k.
/// OptMinMem reaches peak 5k at the cost of k(k+1) I/Os; processing one
/// chain after the other costs 2k I/Os (peak 6k). The annotated schedule
/// is the chain-by-chain (I/O-optimal) order.
[[nodiscard]] PaperInstance fig2c(core::Weight k);

/// Figure 6 (Appendix A): 9-node tree, M = 10, where FULLRECEXPAND is
/// optimal (3 I/Os) but OPTMINMEM needs 4 and POSTORDERMINIO more.
[[nodiscard]] PaperInstance fig6();

/// Figure 7 (Appendix A): 7-node tree, M = 7, where POSTORDERMINIO is
/// optimal (3 I/Os) but OPTMINMEM and FULLRECEXPAND need 4.
[[nodiscard]] PaperInstance fig7();

}  // namespace ooctree::treegen
