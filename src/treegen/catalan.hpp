// Catalan counting and exact unranking of small binary trees.
//
// Binary trees with n nodes (every node has 0, 1 or 2 ordered children) are
// counted by the Catalan number C_n. For tests we need (a) the counts, (b)
// a bijection rank <-> tree so property suites can sweep *all* binary trees
// of a given size, and (c) exact uniform sampling for cross-checking the
// O(n) Rémy generator. Counts are carried in unsigned __int128, good up to
// n = 65 (far beyond what exhaustive tests enumerate).
#pragma once

#include <cstdint>

#include "src/core/tree.hpp"
#include "src/util/rng.hpp"

namespace ooctree::treegen {

__extension__ typedef unsigned __int128 u128;  // NOLINT: 128-bit counts

/// C_n for n >= 0; throws std::invalid_argument beyond n = 65 (overflow).
[[nodiscard]] u128 catalan_number(std::size_t n);

/// The `rank`-th binary tree with n nodes (0 <= rank < C_n), in a fixed
/// canonical order: trees are ordered by the size of the root's left
/// subtree, then recursively. All node weights are 1. Throws
/// std::invalid_argument on an out-of-range rank.
[[nodiscard]] core::Tree unrank_binary_tree(std::size_t n, u128 rank);

/// Exactly uniform binary tree with n nodes via unranking; O(n^2), intended
/// for n up to ~60.
[[nodiscard]] core::Tree uniform_binary_tree_exact(std::size_t n, util::Rng& rng);

}  // namespace ooctree::treegen
