#include "src/treegen/random_binary.hpp"

#include <array>
#include <stdexcept>

#include "src/treegen/weights.hpp"

namespace ooctree::treegen {

namespace {

/// Full binary tree under construction for Rémy's algorithm.
struct FullTree {
  // child[v][0..1] = kNoNode for leaves; parent[v]; root id.
  std::vector<std::array<core::NodeId, 2>> child;
  std::vector<core::NodeId> parent;
  core::NodeId root = 0;
};

}  // namespace

core::Tree remy_binary_tree(std::size_t internal, util::Rng& rng) {
  if (internal == 0) throw std::invalid_argument("remy_binary_tree: need at least one node");

  // Rémy's algorithm: grow a uniform full binary tree with k internal nodes
  // by repeatedly picking a uniform (node, side) pair: the picked node is
  // pushed down under a fresh internal node whose other side gets a fresh
  // leaf. Node count: 2k+1.
  FullTree t;
  const std::size_t total = 2 * internal + 1;
  t.child.reserve(total);
  t.parent.reserve(total);
  t.child.push_back({core::kNoNode, core::kNoNode});  // initial single leaf
  t.parent.push_back(core::kNoNode);
  t.root = 0;

  for (std::size_t k = 1; k <= internal - 0; ++k) {
    if (t.child.size() >= total) break;
    const std::size_t nodes = t.child.size();
    const std::size_t pick = rng.index(2 * nodes);
    const auto target = static_cast<core::NodeId>(pick / 2);
    const std::size_t side = pick % 2;

    const auto fresh_internal = static_cast<core::NodeId>(t.child.size());
    t.child.push_back({core::kNoNode, core::kNoNode});
    t.parent.push_back(core::kNoNode);
    const auto fresh_leaf = static_cast<core::NodeId>(t.child.size());
    t.child.push_back({core::kNoNode, core::kNoNode});
    t.parent.push_back(core::kNoNode);

    const core::NodeId up = t.parent[static_cast<std::size_t>(target)];
    t.child[static_cast<std::size_t>(fresh_internal)][side] = target;
    t.child[static_cast<std::size_t>(fresh_internal)][1 - side] = fresh_leaf;
    t.parent[static_cast<std::size_t>(target)] = fresh_internal;
    t.parent[static_cast<std::size_t>(fresh_leaf)] = fresh_internal;
    t.parent[static_cast<std::size_t>(fresh_internal)] = up;
    if (up == core::kNoNode) {
      t.root = fresh_internal;
    } else {
      auto& up_child = t.child[static_cast<std::size_t>(up)];
      if (up_child[0] == target) up_child[0] = fresh_internal;
      else up_child[1] = fresh_internal;
    }
  }

  // Emit the full tree (weights 1).
  std::vector<core::NodeId> parent(t.parent.begin(), t.parent.end());
  return core::Tree::from_parents(std::move(parent),
                                  std::vector<core::Weight>(t.child.size(), 1));
}

core::Tree uniform_binary_tree(std::size_t n, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("uniform_binary_tree: n must be positive");
  // The internal nodes of a uniform full binary tree with n internal nodes
  // form a uniform (ordered) binary tree with n nodes: stripping the leaves
  // is a bijection between the two families.
  const core::Tree full = remy_binary_tree(n, rng);
  std::vector<core::NodeId> keep;  // internal nodes of `full`
  std::vector<core::NodeId> new_id(full.size(), core::kNoNode);
  for (std::size_t v = 0; v < full.size(); ++v) {
    if (!full.is_leaf(static_cast<core::NodeId>(v))) {
      new_id[v] = static_cast<core::NodeId>(keep.size());
      keep.push_back(static_cast<core::NodeId>(v));
    }
  }
  std::vector<core::NodeId> parent(keep.size(), core::kNoNode);
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const core::NodeId p = full.parent(keep[k]);
    // In a full binary tree every ancestor of an internal node is internal.
    if (p != core::kNoNode) parent[k] = new_id[static_cast<std::size_t>(p)];
  }
  return core::Tree::from_parents(std::move(parent), std::vector<core::Weight>(keep.size(), 1));
}

core::Tree synth_instance(std::size_t n, core::Weight w_lo, core::Weight w_hi, util::Rng& rng) {
  const core::Tree shape = uniform_binary_tree(n, rng);
  return with_uniform_weights(shape, w_lo, w_hi, rng);
}

}  // namespace ooctree::treegen
