#include "src/treegen/weights.hpp"

#include <algorithm>
#include <cmath>

namespace ooctree::treegen {

namespace {

core::Tree rebuild(const core::Tree& tree, std::vector<core::Weight> weights) {
  std::vector<core::NodeId> parent(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i)
    parent[i] = tree.parent(static_cast<core::NodeId>(i));
  return core::Tree::from_parents(std::move(parent), std::move(weights), tree.memory_model());
}

}  // namespace

core::Tree with_uniform_weights(const core::Tree& tree, core::Weight lo, core::Weight hi,
                                util::Rng& rng) {
  std::vector<core::Weight> w(tree.size());
  for (auto& x : w) x = rng.uniform_int(lo, hi);
  return rebuild(tree, std::move(w));
}

core::Tree with_log_uniform_weights(const core::Tree& tree, core::Weight hi, util::Rng& rng) {
  std::vector<core::Weight> w(tree.size());
  const double top = std::log10(static_cast<double>(hi));
  for (auto& x : w) {
    const double u = rng.uniform_real() * top;
    x = std::clamp<core::Weight>(static_cast<core::Weight>(std::llround(std::pow(10.0, u))), 1, hi);
  }
  return rebuild(tree, std::move(w));
}

core::Tree with_constant_weights(const core::Tree& tree, core::Weight w) {
  return rebuild(tree, std::vector<core::Weight>(tree.size(), w));
}

}  // namespace ooctree::treegen
