// Uniform random binary trees — the SYNTH dataset substrate.
//
// The paper draws 330 binary trees of 3000 nodes "uniformly at random among
// all binary trees" using (half-)Catalan counting in the style surveyed by
// Mäkinen [15], with node weights uniform in [1, 100]. Two generators are
// provided:
//   * remy_binary_tree: Rémy's bijective algorithm — exact uniformity over
//     full binary trees with n internal nodes in O(n), the workhorse;
//   * unrank_binary_tree: Catalan unranking (see catalan.hpp) — exact
//     uniformity over binary trees with n nodes, usable up to the sizes
//     where Catalan numbers fit in 128-bit arithmetic and handy for
//     exhaustive small-size sweeps in tests.
#pragma once

#include "src/core/tree.hpp"
#include "src/util/rng.hpp"

namespace ooctree::treegen {

/// A uniform random *full* binary tree with `internal` internal nodes (and
/// internal+1 leaves), by Rémy's algorithm. Node weights are all 1; callers
/// assign weights afterwards (see weights.hpp).
[[nodiscard]] core::Tree remy_binary_tree(std::size_t internal, util::Rng& rng);

/// A uniform random binary tree (each node has 0, 1 or 2 children) with
/// exactly `n` nodes, via Catalan-ranking over left/right subtree splits.
/// Exact uniformity; O(n^2) time, intended for n up to a few thousand.
[[nodiscard]] core::Tree uniform_binary_tree(std::size_t n, util::Rng& rng);

/// The paper's SYNTH instance: a uniform binary tree of `n` nodes with
/// weights drawn uniformly from [w_lo, w_hi].
[[nodiscard]] core::Tree synth_instance(std::size_t n, core::Weight w_lo, core::Weight w_hi,
                                        util::Rng& rng);

}  // namespace ooctree::treegen
