#include "src/util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

namespace ooctree::util {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // Drain-then-stop: workers only exit once the queue is empty (see
  // worker_loop), so every future handed out by submit() gets its result
  // (or exception) before the threads are joined. Concurrent shutdown()
  // calls serialize on join_mutex_; the loser finds nothing joinable.
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  const std::lock_guard join_lock(join_mutex_);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  switch (try_enqueue(std::move(task))) {
    case EnqueueResult::kOk:
      return;
    case EnqueueResult::kFull:
      throw std::runtime_error("ThreadPool::submit: bounded queue is at capacity");
    case EnqueueResult::kStopping:
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
  }
}

ThreadPool::EnqueueResult ThreadPool::try_enqueue(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    if (stopping_) return EnqueueResult::kStopping;
    if (queue_capacity_ != 0 && tasks_.size() >= queue_capacity_) return EnqueueResult::kFull;
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return EnqueueResult::kOk;
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return tasks_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Shared dynamic counter: workers grab the next index until exhausted.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining = std::make_shared<std::atomic<std::size_t>>(n);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  // Capture n and body by value: straggler workers that observe i >= n may
  // still be running after parallel_for has returned and its frame is gone.
  const auto drive = [&done_mutex, &done_cv, &done, n, body, next, remaining, first_error, error,
                      error_mutex]() {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= n) break;
      if (!first_error->load()) {
        try {
          body(i);
        } catch (...) {
          const std::lock_guard lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
        }
      }
      if (remaining->fetch_sub(1) == 1) {
        const std::lock_guard lock(done_mutex);
        done = true;
        done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n);
  {
    const std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.emplace(drive);
  }
  cv_.notify_all();
  drive();  // the calling thread participates as well

  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done; });
  }
  if (first_error->load()) std::rethrow_exception(*error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(n, body);
}

}  // namespace ooctree::util
