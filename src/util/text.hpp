// Tiny shared string helpers for the name parsers (strategies, eviction
// policies, service request fields), so each parser normalizes input the
// same way instead of growing its own copy of the transform.
#pragma once

#include <algorithm>
#include <cctype>
#include <string>

namespace ooctree::util {

/// ASCII lowercase copy; the option vocabularies are all ASCII.
[[nodiscard]] inline std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace ooctree::util
