// Small command-line argument parser for the examples and bench harnesses.
//
// Supports "--name value" and "--name=value" options plus "--flag" booleans.
// Unknown options raise an error listing the accepted names, which keeps the
// example binaries self-documenting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ooctree::util {

/// Parsed command line: options by name plus positional arguments.
class Args {
 public:
  /// Parses argv. Every token starting with "--" is an option; if the next
  /// token does not start with "--" it is consumed as the option's value,
  /// otherwise the option is a boolean flag.
  static Args parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const { return options_.count(name) > 0; }

  /// String option with a default.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer option with a default; throws std::runtime_error on bad input.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Floating-point option with a default.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace ooctree::util
