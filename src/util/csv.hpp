// Tiny CSV writer used by the benchmark harnesses to dump experiment series.
//
// The writer is deliberately minimal: fixed header, row-by-row append,
// RFC-4180 quoting of string fields. Benchmarks stream their series to
// stdout as well, so the CSV files are a convenience for plotting.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ooctree::util {

/// A single CSV cell: stored as preformatted text.
class CsvCell {
 public:
  CsvCell(std::string_view s) : text_(quote(s)) {}          // NOLINT(google-explicit-constructor)
  CsvCell(const char* s) : CsvCell(std::string_view(s)) {}  // NOLINT(google-explicit-constructor)
  CsvCell(const std::string& s) : CsvCell(std::string_view(s)) {}  // NOLINT
  CsvCell(std::int64_t v) : text_(std::to_string(v)) {}     // NOLINT(google-explicit-constructor)
  CsvCell(std::uint64_t v) : text_(std::to_string(v)) {}    // NOLINT(google-explicit-constructor)
  CsvCell(int v) : text_(std::to_string(v)) {}              // NOLINT(google-explicit-constructor)
  CsvCell(double v);                                        // NOLINT(google-explicit-constructor)

  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  static std::string quote(std::string_view s);
  std::string text_;
};

/// Streaming CSV file writer.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, std::initializer_list<std::string_view> header);

  /// Appends one data row; the number of cells should match the header.
  void row(std::initializer_list<CsvCell> cells);

  /// Flushes and closes the stream (also done by the destructor).
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
};

}  // namespace ooctree::util
