#include "src/util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ooctree::util {

namespace {

double max_x(const std::vector<Series>& series, double fallback) {
  double best = fallback;
  for (const auto& s : series)
    for (const double v : s.x) best = std::max(best, v);
  return best;
}

}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& opts) {
  const int w = std::max(16, opts.width);
  const int h = std::max(6, opts.height);
  const double x_lo = opts.x_min;
  const double x_hi = std::max(max_x(series, x_lo + 1.0), x_lo + 1e-9);
  const double y_lo = opts.y_min;
  const double y_hi = std::max(opts.y_max, y_lo + 1e-9);

  std::vector<std::string> canvas(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  const auto col = [&](double x) {
    const double t = (x - x_lo) / (x_hi - x_lo);
    return std::clamp(static_cast<int>(std::lround(t * (w - 1))), 0, w - 1);
  };
  const auto row = [&](double y) {
    const double t = (y - y_lo) / (y_hi - y_lo);
    return std::clamp(h - 1 - static_cast<int>(std::lround(t * (h - 1))), 0, h - 1);
  };

  char glyph = 'A';
  for (const auto& s : series) {
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      // Draw the step polyline segment between consecutive points.
      const int c0 = col(s.x[i]), c1 = col(s.x[i + 1]);
      const int r0 = row(s.y[i]), r1 = row(s.y[i + 1]);
      const int steps = std::max({std::abs(c1 - c0), std::abs(r1 - r0), 1});
      for (int t = 0; t <= steps; ++t) {
        const int c = c0 + (c1 - c0) * t / steps;
        const int r = r0 + (r1 - r0) * t / steps;
        canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
      }
    }
    if (s.x.size() == 1) {
      canvas[static_cast<std::size_t>(row(s.y[0]))][static_cast<std::size_t>(col(s.x[0]))] = glyph;
    }
    ++glyph;
  }

  std::ostringstream out;
  if (!opts.y_label.empty()) out << opts.y_label << '\n';
  for (int r = 0; r < h; ++r) {
    const double y = y_hi - (y_hi - y_lo) * r / (h - 1);
    char buf[16];
    std::snprintf(buf, sizeof buf, "%6.2f |", y);
    out << buf << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  out << "       +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  char lo_buf[32], hi_buf[32];
  std::snprintf(lo_buf, sizeof lo_buf, "%.3g", x_lo);
  std::snprintf(hi_buf, sizeof hi_buf, "%.3g", x_hi);
  std::string axis = "        " + std::string(lo_buf);
  const std::string hi_s(hi_buf);
  const std::size_t pad_to = static_cast<std::size_t>(w) + 8 - hi_s.size();
  if (axis.size() < pad_to) axis += std::string(pad_to - axis.size(), ' ');
  axis += hi_s;
  out << axis << '\n';
  if (!opts.x_label.empty()) out << "        " << opts.x_label << '\n';

  glyph = 'A';
  for (const auto& s : series) {
    out << "        [" << glyph << "] " << s.name << '\n';
    ++glyph;
  }
  return out.str();
}

}  // namespace ooctree::util
