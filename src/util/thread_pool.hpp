// Fixed-size thread pool with a blocking parallel_for and a submit/future
// front-end, used by the benchmark harnesses (hundreds of independent
// scheduling instances) and the planning service (src/service/).
//
// Two idioms coexist on one task queue:
//   * parallel_for — structured parallelism: blocks until every index has
//     been processed, so callers never observe detached work. Exceptions
//     thrown by the body are captured and rethrown (first one wins) on the
//     calling thread.
//   * submit — asynchronous tasks: returns a std::future for the task's
//     result; exceptions propagate through the future. Shutdown is
//     drain-then-stop: every task already queued runs before the workers
//     are joined, so a future obtained from submit() is never silently
//     abandoned (no broken_promise). submit() after shutdown has begun
//     throws instead of enqueueing work that could never be drained safely.
//     shutdown() is callable explicitly (idempotent, any thread, safe
//     against concurrent submitters — the concurrency stress suite races
//     them under TSan); the destructor is just shutdown().
//
// The queue is bounded when a nonzero capacity is configured: submit()
// throws and try_submit() returns nullopt once `queue_capacity` tasks are
// waiting, so a producer that outruns the workers gets backpressure instead
// of unbounded memory growth. parallel_for is exempt — its drive tasks are
// one-per-worker structured helpers, not queued work items, and bounding
// them could deadlock the caller that is blocked waiting for them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace ooctree::util {

/// A fixed set of worker threads consuming a shared task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  /// `queue_capacity` bounds the number of tasks waiting in the submit
  /// queue (0 = unbounded, the historical contract).
  explicit ThreadPool(std::size_t threads = 0, std::size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(i) for every i in [0, n), distributing dynamically in chunks.
  /// Blocks until all iterations are complete; rethrows the first exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Enqueues fn to run on a worker and returns a future for its result.
  /// Exceptions thrown by fn surface through the future. Throws
  /// std::runtime_error if the pool is shutting down or the bounded queue
  /// is at capacity.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Non-throwing variant for bounded pools: returns nullopt instead of
  /// enqueueing when the queue is at capacity or the pool is shutting
  /// down. fn is not invoked in that case.
  template <typename F>
  auto try_submit(F&& fn) -> std::optional<std::future<std::invoke_result_t<std::decay_t<F>>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (try_enqueue([task] { (*task)(); }) != EnqueueResult::kOk) return std::nullopt;
    return future;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  /// Configured submit-queue bound; 0 = unbounded.
  [[nodiscard]] std::size_t queue_capacity() const { return queue_capacity_; }
  /// Tasks currently waiting in the queue (excludes tasks being executed).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Drain-then-stop: marks the pool stopping (submit() from any thread
  /// now throws), lets the workers run every task already queued, then
  /// joins them. Idempotent and safe to race with concurrent submitters —
  /// each racing submit() either enqueues before the stop (its future
  /// resolves) or throws. The destructor calls this.
  void shutdown();

 private:
  enum class EnqueueResult { kOk, kFull, kStopping };

  void enqueue(std::function<void()> task);
  EnqueueResult try_enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::mutex join_mutex_;  ///< serializes concurrent shutdown() joins
  std::size_t queue_capacity_ = 0;
  bool stopping_ = false;
};

/// Convenience wrapper: a process-wide pool sized to the hardware.
ThreadPool& global_pool();

/// parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace ooctree::util
