// Fixed-size thread pool with a blocking parallel_for, used by the benchmark
// harnesses to evaluate hundreds of independent scheduling instances.
//
// The pool follows the structured-parallelism idiom: parallel_for blocks
// until every index has been processed, so callers never observe detached
// work. Exceptions thrown by the body are captured and rethrown (first one
// wins) on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ooctree::util {

/// A fixed set of worker threads consuming a shared task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(i) for every i in [0, n), distributing dynamically in chunks.
  /// Blocks until all iterations are complete; rethrows the first exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience wrapper: a process-wide pool sized to the hardware.
ThreadPool& global_pool();

/// parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace ooctree::util
