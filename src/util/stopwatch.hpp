// Minimal wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace ooctree::util {

/// Wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ooctree::util
