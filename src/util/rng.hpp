// Deterministic pseudo-random number utilities.
//
// All experiments in this repository must be exactly reproducible, so every
// random draw goes through an explicitly-seeded generator; nothing reads
// std::random_device behind the caller's back.
#pragma once

#include <cstdint>
#include <random>

namespace ooctree::util {

/// One step of the splitmix64 output function (Steele, Lea, Flood 2014):
/// a bijective avalanche mix of the full 64-bit state. Constexpr so seed
/// derivations can be pinned in tests and computed at compile time.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream id (e.g. a service seed and a request id). Two splitmix steps so
/// that nearby (seed, stream) pairs land far apart; the result depends only
/// on the two inputs, never on evaluation order — the contract that makes
/// batched runs reproducible regardless of thread scheduling.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  return splitmix64(splitmix64(seed) ^ splitmix64(stream + 0x632be59bd9b4e019ULL));
}

/// Deterministic 64-bit PRNG with convenience samplers.
///
/// Thin wrapper around std::mt19937_64 exposing only the distributions the
/// library needs. The wrapper keeps call sites short and guarantees that a
/// given (seed, call sequence) pair reproduces bit-identical streams across
/// platforms using the same standard library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n), n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform_real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std:: algorithms (e.g. shuffle).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator; used to hand one deterministic
  /// stream to each parallel worker without sharing state.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ooctree::util
