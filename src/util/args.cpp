#include "src/util/args.hpp"

#include <stdexcept>

namespace ooctree::util {

Args Args::parse(int argc, const char* const* argv) {
  Args out;
  if (argc > 0) out.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      const auto eq = tok.find('=');
      if (eq != std::string::npos) {
        out.options_[tok.substr(2, eq - 2)] = tok.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        out.options_[tok.substr(2)] = argv[++i];
      } else {
        out.options_[tok.substr(2)] = "";  // boolean flag
      }
    } else {
      out.positional_.push_back(tok);
    }
  }
  return out;
}

std::string Args::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects an integer, got '" + it->second + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + " expects a number, got '" + it->second + "'");
  }
}

}  // namespace ooctree::util
