// ASCII rendering of x/y series, used to print performance profiles in the
// terminal so the paper's figures can be eyeballed without a plotting stack.
#pragma once

#include <string>
#include <vector>

namespace ooctree::util {

/// One plotted series: a polyline of (x, y) points plus a display name.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling the character canvas.
struct PlotOptions {
  int width = 72;        ///< columns of the plotting area
  int height = 20;       ///< rows of the plotting area
  std::string x_label;   ///< printed under the x axis
  std::string y_label;   ///< printed above the plot
  double x_min = 0.0;    ///< left edge (x_max derived from data)
  double y_min = 0.0;    ///< bottom edge
  double y_max = 1.0;    ///< top edge (performance profiles live in [0,1])
};

/// Renders the series onto a character canvas. Each series is drawn with its
/// own glyph ('A', 'B', ...) and a legend is appended. Steps between points
/// are linearly interpolated; points outside the window are clamped.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series, const PlotOptions& opts);

}  // namespace ooctree::util
