#include "src/util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace ooctree::util {

CsvCell::CsvCell(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  text_ = os.str();
}

std::string CsvCell::quote(std::string_view s) {
  const bool needs_quote = s.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::initializer_list<std::string_view> header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  std::vector<std::string> cells;
  cells.reserve(header.size());
  for (const auto h : header) cells.emplace_back(h);
  write_row(cells);
}

void CsvWriter::row(std::initializer_list<CsvCell> cells) {
  std::vector<std::string> texts;
  texts.reserve(cells.size());
  for (const auto& c : cells) texts.push_back(c.text());
  write_row(texts);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace ooctree::util
