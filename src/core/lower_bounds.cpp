#include "src/core/lower_bounds.hpp"

#include <algorithm>

#include "src/core/homogeneous.hpp"
#include "src/core/minmem_optimal.hpp"

namespace ooctree::core {

Weight io_lower_bound_peak_gap(const Tree& tree, Weight memory) {
  return std::max<Weight>(0, opt_minmem_peak(tree, tree.root()) - memory);
}

Weight io_lower_bound_homogeneous(const Tree& tree, Weight memory) {
  return homogeneous_optimal_io(tree, memory);
}

}  // namespace ooctree::core
