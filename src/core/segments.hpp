// Hill-valley decomposition of memory profiles.
//
// Liu's normalized segment representation — hills strictly decreasing,
// valleys strictly increasing — underlies OptMinMem (minmem_optimal.cpp)
// and is useful on its own: it is the *compact certificate* of a
// traversal's memory behaviour (paper, Section 3.2). Cutting a schedule at
// its normalized valleys yields exactly the positions where pausing the
// subtree to run something else is potentially profitable.
#pragma once

#include <utility>
#include <vector>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// One normalized segment of a memory profile.
struct ProfileSegment {
  Weight hill = 0;        ///< maximum resident memory within the segment
  Weight valley = 0;      ///< resident memory at the segment's end
  std::size_t end = 0;    ///< exclusive schedule index where the segment ends
};

/// Canonical hill-valley decomposition of `schedule`'s in-core memory
/// profile: hills strictly decrease, valleys strictly increase, the last
/// segment ends at schedule.size() with valley = w(root). Throws on
/// non-topological schedules.
[[nodiscard]] std::vector<ProfileSegment> hill_valley_decomposition(const Tree& tree,
                                                                    const Schedule& schedule);

/// Convenience: (hill, valley) pairs only.
[[nodiscard]] std::vector<std::pair<Weight, Weight>> hill_valley_pairs(const Tree& tree,
                                                                       const Schedule& schedule);

}  // namespace ooctree::core
