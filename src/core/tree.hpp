// Task-tree data structure for out-of-core tree scheduling (RR-9025 model).
//
// A Tree is a rooted in-tree: every node i produces one output datum of
// size weight(i) consumed by its parent. Executing node i requires the
// output of all its children plus its own output to be in main memory, a
// transient requirement of wbar(i) = max(weight(i), sum of children
// weights). Trees are immutable after construction; algorithms that rewrite
// trees (node expansion, subtree extraction) build new Tree objects and
// return index maps back to the original nodes.
//
// Storage: the six per-node arrays live in one contiguous arena behind a
// TreeStorage backend (core/tree_storage.hpp) — OwnedStorage (heap arena,
// one allocation) or MappedStorage (read-only mmap of a .otree snapshot,
// core/snapshot.hpp). Copying a Tree shares the storage (O(1)); the only
// mutation path, TreeBuilder, promotes shared or mapped storage to a
// private writable arena first (copy-on-write), so the backend is
// unobservable through this API.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ooctree::core {

/// Node index inside a Tree; nodes are numbered 0..size()-1.
using NodeId = std::int32_t;

/// Size of a node's output datum, in abstract memory units (paper: integer
/// units such as kilobytes or pages).
using Weight = std::int64_t;

/// Sentinel parent of the root node.
inline constexpr NodeId kNoNode = -1;

/// Transient-memory model: how much memory executing a node needs.
///
/// The paper (RR-9025) assumes the inputs are overwritten by the output,
/// so a task transiently needs max(inputs, output). Liu's original
/// pebbling model — and solvers that assemble the front next to the
/// children's contribution blocks — need inputs *and* output live at once.
/// Every algorithm in this library is generic in the choice: it only
/// enters through wbar().
enum class MemoryModel : std::uint8_t {
  kMaxInOut,  ///< wbar(i) = max(w_i, sum of children weights)   [the paper]
  kSumInOut,  ///< wbar(i) = w_i + sum of children weights       [Liu 1987]
};

class TreeStorage;  // arena backend, core/tree_storage.hpp

/// Pointer bundle into a storage arena (structure-of-arrays). The pointers
/// alias the backend's arena and are valid exactly as long as the
/// TreeStorage that handed them out. For a MappedStorage the memory is
/// read-only; only TreeBuilder writes, and only after promoting the tree
/// to a private OwnedStorage.
struct TreeArrays {
  NodeId* parent = nullptr;
  Weight* weight = nullptr;
  std::int64_t* child_offset = nullptr;  ///< nodes + 1 entries (CSR offsets)
  NodeId* child_list = nullptr;          ///< nodes - 1 entries (CSR adjacency)
  Weight* child_sum = nullptr;
  Weight* wbar = nullptr;
};

/// Immutable rooted in-tree of weighted tasks.
class Tree {
 public:
  /// Builds a tree from a parent array (parent[root] == kNoNode) and output
  /// data sizes. Throws std::invalid_argument when the arrays do not
  /// describe a single rooted tree, when a weight is negative, or when the
  /// two arrays differ in length. The arena is allocated in one shot,
  /// sized exactly to the tree.
  static Tree from_parents(std::vector<NodeId> parent, std::vector<Weight> weight,
                           MemoryModel model = MemoryModel::kMaxInOut);

  Tree(const Tree&) = default;             // shares the storage arena (O(1))
  Tree& operator=(const Tree&) = default;  // shares the storage arena (O(1))
  Tree(Tree&& other) noexcept;             // leaves `other` empty (size() == 0)
  Tree& operator=(Tree&& other) noexcept;
  ~Tree() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] NodeId root() const { return root_; }

  [[nodiscard]] Weight weight(NodeId i) const { return arrays_.weight[idx(i)]; }
  [[nodiscard]] NodeId parent(NodeId i) const { return arrays_.parent[idx(i)]; }

  /// Children of i, ordered by increasing node id.
  [[nodiscard]] std::span<const NodeId> children(NodeId i) const {
    const auto b = static_cast<std::size_t>(arrays_.child_offset[idx(i)]);
    const auto e = static_cast<std::size_t>(arrays_.child_offset[idx(i) + 1]);
    return {arrays_.child_list + b, e - b};
  }

  [[nodiscard]] bool is_leaf(NodeId i) const { return children(i).empty(); }
  [[nodiscard]] std::size_t num_children(NodeId i) const { return children(i).size(); }

  /// Sum of the children's output sizes (the input volume of node i).
  [[nodiscard]] Weight child_weight_sum(NodeId i) const { return arrays_.child_sum[idx(i)]; }

  /// Transient memory needed to execute i in isolation; the formula
  /// depends on the tree's MemoryModel (see enum above).
  [[nodiscard]] Weight wbar(NodeId i) const { return arrays_.wbar[idx(i)]; }

  /// The memory model this tree was built with.
  [[nodiscard]] MemoryModel memory_model() const { return model_; }

  /// The same tree under the other transient-memory model.
  [[nodiscard]] Tree with_memory_model(MemoryModel model) const;

  /// Largest wbar over all nodes: the minimum memory bound LB for which the
  /// tree is processable at all (paper, Section 6.1).
  [[nodiscard]] Weight min_feasible_memory() const { return max_wbar_; }

  /// Total weight of all outputs (an upper bound on any resident set).
  [[nodiscard]] Weight total_weight() const { return total_weight_; }

  /// True when this tree reads from a read-only mapped snapshot rather
  /// than an owned heap arena (diagnostics; the backends behave
  /// identically through this API).
  [[nodiscard]] bool is_mapped() const;

  /// Nodes of the subtree rooted at r in depth-first postorder: every node
  /// appears after all of its descendants; r is last. Children are visited
  /// in stored (increasing-id) order. Iterative — safe on deep chains.
  [[nodiscard]] std::vector<NodeId> postorder(NodeId r) const;

  /// Postorder of the whole tree (root() is the last element).
  [[nodiscard]] std::vector<NodeId> postorder() const { return postorder(root_); }

  /// Number of nodes in the subtree rooted at r.
  [[nodiscard]] std::size_t subtree_size(NodeId r) const;

  /// Extracts the subtree rooted at r as a standalone Tree. When old_ids is
  /// non-null it receives, for each new node index, the corresponding node
  /// id in this tree.
  [[nodiscard]] Tree subtree(NodeId r, std::vector<NodeId>* old_ids = nullptr) const;

  /// Depth of the tree: number of nodes on the longest root-to-leaf path.
  [[nodiscard]] std::size_t depth() const;

  /// True when every node has weight 1 (the homogeneous case of Section 4.2).
  [[nodiscard]] bool is_homogeneous() const;

  /// Canonical 64-bit hash of the tree: a splitmix-chained digest of the
  /// logical content (size, memory model, and every node's parent and
  /// weight), independent of how the Tree was materialized — from_parents,
  /// TreeBuilder amendments, subtree extraction, a file round-trip or a
  /// mapped snapshot all hash equal for equal trees. Schedules and I/O
  /// functions refer to node ids, so the hash deliberately distinguishes
  /// renumberings of isomorphic trees: equal hash means cached plans apply
  /// verbatim. This is the tree component of the planning-service cache
  /// key (src/service/).
  [[nodiscard]] std::uint64_t canonical_hash() const;

  /// Multi-line human-readable rendering (small trees; for debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  friend class TreeBuilder;  // in-place structural amendments (tree_builder.hpp)
  friend void save_snapshot(const std::string& path, const Tree& tree);  // core/snapshot.hpp
  friend Tree load_snapshot(const std::string& path);                    // core/snapshot.hpp

  Tree() = default;
  static std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

  /// Guarantees a private, writable arena with room for at least
  /// `min_capacity` nodes, cloning (copy-on-write) or growing (capacity
  /// doubling, amortized O(1) appends) as needed, and refreshes the
  /// mirrored array pointers. The TreeBuilder mutation gate.
  void ensure_owned(std::size_t min_capacity);

  std::shared_ptr<TreeStorage> storage_;
  TreeArrays arrays_;  ///< mirror of storage_->arrays() for 1-hop access
  std::size_t size_ = 0;
  NodeId root_ = kNoNode;
  Weight max_wbar_ = 0;
  Weight total_weight_ = 0;
  MemoryModel model_ = MemoryModel::kMaxInOut;
};

/// Convenience builder used heavily in tests: nodes are given as
/// (parent, weight) pairs in index order.
[[nodiscard]] Tree make_tree(const std::vector<std::pair<NodeId, Weight>>& nodes);

}  // namespace ooctree::core
