// The paper's novel heuristics FULLRECEXPAND and RECEXPAND (Section 5,
// Algorithm 2).
//
// Idea: run OptMinMem; when its traversal of a subtree needs more than M,
// the FiF policy identifies a datum that must be (partially) written out.
// That I/O is *forced into the tree* by expanding the node (Figure 3), so
// subsequent OptMinMem runs are aware of it. Subtrees are processed bottom
// up; at each node the expand-and-retry loop runs until the subtree fits in
// memory (FullRecExpand) or at most `max_expansions_per_node` times
// (RecExpand — the paper's variant exits after 2 iterations).
//
// The final schedule is OptMinMem on the fully expanded tree, mapped back
// to the original nodes; by Theorem 1 its FiF evaluation never exceeds the
// total expanded volume.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "src/core/expansion.hpp"
#include "src/core/fif_simulator.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Which FiF-positive node to expand at each iteration. The paper selects
/// the node whose parent is scheduled latest; the alternatives exist for
/// the ablation study (bench_ablation_victim).
enum class VictimRule : std::uint8_t {
  kLatestParent,   ///< the paper's rule (Algorithm 2, line 6)
  kEarliestParent, ///< opposite extreme
  kLargestIo,      ///< node with the largest FiF write amount
  kFirstScheduled, ///< earliest-produced datum with positive tau
};

/// Tuning knobs for the RecExpand family.
struct RecExpandOptions {
  /// Maximum expand-and-retry iterations of the while loop per node.
  /// Paper: infinity for FullRecExpand, 2 for RecExpand.
  std::size_t max_expansions_per_node = std::numeric_limits<std::size_t>::max();

  /// Expansion victim selection rule.
  VictimRule victim_rule = VictimRule::kLatestParent;

  /// Safety valve: total expansions across the whole run. FullRecExpand's
  /// loop count is not polynomially bounded (Section 5), so a cap keeps
  /// adversarial inputs from running away; the result stays a valid
  /// traversal because the mapped schedule is re-evaluated with FiF.
  std::size_t global_expansion_cap = std::numeric_limits<std::size_t>::max();
};

/// Result of a RecExpand run.
struct RecExpandResult {
  Schedule schedule;              ///< schedule on the original tree
  FifResult evaluation;           ///< FiF evaluation of `schedule` under M
  Weight expansion_volume = 0;    ///< sum of all expansion amounts
  std::size_t expansions = 0;     ///< number of expansions performed
  Weight final_peak = 0;          ///< OptMinMem peak of the final expanded tree
};

/// Runs the heuristic with the given options.
///
/// Uses the incremental expansion engine: node expansions are applied in
/// place (TreeBuilder), each node's normalized segment sequence is cached
/// between expand-and-retry iterations (IncrementalMinMem) so only the
/// victim's ancestor path is recombined, and the per-iteration FiF runs
/// directly on the expanded subtree without extracting a standalone Tree.
/// Amortized near-linear in (nodes + expansions · subtree size) instead of
/// the reference path's full O(n) rebuild + OptMinMem rerun per expansion.
/// Produces bit-identical schedules, I/O volumes and peaks to
/// rec_expand_reference (enforced by test_expansion_incremental.cpp).
[[nodiscard]] RecExpandResult rec_expand(const Tree& tree, Weight memory,
                                         const RecExpandOptions& options);

/// Same heuristic with the memory-independent subtree peaks precomputed by
/// the caller. `orig_peaks` must be exactly opt_minmem_all_peaks(tree) —
/// the overload exists so a batch of runs over one tree at different
/// memory bounds (service-layer fusion) shares that bottom-up pass; passing
/// anything else silently changes which subtrees are skipped. Throws
/// std::invalid_argument when the size does not match the tree. The 3-arg
/// overload delegates here, so results are identical by construction.
[[nodiscard]] RecExpandResult rec_expand(const Tree& tree, Weight memory,
                                         const RecExpandOptions& options,
                                         const std::vector<Weight>& orig_peaks);

/// The pre-incremental implementation: per iteration, extracts the subtree
/// as a standalone Tree, reruns OptMinMem from scratch and rebuilds the
/// whole expanded tree through Tree::from_parents. Quadratic-plus; retained
/// as the differential-testing oracle and as the baseline the scaling bench
/// (bench_recexpand_scaling) measures speedups against.
[[nodiscard]] RecExpandResult rec_expand_reference(const Tree& tree, Weight memory,
                                                   const RecExpandOptions& options);

/// FULLRECEXPAND: unbounded per-node loop.
[[nodiscard]] inline RecExpandResult full_rec_expand(const Tree& tree, Weight memory) {
  return rec_expand(tree, memory, RecExpandOptions{});
}

/// RECEXPAND: per-node loop capped at 2 iterations (paper, end of Sec. 5).
[[nodiscard]] inline RecExpandResult rec_expand2(const Tree& tree, Weight memory) {
  RecExpandOptions o;
  o.max_expansions_per_node = 2;
  return rec_expand(tree, memory, o);
}

}  // namespace ooctree::core
