// Schedules, I/O functions and traversal validity (paper, Section 3.1).
//
// A *traversal* is a pair (sigma, tau): sigma is a topological execution
// order of the tree's nodes, and tau(i) in [0, w_i] is the amount of node
// i's output written to disk right after i completes (and read back right
// before its parent executes). Only writes are counted as I/O. This header
// provides the validity conditions of Section 3.1 verbatim, plus the
// in-core peak-memory evaluation used by the MinMem algorithms.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/tree.hpp"

namespace ooctree::core {

/// Execution order: schedule[t] is the node computed at step t.
using Schedule = std::vector<NodeId>;

/// I/O function: tau[i] units of node i's output are written to disk.
using IoFunction = std::vector<Weight>;

/// A complete solution to MinIO.
struct Traversal {
  Schedule schedule;
  IoFunction io;

  /// Total written volume (the MinIO objective).
  [[nodiscard]] Weight io_volume() const {
    Weight v = 0;
    for (const Weight t : io) v += t;
    return v;
  }
};

/// True when `schedule` is a permutation of all nodes that executes every
/// node before its parent.
[[nodiscard]] bool is_topological_order(const Tree& tree, const Schedule& schedule);

/// Checks the three validity conditions of Section 3.1 for (schedule, io)
/// under memory bound M. Returns std::nullopt when valid, otherwise a
/// human-readable description of the first violated condition.
[[nodiscard]] std::optional<std::string> validate_traversal(const Tree& tree,
                                                            const Schedule& schedule,
                                                            const IoFunction& io, Weight memory);

/// Peak memory of a schedule executed fully in core (no I/O): the largest
/// value over steps t of  (resident outputs not consumed yet) + wbar(node).
/// This is the MinMem objective for the given order.
[[nodiscard]] Weight peak_memory(const Tree& tree, const Schedule& schedule);

/// Per-step resident memory profile of an in-core execution: profile[t] is
/// the memory in use while executing schedule[t] (active data + wbar).
[[nodiscard]] std::vector<Weight> memory_profile(const Tree& tree, const Schedule& schedule);

/// Position of each node in the schedule: position[i] = t iff schedule[t]==i.
[[nodiscard]] std::vector<std::size_t> schedule_positions(const Tree& tree,
                                                          const Schedule& schedule);

}  // namespace ooctree::core
