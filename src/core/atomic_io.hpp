// MinIO with *atomic* writes — the variant the paper departs from.
//
// Jacquelin et al. [3] studied the same out-of-core model with the
// restriction that a datum is either kept in memory or written to disk
// *wholly* (tau(i) in {0, w_i}) and proved that variant NP-complete by
// reduction from Partition. The present paper relaxes it to partial writes
// (paging), which is what core/fif_simulator.hpp implements. This module
// provides the atomic variant so the two models can be compared:
//
//   * simulate_atomic — runs a schedule under a memory bound with
//     whole-datum evictions, victim chosen by a pluggable rule (FiF and
//     three classical alternatives);
//   * brute_force_min_io_atomic — the exact optimum on small trees, by
//     exhausting (schedule, spill-set) pairs;
//   * atomic heuristic strategies mirroring the fractional ones.
//
// Invariants linking the models (all tested): the fractional optimum lower
// bounds the atomic optimum, the two coincide on homogeneous trees, and an
// atomic execution is a valid traversal in the Section 3.1 sense.
#pragma once

#include <optional>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Victim rules for whole-datum eviction.
enum class AtomicVictimRule : std::uint8_t {
  kFurthestInFuture,  ///< parent scheduled latest (FiF transposed)
  kSmallestSufficient,///< smallest datum that alone covers the deficit
  kLargest,           ///< largest resident datum
  kSmallest,          ///< smallest resident datum
};

/// Result of an atomic-eviction simulation.
struct AtomicIoResult {
  bool feasible = false;     ///< false if no eviction set can make a step fit
  Weight io_volume = 0;      ///< sum of spilled data sizes
  IoFunction io;             ///< tau(i) in {0, w_i}
  std::int64_t spills = 0;   ///< number of whole-datum writes
};

/// Runs `schedule` under `memory` evicting whole data only. Unlike the
/// fractional case, a step can be infeasible even when wbar fits: the
/// resident set may not contain any subset whose eviction frees enough
/// room... it always does (evict everything), so feasibility matches the
/// fractional case; what changes is the volume. Throws on non-topological
/// schedules.
[[nodiscard]] AtomicIoResult simulate_atomic(const Tree& tree, const Schedule& schedule,
                                             Weight memory,
                                             AtomicVictimRule rule = AtomicVictimRule::kFurthestInFuture);

/// Exact atomic optimum on small trees: minimizes over all topological
/// orders and all spill sets. Guarded by `max_nodes` (default 9: the
/// search is orders x 2^(n-1) validity checks).
struct AtomicBruteForceResult {
  Weight io_volume = 0;
  Schedule schedule;
  IoFunction io;
};
[[nodiscard]] AtomicBruteForceResult brute_force_min_io_atomic(const Tree& tree, Weight memory,
                                                               std::size_t max_nodes = 9);

/// Heuristic for the atomic problem: evaluates the three cheap fractional
/// strategies' schedules under atomic FiF eviction and returns the best.
[[nodiscard]] AtomicIoResult atomic_heuristic(const Tree& tree, Weight memory);

}  // namespace ooctree::core
