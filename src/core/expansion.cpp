#include "src/core/expansion.hpp"

#include <stdexcept>

#include "src/core/minmem_optimal.hpp"
#include "src/core/tree_builder.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

ExpandedTree ExpandedTree::identity(Tree t) {
  ExpandedTree out{std::move(t), {}, {}, 0};
  out.origin.resize(out.tree.size());
  for (std::size_t k = 0; k < out.tree.size(); ++k) out.origin[k] = static_cast<NodeId>(k);
  out.role.assign(out.tree.size(), ExpansionRole::kCompute);
  return out;
}

std::pair<NodeId, NodeId> ExpandedTree::expand_in_place(NodeId i, Weight tau) {
  // Validate before adopting the tree: once it is moved into the builder a
  // throw would leave *this with a moved-from tree and stale origin/role.
  if (i < 0 || idx(i) >= tree.size()) throw std::invalid_argument("expand: bad node id");
  if (tau < 0 || tau > tree.weight(i)) throw std::invalid_argument("expand: tau out of range");
  TreeBuilder builder(std::move(tree));
  const auto [i2, i3] = builder.expand(i, tau);
  tree = builder.take();
  origin.push_back(origin[idx(i)]);
  origin.push_back(origin[idx(i)]);
  // The expanded node keeps its role (a kShrunk node can be re-expanded:
  // its i1 part remains kShrunk — it still performs no new computation).
  role.push_back(ExpansionRole::kShrunk);
  role.push_back(ExpansionRole::kRestored);
  expansion_volume += tau;
  return {i2, i3};
}

void ExpandedTree::expand_all(const IoFunction& io) {
  if (io.size() != tree.size()) throw std::invalid_argument("expand_all: bad io length");
  // Validate the whole batch before adopting the tree, so a bad tau cannot
  // leave *this half-expanded with a moved-from tree. Non-positive entries
  // are skipped below, matching the historical schedule_from_io loop.
  for (std::size_t k = 0; k < io.size(); ++k)
    if (io[k] > tree.weight(static_cast<NodeId>(k)))
      throw std::invalid_argument("expand_all: tau out of range");
  TreeBuilder builder(std::move(tree));
  for (std::size_t k = 0; k < io.size(); ++k) {
    if (io[k] <= 0) continue;
    // Node ids below the original size are stable across expansions (new
    // nodes are appended), so expanding in index order is safe.
    builder.expand(static_cast<NodeId>(k), io[k]);
    origin.push_back(origin[k]);
    origin.push_back(origin[k]);
    role.push_back(ExpansionRole::kShrunk);
    role.push_back(ExpansionRole::kRestored);
    expansion_volume += io[k];
  }
  tree = builder.take();
}

ExpandedTree ExpandedTree::expand(NodeId i, Weight tau) const {
  ExpandedTree out = *this;
  out.expand_in_place(i, tau);
  return out;
}

ExpandedTree ExpandedTree::expand_rebuild(NodeId i, Weight tau) const {
  if (i < 0 || idx(i) >= tree.size()) throw std::invalid_argument("expand: bad node id");
  if (tau < 0 || tau > tree.weight(i)) throw std::invalid_argument("expand: tau out of range");

  const auto n = tree.size();
  // New ids: old node k keeps id k; i stays i1 (kCompute keeps its old
  // children); i2 = n, i3 = n + 1 take over upward edges.
  std::vector<NodeId> parent(n + 2, kNoNode);
  std::vector<Weight> weight(n + 2, 0);
  for (std::size_t k = 0; k < n; ++k) {
    parent[k] = tree.parent(static_cast<NodeId>(k));
    weight[k] = tree.weight(static_cast<NodeId>(k));
  }
  const auto i2 = static_cast<NodeId>(n);
  const auto i3 = static_cast<NodeId>(n + 1);
  parent[idx(i3)] = tree.parent(i);  // i3 replaces i below i's parent
  parent[idx(i2)] = i3;
  parent[idx(i)] = i2;
  weight[idx(i2)] = tree.weight(i) - tau;
  weight[idx(i3)] = tree.weight(i);

  std::vector<NodeId> new_origin = origin;
  new_origin.push_back(origin[idx(i)]);
  new_origin.push_back(origin[idx(i)]);
  std::vector<ExpansionRole> new_role = role;
  new_role.push_back(ExpansionRole::kShrunk);
  new_role.push_back(ExpansionRole::kRestored);
  return ExpandedTree{Tree::from_parents(std::move(parent), std::move(weight), tree.memory_model()),
                      std::move(new_origin), std::move(new_role), expansion_volume + tau};
}

Schedule ExpandedTree::map_schedule(const Schedule& expanded_schedule) const {
  Schedule out;
  out.reserve(expanded_schedule.size());
  for (const NodeId k : expanded_schedule)
    if (role[idx(k)] == ExpansionRole::kCompute) out.push_back(origin[idx(k)]);
  return out;
}

std::optional<Schedule> schedule_from_io(const Tree& tree, const IoFunction& io, Weight memory) {
  if (io.size() != tree.size()) throw std::invalid_argument("schedule_from_io: bad io length");
  ExpandedTree expanded = ExpandedTree::identity(tree);
  expanded.expand_all(io);
  OptMinMemResult opt = opt_minmem(expanded.tree);
  if (opt.peak > memory) return std::nullopt;
  return expanded.map_schedule(opt.schedule);
}

}  // namespace ooctree::core
