// Runtime invariant auditor — the assertion layer of the correctness
// tooling (TSan preset + clang-tidy gate + this file, see
// docs/ARCHITECTURE.md "Correctness tooling").
//
// Two tiers share one throwing checker:
//   * explicit audit() methods — EvictionIndex::audit(),
//     ResultCache::audit(), PlanService::audit() — are compiled
//     unconditionally. They are O(state) consistency sweeps a test calls at
//     a point of quiescence, in every preset.
//   * implicit engine audits — the conservation / write-at-most-once /
//     transactional-start checks inside run_pager and
//     simulate_parallel_paged — go through OOCTREE_AUDIT_CHECK, which
//     compiles to nothing unless the build defines OOCTREE_AUDIT (the dev
//     preset does; release and the benches stay zero-cost).
//
// A failed check throws AuditError, never aborts: the gtest suites assert
// both directions (clean engines never throw; fault-injected engines must).
// Every executed check also bumps a process-wide relaxed counter,
// audit_checks_executed(), so a test can prove the audit paths actually ran
// rather than silently compiling out — the dev-preset acceptance gate.
//
// Fault injection. When OOCTREE_AUDIT is on, the components above expose
// test-only fault flags (ooctree::core::fault) that re-introduce the exact
// accounting-bug classes PR 3 fixed — failed starts charging I/O, the
// transient working space left unreserved, a corrupted eviction live-count.
// tests/test_audit.cpp flips each flag and demands the auditor catches it;
// FaultGuard restores the flags on scope exit so a throwing test never
// leaks a fault into later tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#if defined(OOCTREE_AUDIT) && OOCTREE_AUDIT
#define OOCTREE_AUDIT_ENABLED 1
#else
#define OOCTREE_AUDIT_ENABLED 0
#endif

namespace ooctree::core {

/// Thrown (never aborts) when an invariant audit fails.
class AuditError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace audit_detail {
inline std::atomic<std::uint64_t> checks_executed{0};
}  // namespace audit_detail

/// Process-wide count of audit checks executed so far (explicit audit()
/// calls and, under OOCTREE_AUDIT, the in-engine checks). Monotonic,
/// relaxed; tests diff it around a call to prove the audit paths ran.
[[nodiscard]] inline std::uint64_t audit_checks_executed() {
  return audit_detail::checks_executed.load(std::memory_order_relaxed);
}

/// Records one executed check and throws AuditError when it does not hold.
inline void audit_check(bool ok, const char* what) {
  audit_detail::checks_executed.fetch_add(1, std::memory_order_relaxed);
  if (!ok) throw AuditError(std::string("audit failed: ") + what);
}

#if OOCTREE_AUDIT_ENABLED
/// Test-only fault flags (audit builds only): each non-zero value
/// re-introduces a historical accounting bug so tests can prove the
/// auditor detects that bug class. Atomics because the stress suites run
/// services concurrently in the same process; fault tests themselves are
/// single-threaded and reset the flags via FaultGuard.
namespace fault {
/// 1 = EvictionIndex::erase() corrupts the live count (decrements it but
/// leaves the entry's version live), the bookkeeping drift audit() exists
/// to catch.
inline std::atomic<int> eviction_index{0};
/// 1 = run_pager does not reserve the transient working space of a step
/// (the PR 3 "head-room not allocated" seed bug).
inline std::atomic<int> pager{0};
/// Bitmask for simulate_parallel_paged: 1 = a failed transactional start
/// still charges io_volume (the PR 3 "failed starts charge I/O" seed bug);
/// 2 = task completion leaks one frame of its reservation. Disk-pipeline
/// bug classes (PR 10): 4 = eviction ignores write-queue backpressure, so
/// pending writes overflow write_queue_depth slots; 8 = prefetch sizes its
/// read from the datum's full page count, re-fetching pages that are
/// already resident; 16 = a disk transfer completes earlier than the
/// serial device timeline allows (double-booked bandwidth).
inline std::atomic<int> parallel_engine{0};
}  // namespace fault

/// RAII reset of every fault flag — fault tests hold one so an
/// EXPECT_THROW that fires (or fails to) cannot poison later tests.
class FaultGuard {
 public:
  FaultGuard() = default;
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
  ~FaultGuard() {
    fault::eviction_index.store(0);
    fault::pager.store(0);
    fault::parallel_engine.store(0);
  }
};
#endif  // OOCTREE_AUDIT_ENABLED

}  // namespace ooctree::core

/// In-engine audit check: active only in OOCTREE_AUDIT builds; compiles to
/// nothing (condition unevaluated) otherwise.
#if OOCTREE_AUDIT_ENABLED
#define OOCTREE_AUDIT_CHECK(cond, what) ::ooctree::core::audit_check((cond), (what))
#else
#define OOCTREE_AUDIT_CHECK(cond, what) ((void)0)
#endif
