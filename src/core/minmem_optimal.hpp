// Optimal peak-memory tree traversal (Liu 1987), the paper's OPTMINMEM.
//
// Liu's generalized pebbling result, adapted to this memory model in
// Jacquelin et al. (IPDPS'11): the optimal traversal of a subtree can be
// represented as a normalized sequence of *hill-valley segments*
//   (h_1, v_1), ..., (h_k, v_k)   with  h_1 > h_2 > ... and v_1 < v_2 < ...,
// where h_t is the peak reached during segment t and v_t the resident
// memory when the segment ends (the last valley is the subtree root's
// output size). Combining the children of a node interleaves their segment
// sequences in non-increasing (h - v) order — optimal by the interleaving
// lemma (paper, Theorem 3) — after which the node's own execution step
// (wbar, w) is appended and the sequence re-normalized.
//
// The implementation is iterative over a postorder (no recursion: 40k-node
// chains must not overflow the call stack) and carries schedule chunks in
// spliceable lists so segment merges cost O(1).
#pragma once

#include <utility>
#include <vector>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Result of the optimal MinMem computation.
struct OptMinMemResult {
  Schedule schedule;  ///< a traversal achieving the optimal peak
  Weight peak = 0;    ///< the minimum achievable peak memory

  /// Normalized hill-valley decomposition of the returned traversal
  /// (absolute memory values; hills strictly decreasing, valleys strictly
  /// increasing). Exposed for tests and for the RecExpand heuristic.
  std::vector<std::pair<Weight, Weight>> segments;
};

/// Computes the optimal peak-memory traversal of the subtree rooted at
/// `root`.
[[nodiscard]] OptMinMemResult opt_minmem(const Tree& tree, NodeId root);

/// Whole-tree overload.
[[nodiscard]] inline OptMinMemResult opt_minmem(const Tree& tree) {
  return opt_minmem(tree, tree.root());
}

/// The optimal peak only (same cost, skips schedule assembly bookkeeping).
[[nodiscard]] Weight opt_minmem_peak(const Tree& tree, NodeId root);

/// Optimal peaks of *every* subtree in a single bottom-up pass:
/// result[v] == opt_minmem_peak(tree, v). Peaks are monotone along the
/// tree (a parent's peak is at least each child's), which RecExpand uses
/// to skip subtrees that fit in memory.
[[nodiscard]] std::vector<Weight> opt_minmem_all_peaks(const Tree& tree);

}  // namespace ooctree::core
