// Optimal peak-memory tree traversal (Liu 1987), the paper's OPTMINMEM.
//
// Liu's generalized pebbling result, adapted to this memory model in
// Jacquelin et al. (IPDPS'11): the optimal traversal of a subtree can be
// represented as a normalized sequence of *hill-valley segments*
//   (h_1, v_1), ..., (h_k, v_k)   with  h_1 > h_2 > ... and v_1 < v_2 < ...,
// where h_t is the peak reached during segment t and v_t the resident
// memory when the segment ends (the last valley is the subtree root's
// output size). Combining the children of a node interleaves their segment
// sequences in non-increasing (h - v) order — optimal by the interleaving
// lemma (paper, Theorem 3) — after which the node's own execution step
// (wbar, w) is appended and the sequence re-normalized.
//
// The implementation is iterative over a postorder (no recursion: 40k-node
// chains must not overflow the call stack) and carries schedule chunks in
// spliceable lists so segment merges cost O(1).
#pragma once

#include <utility>
#include <vector>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Result of the optimal MinMem computation.
struct OptMinMemResult {
  Schedule schedule;  ///< a traversal achieving the optimal peak
  Weight peak = 0;    ///< the minimum achievable peak memory

  /// Normalized hill-valley decomposition of the returned traversal
  /// (absolute memory values; hills strictly decreasing, valleys strictly
  /// increasing). Exposed for tests and for the RecExpand heuristic.
  std::vector<std::pair<Weight, Weight>> segments;
};

/// Computes the optimal peak-memory traversal of the subtree rooted at
/// `root`.
[[nodiscard]] OptMinMemResult opt_minmem(const Tree& tree, NodeId root);

/// Whole-tree overload.
[[nodiscard]] inline OptMinMemResult opt_minmem(const Tree& tree) {
  return opt_minmem(tree, tree.root());
}

/// The optimal peak only (same cost, skips schedule assembly bookkeeping).
[[nodiscard]] Weight opt_minmem_peak(const Tree& tree, NodeId root);

/// Optimal peaks of *every* subtree in a single bottom-up pass:
/// result[v] == opt_minmem_peak(tree, v). Peaks are monotone along the
/// tree (a parent's peak is at least each child's), which RecExpand uses
/// to skip subtrees that fit in memory.
[[nodiscard]] std::vector<Weight> opt_minmem_all_peaks(const Tree& tree);

/// Incremental OptMinMem over a growing tree — the engine behind the
/// near-linear RecExpand path (rec_expand.cpp).
///
/// The engine caches, per node, the normalized hill-valley sequence of its
/// subtree's optimal traversal. Schedule chunks are intrusive linked lists
/// threaded through a single next[] arena indexed by NodeId (every node
/// occurs in exactly one chunk chain), so merging two segments is one
/// pointer write and materializing a subtree's schedule is a plain list
/// walk — no per-segment allocations at all.
///
/// combine(u) is *non-consuming*: it reads the children's cached sequences
/// by value, so a later recombination of u (after the tree changed below
/// it) only has to redo u itself. After an expansion, RecExpand recombines
/// exactly the two new nodes plus the victim's ancestor path — amortized
/// O(depth) instead of a full opt_minmem rerun.
///
/// Consistency contract: combine(u) may relink chunk-chain tails belonging
/// to u's descendants, which invalidates the *materialized order* cached by
/// any ancestor of u combined earlier. Callers must therefore recombine
/// bottom-up along the dirty path, and only extract schedules at nodes none
/// of whose ancestors have been combined since their own last combine —
/// both naturally true for RecExpand's bottom-up processing.
class IncrementalMinMem {
 public:
  /// One cached normalized segment: peak within the segment, resident
  /// memory at its end, and the [head, tail] chunk chain of nodes it
  /// executes (threaded through the next[] arena).
  struct Segment {
    Weight hill = 0;
    Weight valley = 0;
    NodeId head = kNoNode;
    NodeId tail = kNoNode;
  };

  /// Grows the per-node storage to at least `n` nodes (grow-only; call
  /// after the tree gained nodes).
  void reserve(std::size_t n);

  /// True when u has a cached sequence.
  [[nodiscard]] bool has(NodeId u) const {
    return static_cast<std::size_t>(u) < valid_.size() && valid_[static_cast<std::size_t>(u)];
  }

  /// (Re)combines u's sequence from its children's cached sequences, which
  /// must all be valid. With `release_children` the children's sequences
  /// are freed afterwards (one-shot mode used by opt_minmem; single-child
  /// chains reuse the child's storage by move).
  void combine(const Tree& tree, NodeId u, bool release_children = false);

  /// Combines every not-yet-cached node of subtree(r), bottom-up; nodes
  /// with a valid cache are skipped without descending into them (their
  /// whole subtree is guaranteed cached). O(newly combined nodes).
  void ensure(const Tree& tree, NodeId r);

  /// Optimal peak of subtree(u); requires has(u).
  [[nodiscard]] Weight peak(NodeId u) const;

  /// The cached normalized sequence of u; requires has(u).
  [[nodiscard]] const std::vector<Segment>& sequence(NodeId u) const {
    return seq_[static_cast<std::size_t>(u)];
  }

  /// Appends subtree(u)'s optimal schedule to `out` (see the consistency
  /// contract above); requires has(u). O(subtree size).
  void extract_schedule(NodeId u, Schedule& out) const;

 private:
  std::vector<std::vector<Segment>> seq_;
  std::vector<NodeId> next_;  // chunk arena: successor of each node in its chain
  std::vector<char> valid_;
  // Scratch for combine(), reused across calls.
  struct Head {
    Weight key = 0;         // hill - valley of the child's next segment
    std::size_t child = 0;  // position within the children list
    std::size_t pos = 0;    // next segment within that child
    bool operator<(const Head& o) const {
      return key != o.key ? key < o.key : child > o.child;  // max-heap, stable tie-break
    }
  };
  std::vector<Head> heap_;
  std::vector<Weight> resident_;
  std::vector<std::pair<NodeId, std::size_t>> dfs_;
};

}  // namespace ooctree::core
