// Flat arena storage behind core::Tree (the million-node refactor).
//
// All six per-node arrays of a Tree — parent, weight, the children CSR
// (offsets + adjacency), child sums and wbar — live in ONE contiguous
// arena, in structure-of-arrays layout (the flat NodeIndex idiom of
// BigWorld's loose_octree). A TreeStorage owns that arena and hands out a
// TreeArrays pointer bundle; Tree mirrors the bundle for single-indirection
// hot-path access. Two backends implement the contract:
//
//   * OwnedStorage  — heap arena allocated in one shot, writable, with
//     node-capacity headroom so TreeBuilder's expansion appends are
//     amortized O(1) (growth reallocates the arena and doubles capacity,
//     exactly like the std::vector storage it replaced);
//   * MappedStorage — read-only view over an mmap'd .otree snapshot file
//     (core/snapshot.hpp): loading a tree is a single map, zero parsing,
//     and the page cache shares the bytes across processes.
//
// The backend is invisible through the Tree API: plans computed from a
// mapped tree are bit-identical to plans from an owned one (pinned by
// tests/test_snapshot.cpp). Mutation goes through Tree::ensure_owned,
// which promotes shared or mapped storage to a private OwnedStorage first
// (copy-on-write), so Tree copies stay O(1) and snapshots stay immutable.
//
// Arena layout for node capacity c (8-byte arrays first, so every array is
// naturally aligned inside an 8-aligned block):
//
//   weight       c   x Weight        child_offset c+1 x int64 (CSR offsets)
//   child_sum    c   x Weight        parent       c   x NodeId
//   wbar         c   x Weight        child_list   c   x NodeId (c-1 used)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/tree.hpp"

namespace ooctree::core {

// TreeArrays (the pointer bundle into a storage arena) lives in tree.hpp:
// Tree mirrors one by value for single-indirection access, so the struct
// must be complete there, while the backends below are only needed by the
// translation units that build or map storage.

/// Abstract arena backend. Immutable node capacity; the logical node count
/// lives in the owning Tree (a builder can fill headroom without touching
/// the storage object).
class TreeStorage {
 public:
  virtual ~TreeStorage() = default;
  TreeStorage(const TreeStorage&) = delete;
  TreeStorage& operator=(const TreeStorage&) = delete;

  [[nodiscard]] const TreeArrays& arrays() const { return arrays_; }

  /// Node slots the arena can hold (child_offset holds capacity()+1).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// True when the arena may be written through arrays() (OwnedStorage).
  [[nodiscard]] virtual bool writable() const = 0;

 protected:
  TreeStorage() = default;

  TreeArrays arrays_;
  std::size_t capacity_ = 0;
};

/// Heap arena, one allocation, writable. Today's (pre-refactor) behavior:
/// from_parents builds straight into one of these sized exactly n.
class OwnedStorage final : public TreeStorage {
 public:
  /// Uninitialized arena for `capacity` nodes (one allocation).
  explicit OwnedStorage(std::size_t capacity);

  /// Clone: copies the first `nodes` logical entries out of `src` into a
  /// fresh arena of `capacity` >= nodes slots (the copy-on-write /
  /// growth path of Tree::ensure_owned).
  OwnedStorage(const TreeArrays& src, std::size_t nodes, std::size_t capacity);

  ~OwnedStorage() override;

  [[nodiscard]] bool writable() const override { return true; }

  /// Bytes one arena of `capacity` node slots occupies.
  [[nodiscard]] static std::size_t arena_bytes(std::size_t capacity);

 private:
  void* block_ = nullptr;
};

/// Read-only view over a whole file mapped into memory (POSIX mmap; a
/// read-into-heap fallback keeps other platforms working). The mapping is
/// made by the constructor and held for the storage's lifetime; bind()
/// points the arrays at offsets computed by the snapshot loader once the
/// header has been validated.
class MappedStorage final : public TreeStorage {
 public:
  /// Maps `path` read-only. Throws std::runtime_error (naming the file) on
  /// open/stat/map failure or an empty file.
  explicit MappedStorage(const std::string& path);
  ~MappedStorage() override;

  [[nodiscard]] bool writable() const override { return false; }

  [[nodiscard]] const std::byte* data() const { return static_cast<const std::byte*>(base_); }
  [[nodiscard]] std::size_t length() const { return length_; }

  /// Installs the array pointers (into the mapped region) and the node
  /// capacity. Called exactly once by core::load_snapshot after header
  /// validation.
  void bind(const TreeArrays& arrays, std::size_t nodes);

 private:
  void* base_ = nullptr;
  std::size_t length_ = 0;
  bool heap_fallback_ = false;  ///< true when base_ is new[]'d, not mmap'd
};

}  // namespace ooctree::core
