// Uniform entry point over the four MinIO strategies the paper compares.
//
// Every strategy produces a schedule on the original tree; its I/O volume
// is the FiF evaluation of that schedule (optimal for the schedule by
// Theorem 1), so the comparison across strategies is apples-to-apples.
#pragma once

#include <string>
#include <vector>

#include "src/core/fif_simulator.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// The strategies evaluated in Section 6.
enum class Strategy {
  kPostOrderMinIo,  ///< best I/O postorder (Agullo)             — POSTORDERMINIO
  kOptMinMem,       ///< optimal peak-memory traversal + FiF     — OPTMINMEM
  kRecExpand,       ///< expansion heuristic, 2 iterations/node  — RECEXPAND
  kFullRecExpand,   ///< expansion heuristic, unbounded loop     — FULLRECEXPAND
};

/// Display name matching the paper.
[[nodiscard]] std::string strategy_name(Strategy s);

/// Inverse of strategy_name, case-insensitive, also accepting the short CLI
/// spellings (postorder | optminmem | recexpand | full | fullrecexpand).
/// Throws std::invalid_argument on unknown names. Shared by the example
/// CLIs and the service request decoder so every front-end speaks the same
/// vocabulary.
[[nodiscard]] Strategy strategy_from_name(const std::string& name);

/// All four strategies in the paper's plotting order.
[[nodiscard]] std::vector<Strategy> all_strategies();

/// The three cheap strategies used on the TREES dataset (the paper omits
/// FullRecExpand there because of its cost).
[[nodiscard]] std::vector<Strategy> cheap_strategies();

/// Outcome of one strategy on one instance.
struct StrategyOutcome {
  Strategy strategy;
  Schedule schedule;
  FifResult evaluation;  ///< FiF evaluation under the instance's memory bound

  [[nodiscard]] Weight io_volume() const { return evaluation.io_volume; }
};

/// Runs one strategy on (tree, memory).
[[nodiscard]] StrategyOutcome run_strategy(Strategy s, const Tree& tree, Weight memory);

}  // namespace ooctree::core
