#include "src/core/homogeneous.hpp"

#include <algorithm>
#include <stdexcept>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

HomogeneousLabels homogeneous_labels(const Tree& tree, Weight memory) {
  if (!tree.is_homogeneous())
    throw std::invalid_argument("homogeneous_labels: tree has a weight != 1");
  if (tree.memory_model() != MemoryModel::kMaxInOut)
    throw std::invalid_argument(
        "homogeneous_labels: the Section 4.2 theory assumes the paper's max(in, out) model");

  HomogeneousLabels out;
  out.l.assign(tree.size(), 0);
  out.c.assign(tree.size(), 0);
  out.m.assign(tree.size(), 0);
  out.w.assign(tree.size(), 0);

  // sorted_children[v]: children by non-increasing l (the POSTORDER order).
  std::vector<std::vector<NodeId>> sorted_children(tree.size());

  const std::vector<NodeId> order = tree.postorder();
  for (const NodeId v : order) {
    const auto kids = tree.children(v);
    auto& sorted = sorted_children[idx(v)];
    sorted.assign(kids.begin(), kids.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](NodeId a, NodeId b) { return out.l[idx(a)] > out.l[idx(b)]; });

    if (sorted.empty()) {
      out.l[idx(v)] = 1;  // a leaf occupies its own output slot
    } else {
      Weight l = 0;
      for (std::size_t i = 0; i < sorted.size(); ++i)
        l = std::max(l, out.l[idx(sorted[i])] + static_cast<Weight>(i));
      out.l[idx(v)] = l;
    }

    // I/O indicator sweep over the sorted children: c(v_1) = 0 and
    // c(v_i) = 1 iff l(v_i) + (children of v still resident) exceeds M.
    Weight resident = 0;  // m(v_i): sum over previous siblings of (1 - c)
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const NodeId vi = sorted[i];
      out.m[idx(vi)] = resident;
      if (i == 0) {
        out.c[idx(vi)] = 0;
      } else {
        out.c[idx(vi)] = (out.l[idx(vi)] + resident <= memory) ? 0 : 1;
      }
      resident += 1 - out.c[idx(vi)];
      out.w[idx(v)] += out.c[idx(vi)];
    }
  }
  out.c[idx(tree.root())] = 0;

  out.total_io = 0;
  for (const Weight wv : out.w) out.total_io += wv;

  // POSTORDER schedule: DFS with children in non-increasing l order.
  out.postorder.reserve(tree.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(tree.root(), 0);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& sorted = sorted_children[idx(node)];
    if (next < sorted.size()) {
      stack.emplace_back(sorted[next++], 0);
    } else {
      out.postorder.push_back(node);
      stack.pop_back();
    }
  }
  return out;
}

Weight homogeneous_optimal_io(const Tree& tree, Weight memory) {
  return homogeneous_labels(tree, memory).total_io;
}

Weight homogeneous_min_peak(const Tree& tree) {
  // Only the l labels are needed; memory bound is irrelevant for them.
  return homogeneous_labels(tree, tree.total_weight()).l[idx(tree.root())];
}

}  // namespace ooctree::core
