// Versioned binary .otree snapshots of core::Tree — load is one mmap,
// zero parsing.
//
// File layout (all integers little-endian on the writing machine; the
// endianness tag rejects cross-endian files at load):
//
//   offset  size          field
//   ------  ------------  --------------------------------------------
//        0  8             magic "OOCTREE\0"
//        8  4             format version (kSnapshotVersion)
//       12  4             endianness tag 0x01020304, as written natively
//       16  4             memory model (0 = max-in-out, 1 = sum-in-out)
//       20  4             reserved (zero)
//       24  8             node count n
//       32  8             root node id
//       40  8             max wbar
//       48  8             total weight
//       56  8             canonical tree hash (Tree::canonical_hash)
//       64  8n            weight[n]
//    64+8n  8n            child_sum[n]
//   64+16n  8n            wbar[n]
//   64+24n  8(n+1)        child_offset[n+1]   (CSR offsets)
//   72+32n  4n            parent[n]
//   72+36n  4(n-1)        child_list[n-1]     (CSR adjacency)
//
// total size 40n + 68 bytes, checked exactly at load. The body mirrors the
// OwnedStorage arena layout (core/tree_storage.hpp), so load_snapshot just
// binds a MappedStorage's pointers at these offsets: the derived arrays
// (CSR, child sums, wbar) and aggregates are stored, not recomputed, which
// is what makes the load genuinely O(1) before first access.
//
// Corrupt or foreign files — truncated, bad magic, unknown version, other
// endianness, node count inconsistent with the file size, or structurally
// impossible header fields — throw std::runtime_error naming the file.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/tree.hpp"

namespace ooctree::core {

/// Bumped whenever the .otree layout changes; loaders reject other versions.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Header fields of a snapshot, as read by probe_snapshot.
struct SnapshotInfo {
  std::uint64_t nodes = 0;
  MemoryModel model = MemoryModel::kMaxInOut;
  NodeId root = kNoNode;
  Weight max_wbar = 0;
  Weight total_weight = 0;
  std::uint64_t tree_hash = 0;  ///< Tree::canonical_hash of the stored tree
};

/// Writes `tree` to `path` as a .otree snapshot. Atomic: writes to a
/// temporary sibling file and renames over `path`, so readers never see a
/// half-written snapshot. Throws std::runtime_error (naming the file) on
/// I/O failure.
void save_snapshot(const std::string& path, const Tree& tree);

/// Maps `path` read-only and returns a Tree backed by the mapping (zero
/// copies, zero parsing; O(1) header validation only). The returned Tree
/// behaves identically to a from_parents-built one; the first mutation via
/// TreeBuilder copies it into an owned arena. Throws std::runtime_error
/// (naming the file) on any corruption or format mismatch.
Tree load_snapshot(const std::string& path);

/// Validates the header of `path` (including the exact file-size check)
/// without binding a Tree, and returns its fields. Same error behavior as
/// load_snapshot.
SnapshotInfo probe_snapshot(const std::string& path);

}  // namespace ooctree::core
