#include "src/core/local_search.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/fif_simulator.hpp"
#include "src/util/rng.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

PolishResult polish_schedule(const Tree& tree, const Schedule& schedule, Weight memory,
                             const PolishOptions& options) {
  const FifResult initial = simulate_fif(tree, schedule, memory);
  if (!initial.feasible) throw std::invalid_argument("polish_schedule: infeasible memory bound");

  PolishResult result;
  result.schedule = schedule;
  result.io_before = initial.io_volume;
  result.io_after = initial.io_volume;

  util::Rng rng(options.seed);
  Schedule current = schedule;
  Weight current_io = initial.io_volume;
  std::size_t since_improvement = 0;

  std::vector<std::size_t> pos = schedule_positions(tree, current);

  // Moves a contiguous block [from, from+len) to start at position `to`
  // (positions refer to the pre-move schedule with the block removed).
  const auto relocate_block = [](Schedule& s, std::size_t from, std::size_t len,
                                 std::size_t to) {
    if (to < from) {
      std::rotate(s.begin() + static_cast<std::ptrdiff_t>(to),
                  s.begin() + static_cast<std::ptrdiff_t>(from),
                  s.begin() + static_cast<std::ptrdiff_t>(from + len));
    } else if (to > from) {
      std::rotate(s.begin() + static_cast<std::ptrdiff_t>(from),
                  s.begin() + static_cast<std::ptrdiff_t>(from + len),
                  s.begin() + static_cast<std::ptrdiff_t>(to + len));
    }
  };

  while (result.evaluations < options.max_evaluations &&
         since_improvement < options.patience && current_io > 0) {
    Schedule candidate = current;

    const double move_kind = rng.uniform_real();
    if (move_kind < 0.3 && tree.size() >= 2) {
      // Adjacent swap of independent neighbors.
      const std::size_t t = rng.index(tree.size() - 1);
      if (tree.parent(candidate[t]) == candidate[t + 1]) {
        ++since_improvement;
        continue;  // dependent: swap would break topology
      }
      std::swap(candidate[t], candidate[t + 1]);
    } else if (move_kind < 0.65) {
      // Relocate one task within its dependency window.
      const NodeId v = static_cast<NodeId>(rng.index(tree.size()));
      std::size_t lo = 0;  // earliest legal position (after the last child)
      for (const NodeId c : tree.children(v)) lo = std::max(lo, pos[idx(c)] + 1);
      std::size_t hi = tree.size() - 1;  // latest legal (before the parent)
      if (tree.parent(v) != kNoNode) hi = pos[idx(tree.parent(v))] - 1;
      if (hi <= lo) {
        ++since_improvement;
        continue;
      }
      const std::size_t from = pos[idx(v)];
      const std::size_t to = lo + rng.index(hi - lo + 1);
      if (to == from) {
        ++since_improvement;
        continue;
      }
      relocate_block(candidate, from, 1, to);
      if (!is_topological_order(tree, candidate)) {
        ++since_improvement;
        continue;
      }
    } else {
      // Relocate a short contiguous block (lets whole chain pieces
      // regroup, which single-task moves cannot do in one step).
      const std::size_t max_len = std::min<std::size_t>(8, tree.size() / 2);
      if (max_len < 2) {
        ++since_improvement;
        continue;
      }
      const std::size_t len = 2 + rng.index(max_len - 1);
      if (tree.size() <= len) {
        ++since_improvement;
        continue;
      }
      const std::size_t from = rng.index(tree.size() - len);
      const std::size_t to = rng.index(tree.size() - len);
      if (to == from) {
        ++since_improvement;
        continue;
      }
      relocate_block(candidate, from, len, to);
      if (!is_topological_order(tree, candidate)) {
        ++since_improvement;
        continue;
      }
    }

    ++result.evaluations;
    const FifResult eval = simulate_fif(tree, candidate, memory);
    if (!eval.feasible) {
      ++since_improvement;
      continue;
    }
    if (eval.io_volume < current_io) {
      current = std::move(candidate);
      current_io = eval.io_volume;
      pos = schedule_positions(tree, current);
      ++result.improvements;
      since_improvement = 0;
    } else if (eval.io_volume == current_io && rng.bernoulli(0.25)) {
      // Plateau step: sideways moves escape flat regions; never worse.
      current = std::move(candidate);
      pos = schedule_positions(tree, current);
      ++since_improvement;
    } else {
      ++since_improvement;
    }
  }

  result.schedule = std::move(current);
  result.io_after = current_io;
  return result;
}

}  // namespace ooctree::core
