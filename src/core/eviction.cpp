#include "src/core/eviction.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/check.hpp"
#include "src/util/text.hpp"

namespace ooctree::core {

std::string eviction_policy_name(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kBelady: return "Belady";
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kRandom: return "Random";
    case EvictionPolicy::kLargestFirst: return "LargestFirst";
  }
  throw std::invalid_argument("eviction_policy_name: unknown policy");
}

EvictionPolicy eviction_policy_from_name(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "belady" || s == "fif") return EvictionPolicy::kBelady;
  if (s == "lru") return EvictionPolicy::kLru;
  if (s == "fifo") return EvictionPolicy::kFifo;
  if (s == "random") return EvictionPolicy::kRandom;
  if (s == "largest" || s == "largestfirst") return EvictionPolicy::kLargestFirst;
  throw std::invalid_argument("unknown eviction policy '" + name +
                              "' (belady | lru | fifo | random | largest)");
}

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

EvictionIndex::EvictionIndex(EvictionPolicy policy, std::size_t capacity, util::Rng* rng)
    : policy_(policy), rng_(rng), version_(capacity, 0) {
  if (policy_ == EvictionPolicy::kRandom) {
    if (rng_ == nullptr)
      throw std::invalid_argument("EvictionIndex: kRandom requires an Rng");
    dense_.reserve(capacity);
    dense_pos_.assign(capacity, 0);
  } else {
    heap_.reserve(capacity);
  }
}

std::int64_t EvictionIndex::normalize(std::int64_t key) const {
  // Larger normalized key == evicted sooner. LRU/FIFO prefer the *oldest*
  // clock, so their keys are flipped.
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      return -key;
    default:
      return key;
  }
}

void EvictionIndex::insert(NodeId id, std::int64_t key) {
  if (policy_ == EvictionPolicy::kRandom) {
    if (version_[idx(id)] == 0) {
      version_[idx(id)] = 1;
      dense_pos_[idx(id)] = static_cast<std::uint32_t>(dense_.size());
      dense_.push_back(id);
      ++live_;
    }
    return;  // keys are irrelevant to kRandom
  }
  // 0 marks "absent", so the stamp skips it when it wraps.
  if (++stamp_ == 0) ++stamp_;
  const std::uint32_t v = stamp_;
  if (version_[idx(id)] == 0) ++live_;
  version_[idx(id)] = v;
  heap_.push_back(Entry{normalize(key), id, v});
  std::push_heap(heap_.begin(), heap_.end());
}

void EvictionIndex::erase(NodeId id) {
  if (version_[idx(id)] == 0) return;
#if OOCTREE_AUDIT_ENABLED
  if (fault::eviction_index.load(std::memory_order_relaxed) == 1) {
    // Test-only corruption: drop the live count but leave the version, the
    // exact live_/version_ drift audit() exists to detect.
    --live_;
    return;
  }
#endif
  version_[idx(id)] = 0;
  --live_;
  if (policy_ == EvictionPolicy::kRandom) {
    const std::uint32_t pos = dense_pos_[idx(id)];
    dense_[pos] = dense_.back();
    dense_pos_[idx(dense_[pos])] = pos;
    dense_.pop_back();
  }
  // Non-random: the heap entry goes stale and is skipped on a later pick().
}

bool EvictionIndex::contains(NodeId id) const { return version_[idx(id)] != 0; }

void EvictionIndex::audit() const {
  std::size_t live = 0;
  for (const std::uint32_t v : version_)
    if (v != 0) ++live;
  audit_check(live == live_, "EvictionIndex: live count != ids with a live version");
  if (policy_ == EvictionPolicy::kRandom) {
    audit_check(dense_.size() == live_, "EvictionIndex: dense set size != live count");
    for (std::size_t pos = 0; pos < dense_.size(); ++pos) {
      const NodeId id = dense_[pos];
      audit_check(version_[idx(id)] != 0, "EvictionIndex: dense entry for an absent id");
      audit_check(dense_pos_[idx(id)] == pos, "EvictionIndex: dense position map broken");
    }
    return;
  }
  // Non-random: exactly one heap entry per live id carries the current
  // version (stale duplicates are expected — lazy deletion).
  std::size_t current = 0;
  for (const Entry& e : heap_) {
    audit_check(static_cast<std::size_t>(e.id) < version_.size(),
                "EvictionIndex: heap entry id out of range");
    if (version_[idx(e.id)] == e.version) ++current;
  }
  audit_check(current == live_, "EvictionIndex: live ids without a current heap entry");
}

NodeId EvictionIndex::pick() {
  if (live_ == 0) return kNoNode;
  if (policy_ == EvictionPolicy::kRandom) return dense_[rng_->index(dense_.size())];
  while (true) {
    const Entry& top = heap_.front();
    if (version_[idx(top.id)] == top.version) return top.id;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

}  // namespace ooctree::core
