#include "src/core/interleave.hpp"

#include <algorithm>
#include <numeric>

namespace ooctree::core {

std::int64_t interleave_cost(const std::vector<InterleaveItem>& items,
                             const std::vector<std::size_t>& order) {
  std::int64_t base = 0;
  std::int64_t worst = 0;
  for (const std::size_t i : order) {
    worst = std::max(worst, base + items[i].peak);
    base += items[i].residue;
  }
  return worst;
}

std::vector<std::size_t> optimal_interleave_order(const std::vector<InterleaveItem>& items) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return items[a].peak - items[a].residue > items[b].peak - items[b].residue;
  });
  return order;
}

std::int64_t optimal_interleave_cost(const std::vector<InterleaveItem>& items) {
  return interleave_cost(items, optimal_interleave_order(items));
}

}  // namespace ooctree::core
