#include "src/core/strategies.hpp"

#include <stdexcept>

#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"
#include "src/util/text.hpp"

namespace ooctree::core {

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kPostOrderMinIo: return "PostOrderMinIO";
    case Strategy::kOptMinMem: return "OptMinMem";
    case Strategy::kRecExpand: return "RecExpand";
    case Strategy::kFullRecExpand: return "FullRecExpand";
  }
  throw std::invalid_argument("strategy_name: unknown strategy");
}

Strategy strategy_from_name(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "postorder" || s == "postorderminio") return Strategy::kPostOrderMinIo;
  if (s == "optminmem") return Strategy::kOptMinMem;
  if (s == "recexpand") return Strategy::kRecExpand;
  if (s == "full" || s == "fullrecexpand") return Strategy::kFullRecExpand;
  throw std::invalid_argument("unknown strategy '" + name +
                              "' (postorder | optminmem | recexpand | full)");
}

std::vector<Strategy> all_strategies() {
  return {Strategy::kOptMinMem, Strategy::kRecExpand, Strategy::kPostOrderMinIo,
          Strategy::kFullRecExpand};
}

std::vector<Strategy> cheap_strategies() {
  return {Strategy::kOptMinMem, Strategy::kRecExpand, Strategy::kPostOrderMinIo};
}

StrategyOutcome run_strategy(Strategy s, const Tree& tree, Weight memory) {
  StrategyOutcome out;
  out.strategy = s;
  switch (s) {
    case Strategy::kPostOrderMinIo:
      out.schedule = postorder_minio(tree, memory).schedule;
      break;
    case Strategy::kOptMinMem:
      out.schedule = opt_minmem(tree).schedule;
      break;
    case Strategy::kRecExpand:
      out.schedule = rec_expand2(tree, memory).schedule;
      break;
    case Strategy::kFullRecExpand:
      out.schedule = full_rec_expand(tree, memory).schedule;
      break;
  }
  out.evaluation = simulate_fif(tree, out.schedule, memory);
  return out;
}

}  // namespace ooctree::core
