// Shared eviction-policy machinery for the out-of-core simulators.
//
// Both the page-granular pager (src/iosim/pager.cpp) and the parallel
// simulator (src/parallel/parallel_sim.cpp) repeatedly answer the same
// question: "memory is short — which active datum loses units next?".
// This module centralizes the answer. EvictionPolicy names the replacement
// rules (Belady/FiF — the paper's Theorem 1 optimum — plus the classic
// LRU/FIFO/Random/LargestFirst baselines the ablations compare against),
// and EvictionIndex keeps the evictable set *indexed* so a victim is found
// in O(log n) (O(1) for Random) instead of the O(n) full-state scan the
// seed simulators performed per eviction.
//
// The index is policy-agnostic at the container level: callers insert each
// datum with an explicit 64-bit key (consumer step for Belady, a logical
// clock for LRU/FIFO, the resident size for LargestFirst) and the policy
// only decides which end of the key order is evicted first. Ties are broken
// toward the smaller node id, so victim sequences are deterministic and the
// scan-based reference engines can reproduce them bit-for-bit.
//
// Units and invariants. The index holds node ids only — whether an entry's
// "size" means memory units (simulate_parallel at page_size 1) or pages
// (run_pager, simulate_parallel_paged) is the caller's convention; the key
// passed to insert() must be in the caller's own unit too (LargestFirst
// re-keys with resident *pages* in the paged engines). The index never
// removes a victim by itself: pick() is read-only, and the caller either
// erases (full eviction) or re-keys (partial eviction), so the caller's
// residency accounting is the single source of truth. Complexity:
// insert/erase/pick are O(log n) amortized via lazy deletion (O(1) for
// kRandom's dense set); a simulation doing E evictions over n nodes pays
// O((n + E) log n) total in the index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/tree.hpp"
#include "src/util/rng.hpp"

namespace ooctree::core {

/// Replacement policies for choosing which active datum loses units.
enum class EvictionPolicy : std::uint8_t {
  kBelady,        ///< evict the datum consumed furthest in the future (FiF)
  kLru,           ///< least recently touched datum
  kFifo,          ///< oldest resident datum
  kRandom,        ///< uniform among evictable data
  kLargestFirst,  ///< datum with the most resident units
};

[[nodiscard]] std::string eviction_policy_name(EvictionPolicy p);

/// Inverse of eviction_policy_name, case-insensitive, also accepting the
/// short CLI spellings (belady | fif | lru | fifo | random | largest).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] EvictionPolicy eviction_policy_from_name(const std::string& name);

/// Indexed evictable set: tracks data by policy key and yields the
/// policy-best victim without scanning. Heap-backed with lazy deletion;
/// erase/re-key are O(log n) amortized. kRandom keeps a dense array
/// instead (O(1) insert/erase/pick) and draws from the Rng passed at
/// construction — each pick() consumes one draw.
class EvictionIndex {
 public:
  /// `capacity` is the node-id universe (ids in [0, capacity)); `rng` is
  /// required for kRandom and ignored otherwise.
  EvictionIndex(EvictionPolicy policy, std::size_t capacity, util::Rng* rng = nullptr);

  /// Adds `id` with the given policy key, or re-keys it when present
  /// (LargestFirst uses re-keying after partial evictions).
  void insert(NodeId id, std::int64_t key);

  /// Removes `id`; no-op when absent.
  void erase(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// The current victim, or kNoNode when the set is empty. The entry stays
  /// in the index: the caller erases it (full eviction) or re-keys it
  /// (partial eviction under kLargestFirst). Victim order: best policy key
  /// first — largest for kBelady/kLargestFirst, smallest for kLru/kFifo —
  /// with ties to the smaller id; kRandom draws uniformly per call.
  [[nodiscard]] NodeId pick();

  /// Full consistency sweep, throwing core::AuditError on drift: the live
  /// count equals the number of ids with a live version, every live id has
  /// exactly one current heap entry (or dense slot under kRandom), and the
  /// dense position map inverts the dense array. O(capacity + heap size);
  /// compiled in every preset, called by the audit-enabled engines and
  /// directly by tests (see src/core/check.hpp).
  void audit() const;

 private:
  struct Entry {
    std::int64_t key = 0;  ///< normalized: larger always means evict sooner
    NodeId id = kNoNode;
    std::uint32_t version = 0;
    bool operator<(const Entry& o) const {
      return key != o.key ? key < o.key : id > o.id;
    }
  };

  [[nodiscard]] std::int64_t normalize(std::int64_t key) const;

  EvictionPolicy policy_;
  util::Rng* rng_ = nullptr;
  std::size_t live_ = 0;
  std::uint32_t stamp_ = 0;
  std::vector<Entry> heap_;               // lazy-deletion max-heap (non-random)
  std::vector<std::uint32_t> version_;    // current version per id (0 = absent)
  std::vector<NodeId> dense_;             // kRandom: evictable ids
  std::vector<std::uint32_t> dense_pos_;  // kRandom: position of id in dense_
};

}  // namespace ooctree::core
