#include "src/core/snapshot.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>

#include "src/core/tree_storage.hpp"

namespace ooctree::core {

namespace {

constexpr char kMagic[8] = {'O', 'O', 'C', 'T', 'R', 'E', 'E', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304;

// The fixed offsets below hard-code these widths; a platform where they
// differ would write unreadable files.
static_assert(sizeof(Weight) == 8 && sizeof(std::int64_t) == 8 && sizeof(NodeId) == 4);

// On-disk header, 64 bytes, naturally packed (no padding: one 8-byte magic,
// four 4-byte words, five 8-byte words).
struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint32_t model;
  std::uint32_t reserved;
  std::uint64_t nodes;
  std::int64_t root;
  std::int64_t max_wbar;
  std::int64_t total_weight;
  std::uint64_t tree_hash;
};
static_assert(sizeof(SnapshotHeader) == 64, "snapshot header must be 64 bytes");

std::size_t snapshot_bytes(std::uint64_t nodes) {
  // Header + 3 Weight arrays + (n+1) CSR offsets + parent[n] + child_list[n-1].
  return sizeof(SnapshotHeader) + 40 * static_cast<std::size_t>(nodes) + 4;
}

[[noreturn]] void reject(const std::string& path, const std::string& what) {
  throw std::runtime_error("snapshot: " + what + " in '" + path + "'");
}

// Header checks that need no body access; `file_size` enforces the exact
// node-count/size consistency so truncated or padded files never bind.
void validate_header(const SnapshotHeader& h, std::size_t file_size, const std::string& path) {
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) reject(path, "bad magic");
  if (h.endian != kEndianTag) reject(path, "wrong endianness tag");
  if (h.version != kSnapshotVersion)
    reject(path, "unsupported format version " + std::to_string(h.version));
  if (h.model > 1) reject(path, "invalid memory model " + std::to_string(h.model));
  if (h.nodes == 0) reject(path, "zero node count");
  if (h.nodes > static_cast<std::uint64_t>(std::numeric_limits<NodeId>::max()))
    reject(path, "node count overflows node id range");
  if (file_size != snapshot_bytes(h.nodes))
    reject(path, "node count inconsistent with file size");
  if (h.root < 0 || static_cast<std::uint64_t>(h.root) >= h.nodes)
    reject(path, "root id out of range");
}

}  // namespace

void save_snapshot(const std::string& path, const Tree& tree) {
  SnapshotHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kSnapshotVersion;
  h.endian = kEndianTag;
  h.model = static_cast<std::uint32_t>(tree.memory_model());
  h.nodes = tree.size();
  h.root = tree.root();
  h.max_wbar = tree.min_feasible_memory();
  h.total_weight = tree.total_weight();
  h.tree_hash = tree.canonical_hash();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("snapshot: cannot write '" + tmp + "'");
    const auto put = [&os](const void* p, std::size_t bytes) {
      os.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
    };
    const std::size_t n = tree.size();
    const TreeArrays& a = tree.arrays_;
    put(&h, sizeof h);
    put(a.weight, 8 * n);
    put(a.child_sum, 8 * n);
    put(a.wbar, 8 * n);
    put(a.child_offset, 8 * (n + 1));
    put(a.parent, 4 * n);
    put(a.child_list, 4 * (n - 1));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw std::runtime_error("snapshot: write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Tree load_snapshot(const std::string& path) {
  auto storage = std::make_shared<MappedStorage>(path);
  if (storage->length() < sizeof(SnapshotHeader)) reject(path, "truncated file");
  SnapshotHeader h{};
  std::memcpy(&h, storage->data(), sizeof h);
  validate_header(h, storage->length(), path);

  const auto n = static_cast<std::size_t>(h.nodes);
  // The mapping is PROT_READ; the non-const pointers are never written
  // through — Tree's only mutation path (TreeBuilder) goes via
  // ensure_owned, which clones mapped storage into an owned arena first.
  auto* body = const_cast<std::byte*>(storage->data()) + sizeof h;
  TreeArrays a;
  a.weight = reinterpret_cast<Weight*>(body);
  a.child_sum = reinterpret_cast<Weight*>(body + 8 * n);
  a.wbar = reinterpret_cast<Weight*>(body + 16 * n);
  a.child_offset = reinterpret_cast<std::int64_t*>(body + 24 * n);
  a.parent = reinterpret_cast<NodeId*>(body + 32 * n + 8);
  a.child_list = reinterpret_cast<NodeId*>(body + 36 * n + 8);

  // O(1) structural spot checks: the CSR bookends and the root's parent.
  // (Full-content validation would defeat the zero-parse point; corrupted
  // bodies with a consistent header are caught by the canonical hash when
  // the service compares cache keys, or by probe-and-rehash in tools.)
  if (a.child_offset[0] != 0 || a.child_offset[n] != static_cast<std::int64_t>(n) - 1)
    reject(path, "inconsistent CSR offsets");
  if (a.parent[static_cast<std::size_t>(h.root)] != kNoNode) reject(path, "root has a parent");

  storage->bind(a, n);
  Tree t;
  t.storage_ = std::move(storage);
  t.arrays_ = a;
  t.size_ = n;
  t.root_ = static_cast<NodeId>(h.root);
  t.max_wbar_ = h.max_wbar;
  t.total_weight_ = h.total_weight;
  t.model_ = static_cast<MemoryModel>(h.model);
  return t;
}

SnapshotInfo probe_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("snapshot: cannot open '" + path + "'");
  const auto file_size = static_cast<std::size_t>(is.tellg());
  if (file_size < sizeof(SnapshotHeader)) reject(path, "truncated file");
  is.seekg(0);
  SnapshotHeader h{};
  is.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!is) reject(path, "truncated file");
  validate_header(h, file_size, path);

  SnapshotInfo info;
  info.nodes = h.nodes;
  info.model = static_cast<MemoryModel>(h.model);
  info.root = static_cast<NodeId>(h.root);
  info.max_wbar = h.max_wbar;
  info.total_weight = h.total_weight;
  info.tree_hash = h.tree_hash;
  return info;
}

}  // namespace ooctree::core
