// Best postorder traversal for peak-memory minimization (Liu 1986).
//
// A postorder traversal fully processes each subtree before starting a
// sibling subtree. Liu showed the peak-memory-optimal postorder orders the
// children of every node by non-increasing (S_j - w_j), where S_j is the
// storage requirement of the subtree rooted at j (paper, Section 3.3 and
// Theorem 3):
//
//   S_i = max( w_i, max_j ( S_j + sum of w_k over children k before j ) ).
//
// The paper refers to this algorithm as POSTORDERMINMEM.
#pragma once

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Result of the best peak-memory postorder computation.
struct PostOrderMinMemResult {
  Schedule schedule;               ///< the optimal postorder
  Weight peak = 0;                 ///< S_root: its peak memory
  std::vector<Weight> storage;     ///< S_i for every node (subtree storage requirement)
};

/// Computes Liu's best postorder for MinMem on the subtree rooted at `root`.
/// Iterative over a postorder of the tree; safe on deep chains.
[[nodiscard]] PostOrderMinMemResult postorder_minmem(const Tree& tree, NodeId root);

/// Whole-tree overload.
[[nodiscard]] inline PostOrderMinMemResult postorder_minmem(const Tree& tree) {
  return postorder_minmem(tree, tree.root());
}

}  // namespace ooctree::core
