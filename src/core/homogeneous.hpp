// Homogeneous-tree theory (paper, Section 4.2).
//
// For trees whose outputs all have size 1, the paper defines labels on the
// nodes which together give an *exact* expression of the optimal I/O
// volume:
//   l(v): minimum memory to execute T(v) without any I/O (children visited
//         by non-increasing l; l(leaf) = 1),
//   c(v_i): 1 iff POSTORDER writes one of v's children to disk while
//           executing T(v_i),
//   m(v_i): children of v resident in memory when T(v_i) starts,
//   w(v) = sum of c over v's children,
//   W(T(v)) = c(v) + sum of w over the subtree.
// Lemma 3 shows POSTORDER performs at most W(T) I/Os; Lemma 5 shows no
// schedule does better; Theorem 4 concludes POSTORDERMINIO is optimal on
// homogeneous trees. W(T) therefore doubles as an exact optimum and as a
// test oracle for every heuristic in this library.
#pragma once

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// All Section 4.2 labels of a homogeneous tree under memory bound M.
struct HomogeneousLabels {
  std::vector<Weight> l;           ///< memory bound labels l(v)
  std::vector<int> c;              ///< I/O indicators c(v)
  std::vector<Weight> m;           ///< resident-sibling counts m(v)
  std::vector<Weight> w;           ///< per-node I/O volumes w(v)
  Weight total_io = 0;             ///< W(T) at the root — the exact optimum
  Schedule postorder;              ///< the POSTORDER schedule (children by non-increasing l)
};

/// Computes the labels. Throws std::invalid_argument when the tree is not
/// homogeneous (some weight differs from 1).
[[nodiscard]] HomogeneousLabels homogeneous_labels(const Tree& tree, Weight memory);

/// The exact optimal I/O volume W(T) of a homogeneous tree under M.
[[nodiscard]] Weight homogeneous_optimal_io(const Tree& tree, Weight memory);

/// l(root): the optimal in-core peak memory of a homogeneous tree
/// (coincides with opt_minmem_peak on homogeneous inputs — Lemmas 1, 2).
[[nodiscard]] Weight homogeneous_min_peak(const Tree& tree);

}  // namespace ooctree::core
