#include "src/core/minio_postorder.hpp"

#include <algorithm>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

PostOrderMinIoResult postorder_minio(const Tree& tree, NodeId root, Weight memory) {
  PostOrderMinIoResult result;
  result.used.assign(tree.size(), 0);
  result.storage.assign(tree.size(), 0);
  result.io.assign(tree.size(), 0);
  std::vector<std::vector<NodeId>> sorted_children(tree.size());

  const std::vector<NodeId> order = tree.postorder(root);
  for (const NodeId i : order) {
    const auto kids = tree.children(i);
    auto& sorted = sorted_children[idx(i)];
    sorted.assign(kids.begin(), kids.end());
    // Theorem 3 with x_j = A_j, y_j = w_j: sort by non-increasing A_j - w_j.
    std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
      return result.used[idx(a)] - tree.weight(a) > result.used[idx(b)] - tree.weight(b);
    });

    Weight s = tree.weight(i);
    Weight peak_used = 0;  // max_j (A_j + sum of w_k before j)
    Weight io_sum = 0;
    Weight before = 0;
    for (const NodeId j : sorted) {
      s = std::max(s, result.storage[idx(j)] + before);
      peak_used = std::max(peak_used, result.used[idx(j)] + before);
      io_sum += result.io[idx(j)];
      before += tree.weight(j);
    }
    s = std::max(s, tree.wbar(i));
    result.storage[idx(i)] = s;
    result.used[idx(i)] = std::min(memory, s);
    result.io[idx(i)] = std::max<Weight>(0, peak_used - memory) + io_sum;
  }
  result.predicted_io = result.io[idx(root)];

  result.schedule.reserve(order.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& sorted = sorted_children[idx(node)];
    if (next < sorted.size()) {
      stack.emplace_back(sorted[next++], 0);
    } else {
      result.schedule.push_back(node);
      stack.pop_back();
    }
  }
  return result;
}

}  // namespace ooctree::core
