// Mutable companion of Tree for the expansion-shaped amendments that the
// RecExpand family performs millions of times.
//
// Tree is immutable and fully re-validated by from_parents, so rebuilding
// it after every node expansion costs O(n) — quadratic over a whole
// RecExpand run. TreeBuilder adopts a Tree and applies an expansion
// (Figure 3: i -> i2 -> i3 chain) *in place* in O(degree(parent(i)))
// amortized, maintaining every derived member (children CSR, child sums,
// wbar, max wbar, total weight, root) exactly as Tree::from_parents would
// compute it for the amended parent array. The equivalence is enforced by
// the differential suite (test_expansion_incremental.cpp): a builder-
// maintained tree must be indistinguishable from a from_parents rebuild.
//
// The CSR stays compact without shifting because expansion appends the two
// new nodes with the largest ids: i3 replaces i inside its parent's child
// span (and, being the largest id, belongs at the span's end), while i2 and
// i3 — the last parents — get their single-entry child ranges appended at
// the tail of the adjacency array.
#pragma once

#include <utility>

#include "src/core/tree.hpp"

namespace ooctree::core {

/// Applies expansion-shaped mutations to an adopted Tree in place.
class TreeBuilder {
 public:
  /// Adopts `t`; use take() to move the amended tree back out.
  explicit TreeBuilder(Tree t) : t_(std::move(t)) {}

  /// Expands node `i` by `tau` in [0, w_i]: i keeps its children and
  /// weight; new node i2 (weight w_i - tau) becomes i's parent; new node
  /// i3 (weight w_i) becomes i2's parent and takes i's place below i's old
  /// parent (or as root). Returns {i2, i3} = {old size, old size + 1}.
  /// O(degree(old parent)) amortized. Throws std::invalid_argument on a
  /// bad id or tau out of range.
  std::pair<NodeId, NodeId> expand(NodeId i, Weight tau);

  /// The tree in its current (amended) state.
  [[nodiscard]] const Tree& tree() const { return t_; }

  /// Moves the amended tree out; the builder is empty afterwards.
  [[nodiscard]] Tree take() { return std::move(t_); }

 private:
  Tree t_;
};

}  // namespace ooctree::core
