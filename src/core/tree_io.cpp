#include "src/core/tree_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ooctree::core {

void write_tree(std::ostream& out, const Tree& tree) {
  out << "# ooctree task tree: one node per line, '<parent|-1> <weight>'\n";
  out << "# n=" << tree.size() << " root=" << tree.root() << "\n";
  out << "#!model "
      << (tree.memory_model() == MemoryModel::kSumInOut ? "sum" : "max") << "\n";
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    out << tree.parent(id) << ' ' << tree.weight(id) << '\n';
  }
}

void save_tree(const std::string& path, const Tree& tree) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_tree: cannot open " + path);
  write_tree(out, tree);
  if (!out) throw std::runtime_error("save_tree: write failed for " + path);
}

Tree read_tree(std::istream& in) {
  std::vector<NodeId> parent;
  std::vector<Weight> weight;
  MemoryModel model = MemoryModel::kMaxInOut;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Normalize line endings and padding up front: CRLF files, trailing
    // spaces/tabs, and a final line without a newline (getline already
    // yields it) must all parse exactly like their clean counterparts.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    if (line.rfind("#!model", 0) == 0) {
      if (line.find("sum") != std::string::npos) model = MemoryModel::kSumInOut;
      continue;
    }
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    NodeId p = 0;
    Weight w = 0;
    if (!(ls >> p)) continue;  // blank or comment-only line
    if (!(ls >> w)) {
      throw std::runtime_error("read_tree: missing weight on line " + std::to_string(line_no));
    }
    std::string rest;
    if (ls >> rest)
      throw std::runtime_error("read_tree: trailing garbage '" + rest + "' on line " +
                               std::to_string(line_no));
    parent.push_back(p);
    weight.push_back(w);
  }
  if (parent.empty()) throw std::runtime_error("read_tree: no nodes found");
  try {
    return Tree::from_parents(std::move(parent), std::move(weight), model);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("read_tree: ") + e.what());
  }
}

Tree load_tree(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_tree: cannot open " + path);
  return read_tree(in);
}

}  // namespace ooctree::core
