// Local-search schedule polishing — a step toward the paper's open problem
// (Section 7: "designing competitive algorithms for the sequential
// problem").
//
// Every strategy in this library emits a schedule whose I/O volume is the
// FiF evaluation (optimal for that schedule by Theorem 1); the schedule
// itself may still be improvable. polish_schedule runs randomized hill
// climbing over two topology-preserving neighborhoods:
//   * adjacent swaps of independent tasks, and
//   * single-task relocation within its dependency window
//     (after its last child, before its parent).
// Strict improvements are kept; the result is never worse than the input.
#pragma once

#include <cstdint>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Knobs for the polishing loop.
struct PolishOptions {
  std::size_t max_evaluations = 4000;  ///< neighbor FiF evaluations
  std::size_t patience = 1500;         ///< stop after this many non-improving tries
  std::uint64_t seed = 1;              ///< neighborhood sampling seed
};

/// Outcome of a polishing run.
struct PolishResult {
  Schedule schedule;            ///< best schedule found
  Weight io_before = 0;
  Weight io_after = 0;
  std::size_t improvements = 0;
  std::size_t evaluations = 0;
};

/// Polishes `schedule` under memory bound M. Throws std::invalid_argument
/// when the input schedule is not topological or the bound is infeasible.
[[nodiscard]] PolishResult polish_schedule(const Tree& tree, const Schedule& schedule,
                                           Weight memory, const PolishOptions& options = {});

}  // namespace ooctree::core
