// Node expansion (paper, Figure 3) and schedule-from-tau (Theorem 2).
//
// Expanding node i by an I/O amount tau replaces i with a three-node chain
//   i1 (weight w_i)  ->  i2 (weight w_i - tau)  ->  i3 (weight w_i),
// where i1 keeps i's children and i3 takes i's parent. The chain makes the
// write (i1 -> i2) and the read-back (i2 -> i3) explicit in the tree
// structure, so an in-core scheduling algorithm run on the expanded tree
// "sees" the I/O. Only i1 represents a real computation; i2 and i3 are
// bookkeeping nodes.
#pragma once

#include <utility>
#include <vector>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Role of a node of an expanded tree relative to the original tree.
enum class ExpansionRole : std::uint8_t {
  kCompute,  ///< performs the original node's computation (original or i1)
  kShrunk,   ///< i2: the datum after tau units were written out
  kRestored, ///< i3: the datum after reading the tau units back
};

/// A tree derived from an original tree by a sequence of node expansions,
/// with enough bookkeeping to map schedules back.
struct ExpandedTree {
  Tree tree;
  std::vector<NodeId> origin;        ///< origin[k]: original-tree node of k
  std::vector<ExpansionRole> role;   ///< role[k] of each node
  Weight expansion_volume = 0;       ///< sum of all tau amounts applied

  /// Wraps an unexpanded tree (identity mapping).
  static ExpandedTree identity(Tree t);

  /// Expands node `i` (an id of `tree`) by `tau` in [0, w_i]. The node may
  /// itself be the product of an earlier expansion (any role). Node ids are
  /// remapped; the method returns the new tree wholesale.
  [[nodiscard]] ExpandedTree expand(NodeId i, Weight tau) const;

  /// Same expansion applied in place via TreeBuilder: O(degree(parent(i)))
  /// amortized instead of an O(n) rebuild. Returns the ids {i2, i3} of the
  /// two appended nodes.
  std::pair<NodeId, NodeId> expand_in_place(NodeId i, Weight tau);

  /// Batch expansion: expands every node k with io[k] > 0 by io[k], in
  /// increasing index order, sharing a single TreeBuilder adoption. io must
  /// have one entry per *current* node. Equivalent to (but much faster
  /// than) a chain of expand() calls; O(n + expansions) overall.
  void expand_all(const IoFunction& io);

  /// Reference implementation of expand(): rebuilds the whole tree through
  /// Tree::from_parents (the pre-incremental code path). Retained so the
  /// differential suite can check TreeBuilder against a full rebuild, and
  /// for rec_expand_reference.
  [[nodiscard]] ExpandedTree expand_rebuild(NodeId i, Weight tau) const;

  /// Maps a schedule of the expanded tree back to the original tree by
  /// keeping the kCompute events only.
  [[nodiscard]] Schedule map_schedule(const Schedule& expanded_schedule) const;
};

/// Theorem 2: given an I/O function tau, computes a schedule sigma such
/// that (sigma, tau') is a valid traversal under `memory` with
/// tau'(i) <= tau(i)  — if one exists. Internally expands every node with
/// tau(i) > 0 and runs OptMinMem on the expanded tree. Returns std::nullopt
/// when even the expanded tree cannot be scheduled within `memory`.
[[nodiscard]] std::optional<Schedule> schedule_from_io(const Tree& tree, const IoFunction& io,
                                                       Weight memory);

}  // namespace ooctree::core
