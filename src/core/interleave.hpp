// Liu's interleaving lemma (paper, Theorem 3 — Lemma 3.1 in Liu 1986).
//
// Given pairs (x_i, y_i), the order minimizing  max_i (x_i + sum_{j<i} y_j)
// sorts the pairs by non-increasing (x_i - y_i). The lemma underpins every
// child-ordering rule in this library (PostOrderMinMem, PostOrderMinIO, and
// the hill-valley merge inside OptMinMem), so it is exposed and tested on
// its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ooctree::core {

/// One item of the interleaving problem: executing it transiently costs
/// `peak` above the current base and permanently adds `residue`.
struct InterleaveItem {
  std::int64_t peak = 0;     // x_i
  std::int64_t residue = 0;  // y_i
};

/// The maximum of x_i + sum of previous residues under the given order.
[[nodiscard]] std::int64_t interleave_cost(const std::vector<InterleaveItem>& items,
                                           const std::vector<std::size_t>& order);

/// An optimal order (indices into `items`): non-increasing peak - residue,
/// stable for ties.
[[nodiscard]] std::vector<std::size_t> optimal_interleave_order(
    const std::vector<InterleaveItem>& items);

/// Cost of the optimal order.
[[nodiscard]] std::int64_t optimal_interleave_cost(const std::vector<InterleaveItem>& items);

}  // namespace ooctree::core
