#include "src/core/traversal.hpp"

#include <algorithm>
#include <sstream>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

bool is_topological_order(const Tree& tree, const Schedule& schedule) {
  if (schedule.size() != tree.size()) return false;
  std::vector<bool> seen(tree.size(), false);
  for (const NodeId node : schedule) {
    if (node < 0 || idx(node) >= tree.size() || seen[idx(node)]) return false;
    for (const NodeId c : tree.children(node))
      if (!seen[idx(c)]) return false;
    seen[idx(node)] = true;
  }
  return true;
}

std::vector<std::size_t> schedule_positions(const Tree& tree, const Schedule& schedule) {
  std::vector<std::size_t> pos(tree.size(), 0);
  for (std::size_t t = 0; t < schedule.size(); ++t) pos[idx(schedule[t])] = t;
  return pos;
}

std::optional<std::string> validate_traversal(const Tree& tree, const Schedule& schedule,
                                              const IoFunction& io, Weight memory) {
  if (!is_topological_order(tree, schedule)) return "schedule is not a topological order";
  if (io.size() != tree.size()) return "io function has wrong length";
  for (std::size_t i = 0; i < io.size(); ++i) {
    if (io[i] < 0 || io[i] > tree.weight(static_cast<NodeId>(i))) {
      std::ostringstream os;
      os << "io amount out of range for node " << i << ": tau=" << io[i]
         << " w=" << tree.weight(static_cast<NodeId>(i));
      return os.str();
    }
  }

  // Memory condition: while executing node i, every *active* node k
  // (produced, parent not yet executed, and k not a child of i) keeps
  // w_k - tau(k) units resident; the total plus wbar(i) must fit in M.
  const std::vector<std::size_t> pos = schedule_positions(tree, schedule);
  Weight active_resident = 0;  // sum over active nodes of (w_k - tau(k))
  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];
    // Children of `node` stop being active exactly at step t.
    for (const NodeId c : tree.children(node))
      active_resident -= tree.weight(c) - io[idx(c)];
    if (active_resident + tree.wbar(node) > memory) {
      std::ostringstream os;
      os << "memory exceeded at step " << t << " (node " << node << "): active "
         << active_resident << " + wbar " << tree.wbar(node) << " > M " << memory;
      return os.str();
    }
    if (node != tree.root()) active_resident += tree.weight(node) - io[idx(node)];
    (void)pos;
  }
  return std::nullopt;
}

std::vector<Weight> memory_profile(const Tree& tree, const Schedule& schedule) {
  std::vector<Weight> profile(schedule.size(), 0);
  Weight active = 0;  // resident outputs of active nodes (no I/O performed)
  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];
    for (const NodeId c : tree.children(node)) active -= tree.weight(c);
    profile[t] = active + tree.wbar(node);
    if (node != tree.root()) active += tree.weight(node);
  }
  return profile;
}

Weight peak_memory(const Tree& tree, const Schedule& schedule) {
  const std::vector<Weight> profile = memory_profile(tree, schedule);
  return profile.empty() ? 0 : *std::max_element(profile.begin(), profile.end());
}

}  // namespace ooctree::core
