// Exact exponential-time solvers used as test oracles.
//
// By Theorem 1, the I/O-optimal traversal pairs some topological order with
// FiF evictions, so enumerating all topological orders and simulating FiF
// on each yields the exact MinIO optimum. The same enumeration gives the
// exact MinMem optimum. Both are restricted to small trees (the number of
// linear extensions explodes) and guarded by a size limit.
#pragma once

#include <functional>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Calls `visit` with every topological order of the tree. Intended for
/// trees of at most ~12 nodes; throws std::invalid_argument beyond
/// `max_nodes` as a foot-gun guard.
void for_each_topological_order(const Tree& tree, const std::function<void(const Schedule&)>& visit,
                                std::size_t max_nodes = 12);

/// Result of an exhaustive search.
struct BruteForceResult {
  Weight objective = 0;  ///< optimal I/O volume or peak memory
  Schedule schedule;     ///< a witness order
};

/// Exact MinIO optimum: min over topological orders of the FiF I/O volume.
[[nodiscard]] BruteForceResult brute_force_min_io(const Tree& tree, Weight memory,
                                                  std::size_t max_nodes = 12);

/// Exact MinMem optimum: min over topological orders of the peak memory.
[[nodiscard]] BruteForceResult brute_force_min_peak(const Tree& tree, std::size_t max_nodes = 12);

}  // namespace ooctree::core
