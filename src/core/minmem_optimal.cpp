#include "src/core/minmem_optimal.hpp"

#include <algorithm>
#include <list>
#include <queue>

namespace ooctree::core {

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

/// One hill-valley segment with the schedule chunk(s) it executes.
struct Segment {
  Weight hill = 0;
  Weight valley = 0;
  std::list<std::vector<NodeId>> chunks;  // spliceable schedule pieces
};

using SegSeq = std::vector<Segment>;

/// Appends `s` to `seq`, restoring the normalization invariant
/// (hills strictly decreasing, valleys strictly increasing) by merging
/// backwards. Merging two adjacent segments keeps the max hill and the
/// *later* valley — cutting at a valley that is not a running suffix
/// minimum, or before a hill that is not a running suffix maximum, never
/// helps the interleaving (Liu's normalization).
void push_normalized(SegSeq& seq, Segment&& s) {
  while (!seq.empty() && (seq.back().hill <= s.hill || seq.back().valley >= s.valley)) {
    Segment& back = seq.back();
    s.hill = std::max(s.hill, back.hill);
    s.chunks.splice(s.chunks.begin(), back.chunks);
    seq.pop_back();
  }
  seq.push_back(std::move(s));
}

/// Builds the normalized segment sequence of the subtree rooted at `node`
/// given the (already normalized) sequences of its children, consuming
/// them. `track_schedule` false skips all chunk bookkeeping.
SegSeq combine_node(const Tree& tree, NodeId node, std::vector<SegSeq*>& child_seqs,
                    bool track_schedule) {
  SegSeq out;

  if (child_seqs.size() == 1) {
    // Single child: reuse its sequence in place (keeps chains linear-time).
    out = std::move(*child_seqs.front());
  } else if (!child_seqs.empty()) {
    // K-way merge of children segments by non-increasing (hill - valley).
    // Ordering is optimal by Theorem 3; per-child order is preserved since
    // each normalized sequence has strictly decreasing (hill - valley).
    struct Head {
      Weight key;         // hill - valley of the child's next segment
      std::size_t child;  // index into child_seqs
      std::size_t pos;    // next segment within that child
      bool operator<(const Head& o) const {
        return key != o.key ? key < o.key : child > o.child;  // max-heap, stable tie-break
      }
    };
    std::priority_queue<Head> heads;
    for (std::size_t c = 0; c < child_seqs.size(); ++c) {
      const SegSeq& seq = *child_seqs[c];
      if (!seq.empty()) heads.push({seq[0].hill - seq[0].valley, c, 0});
    }
    std::vector<Weight> resident(child_seqs.size(), 0);
    Weight base = 0;  // total resident memory across all children
    while (!heads.empty()) {
      const Head h = heads.top();
      heads.pop();
      Segment& s = (*child_seqs[h.child])[h.pos];
      const Weight offset = base - resident[h.child];
      Segment abs;
      abs.hill = offset + s.hill;
      abs.valley = offset + s.valley;
      if (track_schedule) abs.chunks = std::move(s.chunks);
      base = abs.valley;
      resident[h.child] = s.valley;
      push_normalized(out, std::move(abs));
      const std::size_t next = h.pos + 1;
      if (next < child_seqs[h.child]->size()) {
        const Segment& n = (*child_seqs[h.child])[next];
        heads.push({n.hill - n.valley, h.child, next});
      }
    }
  }

  // The node's own execution: all children outputs are resident
  // (base == child_weight_sum), the transient peak is wbar, and the
  // subtree's final resident memory is the node's output.
  Segment own;
  own.hill = tree.wbar(node);
  own.valley = tree.weight(node);
  if (track_schedule) own.chunks.emplace_back(1, node);
  push_normalized(out, std::move(own));
  return out;
}

OptMinMemResult run(const Tree& tree, NodeId root, bool track_schedule,
                    std::vector<Weight>* all_peaks = nullptr) {
  std::vector<SegSeq> seqs(tree.size());
  const std::vector<NodeId> order = tree.postorder(root);
  for (const NodeId node : order) {
    std::vector<SegSeq*> child_seqs;
    child_seqs.reserve(tree.num_children(node));
    for (const NodeId c : tree.children(node)) child_seqs.push_back(&seqs[idx(c)]);
    seqs[idx(node)] = combine_node(tree, node, child_seqs, track_schedule);
    if (all_peaks != nullptr) {
      Weight p = 0;
      for (const Segment& s : seqs[idx(node)]) p = std::max(p, s.hill);
      (*all_peaks)[idx(node)] = p;
    }
    for (const NodeId c : tree.children(node)) {
      seqs[idx(c)].clear();
      seqs[idx(c)].shrink_to_fit();
    }
  }

  SegSeq& root_seq = seqs[idx(root)];
  OptMinMemResult result;
  result.peak = 0;
  for (const Segment& s : root_seq) result.peak = std::max(result.peak, s.hill);
  result.segments.reserve(root_seq.size());
  for (const Segment& s : root_seq) result.segments.emplace_back(s.hill, s.valley);
  if (track_schedule) {
    result.schedule.reserve(order.size());
    for (Segment& s : root_seq)
      for (const std::vector<NodeId>& chunk : s.chunks)
        result.schedule.insert(result.schedule.end(), chunk.begin(), chunk.end());
  }
  return result;
}

}  // namespace

OptMinMemResult opt_minmem(const Tree& tree, NodeId root) { return run(tree, root, true); }

Weight opt_minmem_peak(const Tree& tree, NodeId root) {
  return run(tree, root, false).peak;
}

std::vector<Weight> opt_minmem_all_peaks(const Tree& tree) {
  std::vector<Weight> peaks(tree.size(), 0);
  (void)run(tree, tree.root(), false, &peaks);
  return peaks;
}

}  // namespace ooctree::core
