#include "src/core/minmem_optimal.hpp"

#include <algorithm>

namespace ooctree::core {

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

/// Appends `s` to `seq`, restoring the normalization invariant
/// (hills strictly decreasing, valleys strictly increasing) by merging
/// backwards. Merging two adjacent segments keeps the max hill and the
/// *later* valley — cutting at a valley that is not a running suffix
/// minimum, or before a hill that is not a running suffix maximum, never
/// helps the interleaving (Liu's normalization). Chunk chains concatenate
/// with a single next[] write per absorbed segment.
void push_normalized(std::vector<NodeId>& next, std::vector<IncrementalMinMem::Segment>& seq,
                     IncrementalMinMem::Segment s) {
  while (!seq.empty() && (seq.back().hill <= s.hill || seq.back().valley >= s.valley)) {
    const IncrementalMinMem::Segment& back = seq.back();
    s.hill = std::max(s.hill, back.hill);
    next[idx(back.tail)] = s.head;
    s.head = back.head;
    seq.pop_back();
  }
  seq.push_back(s);
}

}  // namespace

void IncrementalMinMem::reserve(std::size_t n) {
  if (seq_.size() >= n) return;
  seq_.resize(n);
  next_.resize(n, kNoNode);
  valid_.resize(n, 0);
}

void IncrementalMinMem::combine(const Tree& tree, NodeId u, bool release_children) {
  reserve(tree.size());
  const auto kids = tree.children(u);
  std::vector<Segment> out;

  if (kids.size() == 1) {
    // Single child: reuse (release mode) or copy its sequence — keeps
    // chains linear-time either way.
    std::vector<Segment>& child_seq = seq_[idx(kids[0])];
    if (release_children) {
      out = std::move(child_seq);
    } else {
      out = child_seq;
    }
  } else if (kids.size() > 1) {
    // K-way merge of children segments by non-increasing (hill - valley).
    // Ordering is optimal by Theorem 3; per-child order is preserved since
    // each normalized sequence has strictly decreasing (hill - valley).
    heap_.clear();
    for (std::size_t c = 0; c < kids.size(); ++c) {
      const std::vector<Segment>& sq = seq_[idx(kids[c])];
      if (!sq.empty()) heap_.push_back({sq[0].hill - sq[0].valley, c, 0});
    }
    std::make_heap(heap_.begin(), heap_.end());
    resident_.assign(kids.size(), 0);
    Weight base = 0;  // total resident memory across all children
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end());
      const Head h = heap_.back();
      heap_.pop_back();
      const std::vector<Segment>& child_seq = seq_[idx(kids[h.child])];
      const Segment& s = child_seq[h.pos];
      const Weight offset = base - resident_[h.child];
      base = offset + s.valley;
      resident_[h.child] = s.valley;
      push_normalized(next_, out, Segment{offset + s.hill, offset + s.valley, s.head, s.tail});
      const std::size_t nxt = h.pos + 1;
      if (nxt < child_seq.size()) {
        heap_.push_back({child_seq[nxt].hill - child_seq[nxt].valley, h.child, nxt});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }

  // The node's own execution: all children outputs are resident
  // (base == child_weight_sum), the transient peak is wbar, and the
  // subtree's final resident memory is the node's output.
  push_normalized(next_, out, Segment{tree.wbar(u), tree.weight(u), u, u});
  seq_[idx(u)] = std::move(out);
  valid_[idx(u)] = 1;

  if (release_children) {
    for (const NodeId c : kids) {
      seq_[idx(c)] = {};
      valid_[idx(c)] = 0;
    }
  }
}

void IncrementalMinMem::ensure(const Tree& tree, NodeId r) {
  reserve(tree.size());
  if (has(r)) return;
  // Iterative DFS that never descends into cached subtrees: a valid node's
  // whole subtree is valid (combines happen bottom-up), so the visit count
  // is proportional to the newly combined nodes only.
  dfs_.clear();
  dfs_.emplace_back(r, 0);
  while (!dfs_.empty()) {
    auto& [node, next_child] = dfs_.back();
    const auto kids = tree.children(node);
    bool descended = false;
    while (next_child < kids.size()) {
      const NodeId c = kids[next_child++];
      if (!has(c)) {
        dfs_.emplace_back(c, 0);
        descended = true;
        break;
      }
    }
    if (descended) continue;
    const NodeId done = node;
    dfs_.pop_back();
    combine(tree, done, /*release_children=*/false);
  }
}

Weight IncrementalMinMem::peak(NodeId u) const {
  Weight p = 0;
  for (const Segment& s : seq_[idx(u)]) p = std::max(p, s.hill);
  return p;
}

void IncrementalMinMem::extract_schedule(NodeId u, Schedule& out) const {
  for (const Segment& s : seq_[idx(u)]) {
    for (NodeId x = s.head;; x = next_[idx(x)]) {
      out.push_back(x);
      if (x == s.tail) break;
    }
  }
}

namespace {

OptMinMemResult run(const Tree& tree, NodeId root, bool want_schedule,
                    std::vector<Weight>* all_peaks = nullptr) {
  IncrementalMinMem engine;
  engine.reserve(tree.size());
  const std::vector<NodeId> order = tree.postorder(root);
  for (const NodeId node : order) {
    // Release mode: children sequences are freed as soon as the parent
    // absorbed them, so the live set stays proportional to the combine
    // frontier (chains of 100k nodes must not retain 100k sequences).
    engine.combine(tree, node, /*release_children=*/true);
    if (all_peaks != nullptr) (*all_peaks)[idx(node)] = engine.peak(node);
  }

  const auto& root_seq = engine.sequence(root);
  OptMinMemResult result;
  result.peak = engine.peak(root);
  result.segments.reserve(root_seq.size());
  for (const auto& s : root_seq) result.segments.emplace_back(s.hill, s.valley);
  if (want_schedule) {
    result.schedule.reserve(order.size());
    engine.extract_schedule(root, result.schedule);
  }
  return result;
}

}  // namespace

OptMinMemResult opt_minmem(const Tree& tree, NodeId root) { return run(tree, root, true); }

Weight opt_minmem_peak(const Tree& tree, NodeId root) {
  return run(tree, root, false).peak;
}

std::vector<Weight> opt_minmem_all_peaks(const Tree& tree) {
  std::vector<Weight> peaks(tree.size(), 0);
  (void)run(tree, tree.root(), false, &peaks);
  return peaks;
}

}  // namespace ooctree::core
