#include "src/core/atomic_io.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/brute_force.hpp"
#include "src/core/minio_postorder.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/core/rec_expand.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

AtomicIoResult simulate_atomic(const Tree& tree, const Schedule& schedule, Weight memory,
                               AtomicVictimRule rule) {
  if (!is_topological_order(tree, schedule))
    throw std::invalid_argument("simulate_atomic: schedule is not a topological order");
  const std::vector<std::size_t> pos = schedule_positions(tree, schedule);

  AtomicIoResult result;
  result.io.assign(tree.size(), 0);

  // Resident data: produced, not consumed, not spilled.
  std::vector<bool> resident(tree.size(), false);
  Weight resident_total = 0;

  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];

    // Children leave the resident set (consumed now; spilled ones are read
    // back for free in volume terms — only writes count).
    for (const NodeId c : tree.children(node)) {
      if (resident[idx(c)]) {
        resident[idx(c)] = false;
        resident_total -= tree.weight(c);
      }
    }

    const Weight budget = memory - tree.wbar(node);
    if (budget < 0) return result;  // infeasible: single task exceeds M

    while (resident_total > budget) {
      // Collect evictable data (resident, positive size). Zero-weight data
      // never help and never hurt; skip them.
      NodeId victim = kNoNode;
      const Weight deficit = resident_total - budget;
      for (std::size_t k = 0; k < tree.size(); ++k) {
        if (!resident[k] || tree.weight(static_cast<NodeId>(k)) == 0) continue;
        const auto cand = static_cast<NodeId>(k);
        if (victim == kNoNode) {
          victim = cand;
          continue;
        }
        const Weight wc = tree.weight(cand);
        const Weight wv = tree.weight(victim);
        switch (rule) {
          case AtomicVictimRule::kFurthestInFuture:
            if (pos[idx(tree.parent(cand))] > pos[idx(tree.parent(victim))]) victim = cand;
            break;
          case AtomicVictimRule::kSmallestSufficient: {
            const bool cand_fits = wc >= deficit;
            const bool vict_fits = wv >= deficit;
            if (cand_fits && vict_fits) {
              if (wc < wv) victim = cand;   // smallest datum covering the deficit
            } else if (cand_fits != vict_fits) {
              if (cand_fits) victim = cand;
            } else {
              if (wc > wv) victim = cand;   // none covers it: take the largest
            }
            break;
          }
          case AtomicVictimRule::kLargest:
            if (wc > wv) victim = cand;
            break;
          case AtomicVictimRule::kSmallest:
            if (wc < wv) victim = cand;
            break;
        }
      }
      if (victim == kNoNode) return result;  // nothing evictable: infeasible
      resident[idx(victim)] = false;
      resident_total -= tree.weight(victim);
      result.io[idx(victim)] = tree.weight(victim);
      result.io_volume += tree.weight(victim);
      ++result.spills;
    }

    if (node != tree.root() && tree.weight(node) > 0) {
      resident[idx(node)] = true;
      resident_total += tree.weight(node);
    }
  }
  result.feasible = true;
  return result;
}

AtomicBruteForceResult brute_force_min_io_atomic(const Tree& tree, Weight memory,
                                                 std::size_t max_nodes) {
  if (tree.size() > max_nodes)
    throw std::invalid_argument("brute_force_min_io_atomic: tree too large");

  // Candidate spill nodes: everything except the root (the root's output
  // is never consumed, spilling it is pure waste).
  std::vector<NodeId> candidates;
  for (std::size_t k = 0; k < tree.size(); ++k)
    if (static_cast<NodeId>(k) != tree.root()) candidates.push_back(static_cast<NodeId>(k));

  AtomicBruteForceResult best;
  bool found = false;

  for_each_topological_order(
      tree,
      [&](const Schedule& schedule) {
        // For this order, test every spill subset (cheapest first would
        // need sorting; a running best-bound prune suffices at this size).
        const std::vector<std::size_t> pos = schedule_positions(tree, schedule);
        const std::size_t subsets = std::size_t{1} << candidates.size();
        for (std::size_t mask = 0; mask < subsets; ++mask) {
          Weight volume = 0;
          IoFunction io(tree.size(), 0);
          for (std::size_t b = 0; b < candidates.size(); ++b) {
            if (mask & (std::size_t{1} << b)) {
              io[idx(candidates[b])] = tree.weight(candidates[b]);
              volume += tree.weight(candidates[b]);
            }
          }
          if (found && volume >= best.io_volume) continue;
          if (!validate_traversal(tree, schedule, io, memory).has_value()) {
            best.io_volume = volume;
            best.schedule = schedule;
            best.io = std::move(io);
            found = true;
          }
        }
      },
      max_nodes);
  if (!found)
    throw std::runtime_error("brute_force_min_io_atomic: no feasible traversal (M < max wbar?)");
  return best;
}

AtomicIoResult atomic_heuristic(const Tree& tree, Weight memory) {
  std::vector<Schedule> schedules;
  schedules.push_back(opt_minmem(tree).schedule);
  schedules.push_back(postorder_minio(tree, memory).schedule);
  schedules.push_back(rec_expand2(tree, memory).schedule);

  AtomicIoResult best;
  for (const Schedule& s : schedules) {
    for (const AtomicVictimRule rule :
         {AtomicVictimRule::kFurthestInFuture, AtomicVictimRule::kSmallestSufficient}) {
      const AtomicIoResult r = simulate_atomic(tree, s, memory, rule);
      if (!r.feasible) continue;
      if (!best.feasible || r.io_volume < best.io_volume) best = r;
    }
  }
  return best;
}

}  // namespace ooctree::core
