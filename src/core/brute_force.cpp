#include "src/core/brute_force.hpp"

#include <stdexcept>

#include "src/core/fif_simulator.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

struct Enumerator {
  const Tree& tree;
  const std::function<void(const Schedule&)>& visit;
  Schedule current;
  std::vector<NodeId> ready;                // executable nodes (all children done)
  std::vector<std::size_t> remaining_kids;  // children not yet executed

  void recurse() {
    if (current.size() == tree.size()) {
      visit(current);
      return;
    }
    // Try each currently ready node in turn.
    for (std::size_t k = 0; k < ready.size(); ++k) {
      const NodeId node = ready[k];
      // Execute `node`: swap-remove from ready, maybe enable the parent.
      std::swap(ready[k], ready.back());
      ready.pop_back();
      current.push_back(node);
      const NodeId parent = tree.parent(node);
      bool enabled = false;
      if (parent != kNoNode && --remaining_kids[idx(parent)] == 0) {
        ready.push_back(parent);
        enabled = true;
      }

      recurse();

      // Undo.
      if (enabled) ready.pop_back();
      if (parent != kNoNode) ++remaining_kids[idx(parent)];
      current.pop_back();
      ready.push_back(node);
      std::swap(ready[k], ready.back());
    }
  }
};

}  // namespace

void for_each_topological_order(const Tree& tree, const std::function<void(const Schedule&)>& visit,
                                std::size_t max_nodes) {
  if (tree.size() > max_nodes)
    throw std::invalid_argument("for_each_topological_order: tree too large for enumeration");
  Enumerator e{tree, visit, {}, {}, {}};
  e.current.reserve(tree.size());
  e.remaining_kids.assign(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    e.remaining_kids[i] = tree.num_children(static_cast<NodeId>(i));
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (e.remaining_kids[i] == 0) e.ready.push_back(static_cast<NodeId>(i));
  e.recurse();
}

BruteForceResult brute_force_min_io(const Tree& tree, Weight memory, std::size_t max_nodes) {
  BruteForceResult best;
  bool found = false;
  for_each_topological_order(
      tree,
      [&](const Schedule& s) {
        const FifResult r = simulate_fif(tree, s, memory);
        if (!r.feasible) return;
        if (!found || r.io_volume < best.objective) {
          best.objective = r.io_volume;
          best.schedule = s;
          found = true;
        }
      },
      max_nodes);
  if (!found) throw std::runtime_error("brute_force_min_io: no feasible schedule (M < max wbar?)");
  return best;
}

BruteForceResult brute_force_min_peak(const Tree& tree, std::size_t max_nodes) {
  BruteForceResult best;
  bool found = false;
  for_each_topological_order(
      tree,
      [&](const Schedule& s) {
        const Weight p = peak_memory(tree, s);
        if (!found || p < best.objective) {
          best.objective = p;
          best.schedule = s;
          found = true;
        }
      },
      max_nodes);
  return best;
}

}  // namespace ooctree::core
