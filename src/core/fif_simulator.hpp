// Furthest-in-the-Future eviction simulator (paper, Theorem 1).
//
// Given a schedule sigma and a memory bound M, the I/O function tau that
// minimizes written volume is obtained by evicting, whenever memory is
// short, from the active data whose parent executes latest in sigma
// (Belady's rule transposed to task trees). This simulator computes that
// optimal tau and its total volume; by Theorem 1 the result equals the best
// I/O volume achievable with the given schedule, so
//   min over all topological sigma of simulate_fif(...).io_volume
// is the exact MinIO optimum.
#pragma once

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Outcome of a FiF simulation.
struct FifResult {
  bool feasible = false;      ///< false iff some wbar(i) alone exceeds M
  Weight io_volume = 0;       ///< total written volume (the MinIO objective)
  IoFunction io;              ///< per-node written amounts tau(i)
  Weight peak_resident = 0;   ///< largest resident memory observed (<= M when feasible)
  std::int64_t evictions = 0; ///< number of (partial) eviction events
};

/// Runs sigma under memory bound M with FiF evictions and returns the
/// optimal tau for that schedule. The schedule must be topological
/// (checked; throws std::invalid_argument otherwise).
[[nodiscard]] FifResult simulate_fif(const Tree& tree, const Schedule& schedule, Weight memory);

/// Convenience: the I/O volume of a schedule under FiF, or -1 if infeasible.
[[nodiscard]] Weight fif_io_volume(const Tree& tree, const Schedule& schedule, Weight memory);

}  // namespace ooctree::core
