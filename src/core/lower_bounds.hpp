// Lower bounds on the MinIO optimum, used in tests and benches to sanity
// check every heuristic from below.
#pragma once

#include "src/core/tree.hpp"

namespace ooctree::core {

/// LB of Section 6.1: the smallest memory bound under which the tree is
/// processable at all (max over nodes of wbar).
[[nodiscard]] inline Weight minimum_memory(const Tree& tree) { return tree.min_feasible_memory(); }

/// Peak-gap bound: any traversal with I/O function tau executes its
/// schedule with full data sizes bounded by M + sum(tau), so
///   OPT_io >= max(0, opt_minmem_peak - M).
/// Cheap but often loose; exact on trees where one write suffices.
[[nodiscard]] Weight io_lower_bound_peak_gap(const Tree& tree, Weight memory);

/// Exact optimum for homogeneous trees (Theorem 4 / W(T)); forwards to the
/// Section 4.2 labels. Throws if the tree is not homogeneous.
[[nodiscard]] Weight io_lower_bound_homogeneous(const Tree& tree, Weight memory);

}  // namespace ooctree::core
