#include "src/core/minmem_postorder.hpp"

#include <algorithm>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

PostOrderMinMemResult postorder_minmem(const Tree& tree, NodeId root) {
  PostOrderMinMemResult result;
  result.storage.assign(tree.size(), 0);
  // sorted_children[i]: children of i ordered by non-increasing S_j - w_j,
  // filled once S values of all children are known (postorder sweep).
  std::vector<std::vector<NodeId>> sorted_children(tree.size());

  const std::vector<NodeId> order = tree.postorder(root);
  for (const NodeId i : order) {
    const auto kids = tree.children(i);
    auto& sorted = sorted_children[idx(i)];
    sorted.assign(kids.begin(), kids.end());
    std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
      return result.storage[idx(a)] - tree.weight(a) > result.storage[idx(b)] - tree.weight(b);
    });
    Weight s = tree.weight(i);
    Weight before = 0;  // sum of w_k over already-finished siblings
    for (const NodeId j : sorted) {
      s = std::max(s, result.storage[idx(j)] + before);
      before += tree.weight(j);
    }
    // Executing i itself needs wbar(i) = max(w_i, sum of children weights);
    // the "before" total after the loop equals the children sum, and the
    // last child's S_j >= w_j makes the max above already cover it, but the
    // explicit bound keeps single-node subtrees correct too.
    s = std::max(s, tree.wbar(i));
    result.storage[idx(i)] = s;
  }
  result.peak = result.storage[idx(root)];

  // Emit the postorder defined by the sorted children (iterative DFS).
  result.schedule.reserve(order.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& sorted = sorted_children[idx(node)];
    if (next < sorted.size()) {
      stack.emplace_back(sorted[next++], 0);
    } else {
      result.schedule.push_back(node);
      stack.pop_back();
    }
  }
  return result;
}

}  // namespace ooctree::core
