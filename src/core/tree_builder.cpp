#include "src/core/tree_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/tree_storage.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

std::pair<NodeId, NodeId> TreeBuilder::expand(NodeId i, Weight tau) {
  if (i < 0 || idx(i) >= t_.size()) throw std::invalid_argument("TreeBuilder::expand: bad node id");
  const Weight w = t_.arrays_.weight[idx(i)];
  if (tau < 0 || tau > w) throw std::invalid_argument("TreeBuilder::expand: tau out of range");

  const auto n = t_.size();
  // Private writable arena with room for the two appended nodes: promotes
  // shared or mapped storage (copy-on-write) and grows by doubling, so a
  // run of expansions stays amortized O(1) per append.
  t_.ensure_owned(n + 2);
  TreeArrays& a = t_.arrays_;

  const auto i2 = static_cast<NodeId>(n);
  const auto i3 = static_cast<NodeId>(n + 1);
  const NodeId p = a.parent[idx(i)];

  // Parent pointers: i -> i2 -> i3 -> p.
  a.parent[idx(i)] = i2;
  a.parent[idx(i2)] = i3;
  a.parent[idx(i3)] = p;
  a.weight[idx(i2)] = w - tau;
  a.weight[idx(i3)] = w;

  // Children CSR. Inside p's span, i is replaced by i3; i3 carries the
  // largest id so it belongs at the span's end — shift the entries after i
  // left by one (from_parents keeps each span sorted by id). The appended
  // nodes i2 and i3 are the last parents, so their one-entry ranges go at
  // the tail of the adjacency array, exactly where from_parents would put
  // them.
  if (p == kNoNode) {
    t_.root_ = i3;
  } else {
    const auto b = static_cast<std::size_t>(a.child_offset[idx(p)]);
    const auto e = static_cast<std::size_t>(a.child_offset[idx(p) + 1]);
    NodeId* const span = a.child_list;
    const auto it = std::find(span + b, span + e, i);
    std::copy(it + 1, span + e, it);
    span[e - 1] = i3;
  }
  const std::int64_t edges = a.child_offset[n];  // CSR invariant: n - 1 edges
  a.child_list[static_cast<std::size_t>(edges)] = i;       // i2's only child
  a.child_list[static_cast<std::size_t>(edges) + 1] = i2;  // i3's only child
  a.child_offset[n + 1] = edges + 1;
  a.child_offset[n + 2] = edges + 2;

  // Derived quantities. i keeps its children and weight, so wbar(i) is
  // unchanged; p swaps a child of weight w for another of weight w, so
  // child_sum(p) and wbar(p) are unchanged too.
  const auto bar = [&](Weight own, Weight children_sum) {
    return t_.model_ == MemoryModel::kMaxInOut ? std::max(own, children_sum) : own + children_sum;
  };
  a.child_sum[idx(i2)] = w;        // i2's child is i (weight w)
  a.child_sum[idx(i3)] = w - tau;  // i3's child is i2
  a.wbar[idx(i2)] = bar(w - tau, w);
  a.wbar[idx(i3)] = bar(w, w - tau);
  t_.max_wbar_ = std::max({t_.max_wbar_, a.wbar[idx(i2)], a.wbar[idx(i3)]});
  t_.total_weight_ += (w - tau) + w;
  t_.size_ = n + 2;
  return {i2, i3};
}

}  // namespace ooctree::core
