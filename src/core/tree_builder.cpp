#include "src/core/tree_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

std::pair<NodeId, NodeId> TreeBuilder::expand(NodeId i, Weight tau) {
  if (i < 0 || idx(i) >= t_.size()) throw std::invalid_argument("TreeBuilder::expand: bad node id");
  const Weight w = t_.weight_[idx(i)];
  if (tau < 0 || tau > w) throw std::invalid_argument("TreeBuilder::expand: tau out of range");

  const auto n = t_.size();
  const auto i2 = static_cast<NodeId>(n);
  const auto i3 = static_cast<NodeId>(n + 1);
  const NodeId p = t_.parent_[idx(i)];

  // Parent pointers: i -> i2 -> i3 -> p.
  t_.parent_[idx(i)] = i2;
  t_.parent_.push_back(i3);  // parent of i2
  t_.parent_.push_back(p);   // parent of i3
  t_.weight_.push_back(w - tau);
  t_.weight_.push_back(w);

  // Children CSR. Inside p's span, i is replaced by i3; i3 carries the
  // largest id so it belongs at the span's end — shift the entries after i
  // left by one (from_parents keeps each span sorted by id). The appended
  // nodes i2 and i3 are the last parents, so their one-entry ranges go at
  // the tail of the adjacency array, exactly where from_parents would put
  // them.
  if (p == kNoNode) {
    t_.root_ = i3;
  } else {
    const auto b = static_cast<std::size_t>(t_.child_offset_[idx(p)]);
    const auto e = static_cast<std::size_t>(t_.child_offset_[idx(p) + 1]);
    auto* const span = t_.child_list_.data();
    const auto it = std::find(span + b, span + e, i);
    std::copy(it + 1, span + e, it);
    span[e - 1] = i3;
  }
  const auto edges = static_cast<std::int64_t>(t_.child_list_.size());
  t_.child_list_.push_back(i);   // i2's only child
  t_.child_list_.push_back(i2);  // i3's only child
  t_.child_offset_.push_back(edges + 1);
  t_.child_offset_.push_back(edges + 2);

  // Derived quantities. i keeps its children and weight, so wbar(i) is
  // unchanged; p swaps a child of weight w for another of weight w, so
  // child_sum(p) and wbar(p) are unchanged too.
  const auto bar = [&](Weight own, Weight children_sum) {
    return t_.model_ == MemoryModel::kMaxInOut ? std::max(own, children_sum) : own + children_sum;
  };
  t_.child_sum_.push_back(w);        // i2's child is i (weight w)
  t_.child_sum_.push_back(w - tau);  // i3's child is i2
  t_.wbar_.push_back(bar(w - tau, w));
  t_.wbar_.push_back(bar(w, w - tau));
  t_.max_wbar_ = std::max({t_.max_wbar_, t_.wbar_[idx(i2)], t_.wbar_[idx(i3)]});
  t_.total_weight_ += (w - tau) + w;
  return {i2, i3};
}

}  // namespace ooctree::core
