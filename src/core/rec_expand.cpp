#include "src/core/rec_expand.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "src/core/minmem_optimal.hpp"

namespace ooctree::core {

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

/// Scratch buffers for the incremental expand-and-retry loop, reused
/// across iterations so the hot path performs no steady-state allocation.
struct SubtreeScratch {
  Schedule post;                  // rank -> expanded id (subtree postorder)
  std::vector<NodeId> rank_of;    // expanded id -> rank (subtree entries only)
  Schedule sched;                 // optimal schedule, expanded ids
  std::vector<std::size_t> pos;   // rank -> schedule position
  std::vector<Weight> resident;   // rank -> resident units of the node's output
  std::vector<Weight> io;         // rank -> FiF write amount
  std::vector<char> in_active;    // rank -> currently in the active set
  std::vector<std::uint64_t> heap;  // packed (parent_step << 32 | rank) max-heap
};

/// FiF simulation of `scratch.sched` restricted to subtree(sr) of the
/// expanded tree, in the *rank* domain — rank k is exactly the id node
/// post[k] would have in the standalone subtree the reference path
/// extracts, so eviction tie-breaking (and therefore the resulting tau)
/// matches simulate_fif on that subtree bit for bit. The active set is a
/// lazy-deletion max-heap instead of std::set. Mirrors simulate_fif's
/// infeasibility behaviour: on budget underflow it returns immediately,
/// keeping the partial io accumulated so far.
void subtree_fif(const Tree& tree, NodeId sr, Weight memory, SubtreeScratch& scratch) {
  const std::size_t s = scratch.post.size();
  scratch.pos.assign(s, 0);
  for (std::size_t t = 0; t < s; ++t) scratch.pos[idx(scratch.rank_of[idx(scratch.sched[t])])] = t;
  scratch.resident.assign(s, 0);
  scratch.io.assign(s, 0);
  scratch.in_active.assign(s, 0);
  scratch.heap.clear();
  Weight active_resident = 0;

  for (std::size_t t = 0; t < s; ++t) {
    const NodeId node = scratch.sched[t];
    const NodeId rank = scratch.rank_of[idx(node)];

    // The children of `node` are consumed now: bring evicted parts back
    // (reads are not counted; write volume was charged at eviction time)
    // and remove them from the active set.
    for (const NodeId c : tree.children(node)) {
      const NodeId crank = scratch.rank_of[idx(c)];
      if (scratch.resident[idx(crank)] > 0) {
        scratch.in_active[idx(crank)] = 0;
        active_resident -= scratch.resident[idx(crank)];
      }
      scratch.resident[idx(crank)] = tree.weight(c);  // fully read back for execution
    }

    // Memory required while executing `node`: its own transient wbar plus
    // everything else resident. Evict furthest-in-the-future data first.
    const Weight budget = memory - tree.wbar(node);
    if (budget < 0) return;  // infeasible within the subtree: keep partial io
    while (active_resident > budget) {
      const auto vrank = static_cast<NodeId>(scratch.heap.front() & 0xffffffffu);
      if (!scratch.in_active[idx(vrank)]) {  // stale (consumed or fully evicted)
        std::pop_heap(scratch.heap.begin(), scratch.heap.end());
        scratch.heap.pop_back();
        continue;
      }
      const Weight excess = active_resident - budget;
      const Weight amount = std::min(excess, scratch.resident[idx(vrank)]);
      scratch.resident[idx(vrank)] -= amount;
      active_resident -= amount;
      scratch.io[idx(vrank)] += amount;
      if (scratch.resident[idx(vrank)] == 0) {
        scratch.in_active[idx(vrank)] = 0;
        std::pop_heap(scratch.heap.begin(), scratch.heap.end());
        scratch.heap.pop_back();
      }
    }

    // The node's output is now resident; it becomes active until its parent
    // runs (the subtree root's output simply stays resident).
    scratch.resident[idx(rank)] = tree.weight(node);
    if (node != sr) {
      const NodeId prank = scratch.rank_of[idx(tree.parent(node))];
      scratch.heap.push_back(static_cast<std::uint64_t>(scratch.pos[idx(prank)]) << 32 |
                             static_cast<std::uint32_t>(rank));
      std::push_heap(scratch.heap.begin(), scratch.heap.end());
      scratch.in_active[idx(rank)] = 1;
      active_resident += tree.weight(node);
    }
  }
}

/// The victim-selection scan of Algorithm 2, in the rank domain (identical
/// iteration order and keys as the reference path's scan over sub ids).
NodeId select_victim(const Tree& tree, const RecExpandOptions& options,
                     const SubtreeScratch& scratch) {
  NodeId victim = kNoNode;
  std::int64_t victim_key = 0;
  for (std::size_t k = 0; k < scratch.io.size(); ++k) {
    if (scratch.io[k] <= 0) continue;
    const auto krank = static_cast<NodeId>(k);
    // tau > 0 => non-root of the subtree, so the parent is inside it.
    const NodeId prank = scratch.rank_of[idx(tree.parent(scratch.post[k]))];
    std::int64_t key = 0;
    switch (options.victim_rule) {
      case VictimRule::kLatestParent:
        key = static_cast<std::int64_t>(scratch.pos[idx(prank)]);
        break;
      case VictimRule::kEarliestParent:
        key = -static_cast<std::int64_t>(scratch.pos[idx(prank)]);
        break;
      case VictimRule::kLargestIo:
        key = scratch.io[k];
        break;
      case VictimRule::kFirstScheduled:
        key = -static_cast<std::int64_t>(scratch.pos[k]);
        break;
    }
    if (victim == kNoNode || key > victim_key) {
      victim = krank;
      victim_key = key;
    }
  }
  return victim;
}

}  // namespace

RecExpandResult rec_expand(const Tree& tree, Weight memory, const RecExpandOptions& options) {
  // Exact optimal peaks of every original subtree, one bottom-up pass.
  // Peaks are monotone along the tree, so a subtree whose peak fits in
  // memory contains no expansion work anywhere below it either, and its
  // expanded counterpart is untouched — skip it without running anything.
  return rec_expand(tree, memory, options, opt_minmem_all_peaks(tree));
}

RecExpandResult rec_expand(const Tree& tree, Weight memory, const RecExpandOptions& options,
                           const std::vector<Weight>& orig_peak) {
  if (orig_peak.size() != tree.size())
    throw std::invalid_argument("rec_expand: orig_peaks size does not match the tree");
  RecExpandResult result;

  ExpandedTree expanded = ExpandedTree::identity(tree);
  // top_rep[r]: the highest node of the expanded tree whose origin is r
  // (the outermost i3 once r's data has been expanded). The expanded
  // counterpart of the original subtree rooted at r is rooted there.
  std::vector<NodeId> top_rep(tree.size());
  for (std::size_t k = 0; k < tree.size(); ++k) top_rep[k] = static_cast<NodeId>(k);

  IncrementalMinMem engine;
  engine.reserve(tree.size());
  SubtreeScratch scratch;
  std::size_t total_expansions = 0;

  const std::vector<NodeId> order = tree.postorder();
  for (const NodeId r : order) {
    if (orig_peak[idx(r)] <= memory) continue;

    // Expand-and-retry loop of Algorithm 2 on the (expanded) subtree of r.
    // sr is stable across the loop: the victim always has tau > 0, hence a
    // parent inside the subtree, so it is never the subtree root itself.
    const NodeId sr = top_rep[idx(r)];
    engine.ensure(expanded.tree, sr);  // combines only not-yet-cached nodes
    std::size_t node_expansions = 0;
    for (;;) {
      if (engine.peak(sr) <= memory) break;
      if (node_expansions >= options.max_expansions_per_node) break;
      if (total_expansions >= options.global_expansion_cap) break;

      // Rank mapping: rank k == the id node post[k] would carry in the
      // standalone Tree the reference path extracts with Tree::subtree.
      scratch.post = expanded.tree.postorder(sr);
      if (scratch.rank_of.size() < expanded.tree.size())
        scratch.rank_of.resize(expanded.tree.size(), kNoNode);
      for (std::size_t k = 0; k < scratch.post.size(); ++k)
        scratch.rank_of[idx(scratch.post[k])] = static_cast<NodeId>(k);

      // FiF on the cached optimal schedule identifies where I/O is
      // unavoidable; force the victim selected by the configured rule into
      // the tree (the paper: the node whose parent executes latest).
      scratch.sched.clear();
      engine.extract_schedule(sr, scratch.sched);
      subtree_fif(expanded.tree, sr, memory, scratch);
      const NodeId victim = select_victim(expanded.tree, options, scratch);
      if (victim == kNoNode) break;  // peak > M but no I/O was forced: done

      const NodeId victim_in_expanded = scratch.post[idx(victim)];
      const NodeId victim_origin = expanded.origin[idx(victim_in_expanded)];
      const bool was_top = victim_in_expanded == top_rep[idx(victim_origin)];
      const auto [i2, i3] =
          expanded.expand_in_place(victim_in_expanded, scratch.io[idx(victim)]);
      // Dirty path: the expansion changed the tree only along
      // victim -> i2 -> i3 -> old parent; every node's cached sequence
      // outside that ancestor path is still exact. Recombine bottom-up.
      engine.combine(expanded.tree, i2);
      engine.combine(expanded.tree, i3);
      for (NodeId u = expanded.tree.parent(i3);; u = expanded.tree.parent(u)) {
        engine.combine(expanded.tree, u);
        if (u == sr) break;
      }
      if (was_top) {
        // The new i3 — appended last — replaces the victim at the top of
        // its origin's expansion chain.
        top_rep[idx(victim_origin)] = i3;
      }
      ++node_expansions;
      ++total_expansions;
    }
  }

  // Final OptMinMem of the fully expanded tree, straight from the cache:
  // only the nodes above the processed subtrees still need combining.
  const NodeId root = expanded.tree.root();
  engine.ensure(expanded.tree, root);
  result.final_peak = engine.peak(root);
  Schedule final_schedule;
  final_schedule.reserve(expanded.tree.size());
  engine.extract_schedule(root, final_schedule);
  result.schedule = expanded.map_schedule(final_schedule);
  result.evaluation = simulate_fif(tree, result.schedule, memory);
  result.expansion_volume = expanded.expansion_volume;
  result.expansions = total_expansions;
  return result;
}

RecExpandResult rec_expand_reference(const Tree& tree, Weight memory,
                                     const RecExpandOptions& options) {
  RecExpandResult result;

  ExpandedTree expanded = ExpandedTree::identity(tree);
  std::vector<NodeId> top_rep(tree.size());
  for (std::size_t k = 0; k < tree.size(); ++k) top_rep[k] = static_cast<NodeId>(k);

  const std::vector<Weight> orig_peak = opt_minmem_all_peaks(tree);

  std::size_t total_expansions = 0;

  const std::vector<NodeId> order = tree.postorder();
  for (const NodeId r : order) {
    if (orig_peak[idx(r)] <= memory) continue;

    std::size_t node_expansions = 0;
    for (;;) {
      std::vector<NodeId> old_ids;
      const Tree sub = expanded.tree.subtree(top_rep[idx(r)], &old_ids);
      const OptMinMemResult opt = opt_minmem(sub);
      if (opt.peak <= memory) break;
      if (node_expansions >= options.max_expansions_per_node) break;
      if (total_expansions >= options.global_expansion_cap) break;

      const FifResult fif = simulate_fif(sub, opt.schedule, memory);
      const std::vector<std::size_t> pos = schedule_positions(sub, opt.schedule);
      NodeId victim = kNoNode;
      std::int64_t victim_key = 0;
      for (std::size_t k = 0; k < sub.size(); ++k) {
        if (fif.io[k] <= 0) continue;
        const NodeId knode = static_cast<NodeId>(k);
        const NodeId parent = sub.parent(knode);  // tau>0 => non-root
        std::int64_t key = 0;
        switch (options.victim_rule) {
          case VictimRule::kLatestParent:
            key = static_cast<std::int64_t>(pos[idx(parent)]);
            break;
          case VictimRule::kEarliestParent:
            key = -static_cast<std::int64_t>(pos[idx(parent)]);
            break;
          case VictimRule::kLargestIo:
            key = fif.io[k];
            break;
          case VictimRule::kFirstScheduled:
            key = -static_cast<std::int64_t>(pos[k]);
            break;
        }
        if (victim == kNoNode || key > victim_key) {
          victim = knode;
          victim_key = key;
        }
      }
      if (victim == kNoNode) break;  // peak > M but no I/O was forced: done

      const NodeId victim_in_expanded = old_ids[idx(victim)];
      const NodeId victim_origin = expanded.origin[idx(victim_in_expanded)];
      const bool was_top = victim_in_expanded == top_rep[idx(victim_origin)];
      expanded = expanded.expand_rebuild(victim_in_expanded, fif.io[idx(victim)]);
      if (was_top) {
        top_rep[idx(victim_origin)] = static_cast<NodeId>(expanded.tree.size() - 1);
      }
      ++node_expansions;
      ++total_expansions;
    }
  }

  const OptMinMemResult final_opt = opt_minmem(expanded.tree);
  result.final_peak = final_opt.peak;
  result.schedule = expanded.map_schedule(final_opt.schedule);
  result.evaluation = simulate_fif(tree, result.schedule, memory);
  result.expansion_volume = expanded.expansion_volume;
  result.expansions = total_expansions;
  return result;
}

}  // namespace ooctree::core
