#include "src/core/rec_expand.hpp"

#include <algorithm>

#include "src/core/minmem_optimal.hpp"

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }
}  // namespace

RecExpandResult rec_expand(const Tree& tree, Weight memory, const RecExpandOptions& options) {
  RecExpandResult result;

  ExpandedTree expanded = ExpandedTree::identity(tree);
  // top_rep[r]: the highest node of the expanded tree whose origin is r
  // (the outermost i3 once r's data has been expanded). The expanded
  // counterpart of the original subtree rooted at r is rooted there.
  std::vector<NodeId> top_rep(tree.size());
  for (std::size_t k = 0; k < tree.size(); ++k) top_rep[k] = static_cast<NodeId>(k);

  // Exact optimal peaks of every original subtree, one bottom-up pass.
  // Peaks are monotone along the tree, so a subtree whose peak fits in
  // memory contains no expansion work anywhere below it either, and its
  // expanded counterpart is untouched — skip it without running anything.
  const std::vector<Weight> orig_peak = opt_minmem_all_peaks(tree);

  std::size_t total_expansions = 0;

  const std::vector<NodeId> order = tree.postorder();
  for (const NodeId r : order) {
    if (orig_peak[idx(r)] <= memory) continue;

    // Expand-and-retry loop of Algorithm 2 on the (expanded) subtree of r.
    std::size_t node_expansions = 0;
    for (;;) {
      std::vector<NodeId> old_ids;
      const Tree sub = expanded.tree.subtree(top_rep[idx(r)], &old_ids);
      const OptMinMemResult opt = opt_minmem(sub);
      if (opt.peak <= memory) break;
      if (node_expansions >= options.max_expansions_per_node) break;
      if (total_expansions >= options.global_expansion_cap) break;

      // FiF on the optimal schedule identifies where I/O is unavoidable;
      // force the victim selected by the configured rule into the tree
      // (the paper: the node whose parent executes latest).
      const FifResult fif = simulate_fif(sub, opt.schedule, memory);
      const std::vector<std::size_t> pos = schedule_positions(sub, opt.schedule);
      NodeId victim = kNoNode;
      std::int64_t victim_key = 0;
      for (std::size_t k = 0; k < sub.size(); ++k) {
        if (fif.io[k] <= 0) continue;
        const NodeId knode = static_cast<NodeId>(k);
        const NodeId parent = sub.parent(knode);  // tau>0 => non-root
        std::int64_t key = 0;
        switch (options.victim_rule) {
          case VictimRule::kLatestParent:
            key = static_cast<std::int64_t>(pos[idx(parent)]);
            break;
          case VictimRule::kEarliestParent:
            key = -static_cast<std::int64_t>(pos[idx(parent)]);
            break;
          case VictimRule::kLargestIo:
            key = fif.io[k];
            break;
          case VictimRule::kFirstScheduled:
            key = -static_cast<std::int64_t>(pos[k]);
            break;
        }
        if (victim == kNoNode || key > victim_key) {
          victim = knode;
          victim_key = key;
        }
      }
      if (victim == kNoNode) break;  // peak > M but no I/O was forced: done

      const NodeId victim_in_expanded = old_ids[idx(victim)];
      const NodeId victim_origin = expanded.origin[idx(victim_in_expanded)];
      const bool was_top = victim_in_expanded == top_rep[idx(victim_origin)];
      expanded = expanded.expand(victim_in_expanded, fif.io[idx(victim)]);
      if (was_top) {
        // The new i3 — appended last — replaces the victim at the top of
        // its origin's expansion chain.
        top_rep[idx(victim_origin)] = static_cast<NodeId>(expanded.tree.size() - 1);
      }
      ++node_expansions;
      ++total_expansions;
    }
  }

  const OptMinMemResult final_opt = opt_minmem(expanded.tree);
  result.final_peak = final_opt.peak;
  result.schedule = expanded.map_schedule(final_opt.schedule);
  result.evaluation = simulate_fif(tree, result.schedule, memory);
  result.expansion_volume = expanded.expansion_volume;
  result.expansions = total_expansions;
  return result;
}

}  // namespace ooctree::core
