#include "src/core/tree_storage.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define OOCTREE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define OOCTREE_HAVE_MMAP 0
#include <cstdio>
#endif

namespace ooctree::core {

namespace {

// Carves one arena block of `capacity` node slots into the six arrays.
// 8-byte arrays first so every pointer is naturally aligned inside an
// 8-aligned block; the layout is mirrored byte-for-byte by the .otree
// snapshot body (core/snapshot.cpp), which lets MappedStorage bind the
// same offsets straight into a mapped file.
TreeArrays carve(std::byte* base, std::size_t capacity) {
  const std::size_t c = capacity;
  TreeArrays a;
  a.weight = reinterpret_cast<Weight*>(base);
  a.child_sum = reinterpret_cast<Weight*>(base + 8 * c);
  a.wbar = reinterpret_cast<Weight*>(base + 16 * c);
  a.child_offset = reinterpret_cast<std::int64_t*>(base + 24 * c);
  a.parent = reinterpret_cast<NodeId*>(base + 32 * c + 8);
  a.child_list = reinterpret_cast<NodeId*>(base + 36 * c + 8);
  return a;
}

}  // namespace

std::size_t OwnedStorage::arena_bytes(std::size_t capacity) {
  // 3 Weight arrays + (capacity+1) CSR offsets, all 8 bytes, then
  // 2 NodeId arrays of 4 bytes.
  return 32 * capacity + 8 + 8 * capacity;
}

OwnedStorage::OwnedStorage(std::size_t capacity) {
  capacity_ = capacity;
  block_ = ::operator new(arena_bytes(capacity), std::align_val_t{alignof(std::int64_t)});
  arrays_ = carve(static_cast<std::byte*>(block_), capacity);
}

OwnedStorage::OwnedStorage(const TreeArrays& src, std::size_t nodes, std::size_t capacity)
    : OwnedStorage(capacity) {
  if (nodes > capacity) throw std::logic_error("OwnedStorage: clone larger than capacity");
  const std::size_t edges = nodes > 0 ? nodes - 1 : 0;
  std::memcpy(arrays_.weight, src.weight, sizeof(Weight) * nodes);
  std::memcpy(arrays_.child_sum, src.child_sum, sizeof(Weight) * nodes);
  std::memcpy(arrays_.wbar, src.wbar, sizeof(Weight) * nodes);
  std::memcpy(arrays_.child_offset, src.child_offset, sizeof(std::int64_t) * (nodes + 1));
  std::memcpy(arrays_.parent, src.parent, sizeof(NodeId) * nodes);
  if (edges > 0) std::memcpy(arrays_.child_list, src.child_list, sizeof(NodeId) * edges);
}

OwnedStorage::~OwnedStorage() {
  ::operator delete(block_, std::align_val_t{alignof(std::int64_t)});
}

MappedStorage::MappedStorage(const std::string& path) {
#if OOCTREE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("snapshot: cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("snapshot: cannot stat '" + path + "'");
  }
  length_ = static_cast<std::size_t>(st.st_size);
  if (length_ == 0) {
    ::close(fd);
    throw std::runtime_error("snapshot: empty file '" + path + "'");
  }
  base_ = ::mmap(nullptr, length_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    throw std::runtime_error("snapshot: cannot mmap '" + path + "'");
  }
#else
  // No mmap on this platform: read the whole file into an 8-aligned heap
  // block. Same bytes, same bind() offsets, just not zero-copy.
  heap_fallback_ = true;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("snapshot: cannot open '" + path + "'");
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (sz <= 0) {
    std::fclose(f);
    throw std::runtime_error("snapshot: empty file '" + path + "'");
  }
  length_ = static_cast<std::size_t>(sz);
  base_ = ::operator new(length_, std::align_val_t{alignof(std::int64_t)});
  const std::size_t got = std::fread(base_, 1, length_, f);
  std::fclose(f);
  if (got != length_) {
    ::operator delete(base_, std::align_val_t{alignof(std::int64_t)});
    base_ = nullptr;
    throw std::runtime_error("snapshot: short read from '" + path + "'");
  }
#endif
}

MappedStorage::~MappedStorage() {
  if (base_ == nullptr) return;
  if (heap_fallback_) {
    ::operator delete(base_, std::align_val_t{alignof(std::int64_t)});
  } else {
#if OOCTREE_HAVE_MMAP
    ::munmap(base_, length_);
#endif
  }
}

void MappedStorage::bind(const TreeArrays& arrays, std::size_t nodes) {
  arrays_ = arrays;
  capacity_ = nodes;
}

}  // namespace ooctree::core
