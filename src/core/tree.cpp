#include "src/core/tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace ooctree::core {

Tree Tree::from_parents(std::vector<NodeId> parent, std::vector<Weight> weight,
                        MemoryModel model) {
  if (parent.size() != weight.size())
    throw std::invalid_argument("Tree: parent/weight arrays differ in length");
  if (parent.empty()) throw std::invalid_argument("Tree: empty tree");
  const auto n = parent.size();
  const auto ni = static_cast<NodeId>(n);

  Tree t;
  t.parent_ = std::move(parent);
  t.weight_ = std::move(weight);
  t.model_ = model;

  t.root_ = kNoNode;
  for (NodeId i = 0; i < ni; ++i) {
    const NodeId p = t.parent_[idx(i)];
    if (p == kNoNode) {
      if (t.root_ != kNoNode) throw std::invalid_argument("Tree: multiple roots");
      t.root_ = i;
    } else if (p < 0 || p >= ni || p == i) {
      throw std::invalid_argument("Tree: invalid parent index");
    }
    if (t.weight_[idx(i)] < 0) throw std::invalid_argument("Tree: negative weight");
  }
  if (t.root_ == kNoNode) throw std::invalid_argument("Tree: no root");

  // Children CSR (counting sort keeps children ordered by increasing id).
  t.child_offset_.assign(n + 1, 0);
  for (NodeId i = 0; i < ni; ++i)
    if (t.parent_[idx(i)] != kNoNode) ++t.child_offset_[idx(t.parent_[idx(i)]) + 1];
  for (std::size_t j = 0; j < n; ++j) t.child_offset_[j + 1] += t.child_offset_[j];
  t.child_list_.assign(n - 1, kNoNode);
  std::vector<std::int64_t> cursor(t.child_offset_.begin(), t.child_offset_.end() - 1);
  for (NodeId i = 0; i < ni; ++i) {
    const NodeId p = t.parent_[idx(i)];
    if (p != kNoNode) t.child_list_[static_cast<std::size_t>(cursor[idx(p)]++)] = i;
  }

  // Acyclicity: every node must reach the root; equivalently the postorder
  // from the root must visit all n nodes.
  if (t.postorder(t.root_).size() != n)
    throw std::invalid_argument("Tree: parent array contains a cycle or disconnected part");

  t.child_sum_.assign(n, 0);
  t.wbar_.assign(n, 0);
  t.total_weight_ = 0;
  for (NodeId i = 0; i < ni; ++i) {
    Weight s = 0;
    for (const NodeId c : t.children(i)) s += t.weight_[idx(c)];
    t.child_sum_[idx(i)] = s;
    t.wbar_[idx(i)] =
        model == MemoryModel::kMaxInOut ? std::max(t.weight_[idx(i)], s) : t.weight_[idx(i)] + s;
    t.max_wbar_ = std::max(t.max_wbar_, t.wbar_[idx(i)]);
    t.total_weight_ += t.weight_[idx(i)];
  }
  return t;
}

std::vector<NodeId> Tree::postorder(NodeId r) const {
  std::vector<NodeId> out;
  out.reserve(size());
  // Iterative two-stack postorder: push node, then children; reverse at end
  // would give a mirrored order, so instead track per-node child progress.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(r, 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto kids = children(node);
    if (next_child < kids.size()) {
      const NodeId c = kids[next_child++];
      stack.emplace_back(c, 0);
    } else {
      out.push_back(node);
      stack.pop_back();
    }
  }
  return out;
}

std::size_t Tree::subtree_size(NodeId r) const { return postorder(r).size(); }

Tree Tree::with_memory_model(MemoryModel model) const {
  return from_parents(parent_, weight_, model);
}

Tree Tree::subtree(NodeId r, std::vector<NodeId>* old_ids) const {
  const std::vector<NodeId> order = postorder(r);
  std::vector<NodeId> new_id(size(), kNoNode);
  for (std::size_t k = 0; k < order.size(); ++k) new_id[idx(order[k])] = static_cast<NodeId>(k);

  std::vector<NodeId> parent(order.size(), kNoNode);
  std::vector<Weight> weight(order.size(), 0);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const NodeId old = order[k];
    weight[k] = weight_[idx(old)];
    if (old != r) parent[k] = new_id[idx(parent_[idx(old)])];
  }
  if (old_ids != nullptr) *old_ids = order;
  return from_parents(std::move(parent), std::move(weight), model_);
}

std::size_t Tree::depth() const {
  std::vector<std::size_t> d(size(), 0);
  std::size_t best = 0;
  // Parents first: walk a reverse postorder.
  const std::vector<NodeId> order = postorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId i = *it;
    d[idx(i)] = (parent_[idx(i)] == kNoNode) ? 1 : d[idx(parent_[idx(i)])] + 1;
    best = std::max(best, d[idx(i)]);
  }
  return best;
}

bool Tree::is_homogeneous() const {
  return std::all_of(weight_.begin(), weight_.end(), [](Weight w) { return w == 1; });
}

std::uint64_t Tree::canonical_hash() const {
  // Chained splitmix64 over the logical content only: parent and weight in
  // node order plus the memory model. The CSR arrays, aggregates and wbar
  // are derived from these, so construction history cannot leak in.
  std::uint64_t h = util::splitmix64(0x6f6f637472656531ULL ^ size());
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(model_));
  for (std::size_t i = 0; i < size(); ++i) {
    h = util::splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(parent_[i])));
    h = util::splitmix64(h ^ static_cast<std::uint64_t>(weight_[i]));
  }
  return h;
}

std::string Tree::to_string() const {
  std::ostringstream os;
  os << "Tree(n=" << size() << ", root=" << root_ << ")\n";
  // Depth-first with indentation.
  std::vector<std::pair<NodeId, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [node, level] = stack.back();
    stack.pop_back();
    for (int k = 0; k < level; ++k) os << "  ";
    os << node << " (w=" << weight_[idx(node)] << ")\n";
    const auto kids = children(node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.emplace_back(*it, level + 1);
  }
  return os.str();
}

Tree make_tree(const std::vector<std::pair<NodeId, Weight>>& nodes) {
  std::vector<NodeId> parent;
  std::vector<Weight> weight;
  parent.reserve(nodes.size());
  weight.reserve(nodes.size());
  for (const auto& [p, w] : nodes) {
    parent.push_back(p);
    weight.push_back(w);
  }
  return Tree::from_parents(std::move(parent), std::move(weight));
}

}  // namespace ooctree::core
