#include "src/core/tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/core/tree_storage.hpp"
#include "src/util/rng.hpp"

namespace ooctree::core {

Tree Tree::from_parents(std::vector<NodeId> parent, std::vector<Weight> weight,
                        MemoryModel model) {
  if (parent.size() != weight.size())
    throw std::invalid_argument("Tree: parent/weight arrays differ in length");
  if (parent.empty()) throw std::invalid_argument("Tree: empty tree");
  const auto n = parent.size();
  const auto ni = static_cast<NodeId>(n);

  Tree t;
  t.model_ = model;
  t.root_ = kNoNode;
  for (NodeId i = 0; i < ni; ++i) {
    const NodeId p = parent[idx(i)];
    if (p == kNoNode) {
      if (t.root_ != kNoNode) throw std::invalid_argument("Tree: multiple roots");
      t.root_ = i;
    } else if (p < 0 || p >= ni || p == i) {
      throw std::invalid_argument("Tree: invalid parent index");
    }
    if (weight[idx(i)] < 0) throw std::invalid_argument("Tree: negative weight");
  }
  if (t.root_ == kNoNode) throw std::invalid_argument("Tree: no root");

  // Arena allocated in one shot, sized exactly to the tree.
  t.storage_ = std::make_shared<OwnedStorage>(n);
  t.arrays_ = t.storage_->arrays();
  t.size_ = n;
  TreeArrays& a = t.arrays_;
  std::copy(parent.begin(), parent.end(), a.parent);
  std::copy(weight.begin(), weight.end(), a.weight);

  // Children CSR (counting sort keeps children ordered by increasing id).
  std::fill_n(a.child_offset, n + 1, std::int64_t{0});
  for (NodeId i = 0; i < ni; ++i)
    if (a.parent[idx(i)] != kNoNode) ++a.child_offset[idx(a.parent[idx(i)]) + 1];
  for (std::size_t j = 0; j < n; ++j) a.child_offset[j + 1] += a.child_offset[j];
  std::fill_n(a.child_list, n - 1, kNoNode);
  std::vector<std::int64_t> cursor(a.child_offset, a.child_offset + n);
  for (NodeId i = 0; i < ni; ++i) {
    const NodeId p = a.parent[idx(i)];
    if (p != kNoNode) a.child_list[static_cast<std::size_t>(cursor[idx(p)]++)] = i;
  }

  // Acyclicity: every node must reach the root; equivalently the postorder
  // from the root must visit all n nodes.
  if (t.postorder(t.root_).size() != n)
    throw std::invalid_argument("Tree: parent array contains a cycle or disconnected part");

  t.total_weight_ = 0;
  for (NodeId i = 0; i < ni; ++i) {
    Weight s = 0;
    for (const NodeId c : t.children(i)) s += a.weight[idx(c)];
    a.child_sum[idx(i)] = s;
    a.wbar[idx(i)] =
        model == MemoryModel::kMaxInOut ? std::max(a.weight[idx(i)], s) : a.weight[idx(i)] + s;
    t.max_wbar_ = std::max(t.max_wbar_, a.wbar[idx(i)]);
    t.total_weight_ += a.weight[idx(i)];
  }
  return t;
}

Tree::Tree(Tree&& other) noexcept
    : storage_(std::move(other.storage_)),
      arrays_(other.arrays_),
      size_(other.size_),
      root_(other.root_),
      max_wbar_(other.max_wbar_),
      total_weight_(other.total_weight_),
      model_(other.model_) {
  other.arrays_ = {};
  other.size_ = 0;
  other.root_ = kNoNode;
  other.max_wbar_ = 0;
  other.total_weight_ = 0;
}

Tree& Tree::operator=(Tree&& other) noexcept {
  if (this != &other) {
    storage_ = std::move(other.storage_);
    arrays_ = other.arrays_;
    size_ = other.size_;
    root_ = other.root_;
    max_wbar_ = other.max_wbar_;
    total_weight_ = other.total_weight_;
    model_ = other.model_;
    other.arrays_ = {};
    other.size_ = 0;
    other.root_ = kNoNode;
    other.max_wbar_ = 0;
    other.total_weight_ = 0;
  }
  return *this;
}

bool Tree::is_mapped() const { return storage_ != nullptr && !storage_->writable(); }

void Tree::ensure_owned(std::size_t min_capacity) {
  if (storage_ == nullptr) {  // defensive: TreeBuilder never adopts an empty tree
    storage_ = std::make_shared<OwnedStorage>(min_capacity);
    arrays_ = storage_->arrays();
    arrays_.child_offset[0] = 0;
    return;
  }
  if (storage_->writable() && storage_.use_count() == 1 && storage_->capacity() >= min_capacity)
    return;
  // Clone (copy-on-write off shared or mapped storage) or grow; doubling
  // keeps a run of expansion appends amortized O(1), exactly like the
  // std::vector storage this replaced.
  const std::size_t new_cap = std::max(min_capacity, 2 * storage_->capacity());
  storage_ = std::make_shared<OwnedStorage>(arrays_, size_, new_cap);
  arrays_ = storage_->arrays();
}

std::vector<NodeId> Tree::postorder(NodeId r) const {
  std::vector<NodeId> out;
  out.reserve(size());
  // Iterative two-stack postorder: push node, then children; reverse at end
  // would give a mirrored order, so instead track per-node child progress.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(r, 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto kids = children(node);
    if (next_child < kids.size()) {
      const NodeId c = kids[next_child++];
      stack.emplace_back(c, 0);
    } else {
      out.push_back(node);
      stack.pop_back();
    }
  }
  return out;
}

std::size_t Tree::subtree_size(NodeId r) const { return postorder(r).size(); }

Tree Tree::with_memory_model(MemoryModel model) const {
  return from_parents(std::vector<NodeId>(arrays_.parent, arrays_.parent + size_),
                      std::vector<Weight>(arrays_.weight, arrays_.weight + size_), model);
}

Tree Tree::subtree(NodeId r, std::vector<NodeId>* old_ids) const {
  const std::vector<NodeId> order = postorder(r);
  std::vector<NodeId> new_id(size(), kNoNode);
  for (std::size_t k = 0; k < order.size(); ++k) new_id[idx(order[k])] = static_cast<NodeId>(k);

  std::vector<NodeId> parent(order.size(), kNoNode);
  std::vector<Weight> weight(order.size(), 0);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const NodeId old = order[k];
    weight[k] = arrays_.weight[idx(old)];
    if (old != r) parent[k] = new_id[idx(arrays_.parent[idx(old)])];
  }
  if (old_ids != nullptr) *old_ids = order;
  return from_parents(std::move(parent), std::move(weight), model_);
}

std::size_t Tree::depth() const {
  std::vector<std::size_t> d(size(), 0);
  std::size_t best = 0;
  // Parents first: walk a reverse postorder.
  const std::vector<NodeId> order = postorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId i = *it;
    d[idx(i)] = (arrays_.parent[idx(i)] == kNoNode) ? 1 : d[idx(arrays_.parent[idx(i)])] + 1;
    best = std::max(best, d[idx(i)]);
  }
  return best;
}

bool Tree::is_homogeneous() const {
  return std::all_of(arrays_.weight, arrays_.weight + size_, [](Weight w) { return w == 1; });
}

std::uint64_t Tree::canonical_hash() const {
  // Chained splitmix64 over the logical content only: parent and weight in
  // node order plus the memory model. The CSR arrays, aggregates and wbar
  // are derived from these, so construction history cannot leak in.
  std::uint64_t h = util::splitmix64(0x6f6f637472656531ULL ^ size());
  h = util::splitmix64(h ^ static_cast<std::uint64_t>(model_));
  for (std::size_t i = 0; i < size(); ++i) {
    h = util::splitmix64(h ^
                         static_cast<std::uint64_t>(static_cast<std::int64_t>(arrays_.parent[i])));
    h = util::splitmix64(h ^ static_cast<std::uint64_t>(arrays_.weight[i]));
  }
  return h;
}

std::string Tree::to_string() const {
  std::ostringstream os;
  os << "Tree(n=" << size() << ", root=" << root_ << ")\n";
  // Depth-first with indentation.
  std::vector<std::pair<NodeId, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [node, level] = stack.back();
    stack.pop_back();
    for (int k = 0; k < level; ++k) os << "  ";
    os << node << " (w=" << arrays_.weight[idx(node)] << ")\n";
    const auto kids = children(node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.emplace_back(*it, level + 1);
  }
  return os.str();
}

Tree make_tree(const std::vector<std::pair<NodeId, Weight>>& nodes) {
  std::vector<NodeId> parent;
  std::vector<Weight> weight;
  parent.reserve(nodes.size());
  weight.reserve(nodes.size());
  for (const auto& [p, w] : nodes) {
    parent.push_back(p);
    weight.push_back(w);
  }
  return Tree::from_parents(std::move(parent), std::move(weight));
}

}  // namespace ooctree::core
