// Best postorder traversal for I/O-volume minimization (paper, Section 4.1;
// adapted from E. Agullo's PhD thesis).
//
// Given a memory bound M, define for a postorder sigma:
//   S_i = max( w_i, max_j ( S_j + sum of w_k over children before j ) )
//   A_i = min(M, S_i)    -- main memory actually used out-of-core
//   V_i = max(0, max_j ( A_j + sum_before w_k ) - M) + sum_j V_j
// Theorem 3 (Liu's interleaving lemma) shows that ordering the children of
// every node by non-increasing (A_j - w_j) minimizes V_root among all
// postorders; the paper calls the resulting algorithm POSTORDERMINIO and
// proves it I/O-optimal on homogeneous trees (Theorem 4).
#pragma once

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::core {

/// Result of the best I/O postorder computation.
struct PostOrderMinIoResult {
  Schedule schedule;             ///< the A-ordered postorder
  Weight predicted_io = 0;       ///< V_root: analytic I/O volume under FiF
  std::vector<Weight> used;      ///< A_i per node
  std::vector<Weight> storage;   ///< S_i per node (under this postorder)
  std::vector<Weight> io;        ///< V_i per node (subtree I/O volumes)
};

/// Computes POSTORDERMINIO on the subtree rooted at `root` with memory M.
[[nodiscard]] PostOrderMinIoResult postorder_minio(const Tree& tree, NodeId root, Weight memory);

/// Whole-tree overload.
[[nodiscard]] inline PostOrderMinIoResult postorder_minio(const Tree& tree, Weight memory) {
  return postorder_minio(tree, tree.root(), memory);
}

}  // namespace ooctree::core
