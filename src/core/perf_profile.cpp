#include "src/core/perf_profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ooctree::core {

std::vector<ProfileCurve> performance_profiles(
    const std::vector<AlgorithmPerformance>& algorithms) {
  if (algorithms.empty()) return {};
  const std::size_t n = algorithms.front().performance.size();
  for (const auto& a : algorithms)
    if (a.performance.size() != n)
      throw std::invalid_argument("performance_profiles: ragged instance grid");
  if (n == 0) throw std::invalid_argument("performance_profiles: no instances");

  // Best observed performance per instance.
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  for (const auto& a : algorithms)
    for (std::size_t i = 0; i < n; ++i) best[i] = std::min(best[i], a.performance[i]);

  std::vector<ProfileCurve> curves;
  curves.reserve(algorithms.size());
  for (const auto& a : algorithms) {
    // Overheads of this algorithm, sorted: the curve steps at each of them.
    std::vector<double> over(n);
    for (std::size_t i = 0; i < n; ++i) over[i] = a.performance[i] / best[i] - 1.0;
    std::sort(over.begin(), over.end());

    ProfileCurve c;
    c.name = a.name;
    c.overhead.push_back(0.0);
    c.fraction.push_back(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double frac = static_cast<double>(i + 1) / static_cast<double>(n);
      if (!c.overhead.empty() && std::abs(c.overhead.back() - over[i]) < 1e-15) {
        c.fraction.back() = frac;  // merge equal thresholds
      } else {
        c.overhead.push_back(over[i]);
        c.fraction.push_back(frac);
      }
    }
    // Fix the tau=0 point: it must report the share of instances where the
    // algorithm *is* the best (overhead exactly 0).
    if (c.overhead.size() > 1 && c.overhead[0] == 0.0 && c.overhead[1] == 0.0) {
      c.overhead.erase(c.overhead.begin());
      c.fraction.erase(c.fraction.begin());
    }
    curves.push_back(std::move(c));
  }
  return curves;
}

double profile_at(const ProfileCurve& curve, double tau) {
  double value = 0.0;
  for (std::size_t i = 0; i < curve.overhead.size(); ++i) {
    if (curve.overhead[i] <= tau + 1e-12) value = curve.fraction[i];
  }
  return value;
}

}  // namespace ooctree::core
