// Dolan-Moré performance profiles (paper, Section 6.2).
//
// An instance solved with k I/Os under memory bound M has performance
// (M + k) / M. For each algorithm, the profile maps an overhead threshold
// tau (in percent) to the fraction of instances whose performance is within
// tau of the best performance observed on that instance.
#pragma once

#include <string>
#include <vector>

#include "src/core/tree.hpp"

namespace ooctree::core {

/// Performance of one algorithm on the instance grid (one value per
/// instance; same instance order across algorithms).
struct AlgorithmPerformance {
  std::string name;
  std::vector<double> performance;
};

/// One profile curve: step points (overhead fraction, cumulative share).
struct ProfileCurve {
  std::string name;
  std::vector<double> overhead;  ///< tau values: perf/best - 1
  std::vector<double> fraction;  ///< share of instances within tau of best
};

/// The paper's performance measure.
[[nodiscard]] inline double io_performance(Weight memory, Weight io_volume) {
  return static_cast<double>(memory + io_volume) / static_cast<double>(memory);
}

/// Computes one curve per algorithm. All algorithms must cover the same
/// number of instances; throws std::invalid_argument otherwise. The curves
/// are right-continuous step functions evaluated at every distinct overhead
/// value present in the data (plus 0), so plotting them reproduces the
/// paper's figures exactly.
[[nodiscard]] std::vector<ProfileCurve> performance_profiles(
    const std::vector<AlgorithmPerformance>& algorithms);

/// Fraction of instances with overhead at most `tau` for a single curve.
[[nodiscard]] double profile_at(const ProfileCurve& curve, double tau);

}  // namespace ooctree::core
