// Plain-text serialization of task trees.
//
// Format (one node per line, ids implicit by line order, '#' comments):
//     <parent-id or -1 for the root> <weight>
// The format round-trips any Tree and is the interchange format of the
// example tools (ooc_planner reads it, the generators can write it).
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/tree.hpp"

namespace ooctree::core {

/// Writes the tree to a stream in the text format above.
void write_tree(std::ostream& out, const Tree& tree);

/// Writes the tree to a file; throws std::runtime_error on I/O failure.
void save_tree(const std::string& path, const Tree& tree);

/// Parses a tree from a stream; throws std::runtime_error on malformed
/// input (with a line number in the message).
[[nodiscard]] Tree read_tree(std::istream& in);

/// Reads a tree from a file; throws std::runtime_error on failure.
[[nodiscard]] Tree load_tree(const std::string& path);

}  // namespace ooctree::core
