#include "src/core/segments.hpp"

#include <stdexcept>

namespace ooctree::core {

std::vector<ProfileSegment> hill_valley_decomposition(const Tree& tree,
                                                      const Schedule& schedule) {
  if (!is_topological_order(tree, schedule))
    throw std::invalid_argument("hill_valley_decomposition: not a topological order");

  // Resident memory *between* steps: after step t the outputs of all
  // produced-but-unconsumed nodes are live. During step t the transient is
  // wbar; hills are maxima over the during-step values, valleys are
  // between-step values.
  const std::size_t n = schedule.size();
  std::vector<Weight> during(n, 0), after(n, 0);
  Weight active = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const NodeId node = schedule[t];
    for (const NodeId c : tree.children(node)) active -= tree.weight(c);
    during[t] = active + tree.wbar(node);
    if (node != tree.root()) active += tree.weight(node);
    after[t] = active + (node == tree.root() ? tree.weight(node) : 0);
  }
  // The root's output counts as the final resident value.
  after[n - 1] = tree.weight(tree.root());

  // Canonical construction via the stack merge used in minmem_optimal:
  // push (hill = during[t], valley = after[t]) per step and normalize.
  std::vector<ProfileSegment> out;
  for (std::size_t t = 0; t < n; ++t) {
    ProfileSegment s{during[t], after[t], t + 1};
    while (!out.empty() && (out.back().hill <= s.hill || out.back().valley >= s.valley)) {
      s.hill = std::max(s.hill, out.back().hill);
      out.pop_back();
    }
    out.push_back(s);
  }
  return out;
}

std::vector<std::pair<Weight, Weight>> hill_valley_pairs(const Tree& tree,
                                                         const Schedule& schedule) {
  std::vector<std::pair<Weight, Weight>> out;
  for (const ProfileSegment& s : hill_valley_decomposition(tree, schedule))
    out.emplace_back(s.hill, s.valley);
  return out;
}

}  // namespace ooctree::core
