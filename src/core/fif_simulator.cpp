#include "src/core/fif_simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace ooctree::core {

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

/// Active datum ordered by the step at which its parent consumes it; FiF
/// evicts the *latest*-consumed datum first, i.e. the max key.
struct ActiveKey {
  std::size_t parent_step;
  NodeId node;
  bool operator<(const ActiveKey& o) const {
    return parent_step != o.parent_step ? parent_step < o.parent_step : node < o.node;
  }
};
}  // namespace

FifResult simulate_fif(const Tree& tree, const Schedule& schedule, Weight memory) {
  if (!is_topological_order(tree, schedule))
    throw std::invalid_argument("simulate_fif: schedule is not a topological order");

  const std::vector<std::size_t> pos = schedule_positions(tree, schedule);
  const std::size_t n = tree.size();

  FifResult result;
  result.io.assign(n, 0);

  // resident[i]: units of node i's output currently in main memory.
  std::vector<Weight> resident(n, 0);
  // Active data with resident > 0, as a lazy-deletion max-heap keyed by
  // consumer step (FiF victims are the heap top). Every node enters the
  // heap at most once — when it executes — so the heap never exceeds n
  // entries and all storage is reserved up front. Consumption and full
  // eviction clear in_active[]; stale heap entries are skipped when popped.
  // The currently executing node's children are deactivated before any
  // eviction, so they are never victims.
  std::vector<ActiveKey> heap;
  heap.reserve(n);
  std::vector<char> in_active(n, 0);
  Weight active_resident = 0;  // sum of resident[] over active data

  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];

    // The children of `node` are consumed now: bring evicted parts back
    // (reads are not counted; write volume was charged at eviction time)
    // and remove them from the active set.
    for (const NodeId c : tree.children(node)) {
      if (resident[idx(c)] > 0) {
        in_active[idx(c)] = 0;
        active_resident -= resident[idx(c)];
      }
      resident[idx(c)] = tree.weight(c);  // fully read back for execution
    }

    // Memory required while executing `node`: its own transient wbar plus
    // everything else resident. Evict furthest-in-the-future data first.
    const Weight budget = memory - tree.wbar(node);
    if (budget < 0) {
      result.feasible = false;
      return result;
    }
    while (active_resident > budget) {
      const NodeId victim = heap.front().node;
      if (!in_active[idx(victim)]) {  // stale: consumed or fully evicted
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
        continue;
      }
      const Weight excess = active_resident - budget;
      const Weight amount = std::min(excess, resident[idx(victim)]);
      resident[idx(victim)] -= amount;
      active_resident -= amount;
      result.io[idx(victim)] += amount;
      result.io_volume += amount;
      ++result.evictions;
      if (resident[idx(victim)] == 0) {
        in_active[idx(victim)] = 0;
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
      }
    }
    result.peak_resident = std::max(result.peak_resident, active_resident + tree.wbar(node));

    // The node's output is now resident; it becomes active until its parent
    // runs (the root's output simply stays resident).
    resident[idx(node)] = tree.weight(node);
    if (node != tree.root()) {
      heap.push_back(ActiveKey{pos[idx(tree.parent(node))], node});
      std::push_heap(heap.begin(), heap.end());
      in_active[idx(node)] = 1;
      active_resident += tree.weight(node);
      // The output itself may immediately exceed the bound only if some
      // later wbar cannot accommodate it; eviction happens lazily at that
      // later step, which is equivalent in volume (FiF writes as late as
      // logically possible without changing the count).
    }
  }

  result.feasible = true;
  return result;
}

Weight fif_io_volume(const Tree& tree, const Schedule& schedule, Weight memory) {
  const FifResult r = simulate_fif(tree, schedule, memory);
  return r.feasible ? r.io_volume : -1;
}

}  // namespace ooctree::core
