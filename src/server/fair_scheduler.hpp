// Weighted deficit-round-robin scheduler over per-tenant FIFO queues.
//
// Every tenant owns one queue; pop() visits tenants round-robin, crediting
// each visited tenant's deficit counter with its weight and serving the
// queue head once the deficit reaches one request. Over any busy interval
// two backlogged tenants are therefore served in proportion to their
// weights (classic DRR with quantum = weight requests per round), and a
// tenant's deficit resets when its queue empties, so credit never banks up
// while idle — a hot tenant cannot starve the rest, and a returning tenant
// cannot burst past its share. That is the quota-floor guarantee the
// fairness tests and the fairness rows of bench_service_throughput pin.
//
// Per-tenant in-flight caps bound concurrency: a tenant with `inflight_cap`
// dispatches outstanding is skipped by pop() until one completes
// (end_inflight). extract_if — the server's batch-fusion hook, pulling
// queued requests that fuse with a dispatch already paid for — is exempt
// from both the deficit and the cap: a fused rider consumes no extra
// compute, so charging it against the tenant's share would punish exactly
// the requests that are cheapest to serve.
//
// NOT thread-safe: the owner (PlanServer) holds its own mutex around every
// call. Header-only template so the unit tests exercise it with T = int.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ooctree::server {

/// Per-tenant accounting snapshot (name-sorted in counters()).
struct TenantCounters {
  std::string tenant;
  std::uint64_t pushed = 0;
  std::uint64_t served = 0;  ///< popped + extracted
  std::size_t queued = 0;
  std::size_t inflight = 0;
  double weight = 1.0;
};

template <typename T>
class FairScheduler {
 public:
  /// `inflight_cap` 0 = unlimited. Weights must be > 0.
  explicit FairScheduler(double default_weight = 1.0, std::size_t inflight_cap = 0)
      : default_weight_(default_weight), inflight_cap_(inflight_cap) {
    if (default_weight <= 0)
      throw std::invalid_argument("FairScheduler: default weight must be > 0");
  }

  void set_weight(const std::string& tenant, double weight) {
    if (weight <= 0) throw std::invalid_argument("FairScheduler: weight must be > 0");
    tenant_state(tenant).weight = weight;
  }

  void push(const std::string& tenant, T item) {
    Tenant& t = tenant_state(tenant);
    t.queue.push_back(std::move(item));
    ++t.pushed;
    ++queued_;
  }

  /// DRR dispatch: returns (tenant, item) and counts it served + in flight
  /// for that tenant, or nullopt when no tenant is eligible (everything
  /// empty or capped). Arriving at a tenant credits its deficit with its
  /// weight exactly once per visit; the cursor then *stays* on the tenant
  /// while it has a full request of credit left, so a weight-3 tenant
  /// serves three requests per round to a weight-1 tenant's one.
  /// Terminates because each full ring pass credits every eligible tenant
  /// weight > 0.
  [[nodiscard]] std::optional<std::pair<std::string, T>> pop() {
    if (!eligible()) return std::nullopt;
    for (;;) {
      const std::string& name = ring_[cursor_];
      Tenant& t = tenants_.at(name);
      if (!t.queue.empty() && under_cap(t)) {
        if (!credited_) {
          t.deficit += t.weight;
          credited_ = true;
        }
        if (t.deficit >= 1.0) {
          t.deficit -= 1.0;
          T item = std::move(t.queue.front());
          t.queue.pop_front();
          --queued_;
          ++t.served;
          ++t.inflight;
          std::pair<std::string, T> out{name, std::move(item)};
          if (t.queue.empty()) {
            // Idle tenants bank no credit; a served-empty tenant restarts
            // from zero when it next queues.
            t.deficit = 0.0;
            advance();
          } else if (t.deficit < 1.0) {
            advance();  // credit spent — next visit re-earns it
          }
          return out;
        }
      }
      advance();
    }
  }

  /// Pulls up to `limit` queued items satisfying pred (ring order, then
  /// queue order), counting them served + in flight but charging no
  /// deficit and ignoring caps — the batch-fusion rider path.
  template <typename Pred>
  [[nodiscard]] std::vector<std::pair<std::string, T>> extract_if(const Pred& pred,
                                                                  std::size_t limit) {
    std::vector<std::pair<std::string, T>> out;
    for (const std::string& name : ring_) {
      if (out.size() >= limit) break;
      Tenant& t = tenants_.at(name);
      for (auto it = t.queue.begin(); it != t.queue.end() && out.size() < limit;) {
        if (pred(*it)) {
          out.emplace_back(name, std::move(*it));
          it = t.queue.erase(it);
          --queued_;
          ++t.served;
          ++t.inflight;
        } else {
          ++it;
        }
      }
      if (t.queue.empty()) t.deficit = 0.0;
    }
    return out;
  }

  /// Marks one of `tenant`'s dispatches complete, freeing cap room.
  void end_inflight(const std::string& tenant) {
    Tenant& t = tenant_state(tenant);
    if (t.inflight == 0)
      throw std::logic_error("FairScheduler: end_inflight without a dispatch in flight");
    --t.inflight;
  }

  /// True when pop() can dispatch something: a tenant with queued work and
  /// spare in-flight room exists.
  [[nodiscard]] bool eligible() const {
    if (queued_ == 0) return false;
    for (const auto& [name, t] : tenants_)
      if (!t.queue.empty() && under_cap(t)) return true;
    return false;
  }

  [[nodiscard]] std::size_t queued() const { return queued_; }

  [[nodiscard]] std::size_t inflight() const {
    std::size_t n = 0;
    for (const auto& [name, t] : tenants_) n += t.inflight;
    return n;
  }

  [[nodiscard]] std::vector<TenantCounters> counters() const {
    std::vector<TenantCounters> out;
    out.reserve(ring_.size());
    for (const auto& [name, t] : tenants_) {
      TenantCounters c;
      c.tenant = name;
      c.pushed = t.pushed;
      c.served = t.served;
      c.queued = t.queue.size();
      c.inflight = t.inflight;
      c.weight = t.weight;
      out.push_back(std::move(c));
    }
    std::sort(out.begin(), out.end(),
              [](const TenantCounters& a, const TenantCounters& b) { return a.tenant < b.tenant; });
    return out;
  }

 private:
  struct Tenant {
    std::deque<T> queue;
    double weight = 1.0;
    double deficit = 0.0;
    std::uint64_t pushed = 0;
    std::uint64_t served = 0;
    std::size_t inflight = 0;
  };

  [[nodiscard]] bool under_cap(const Tenant& t) const {
    return inflight_cap_ == 0 || t.inflight < inflight_cap_;
  }

  Tenant& tenant_state(const std::string& tenant) {
    const auto [it, inserted] = tenants_.try_emplace(tenant);
    if (inserted) {
      it->second.weight = default_weight_;
      ring_.push_back(tenant);
    }
    return it->second;
  }

  void advance() {
    cursor_ = (cursor_ + 1) % ring_.size();
    credited_ = false;
  }

  std::unordered_map<std::string, Tenant> tenants_;
  std::vector<std::string> ring_;  ///< round-robin visit order (first-seen)
  std::size_t cursor_ = 0;
  bool credited_ = false;  ///< cursor tenant already earned this visit's credit
  double default_weight_;
  std::size_t inflight_cap_;
  std::size_t queued_ = 0;
};

}  // namespace ooctree::server
