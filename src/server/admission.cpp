#include "src/server/admission.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/util/text.hpp"

namespace ooctree::server {

std::string overload_policy_name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kBlock: return "block";
  }
  throw std::invalid_argument("overload_policy_name: unknown policy");
}

OverloadPolicy overload_policy_from_name(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "shed" || s == "reject") return OverloadPolicy::kShed;
  if (s == "block" || s == "wait") return OverloadPolicy::kBlock;
  throw std::invalid_argument("unknown overload policy '" + name + "' (shed | block)");
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config) : config_(config) {
  if (config_.depth == 0)
    throw std::invalid_argument("AdmissionQueue: depth must be >= 1");
  if (config_.block_timeout_ms < 0)
    throw std::invalid_argument("AdmissionQueue: block_timeout_ms must be >= 0");
  if (config_.high_watermark == 0) config_.high_watermark = std::max<std::size_t>(1, 3 * config_.depth / 4);
  if (config_.low_watermark == 0) config_.low_watermark = config_.depth / 2;
  if (config_.high_watermark > config_.depth)
    throw std::invalid_argument("AdmissionQueue: high_watermark must be <= depth");
  if (config_.low_watermark > config_.high_watermark)
    throw std::invalid_argument("AdmissionQueue: low_watermark must be <= high_watermark");
}

void AdmissionQueue::update_overload() {
  if (!overloaded_ && depth_ >= config_.high_watermark) {
    overloaded_ = true;
    ++overload_entries_;
  } else if (overloaded_ && depth_ <= config_.low_watermark) {
    overloaded_ = false;
  }
}

Admission AdmissionQueue::acquire() {
  std::unique_lock lock(mutex_);
  ++submitted_;
  if (closed_) {
    ++shed_closed_;
    return Admission::kShedClosed;
  }
  if (depth_ >= config_.depth) {
    if (config_.policy == OverloadPolicy::kShed) {
      ++shed_full_;
      return Admission::kShedFull;
    }
    ++blocked_;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double, std::milli>(config_.block_timeout_ms));
    slot_cv_.wait_until(lock, deadline,
                        [this] { return closed_ || depth_ < config_.depth; });
    if (closed_) {
      ++shed_closed_;
      return Admission::kShedClosed;
    }
    if (depth_ >= config_.depth) {
      ++shed_timeout_;
      return Admission::kShedTimeout;
    }
  }
  ++depth_;
  ++admitted_;
  peak_ = std::max(peak_, depth_);
  update_overload();
  return Admission::kAdmitted;
}

void AdmissionQueue::release(std::size_t n) {
  {
    const std::lock_guard lock(mutex_);
    if (n > depth_) throw std::logic_error("AdmissionQueue::release: more slots than acquired");
    depth_ -= n;
    update_overload();
  }
  slot_cv_.notify_all();
}

void AdmissionQueue::close() {
  {
    const std::lock_guard lock(mutex_);
    closed_ = true;
  }
  slot_cv_.notify_all();
}

bool AdmissionQueue::overloaded() const {
  const std::lock_guard lock(mutex_);
  return overloaded_;
}

AdmissionCounters AdmissionQueue::counters() const {
  const std::lock_guard lock(mutex_);
  AdmissionCounters out;
  out.submitted = submitted_;
  out.admitted = admitted_;
  out.shed_full = shed_full_;
  out.shed_timeout = shed_timeout_;
  out.shed_closed = shed_closed_;
  out.blocked = blocked_;
  out.overload_entries = overload_entries_;
  out.depth = depth_;
  out.peak = peak_;
  out.overloaded = overloaded_;
  return out;
}

}  // namespace ooctree::server
