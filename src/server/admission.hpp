// Bounded admission control for the multi-tenant plan server.
//
// Every request entering the server first acquires an admission slot; the
// slot is released when the request is dispatched to a compute worker. The
// number of outstanding slots — requests admitted but not yet dispatched,
// i.e. the server's queue depth — can never exceed the configured bound,
// so offered load beyond capacity is *shed* (acquire returns a non-admitted
// verdict and the caller answers ok=false) or *blocked* (acquire waits up
// to a deadline for a slot, then sheds), never queued without limit. This
// is the "degrade instead of OOM" contract the overload tests and the
// overload rows of bench_service_throughput pin.
//
// High/low watermarks add hysteresis for observability and load shedding
// upstream: crossing the high watermark marks the queue overloaded, and it
// stays overloaded until depth falls back to the low watermark — a caller
// polling overloaded() sees a stable signal instead of flapping around one
// threshold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <string>

namespace ooctree::server {

/// What acquire() does when the queue is at capacity.
enum class OverloadPolicy : std::uint8_t {
  kShed,   ///< reject immediately (the caller responds ok=false)
  kBlock,  ///< wait up to block_timeout_ms for a slot, then shed
};

[[nodiscard]] std::string overload_policy_name(OverloadPolicy p);
[[nodiscard]] OverloadPolicy overload_policy_from_name(const std::string& name);

/// Admission knobs. Watermarks of 0 pick the defaults 3·depth/4 (high) and
/// depth/2 (low); explicit values must satisfy low <= high <= depth.
struct AdmissionConfig {
  std::size_t depth = 256;  ///< max outstanding slots; must be >= 1
  OverloadPolicy policy = OverloadPolicy::kShed;
  double block_timeout_ms = 100.0;  ///< kBlock: max wait for a slot
  std::size_t high_watermark = 0;   ///< depth at which overloaded() turns on
  std::size_t low_watermark = 0;    ///< depth at which overloaded() turns off
};

/// Verdict of one acquire().
enum class Admission : std::uint8_t {
  kAdmitted,
  kShedFull,     ///< kShed policy, queue at capacity
  kShedTimeout,  ///< kBlock policy, no slot freed before the deadline
  kShedClosed,   ///< queue closed (server shutting down)
};

/// Monotonic counters plus a depth snapshot. submitted == admitted + shed()
/// at every instant — the conservation law the overload storm test pins.
struct AdmissionCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_full = 0;
  std::uint64_t shed_timeout = 0;
  std::uint64_t shed_closed = 0;
  std::uint64_t blocked = 0;           ///< acquires that had to wait (kBlock)
  std::uint64_t overload_entries = 0;  ///< high-watermark crossings
  std::size_t depth = 0;               ///< outstanding slots right now
  std::size_t peak = 0;                ///< max outstanding slots ever
  bool overloaded = false;

  [[nodiscard]] std::uint64_t shed() const { return shed_full + shed_timeout + shed_closed; }
};

/// Thread-safe bounded slot counter with watermark hysteresis.
class AdmissionQueue {
 public:
  /// Throws std::invalid_argument on depth == 0, negative timeout, or
  /// inconsistent watermarks.
  explicit AdmissionQueue(AdmissionConfig config = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Acquires one slot, applying the overload policy at capacity. Never
  /// throws on overload — the verdict says what happened.
  [[nodiscard]] Admission acquire();

  /// Releases `n` slots (a fused dispatch releases its whole group at once)
  /// and wakes blocked acquirers.
  void release(std::size_t n = 1);

  /// Further acquires shed as kShedClosed; blocked waiters wake and shed.
  void close();

  [[nodiscard]] bool overloaded() const;
  [[nodiscard]] AdmissionCounters counters() const;
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  /// Watermark hysteresis after every depth change; caller holds mutex_.
  void update_overload();

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable slot_cv_;
  std::size_t depth_ = 0;
  std::size_t peak_ = 0;
  bool overloaded_ = false;
  bool closed_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_full_ = 0;
  std::uint64_t shed_timeout_ = 0;
  std::uint64_t shed_closed_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t overload_entries_ = 0;
};

}  // namespace ooctree::server
