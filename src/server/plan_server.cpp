#include "src/server/plan_server.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

namespace ooctree::server {

namespace {

std::shared_ptr<const service::PlanStats> shed_stats(Admission verdict) {
  auto stats = std::make_shared<service::PlanStats>();
  stats->ok = false;
  switch (verdict) {
    case Admission::kShedFull:
      stats->error = "shed: admission queue at capacity";
      break;
    case Admission::kShedTimeout:
      stats->error = "shed: no admission slot freed before the deadline";
      break;
    case Admission::kShedClosed:
      stats->error = "shed: server is shutting down";
      break;
    case Admission::kAdmitted:
      stats->error = "shed: internal error (admitted request shed)";
      break;
  }
  return stats;
}

}  // namespace

PlanServer::PlanServer(ServerConfig config)
    : config_([&] {
        if (config.service.threads == 0) config.service.threads = 1;
        if (config.workers == 0) config.workers = 1;
        if (config.fuse_limit == 0) config.fuse_limit = 1;
        return config;
      }()),
      service_(config_.service),
      admission_(config_.admission),
      sched_(config_.default_weight, config_.tenant_inflight_cap) {
  for (const TenantWeight& w : config_.weights) sched_.set_weight(w.tenant, w.weight);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PlanServer::~PlanServer() {
  admission_.close();  // new submits shed as kShedClosed from here on
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

ServerResponse PlanServer::shed_response(const service::PlanRequest& request,
                                         Admission verdict) const {
  ServerResponse response;
  response.plan.id = request.id;
  response.plan.stats = shed_stats(verdict);
  response.plan.served = service::Served::kShed;
  response.tenant = request.tenant;
  response.shed = true;
  return response;
}

std::future<ServerResponse> PlanServer::submit(service::PlanRequest request) {
  std::promise<ServerResponse> promise;
  std::future<ServerResponse> future = promise.get_future();
  const Admission verdict = admission_.acquire();
  if (verdict != Admission::kAdmitted) {
    promise.set_value(shed_response(request, verdict));
    return future;
  }
  {
    const std::lock_guard lock(mutex_);
    if (stop_) {
      // The destructor won the race between acquire() and this lock; the
      // workers may already be past their final drain, so the request
      // cannot safely be queued — resolve it as shed-closed instead.
      admission_.release();
      promise.set_value(shed_response(request, Admission::kShedClosed));
      return future;
    }
    Item item;
    item.fusion = service::tree_identity(
        request, service::effective_seed(request, config_.service.seed));
    item.promise = std::move(promise);
    const std::string tenant = request.tenant;
    item.request = std::move(request);
    sched_.push(tenant, std::move(item));
  }
  work_cv_.notify_one();
  return future;
}

void PlanServer::worker_loop() {
  for (;;) {
    std::vector<Item> group;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] {
        return sched_.eligible() || (stop_ && sched_.queued() == 0);
      });
      if (!sched_.eligible()) {
        if (stop_ && sched_.queued() == 0) return;
        continue;  // queued work exists but every owner is capped — re-wait
      }
      auto lead = sched_.pop();
      if (!lead.has_value()) continue;
      group.push_back(std::move(lead->second));
      if (config_.fuse && config_.fuse_limit > 1) {
        const std::uint64_t fusion = group.front().fusion;
        auto riders = sched_.extract_if(
            [fusion](const Item& item) { return item.fusion == fusion; },
            config_.fuse_limit - 1);
        for (auto& rider : riders) group.push_back(std::move(rider.second));
      }
      for (Item& item : group) {
        item.seq = ++seq_;
        item.wait_seconds = item.waited.seconds();
      }
      ++busy_;
    }
    // Slots free as soon as the group leaves the queue: admission bounds
    // *queued* requests, and the per-tenant in-flight caps bound execution.
    admission_.release(group.size());
    dispatched_.fetch_add(group.size());
    if (group.size() > 1) {
      fused_groups_.fetch_add(1);
      fused_requests_.fetch_add(group.size());
    }

    std::vector<service::PlanResponse> plans;
    try {
      if (group.size() == 1) {
        plans.push_back(service_.plan(group.front().request));
      } else {
        std::vector<service::PlanRequest> requests;
        requests.reserve(group.size());
        for (const Item& item : group) requests.push_back(item.request);
        plans = service_.plan_fused(requests);
      }
    } catch (const std::exception& e) {
      // plan()/plan_fused() answer bad requests ok=false rather than
      // throwing; this catches allocation-class failures so the promises
      // below are still always fulfilled.
      plans.clear();
      for (const Item& item : group) {
        service::PlanResponse failed;
        failed.id = item.request.id;
        auto stats = std::make_shared<service::PlanStats>();
        stats->ok = false;
        stats->error = e.what();
        failed.stats = std::move(stats);
        plans.push_back(std::move(failed));
      }
    }

    for (std::size_t i = 0; i < group.size(); ++i) {
      ServerResponse response;
      response.plan = std::move(plans[i]);
      response.tenant = group[i].request.tenant;
      response.dispatch_seq = group[i].seq;
      response.wait_seconds = group[i].wait_seconds;
      group[i].promise.set_value(std::move(response));
    }

    {
      const std::lock_guard lock(mutex_);
      for (const Item& item : group) sched_.end_inflight(item.request.tenant);
      --busy_;
    }
    work_cv_.notify_all();  // freed cap room may make a capped tenant eligible
    idle_cv_.notify_all();
  }
}

bool PlanServer::overloaded() const { return admission_.overloaded(); }

void PlanServer::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return sched_.queued() == 0 && busy_ == 0; });
}

ServerStats PlanServer::stats() const {
  ServerStats out;
  out.admission = admission_.counters();
  out.dispatched = dispatched_.load();
  out.fused_groups = fused_groups_.load();
  out.fused_requests = fused_requests_.load();
  {
    const std::lock_guard lock(mutex_);
    out.queued = sched_.queued();
    out.tenants = sched_.counters();
  }
  out.service = service_.stats();
  return out;
}

}  // namespace ooctree::server
