// PlanServer — the multi-tenant streaming front-end over PlanService.
//
// Data flow: submit() → AdmissionQueue (bounded; overload sheds ok=false
// or blocks to a deadline, never queues without limit) → FairScheduler
// (weighted deficit-round-robin across tenant queues, per-tenant in-flight
// caps) → dispatch workers, which pop one request, *fuse* every queued
// request materializing the same tree (tree_identity) into the dispatch up
// to fuse_limit, and serve the group through PlanService::plan /
// plan_fused — so the service's cache/coalescing layers and the fused
// shared-planning path both apply, and fused responses stay bit-identical
// to independent computes.
//
// Shutdown is drain-then-stop, mirroring util::ThreadPool: the destructor
// closes admission (new submits shed as kShedClosed), lets the workers
// drain every admitted request, then joins. Every future handed out by
// submit() therefore always resolves — shed requests resolve immediately
// with Served::kShed and ok=false, admitted ones with their plan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/admission.hpp"
#include "src/server/fair_scheduler.hpp"
#include "src/service/plan_service.hpp"
#include "src/util/stopwatch.hpp"

namespace ooctree::server {

/// One tenant's scheduling weight (relative share of dispatches).
struct TenantWeight {
  std::string tenant;
  double weight = 1.0;
};

/// Server knobs. The server drives the service synchronously from its own
/// dispatch workers, so `service.threads` is forced to 1 when left at 0
/// (the service pool only serves direct submit() calls, not the server).
struct ServerConfig {
  service::ServiceConfig service;
  std::size_t workers = 1;  ///< dispatch threads; 0 = 1
  AdmissionConfig admission;
  double default_weight = 1.0;
  std::vector<TenantWeight> weights;
  std::size_t tenant_inflight_cap = 0;  ///< max concurrent dispatches/tenant; 0 = unlimited
  bool fuse = true;
  std::size_t fuse_limit = 16;  ///< max requests per fused dispatch (>= 1)
};

/// One answer, wrapping the service response with server-side metadata.
struct ServerResponse {
  service::PlanResponse plan;
  std::string tenant;
  bool shed = false;              ///< rejected by admission (plan.stats ok=false)
  std::uint64_t dispatch_seq = 0; ///< 1-based global dispatch order; 0 when shed
  double wait_seconds = 0.0;      ///< admission-to-dispatch queue wait
};

/// Server-level counters plus the underlying service's.
struct ServerStats {
  AdmissionCounters admission;
  std::uint64_t dispatched = 0;      ///< requests handed to compute workers
  std::uint64_t fused_groups = 0;    ///< dispatches serving > 1 request
  std::uint64_t fused_requests = 0;  ///< requests served inside those groups
  std::size_t queued = 0;            ///< scheduler depth snapshot
  std::vector<TenantCounters> tenants;
  service::ServiceStats service;
};

/// Long-lived multi-tenant planning server. Thread-safe.
class PlanServer {
 public:
  explicit PlanServer(ServerConfig config = {});
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Admits, queues and eventually serves one request. The future always
  /// resolves: shed requests resolve immediately (shed=true, ok=false with
  /// the shed reason as the error), admitted ones when a worker dispatches
  /// them. Never throws on overload.
  [[nodiscard]] std::future<ServerResponse> submit(service::PlanRequest request);

  /// Admission watermark signal (hysteresis; see AdmissionQueue).
  [[nodiscard]] bool overloaded() const;

  /// Blocks until every admitted request has been served.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// The wrapped service, e.g. for audit() in tests.
  [[nodiscard]] const service::PlanService& service() const { return service_; }

 private:
  struct Item {
    service::PlanRequest request;
    std::uint64_t fusion = 0;  ///< tree_identity digest, the fusion group key
    std::promise<ServerResponse> promise;
    util::Stopwatch waited;    ///< started at submit; read at dispatch
    std::uint64_t seq = 0;     ///< dispatch order, assigned under the lock
    double wait_seconds = 0.0;
  };

  void worker_loop();
  [[nodiscard]] ServerResponse shed_response(const service::PlanRequest& request,
                                             Admission verdict) const;

  ServerConfig config_;
  service::PlanService service_;
  AdmissionQueue admission_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: work available or stopping
  std::condition_variable idle_cv_;  ///< drain(): queue empty and workers idle
  FairScheduler<Item> sched_;        ///< guarded by mutex_
  std::uint64_t seq_ = 0;            ///< guarded by mutex_
  std::size_t busy_ = 0;             ///< dispatching workers; guarded by mutex_
  bool stop_ = false;                ///< guarded by mutex_

  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> fused_groups_{0};
  std::atomic<std::uint64_t> fused_requests_{0};

  std::vector<std::thread> workers_;  ///< declared last: joined first
};

}  // namespace ooctree::server
