#include "src/iosim/pager.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/check.hpp"
#include "src/util/rng.hpp"

namespace ooctree::iosim {

using core::EvictionIndex;
using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

std::string policy_name(Policy p) { return core::eviction_policy_name(p); }

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

/// Per-datum pager state.
struct DatumState {
  Weight resident_pages = 0;  ///< pages currently in frames
  Weight dirty_pages = 0;     ///< resident pages with no disk copy yet
  Weight total_pages = 0;     ///< pages of the whole datum
  std::size_t consumer = 0;   ///< schedule position of the parent
};

}  // namespace

Weight task_frames(const Tree& tree, NodeId node, Weight page_size) {
  if (page_size <= 0) throw std::invalid_argument("task_frames: bad page size");
  Weight child_pages = 0;
  for (const NodeId c : tree.children(node)) child_pages += page_count(tree.weight(c), page_size);
  return std::max(child_pages, page_count(tree.wbar(node), page_size));
}

Weight min_feasible_frames(const Tree& tree, Weight page_size) {
  if (page_size <= 0) throw std::invalid_argument("min_feasible_frames: bad page size");
  Weight frames = 0;
  for (std::size_t i = 0; i < tree.size(); ++i)
    frames = std::max(frames, task_frames(tree, static_cast<NodeId>(i), page_size));
  return frames;
}

PagerStats run_pager(const Tree& tree, const Schedule& schedule, const PagerConfig& config) {
  if (config.page_size <= 0) throw std::invalid_argument("run_pager: page_size must be positive");
  if (!core::is_topological_order(tree, schedule))
    throw std::invalid_argument("run_pager: schedule is not a topological order");

  const Weight frames = config.memory / config.page_size;
  const std::vector<std::size_t> pos = core::schedule_positions(tree, schedule);
  util::Rng rng(config.seed);

  std::vector<DatumState> state(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    state[i].total_pages = page_count(tree.weight(static_cast<NodeId>(i)), config.page_size);
    state[i].consumer =
        tree.parent(static_cast<NodeId>(i)) == kNoNode ? schedule.size() : pos[idx(tree.parent(static_cast<NodeId>(i)))];
  }

  PagerStats stats;
  Weight frames_used = 0;
  std::int64_t clock = 0;

  // Evictable data, indexed by policy key (no per-eviction scan). A datum
  // enters the index when its output is produced and leaves when it is
  // consumed or loses its last resident page. In this replay a datum is
  // read back only at its consumption step, so the LRU and FIFO clocks
  // coincide: both equal the production step.
  EvictionIndex index(config.policy, tree.size(),
                      config.policy == Policy::kRandom ? &rng : nullptr);

#if OOCTREE_AUDIT_ENABLED
  // Between steps no transient reservation is held, so conservation is
  // exact: frames_used is precisely the resident pages, every datum's
  // dirty subset fits inside its resident subset, and no datum ever grows
  // beyond its own size. O(n) per step — audit builds trade speed for the
  // invariant net.
  const auto audit_step = [&] {
    Weight resident_total = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const DatumState& d = state[i];
      core::audit_check(d.dirty_pages >= 0 && d.dirty_pages <= d.resident_pages,
                        "run_pager: dirty pages outside [0, resident]");
      core::audit_check(d.resident_pages <= d.total_pages,
                        "run_pager: resident pages exceed the datum size");
      resident_total += d.resident_pages;
    }
    core::audit_check(resident_total == frames_used,
                      "run_pager: frames_used != resident pages (reservation leak)");
    core::audit_check(frames_used <= frames, "run_pager: frames_used exceeds the frame count");
    index.audit();
  };
#endif

  // Frees frames until `needed` are available, evicting via the policy.
  // Only dirty pages cost a write: a page with a disk copy is dropped for
  // free. The seed pager charged a write on every eviction — true in this
  // replay only by accident of its control flow (read-backs happen solely
  // at consumption, so evicted pages happen to always be dirty); tracking
  // dirtiness makes write-once-per-page the explicit model, which any
  // future read-ahead or partial-consumption path relies on.
  const auto make_room = [&](Weight needed) -> bool {
    while (frames - frames_used < needed) {
      const NodeId victim = index.pick();
      if (victim == kNoNode) return false;
      DatumState& v = state[idx(victim)];
      const Weight deficit = needed - (frames - frames_used);
      const Weight take = std::min(deficit, v.resident_pages);
      // Clean pages are dropped first; only never-written pages cost I/O.
      const Weight clean = v.resident_pages - v.dirty_pages;
      const Weight written = std::max<Weight>(0, take - clean);
      v.resident_pages -= take;
      v.dirty_pages -= written;
      frames_used -= take;
      stats.pages_written += written;
      stats.pages_dropped_clean += take - written;
      ++stats.eviction_events;
      if (v.resident_pages == 0) {
        index.erase(victim);
      } else if (config.policy == Policy::kLargestFirst) {
        index.insert(victim, v.resident_pages);  // re-key after the partial spill
      }
    }
    return true;
  };

  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];
    ++clock;

    // The children are consumed at this step: pin them (they stop being
    // eviction candidates now and are released in step 3).
    for (const NodeId c : tree.children(node)) index.erase(c);

    // 1. Read back missing pages of the children. Read-back pages come off
    // disk unmodified, so they stay clean.
    for (const NodeId c : tree.children(node)) {
      const Weight missing = state[idx(c)].total_pages - state[idx(c)].resident_pages;
      if (missing > 0) {
        if (!make_room(missing)) {
          stats.feasible = false;
          return stats;
        }
        state[idx(c)].resident_pages += missing;
        frames_used += missing;
        stats.pages_read += missing;
      }
    }

    // 2. Working space for the execution itself: the children pages are
    // already pinned; the transient extra is wbar minus the children total
    // (covers the case where the output is larger than the inputs). The
    // extra frames are *reserved* — counted into frames_used for the
    // duration of the step — so nothing can evict into the head-room and
    // peak_frames_used reports frames the accounting actually allocated.
    const Weight child_pages = [&] {
      Weight s = 0;
      for (const NodeId c : tree.children(node)) s += state[idx(c)].total_pages;
      return s;
    }();
    const Weight work_pages =
        std::max(child_pages, page_count(tree.wbar(node), config.page_size));
    const Weight extra = work_pages - child_pages;
    if (extra > 0 && !make_room(extra)) {
      stats.feasible = false;
      return stats;
    }
#if OOCTREE_AUDIT_ENABLED
    // Test-only seed-bug reintroduction: head-room checked but never
    // allocated. The end-of-step conservation audit must catch it.
    if (core::fault::pager.load(std::memory_order_relaxed) != 1) frames_used += extra;
#else
    frames_used += extra;  // reserve the transient working space
#endif
    stats.peak_frames_used = std::max(stats.peak_frames_used, frames_used);

    // 3. Execution: children pages are consumed and the reservation is
    // released; the node's output becomes resident. The output fits inside
    // the freed working space by construction (out_pages <= work_pages),
    // so this step never evicts.
    for (const NodeId c : tree.children(node)) {
      frames_used -= state[idx(c)].resident_pages;
      state[idx(c)].resident_pages = 0;
      state[idx(c)].dirty_pages = 0;
    }
    frames_used -= extra;
    const Weight out_pages = state[idx(node)].total_pages;
    state[idx(node)].resident_pages = out_pages;
    state[idx(node)].dirty_pages = out_pages;  // produced in memory: no disk copy yet
    frames_used += out_pages;
    if (node != tree.root() && out_pages > 0) {
      const std::int64_t key = [&]() -> std::int64_t {
        switch (config.policy) {
          case Policy::kBelady: return static_cast<std::int64_t>(state[idx(node)].consumer);
          case Policy::kLru:
          case Policy::kFifo: return clock;
          case Policy::kLargestFirst: return out_pages;
          case Policy::kRandom: return 0;
        }
        throw std::invalid_argument("run_pager: unknown policy");
      }();
      index.insert(node, key);
    }
    stats.peak_frames_used = std::max(stats.peak_frames_used, frames_used);
#if OOCTREE_AUDIT_ENABLED
    audit_step();
#endif
  }

  stats.feasible = true;
  return stats;
}

}  // namespace ooctree::iosim
