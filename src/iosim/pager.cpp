#include "src/iosim/pager.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/util/rng.hpp"

namespace ooctree::iosim {

using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

std::string policy_name(Policy p) {
  switch (p) {
    case Policy::kBelady: return "Belady";
    case Policy::kLru: return "LRU";
    case Policy::kFifo: return "FIFO";
    case Policy::kRandom: return "Random";
    case Policy::kLargestFirst: return "LargestFirst";
  }
  throw std::invalid_argument("policy_name: unknown policy");
}

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

Weight div_ceil(Weight a, Weight b) { return (a + b - 1) / b; }

/// Per-datum pager state.
struct DatumState {
  Weight resident_pages = 0;   ///< pages currently in frames
  Weight total_pages = 0;      ///< pages of the whole datum
  std::size_t consumer = 0;    ///< schedule position of the parent
  std::int64_t last_touch = 0; ///< for LRU
  std::int64_t loaded_at = 0;  ///< for FIFO
  bool active = false;
};

}  // namespace

Weight min_feasible_frames(const Tree& tree, Weight page_size) {
  if (page_size <= 0) throw std::invalid_argument("min_feasible_frames: bad page size");
  Weight frames = 0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    Weight child_pages = 0;
    for (const NodeId c : tree.children(id)) child_pages += div_ceil(tree.weight(c), page_size);
    const Weight work = std::max(child_pages, div_ceil(tree.wbar(id), page_size));
    frames = std::max(frames, work);
  }
  return frames;
}

PagerStats run_pager(const Tree& tree, const Schedule& schedule, const PagerConfig& config) {
  if (config.page_size <= 0) throw std::invalid_argument("run_pager: page_size must be positive");
  if (!core::is_topological_order(tree, schedule))
    throw std::invalid_argument("run_pager: schedule is not a topological order");

  const Weight frames = config.memory / config.page_size;
  const std::vector<std::size_t> pos = core::schedule_positions(tree, schedule);
  util::Rng rng(config.seed);

  std::vector<DatumState> state(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    state[i].total_pages = div_ceil(tree.weight(static_cast<NodeId>(i)), config.page_size);
    state[i].consumer =
        tree.parent(static_cast<NodeId>(i)) == kNoNode ? schedule.size() : pos[idx(tree.parent(static_cast<NodeId>(i)))];
  }

  PagerStats stats;
  Weight frames_used = 0;
  std::int64_t clock = 0;

  // Pick the eviction victim among active data with resident pages,
  // excluding the pinned children of the node being executed.
  const auto pick_victim = [&](const std::vector<bool>& pinned) -> NodeId {
    NodeId best = kNoNode;
    std::vector<NodeId> candidates;  // only used by kRandom
    for (std::size_t i = 0; i < state.size(); ++i) {
      const auto id = static_cast<NodeId>(i);
      if (!state[i].active || state[i].resident_pages == 0 || pinned[i]) continue;
      switch (config.policy) {
        case Policy::kBelady:
          if (best == kNoNode || state[i].consumer > state[idx(best)].consumer) best = id;
          break;
        case Policy::kLru:
          if (best == kNoNode || state[i].last_touch < state[idx(best)].last_touch) best = id;
          break;
        case Policy::kFifo:
          if (best == kNoNode || state[i].loaded_at < state[idx(best)].loaded_at) best = id;
          break;
        case Policy::kLargestFirst:
          if (best == kNoNode || state[i].resident_pages > state[idx(best)].resident_pages)
            best = id;
          break;
        case Policy::kRandom:
          candidates.push_back(id);
          break;
      }
    }
    if (config.policy == Policy::kRandom && !candidates.empty())
      best = candidates[rng.index(candidates.size())];
    return best;
  };

  // Free frames until `needed` are available, evicting via the policy.
  const auto make_room = [&](Weight needed, const std::vector<bool>& pinned) -> bool {
    while (frames - frames_used < needed) {
      const NodeId victim = pick_victim(pinned);
      if (victim == kNoNode) return false;
      const Weight deficit = needed - (frames - frames_used);
      const Weight take = std::min(deficit, state[idx(victim)].resident_pages);
      state[idx(victim)].resident_pages -= take;
      frames_used -= take;
      stats.pages_written += take;  // data produced in memory: always dirty
      ++stats.eviction_events;
    }
    return true;
  };

  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];
    ++clock;

    std::vector<bool> pinned(tree.size(), false);
    for (const NodeId c : tree.children(node)) pinned[idx(c)] = true;

    // 1. Read back missing pages of the children (they are pinned).
    for (const NodeId c : tree.children(node)) {
      const Weight missing = state[idx(c)].total_pages - state[idx(c)].resident_pages;
      if (missing > 0) {
        if (!make_room(missing, pinned)) {
          stats.feasible = false;
          return stats;
        }
        state[idx(c)].resident_pages += missing;
        frames_used += missing;
        stats.pages_read += missing;
      }
      state[idx(c)].last_touch = clock;
    }

    // 2. Working space for the execution itself: the children pages are
    // already pinned; the transient extra is wbar minus the children total
    // (covers the case where the output is larger than the inputs).
    const Weight child_pages = [&] {
      Weight s = 0;
      for (const NodeId c : tree.children(node)) s += state[idx(c)].total_pages;
      return s;
    }();
    const Weight work_pages =
        std::max(child_pages, div_ceil(tree.wbar(node), config.page_size));
    const Weight extra = work_pages - child_pages;
    if (extra > 0 && !make_room(extra, pinned)) {
      stats.feasible = false;
      return stats;
    }
    stats.peak_frames_used = std::max(stats.peak_frames_used, frames_used + extra);

    // 3. Execution: children pages are consumed and released; the node's
    // output becomes resident.
    for (const NodeId c : tree.children(node)) {
      frames_used -= state[idx(c)].resident_pages;
      state[idx(c)].resident_pages = 0;
      state[idx(c)].active = false;
    }
    const Weight out_pages = state[idx(node)].total_pages;
    if (!make_room(out_pages, pinned)) {
      stats.feasible = false;
      return stats;
    }
    state[idx(node)].resident_pages = out_pages;
    state[idx(node)].active = node != tree.root();
    state[idx(node)].last_touch = clock;
    state[idx(node)].loaded_at = clock;
    frames_used += out_pages;
    stats.peak_frames_used = std::max(stats.peak_frames_used, frames_used);
  }

  stats.feasible = true;
  return stats;
}

}  // namespace ooctree::iosim
