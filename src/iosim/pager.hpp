// Page-granular out-of-core execution simulator.
//
// The analytic FiF counter in core/ works in abstract memory units and
// counts writes only, as the paper does. This module simulates the same
// executions the way a real paging runtime would: data are split into
// fixed-size pages, memory is a set of frames, evictions pick victims via a
// pluggable replacement policy (core/eviction.hpp — victims are found
// through an indexed structure, not a per-eviction scan of every datum),
// and both writes and read-backs are traced. Dirtiness is tracked per
// datum, making write-at-most-once-per-page the explicit accounting model
// (a page whose disk copy exists is dropped for free) rather than an
// accident of the replay's consume-on-read-back control flow. Transient
// working space is reserved in the frame accounting for the duration of a
// task, so peak_frames_used reports frames the pager actually allocated.
// Two uses:
//   * cross-validation — with page_size = 1 and the Belady policy, the
//     pager's write count must equal core::simulate_fif exactly;
//   * the eviction-policy ablation (bench_ablation_eviction), which shows
//     how far LRU/FIFO/random-style policies are from Belady's bound,
//     i.e. the practical content of the paper's Theorem 1.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/eviction.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::iosim {

/// Replacement policies for choosing which active datum loses pages.
/// Shared with the parallel simulator via core/eviction.hpp.
using Policy = core::EvictionPolicy;

[[nodiscard]] std::string policy_name(Policy p);

/// Pager configuration.
struct PagerConfig {
  core::Weight page_size = 1;     ///< memory units per page
  core::Weight memory = 0;        ///< memory bound in units (frames = memory / page_size)
  Policy policy = Policy::kBelady;
  std::uint64_t seed = 1;         ///< for Policy::kRandom
};

/// Aggregate statistics of one simulated execution.
struct PagerStats {
  bool feasible = false;
  std::int64_t pages_written = 0;  ///< dirty pages flushed (once per distinct page)
  std::int64_t pages_read = 0;     ///< read-backs of previously evicted pages
  std::int64_t eviction_events = 0;
  std::int64_t pages_dropped_clean = 0;  ///< evicted pages whose disk copy already existed
  std::int64_t peak_frames_used = 0;

  /// Write volume in memory units (pages_written * page_size).
  [[nodiscard]] core::Weight write_volume(const PagerConfig& c) const {
    return pages_written * c.page_size;
  }
};

/// Runs `schedule` through the pager. The schedule must be topological
/// (throws std::invalid_argument otherwise). Infeasible configurations
/// (some node's working set exceeds the frame count) return
/// feasible = false.
[[nodiscard]] PagerStats run_pager(const core::Tree& tree, const core::Schedule& schedule,
                                   const PagerConfig& config);

/// The page-granular analogue of Tree::min_feasible_memory(): the smallest
/// frame count under which every single task's working set fits (per-child
/// page rounding makes this larger than ceil(LB / page_size)).
[[nodiscard]] core::Weight min_feasible_frames(const core::Tree& tree, core::Weight page_size);

}  // namespace ooctree::iosim
