// Page-granular out-of-core execution simulator (sequential replay).
//
// Units. The analytic FiF counter in core/ works in abstract memory units
// and counts writes only, as the paper does. This module simulates the
// same executions the way a real paging runtime would: data are split into
// fixed-size pages (a datum of weight w occupies page_count(w, page_size)
// pages), memory is a set of frames = memory / page_size, and all I/O is
// counted in pages. page_count() and task_frames() below define the page
// geometry; the paged parallel engine (src/parallel/parallel_sim.hpp,
// simulate_parallel_paged) shares them, so the two simulators agree on
// what a page is and run_pager is exactly its workers = 1 /
// sequential-order special case (pinned by tests/test_paged_parallel.cpp).
//
// Invariants:
//   * write-at-most-once — dirtiness is tracked per datum, so a page is
//     written at most once (a page whose disk copy exists is dropped for
//     free) rather than once per eviction event;
//   * reserved transients — the working space of a step is reserved in
//     frames_used for the duration of the task, so nothing can evict into
//     the head-room and peak_frames_used reports frames the pager actually
//     allocated (step 3 of the replay provably never evicts);
//   * indexed eviction — victims are found through core::EvictionIndex in
//     O(log n) per pick, never a per-eviction scan of every datum; a
//     replay is O((n + evictions) log n).
//
// Under OOCTREE_AUDIT builds (the dev preset) the replay re-checks the
// first two invariants after every step — frames conservation against the
// resident pages, dirty-within-resident, per-datum size bounds — throwing
// core::AuditError on drift (src/core/check.hpp; exercised plus
// fault-injected by tests/test_audit.cpp).
//
// Two uses:
//   * cross-validation — with page_size = 1 and the Belady policy, the
//     pager's write count must equal core::simulate_fif exactly;
//   * the eviction-policy ablation (bench_ablation_eviction,
//     bench_paged_parallel), which shows how far LRU/FIFO/random-style
//     policies are from Belady's bound, i.e. the practical content of the
//     paper's Theorem 1.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/eviction.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::iosim {

/// Replacement policies for choosing which active datum loses pages.
/// Shared with the parallel simulator via core/eviction.hpp.
using Policy = core::EvictionPolicy;

[[nodiscard]] std::string policy_name(Policy p);

/// Pages needed to hold `units` memory units (ceil division). The page
/// geometry shared by run_pager and simulate_parallel_paged.
[[nodiscard]] inline core::Weight page_count(core::Weight units, core::Weight page_size) {
  return (units + page_size - 1) / page_size;
}

/// Frames a task occupies while executing: its children's page-rounded
/// outputs plus the transient extra, i.e. max(sum of child pages,
/// ceil(wbar / page_size)). At page_size = 1 this is wbar(node) under both
/// memory models (wbar >= sum of child weights by construction).
[[nodiscard]] core::Weight task_frames(const core::Tree& tree, core::NodeId node,
                                       core::Weight page_size);

/// Pager configuration.
struct PagerConfig {
  core::Weight page_size = 1;     ///< memory units per page
  core::Weight memory = 0;        ///< memory bound in units (frames = memory / page_size)
  Policy policy = Policy::kBelady;
  std::uint64_t seed = 1;         ///< for Policy::kRandom
};

/// Aggregate statistics of one simulated execution.
struct PagerStats {
  bool feasible = false;
  std::int64_t pages_written = 0;  ///< dirty pages flushed (once per distinct page)
  std::int64_t pages_read = 0;     ///< read-backs of previously evicted pages
  std::int64_t eviction_events = 0;
  std::int64_t pages_dropped_clean = 0;  ///< evicted pages whose disk copy already existed
  std::int64_t peak_frames_used = 0;

  /// Write volume in memory units (pages_written * page_size).
  [[nodiscard]] core::Weight write_volume(const PagerConfig& c) const {
    return pages_written * c.page_size;
  }
};

/// Runs `schedule` through the pager. The schedule must be topological
/// (throws std::invalid_argument otherwise). Infeasible configurations
/// (some node's working set exceeds the frame count) return
/// feasible = false.
[[nodiscard]] PagerStats run_pager(const core::Tree& tree, const core::Schedule& schedule,
                                   const PagerConfig& config);

/// The page-granular analogue of Tree::min_feasible_memory(): the smallest
/// frame count under which every single task's working set fits (per-child
/// page rounding makes this larger than ceil(LB / page_size)).
[[nodiscard]] core::Weight min_feasible_frames(const core::Tree& tree, core::Weight page_size);

}  // namespace ooctree::iosim
