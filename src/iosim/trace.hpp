// Execution traces and I/O time estimation for out-of-core schedules.
//
// The analytic counters answer "how much is written"; this module answers
// "what does the execution look like": a step-by-step event log (compute /
// write / read with amounts and resident sizes) plus a simple disk model
// turning volumes into seconds, so the examples can show a timeline and
// users can size memory against a target I/O budget.
#pragma once

#include <string>
#include <vector>

#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::iosim {

/// One traced event.
struct TraceEvent {
  enum class Kind : std::uint8_t { kCompute, kWrite, kRead };
  Kind kind = Kind::kCompute;
  std::size_t step = 0;       ///< schedule position of the surrounding compute
  core::NodeId node = core::kNoNode;  ///< computed node / datum moved
  core::Weight amount = 0;    ///< units computed (wbar) or transferred
  core::Weight resident_after = 0;    ///< total resident memory afterwards
};

/// Full trace of a schedule executed under FiF evictions.
struct ExecutionTrace {
  bool feasible = false;
  std::vector<TraceEvent> events;
  core::Weight written = 0;
  core::Weight read = 0;
  core::Weight peak_resident = 0;

  /// Resident-memory series sampled after every event (for plotting).
  [[nodiscard]] std::vector<core::Weight> resident_series() const;
};

/// Traces `schedule` under `memory` with FiF evictions; event amounts
/// reproduce core::simulate_fif exactly (same policy, same lazy timing).
[[nodiscard]] ExecutionTrace trace_execution(const core::Tree& tree,
                                             const core::Schedule& schedule,
                                             core::Weight memory);

/// A disk with fixed per-operation latency and sustained bandwidth.
struct DiskModel {
  double latency_s = 1e-4;        ///< seek/queue overhead per transfer
  double bandwidth_per_s = 1e9;   ///< memory units per second

  /// Seconds to move `amount` units in `transfers` operations.
  [[nodiscard]] double transfer_time(core::Weight amount, std::int64_t transfers) const {
    return static_cast<double>(transfers) * latency_s +
           static_cast<double>(amount) / bandwidth_per_s;
  }
};

/// Aggregate I/O time of a trace under the disk model (writes + reads).
[[nodiscard]] double io_time(const ExecutionTrace& trace, const DiskModel& disk);

/// Renders the trace as a compact text timeline (one line per compute step
/// with its I/O annotations) — used by the spill_timeline example.
[[nodiscard]] std::string format_trace(const core::Tree& tree, const ExecutionTrace& trace,
                                       core::Weight memory, std::size_t max_steps = 200);

}  // namespace ooctree::iosim
