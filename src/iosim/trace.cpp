#include "src/iosim/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ooctree::iosim {

using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

namespace {
std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

struct ActiveKey {
  std::size_t parent_step;
  NodeId node;
  bool operator<(const ActiveKey& o) const {
    return parent_step != o.parent_step ? parent_step < o.parent_step : node < o.node;
  }
};
}  // namespace

std::vector<Weight> ExecutionTrace::resident_series() const {
  std::vector<Weight> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) out.push_back(e.resident_after);
  return out;
}

ExecutionTrace trace_execution(const Tree& tree, const Schedule& schedule, Weight memory) {
  if (!core::is_topological_order(tree, schedule))
    throw std::invalid_argument("trace_execution: schedule is not a topological order");
  const std::vector<std::size_t> pos = core::schedule_positions(tree, schedule);

  ExecutionTrace trace;
  std::vector<Weight> resident(tree.size(), 0);
  std::set<ActiveKey> active;
  Weight active_resident = 0;

  for (std::size_t t = 0; t < schedule.size(); ++t) {
    const NodeId node = schedule[t];

    // Read back evicted parts of the children.
    for (const NodeId c : tree.children(node)) {
      const Weight missing = tree.weight(c) - resident[idx(c)];
      if (resident[idx(c)] > 0) {
        active.erase(ActiveKey{t, c});
        active_resident -= resident[idx(c)];
      }
      if (missing > 0) {
        trace.read += missing;
        trace.events.push_back(
            {TraceEvent::Kind::kRead, t, c, missing, active_resident});
      }
      resident[idx(c)] = tree.weight(c);
    }

    // FiF evictions to fit wbar(node).
    const Weight budget = memory - tree.wbar(node);
    if (budget < 0) return trace;  // infeasible, trace.feasible stays false
    while (active_resident > budget) {
      const auto last = std::prev(active.end());
      const NodeId victim = last->node;
      const Weight amount = std::min(active_resident - budget, resident[idx(victim)]);
      resident[idx(victim)] -= amount;
      active_resident -= amount;
      trace.written += amount;
      trace.events.push_back(
          {TraceEvent::Kind::kWrite, t, victim, amount, active_resident});
      if (resident[idx(victim)] == 0) active.erase(last);
    }

    trace.peak_resident = std::max(trace.peak_resident, active_resident + tree.wbar(node));
    trace.events.push_back({TraceEvent::Kind::kCompute, t, node, tree.wbar(node),
                            active_resident + tree.weight(node)});

    resident[idx(node)] = tree.weight(node);
    if (node != tree.root()) {
      active.insert(ActiveKey{pos[idx(tree.parent(node))], node});
      active_resident += tree.weight(node);
    }
  }
  trace.feasible = true;
  return trace;
}

double io_time(const ExecutionTrace& trace, const DiskModel& disk) {
  std::int64_t transfers = 0;
  Weight volume = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEvent::Kind::kCompute) {
      ++transfers;
      volume += e.amount;
    }
  }
  return disk.transfer_time(volume, transfers);
}

std::string format_trace(const Tree& tree, const ExecutionTrace& trace, Weight memory,
                         std::size_t max_steps) {
  std::ostringstream os;
  os << "step  node   wbar  | resident after | I/O\n";
  std::size_t steps_shown = 0;
  std::string io_notes;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kWrite) {
      io_notes += " W(" + std::to_string(e.node) + ":" + std::to_string(e.amount) + ")";
    } else if (e.kind == TraceEvent::Kind::kRead) {
      io_notes += " R(" + std::to_string(e.node) + ":" + std::to_string(e.amount) + ")";
    } else {
      if (steps_shown >= max_steps) {
        os << "... (" << trace.events.size() << " events total)\n";
        break;
      }
      const auto bar_len = static_cast<std::size_t>(
          std::min<Weight>(40, memory > 0 ? 40 * e.resident_after / memory : 0));
      char line[64];
      std::snprintf(line, sizeof line, "%4zu  %4d  %5lld | ", e.step, e.node,
                    static_cast<long long>(tree.wbar(e.node)));
      os << line << std::string(bar_len, '#') << std::string(40 - bar_len, '.') << " |"
         << io_notes << '\n';
      io_notes.clear();
      ++steps_shown;
    }
  }
  os << "written " << trace.written << ", read " << trace.read << ", peak "
     << trace.peak_resident << " / M " << memory << '\n';
  return os.str();
}

}  // namespace ooctree::iosim
