#include "src/parallel/parallel_sim.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

#include "src/core/check.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/iosim/pager.hpp"
#include "src/util/rng.hpp"

namespace ooctree::parallel {

using core::EvictionPolicy;
using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

double task_cost(const Tree& tree, NodeId i, CostModel cost) {
  switch (cost) {
    case CostModel::kWbar: return static_cast<double>(tree.wbar(i));
    case CostModel::kWeight: return static_cast<double>(tree.weight(i));
    case CostModel::kUnit: return 1.0;
  }
  throw std::invalid_argument("task_cost: unknown cost model");
}

/// Validated inputs shared by both engines: the reference order, its
/// positions, and the per-node priority keys (higher runs first).
struct Prepared {
  Schedule ref;
  std::vector<std::size_t> ref_pos;
  std::vector<double> priority_key;
};

Prepared prepare(const Tree& tree, const ParallelConfig& config, const Schedule& reference) {
  if (config.workers < 1) throw std::invalid_argument("simulate_parallel: need >= 1 worker");
  if (config.backfill_depth < 0)
    throw std::invalid_argument("simulate_parallel: backfill_depth must be >= 0");
  if (!(config.reserve_penalty >= 0.0))  // negated: rejects NaN too
    throw std::invalid_argument("simulate_parallel: reserve_penalty must be >= 0");
  if (config.write_queue_depth < 0)
    throw std::invalid_argument("simulate_parallel: write_queue_depth must be >= 0");
  if (config.prefetch_window < 0)
    throw std::invalid_argument("simulate_parallel: prefetch_window must be >= 0");

  Prepared p;
  p.ref = reference.empty() ? core::postorder_minmem(tree).schedule : reference;
  if (!core::is_topological_order(tree, p.ref))
    throw std::invalid_argument("simulate_parallel: reference is not a topological order");
  p.ref_pos = core::schedule_positions(tree, p.ref);

  p.priority_key.assign(tree.size(), 0.0);
  std::vector<double> up(tree.size(), 0.0);
  std::vector<double> subtree(tree.size(), 0.0);
  for (const NodeId v : tree.postorder()) {
    double deepest = 0.0;
    double work = task_cost(tree, v, config.cost);
    for (const NodeId c : tree.children(v)) {
      deepest = std::max(deepest, up[idx(c)]);
      work += subtree[idx(c)];
    }
    up[idx(v)] = deepest + task_cost(tree, v, config.cost);
    subtree[idx(v)] = work;
  }
  // kReservedCriticalPath trades critical-path rank against the memory the
  // task pins while running: a task reserving the whole bound loses
  // reserve_penalty critical paths of priority, one reserving nothing loses
  // none. At reserve_penalty = 0 the subtraction is exactly 0.0, so the key
  // equals kCriticalPath's bit-for-bit (pinned by tests/test_schedulers.cpp).
  double cp = 0.0;
  for (const double u : up) cp = std::max(cp, u);
  const double bound = static_cast<double>(std::max<Weight>(1, config.memory));
  for (std::size_t i = 0; i < tree.size(); ++i) {
    switch (config.priority) {
      case Priority::kSequentialOrder:
        p.priority_key[i] = -static_cast<double>(p.ref_pos[i]);
        break;
      case Priority::kCriticalPath:
        p.priority_key[i] = up[i];
        break;
      case Priority::kHeaviestSubtree:
        p.priority_key[i] = subtree[i];
        break;
      case Priority::kReservedCriticalPath:
        p.priority_key[i] =
            up[i] - config.reserve_penalty * cp *
                        (static_cast<double>(tree.wbar(static_cast<NodeId>(i))) / bound);
        break;
    }
  }
  return p;
}

/// Policy key of a live output, normalized the way EvictionIndex expects
/// raw keys (the index flips LRU/FIFO internally; the reference engine
/// flips in its comparator). In this simulator outputs are written once and
/// only read back at consumption, so the LRU and FIFO clocks coincide: both
/// equal the completion clock of the producing task.
std::int64_t policy_key(EvictionPolicy policy, const Tree& tree, NodeId node, Weight resident,
                        std::int64_t clock, const std::vector<std::size_t>& ref_pos) {
  switch (policy) {
    case EvictionPolicy::kBelady:
      return static_cast<std::int64_t>(ref_pos[idx(tree.parent(node))]);
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      return clock;
    case EvictionPolicy::kLargestFirst:
      return resident;
    case EvictionPolicy::kRandom:
      return 0;
  }
  throw std::invalid_argument("simulate_parallel: unknown eviction policy");
}

}  // namespace

double critical_path(const Tree& tree, CostModel cost) {
  std::vector<double> up(tree.size(), 0.0);
  double best = 0.0;
  for (const NodeId v : tree.postorder()) {
    double deepest_child = 0.0;
    for (const NodeId c : tree.children(v)) deepest_child = std::max(deepest_child, up[idx(c)]);
    up[idx(v)] = deepest_child + task_cost(tree, v, cost);
    best = std::max(best, up[idx(v)]);
  }
  return best;
}

double total_work(const Tree& tree, CostModel cost) {
  double total = 0.0;
  for (std::size_t i = 0; i < tree.size(); ++i)
    total += task_cost(tree, static_cast<NodeId>(i), cost);
  return total;
}

ParallelResult simulate_parallel(const Tree& tree, const ParallelConfig& config,
                                 const Schedule& reference) {
  // The unit-granular engine IS the paged core at page_size = 1 with free
  // reads: pages coincide with memory units, task_frames(i) collapses to
  // wbar(i), and every evicted page is dirty — so the paged accounting
  // degenerates to the unit accounting exactly (no divergence possible).
  PagedParallelConfig paged;
  paged.base = config;
  paged.page_size = 1;
  return simulate_parallel_paged(tree, paged, reference).base;
}

PagedParallelResult simulate_parallel_paged(const Tree& tree, const PagedParallelConfig& config,
                                            const Schedule& reference) {
  if (config.page_size <= 0)
    throw std::invalid_argument("simulate_parallel_paged: page_size must be positive");
  const Prepared prep = prepare(tree, config.base, reference);
  const std::vector<std::size_t>& ref_pos = prep.ref_pos;
  const std::vector<double>& priority_key = prep.priority_key;
  const ParallelConfig& base = config.base;
  const Weight page = config.page_size;

  PagedParallelResult paged;
  paged.frames = base.memory / page;
  const Weight frames = paged.frames;
  ParallelResult& result = paged.base;
  result.io.assign(tree.size(), 0);
  result.start_time.assign(tree.size(), -1.0);
  result.finish_time.assign(tree.size(), -1.0);

  // Page geometry (shared with iosim::run_pager): a datum occupies
  // total_pages frames; a running task holds work_frames =
  // iosim::task_frames (children's page-rounded outputs + transient extra).
  std::vector<Weight> total_pages(tree.size(), 0);
  std::vector<Weight> work_frames(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    total_pages[i] = iosim::page_count(tree.weight(id), page);
    work_frames[i] = iosim::task_frames(tree, id, page);
  }

  // State. Liveness needs no flags here: a live output with resident pages
  // is exactly an EvictionIndex entry, and `resident` covers the rest.
  // Dirtiness is per page: resident - dirty pages have a disk copy and are
  // dropped for free on eviction (write-at-most-once, as in run_pager).
  std::vector<Weight> resident(tree.size(), 0);  // in-memory pages of outputs
  std::vector<Weight> dirty(tree.size(), 0);     // resident pages with no disk copy
  std::vector<std::size_t> missing_children(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    missing_children[i] = tree.num_children(static_cast<NodeId>(i));

  // Ready tasks as a max-heap ordered by priority (then reference position
  // for ties) — no vector::erase on the hot path.
  struct Ready {
    double key;
    std::size_t ref_pos;
    NodeId id;
    bool operator<(const Ready& o) const {  // "less ready"
      return key != o.key ? key < o.key : ref_pos > o.ref_pos;
    }
  };
  std::priority_queue<Ready> ready;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (missing_children[i] == 0)
      ready.push(Ready{priority_key[i], ref_pos[i], static_cast<NodeId>(i)});

  // Running tasks as (finish_time, node) events.
  using Event = std::pair<double, NodeId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = base.workers;
  double now = 0.0;
  Weight frames_used = 0;     // running reservations + live output pages
  Weight running_frames = 0;  // sum of work_frames over running tasks
  std::int64_t clock = 0;     // completion clock (LRU/FIFO keys)

  util::Rng rng(base.seed);
  core::EvictionIndex index(base.evict, tree.size(),
                            base.evict == EvictionPolicy::kRandom ? &rng : nullptr);

  // Disk pipeline. Engaged only under a disk model with a nonzero knob:
  // both knobs at 0 leave every branch below dead, so the synchronous
  // engine is reproduced bit-for-bit (pinned by tests/test_disk_pipeline).
  const bool pipelined =
      config.disk.has_value() && (base.write_queue_depth > 0 || base.prefetch_window > 0);
  const bool async_writes = pipelined && base.write_queue_depth > 0;
  const bool prefetching = pipelined && base.prefetch_window > 0;
  // One device shared by prefetch reads, demand reads and queued writes,
  // with read priority: reads serialize against each other and against
  // any write the device already started, but jump ahead of the queued
  // write backlog (write-back is lazy and latency-insensitive; reads gate
  // compute). `disk_free` is the single-server busy-until clock, so the
  // device never does two transfers at once — DiskModel capacity holds by
  // construction. A pending write starts whenever the device is idle and
  // then blocks later arrivals (non-preemptive, work-conserving).
  double disk_free = 0.0;
  std::deque<std::pair<double, Weight>> write_queue;  // pending write-backs: (enqueue time, pages)
  const auto drain_writes = [&](double t) {
    while (!write_queue.empty()) {
      const double start = std::max(disk_free, write_queue.front().first);
      if (start >= t) break;  // not started by t: unstarted backlog yields to reads
      disk_free = start + config.disk->transfer_time(write_queue.front().second * page, 1);
      write_queue.pop_front();
    }
  };
  const auto issue_read = [&](double at, Weight pages_moved) -> double {
    drain_writes(at);
    const double pure = config.disk->transfer_time(pages_moved * page, 1);
#if OOCTREE_AUDIT_ENABLED
    const double device_was = disk_free;
    // Test-only fault: double-book the device — the transfer "completes"
    // before the serial timeline has room for it.
    if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 16) {
      disk_free = std::min(device_was, at) - pure;
    } else {
      disk_free = std::max(disk_free, at) + pure;
    }
    core::audit_check(disk_free >= device_was && disk_free >= at + pure,
                      "simulate_parallel_paged: disk transfer exceeds DiskModel capacity");
#else
    disk_free = std::max(disk_free, at) + pure;
#endif
    return disk_free;
  };
  // Prefetch bookkeeping: pages that arrived ahead of their consuming
  // start sit resident but clean (their disk copy persists), tracked per
  // child along with the completion time of the latest in-flight read.
  std::vector<Weight> prefetched(prefetching ? tree.size() : 0, 0);
  std::vector<double> prefetch_ready(prefetching ? tree.size() : 0, 0.0);
  // Children of the current look-ahead window: never prefetch-eviction
  // victims (staging must not thrash pages the next starts consume).
  std::vector<char> prefetch_pinned(prefetching ? tree.size() : 0, 0);

#if OOCTREE_AUDIT_ENABLED
  // Audit-only running set (the event queue is not iterable): lets the
  // audit recompute the reservation sum independently of running_frames.
  std::vector<NodeId> audit_running;
  // Invariants of the shared transactional-start core, checked after every
  // completion event and at the end of the run (see parallel_sim.hpp):
  //   * reservation balance — running_frames is exactly the sum of
  //     work_frames over running tasks;
  //   * conservation — frames_used is exactly running reservations plus
  //     resident output pages, and never exceeds the frame count;
  //   * write-at-most-once — a datum's written volume never exceeds its
  //     page-rounded size, and the aggregate equals the per-node sum.
  const auto audit_state = [&] {
    Weight resident_total = 0;
    Weight io_total = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      core::audit_check(dirty[i] >= 0 && dirty[i] <= resident[i],
                        "simulate_parallel_paged: dirty pages outside [0, resident]");
      core::audit_check(resident[i] <= total_pages[i],
                        "simulate_parallel_paged: resident pages exceed the datum size");
      core::audit_check(result.io[i] <= total_pages[i] * page,
                        "simulate_parallel_paged: datum written beyond its size (write-once)");
      // Every clean resident page of this engine arrived via prefetch
      // (outputs are produced fully dirty and demand reads are consumed on
      // arrival), so the prefetch ledger must equal the clean residency.
      if (prefetching)
        core::audit_check(prefetched[i] == resident[i] - dirty[i],
                          "simulate_parallel_paged: prefetch ledger out of sync with "
                          "clean residency");
      resident_total += resident[i];
      io_total += result.io[i];
    }
    if (async_writes)
      core::audit_check(static_cast<int>(write_queue.size()) <= base.write_queue_depth,
                        "simulate_parallel_paged: pending writes exceed write_queue_depth");
    core::audit_check(io_total == result.io_volume,
                      "simulate_parallel_paged: io_volume != sum of per-node I/O");
    Weight reservation_total = 0;
    for (const NodeId r : audit_running) reservation_total += work_frames[idx(r)];
    core::audit_check(reservation_total == running_frames,
                      "simulate_parallel_paged: running reservation out of balance");
    core::audit_check(resident_total + running_frames == frames_used,
                      "simulate_parallel_paged: frames conservation broken");
    core::audit_check(frames_used <= frames,
                      "simulate_parallel_paged: frames_used exceeds the frame count");
    index.audit();
  };
#endif

  // Transactional start: the O(1) precheck below is exact — every live
  // output except i's children is fully evictable (dirty pages cost a
  // write, clean ones are dropped free), so i fits (after eviction) iff
  // the running reservations plus work_frames(i) do. A failing try
  // therefore returns before any state change, and eviction I/O is charged
  // exactly once per real spill (the seed engine flushed victims and
  // charged io_volume even when the start then failed, making results
  // depend on how often backfill retried).
  // The O(1) fit check on its own, shared by try_start and the
  // residency-aware scan (which must test candidates without starting them).
  const auto fits = [&](NodeId i) -> bool {
    if (running_frames + work_frames[idx(i)] > frames) {
#if OOCTREE_AUDIT_ENABLED
      // Snapshot-free transactional check: this failure path runs before
      // any mutation, so the accounting aggregates must be exactly what the
      // caller's loop saw. The fault below re-introduces the PR 3 seed bug
      // (failed starts charged I/O) for tests/test_audit.cpp to catch.
      const Weight io_before = result.io_volume;
      if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 1)
        result.io_volume += page;
      core::audit_check(result.io_volume == io_before,
                        "simulate_parallel_paged: failed start mutated I/O accounting");
#endif
      return false;
    }
    return true;
  };

  // One victim spill, shared by start-time eviction and prefetch staging:
  // take `take` pages from live output v at the caller's local clock
  // `at_clock`. Clean pages drop free; only never-written pages cost a
  // write-back (write-at-most-once). Under async writes a full queue
  // stalls the caller slot-by-slot when `may_stall`; otherwise the spill
  // is refused with no state touched (prefetch is opportunistic — it must
  // never block or charge anything the demand path would not).
  const auto spill = [&](NodeId v, Weight take, double& at_clock, bool may_stall) -> bool {
    // Clean pages are dropped first; only never-written pages cost I/O.
    const Weight clean = resident[idx(v)] - dirty[idx(v)];
    const Weight written = std::max<Weight>(0, take - clean);
    if (async_writes && written > 0) {
      // Slots whose transfers the device completed by the caller's clock
      // are free again.
      drain_writes(at_clock);
      bool backpressure = true;
#if OOCTREE_AUDIT_ENABLED
      // Test-only fault: ignore backpressure so pending writes overflow
      // the queue's slots — the conservation audit must convict.
      if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 4)
        backpressure = false;
#endif
      if (!may_stall && backpressure &&
          static_cast<int>(write_queue.size()) >= base.write_queue_depth)
        return false;
      // A full queue stalls the evicting worker until the oldest pending
      // transfer is forced through the device — one slot, not the whole
      // queue (write_stall).
      while (backpressure && static_cast<int>(write_queue.size()) >= base.write_queue_depth) {
        const double start = std::max(disk_free, std::max(write_queue.front().first, at_clock));
        const double completion =
            start + config.disk->transfer_time(write_queue.front().second * page, 1);
        paged.write_stall += completion - at_clock;
        at_clock = completion;
        disk_free = completion;
        write_queue.pop_front();
      }
    }
    resident[idx(v)] -= take;
    dirty[idx(v)] -= written;
    frames_used -= take;
    paged.pages_written += written;
    paged.pages_dropped_clean += take - written;
    ++paged.eviction_events;
    result.io[idx(v)] += written * page;
    result.io_volume += written * page;
    // Dropped clean pages are exactly prefetched-but-unconsumed pages
    // (outputs are produced fully dirty): they count as wasted prefetch.
    if (prefetching && take > written) {
      const Weight wasted = std::min(prefetched[idx(v)], take - written);
      prefetched[idx(v)] -= wasted;
      paged.prefetch_wasted += wasted;
    }
    if (async_writes && written > 0) {
      paged.disk_write_time += config.disk->transfer_time(written * page, 1);
      write_queue.emplace_back(at_clock, written);
      paged.write_queue_peak = std::max<std::int64_t>(
          paged.write_queue_peak, static_cast<std::int64_t>(write_queue.size()));
#if OOCTREE_AUDIT_ENABLED
      // Queue-slot conservation: an enqueue never leaves more pending
      // transfers than the queue has slots.
      core::audit_check(static_cast<int>(write_queue.size()) <= base.write_queue_depth,
                        "simulate_parallel_paged: pending writes exceed write_queue_depth");
#endif
    }
    if (resident[idx(v)] == 0) {
      index.erase(v);
    } else if (base.evict == EvictionPolicy::kLargestFirst) {
      index.insert(v, resident[idx(v)]);  // re-key after the partial spill
    }
    return true;
  };

  const auto try_start = [&](NodeId i) -> bool {
    if (!fits(i)) return false;

    Weight child_resident = 0;
    for (const NodeId c : tree.children(i)) child_resident += resident[idx(c)];
    // Frame delta of starting i: children read back to their full page
    // counts, then their pages fold into the reservation work_frames(i);
    // the reservation dominates because work_frames >= sum of child pages.
    const Weight delta = work_frames[idx(i)] - child_resident;

    // The children are consumed by this start: never eviction victims.
    for (const NodeId c : tree.children(i))
      if (resident[idx(c)] > 0) index.erase(c);

    // Committed: evict live outputs (furthest-consumer first under Belady)
    // until the start fits. The precheck guarantees the index suffices.
    // `start_at` is this worker's local clock: write-queue backpressure
    // pushes it past `now` before any read is issued or compute begins.
    const Weight target = frames - delta;
    double start_at = now;
    while (frames_used > target) {
      const NodeId v = index.pick();
      spill(v, std::min(resident[idx(v)], frames_used - target), start_at,
            /*may_stall=*/true);
    }

    // Consume the children: read evicted pages back (read-back pages come
    // off disk unmodified — they would stay clean) and fold their outputs
    // into the reservation. With a disk model the consuming worker stalls
    // for the transfer before compute begins: spills delay this start.
    Weight read_pages = 0;
    std::int64_t transfers = 0;
    double io_ready = start_at;  // completion of the last transfer this start waits on
    for (const NodeId c : tree.children(i)) {
      const Weight missing = total_pages[idx(c)] - resident[idx(c)];
      if (missing > 0) {
        read_pages += missing;
        ++transfers;
        if (pipelined) {
          // Demand read on the shared device timeline: queues behind any
          // pending transfer instead of assuming a free disk.
          paged.disk_read_time += config.disk->transfer_time(missing * page, 1);
          io_ready = std::max(io_ready, issue_read(start_at, missing));
        }
      }
      if (prefetching && prefetched[idx(c)] > 0) {
        // Pages fetched ahead of this start pay only their residual
        // transfer time (zero once the read completed under compute).
        paged.prefetch_useful += prefetched[idx(c)];
        io_ready = std::max(io_ready, prefetch_ready[idx(c)]);
        prefetched[idx(c)] = 0;
      }
      frames_used -= resident[idx(c)];
      resident[idx(c)] = 0;
      dirty[idx(c)] = 0;
    }
    paged.pages_read += read_pages;
    paged.read_transfers += transfers;
    double stall = 0.0;
    if (pipelined) {
      stall = io_ready - start_at;
      paged.read_stall += stall;
    } else if (config.disk.has_value() && read_pages > 0) {
      stall = config.disk->transfer_time(read_pages * page, transfers);
      paged.read_stall += stall;
      paged.disk_read_time += stall;  // synchronous: the wait IS the device time
    }
    frames_used += work_frames[idx(i)];
    running_frames += work_frames[idx(i)];
    paged.peak_frames_used = std::max<std::int64_t>(paged.peak_frames_used, frames_used);
    result.peak_resident = std::max(result.peak_resident, frames_used * page);

    result.start_time[idx(i)] = now;
    result.start_order.push_back(i);
    const double cost = task_cost(tree, i, base.cost);
    result.busy_time += cost;  // compute only: read/write stalls are not useful work
    running.emplace(start_at + stall + cost, i);
    --idle;
#if OOCTREE_AUDIT_ENABLED
    audit_running.push_back(i);
#endif
    return true;
  };

  // Backfill contract: with backfill on, each free worker slot examines at
  // most `depth` ready tasks (0 = the whole heap) before the round gives
  // up; backfill off is exactly depth 1 (strict priority). Starts within a
  // round only grow running_frames, so a task that failed the fit check
  // cannot fit later in the same round — failures go to `deferred` and
  // return to the heap only when a completion frees memory.
  const int depth = base.backfill ? base.backfill_depth : 1;
  const bool residency = base.residency_aware && config.disk.has_value();
  std::size_t completed = 0;
  std::vector<Ready> deferred;
  std::vector<Ready> window;            // residency scan: fitting candidates
  std::vector<std::int64_t> window_at;  // examined index of each window entry
  std::vector<Ready> peek;              // prefetch scan: look-ahead candidates
  std::vector<NodeId> pinned;           // prefetch scan: marked window children
  std::vector<Ready> cands;             // prefetch scan: candidates in scan order
  std::vector<NodeId> predicted;        // prefetch scan: predicted next starts
  std::vector<char> taken;              // prefetch scan: candidates already predicted
  std::vector<std::pair<NodeId, int>> sim_dec;  // prefetch scan: replayed completions
  while (completed < tree.size()) {
    deferred.clear();
    if (!residency) {
      // Start ready tasks in priority order: the first fitting task of the
      // (depth-bounded) scan is the best-priority fitting one.
      std::int64_t examined = 0;  // candidates looked at since the last start
      while (idle > 0 && !ready.empty()) {
        const Ready r = ready.top();
        ready.pop();
        ++examined;
        if (try_start(r.id)) {
          result.backfill_scans += examined - 1;
          if (examined > 1) ++result.backfill_hits;
          examined = 0;
          continue;
        }
        ++result.failed_starts;
        deferred.push_back(r);
        if (depth > 0 && examined >= depth) break;
      }
      if (examined > 0) result.backfill_scans += examined - 1;
    } else {
      // Residency-aware slot scan: collect the fitting tasks of the backfill
      // window and start the one with the fewest child pages to read back
      // (ties: best priority, i.e. scan order). A fully resident candidate
      // ends the scan — nothing can beat zero missing pages. Fitting tasks
      // that lose the tie return to the heap without counting as failures;
      // when reads cost nothing the rule never fires (missing pages are
      // free), and the gate above keeps the free-read engines bit-identical.
      while (idle > 0 && !ready.empty()) {
        window.clear();
        window_at.clear();
        std::size_t best = 0;
        Weight best_missing = -1;
        std::int64_t examined = 0;
        while (!ready.empty() && (depth == 0 || examined < depth)) {
          const Ready r = ready.top();
          ready.pop();
          ++examined;
          if (!fits(r.id)) {
            ++result.failed_starts;
            deferred.push_back(r);
            continue;
          }
          Weight missing = 0;
          for (const NodeId c : tree.children(r.id)) {
            missing += total_pages[idx(c)] - resident[idx(c)];
#if OOCTREE_AUDIT_ENABLED
            // A live output with resident pages is exactly an EvictionIndex
            // entry — the residency signal and the victim index must agree.
            core::audit_check(index.contains(c) == (resident[idx(c)] > 0),
                              "simulate_parallel_paged: residency scan out of sync with "
                              "the eviction index");
#endif
          }
          if (best_missing < 0 || missing < best_missing) {
            best_missing = missing;
            best = window.size();
          }
          window.push_back(r);
          window_at.push_back(examined);
          if (best_missing == 0) break;
        }
        if (examined > 0) result.backfill_scans += examined - 1;
        if (window.empty()) break;  // nothing in the window fits: round over
        for (std::size_t k = 0; k < window.size(); ++k)
          if (k != best) ready.push(window[k]);
        if (!try_start(window[best].id))
          throw std::logic_error(
              "simulate_parallel_paged: residency start failed after a passing fit check");
        if (window_at[best] != 1) ++result.backfill_hits;
      }
    }
    for (const Ready& r : deferred) ready.push(r);

    if (prefetching && !running.empty()) {
      // Look-ahead prefetch: peek the top prefetch_window ready tasks —
      // the next starts in priority order — and stage their evicted child
      // pages back in before the consuming start, overlapping the reads
      // with the compute currently running. Staging may evict through the
      // shared index: the victim it picks is the one the demand start
      // would spill anyway, just earlier. Two guards keep it opportunistic
      // rather than disruptive: it never evicts a child of the peeked
      // window itself (that would thrash pages the upcoming starts are
      // about to consume), and when the write queue is full it gives up
      // the round instead of stalling. Fetched pages land clean (their
      // disk copy persists), join the eviction index (an eviction before
      // use counts them prefetch_wasted), and their transfers run on the
      // shared device timeline.
      // Prediction: raw priority order mispredicts badly at tight memory
      // (the top ready tasks usually fail the fit check and backfill
      // starts deeper candidates — failed_starts dwarfs starts; worse,
      // most reads happen at parents that only become ready at an
      // upcoming completion, so they are not even in the heap yet). The
      // staging target list therefore replays the scheduler's own rule
      // against the known future: completions free worker reservations in
      // finish order (the running heap is visible), each one may activate
      // a parent (missing_children bookkeeping), and each round starts
      // the first ready task of the backfill window whose reservation
      // fits — all deterministic from here. The first predicted start is
      // exact; later ones degrade gracefully.
      peek.clear();
      const int scan_cap =
          base.prefetch_window + (depth > 0 ? static_cast<int>(depth) : 16);
      for (int k = 0; k < scan_cap && !ready.empty(); ++k) {
        peek.push_back(ready.top());
        ready.pop();
      }
      predicted.clear();
      cands.assign(peek.begin(), peek.end());  // pop order == scan order
      taken.assign(cands.size(), 0);
      sim_dec.clear();
      {
        // The replay is self-extending: a predicted start's completion
        // (round time + cost, both known) re-enters the event heap and can
        // activate further parents, so the horizon is bounded by the
        // window, not by the current running set.
        auto run_copy = running;
        Weight run_frames_pred = running_frames;
        int idle_pred = idle;
        while (!run_copy.empty() &&
               static_cast<int>(predicted.size()) < base.prefetch_window) {
          const auto [done_at, done] = run_copy.top();
          run_copy.pop();
          run_frames_pred -= work_frames[idx(done)];
          ++idle_pred;
          const NodeId par = tree.parent(done);
          if (par != kNoNode) {
            int seen = 1;
            for (auto& [p, cnt] : sim_dec)
              if (p == par) seen = ++cnt;
            if (seen == 1) sim_dec.emplace_back(par, 1);
            if (static_cast<std::size_t>(seen) == missing_children[idx(par)]) {
              // The parent becomes ready at this completion: merge it into
              // the candidate list at its scan position.
              const Ready activated{priority_key[idx(par)], ref_pos[idx(par)], par};
              std::size_t pos = 0;
              while (pos < cands.size() && !(cands[pos] < activated)) ++pos;
              cands.insert(cands.begin() + static_cast<std::ptrdiff_t>(pos), activated);
              taken.insert(taken.begin() + static_cast<std::ptrdiff_t>(pos), 0);
            }
          }
          // One scheduling round after this completion: priority order,
          // at most `depth` examined per start, started tasks leave the
          // scan (deferred candidates return only between rounds).
          std::int64_t examined = 0;
          for (std::size_t k2 = 0; k2 < cands.size() && idle_pred > 0 &&
                                   static_cast<int>(predicted.size()) < base.prefetch_window;
               ++k2) {
            if (taken[k2]) continue;
            ++examined;
            if (run_frames_pred + work_frames[idx(cands[k2].id)] <= frames) {
              taken[k2] = 1;
              predicted.push_back(cands[k2].id);
              run_frames_pred += work_frames[idx(cands[k2].id)];
              run_copy.emplace(done_at + task_cost(tree, cands[k2].id, base.cost), cands[k2].id);
              --idle_pred;
              examined = 0;
            } else if (depth > 0 && examined >= depth) {
              break;
            }
          }
        }
      }
      pinned.clear();
      for (const NodeId tgt : predicted)
        for (const NodeId c : tree.children(tgt))
          if (!prefetch_pinned[idx(c)]) {
            prefetch_pinned[idx(c)] = 1;
            pinned.push_back(c);
          }
      bool open = true;  // staging stops for the round at the first refusal
      for (const NodeId tgt : predicted) {
        if (!open) break;
        for (const NodeId c : tree.children(tgt)) {
          if (!open) break;
          // A child that has not completed yet has no on-disk copy to
          // read — its output materializes in memory at completion.
          if (result.finish_time[idx(c)] < 0.0) continue;
          Weight missing = total_pages[idx(c)] - resident[idx(c)];
#if OOCTREE_AUDIT_ENABLED
          // Test-only fault: size the read from the datum's full page
          // count, re-fetching resident pages — the audit must convict
          // before any state is touched.
          if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 8)
            missing = total_pages[idx(c)];
#endif
          while (missing > 0) {
            const Weight free_frames = frames - frames_used;
            if (free_frames <= 0) {
              // No head-room: stage the upcoming start's own eviction
              // early, unless the victim is pinned or the queue is full.
              if (index.empty()) {
                open = false;
                break;
              }
              const NodeId v = index.pick();
              if (prefetch_pinned[idx(v)]) {
                open = false;
                break;
              }
              double at = now;
              if (!spill(v, std::min(resident[idx(v)], missing), at,
                         /*may_stall=*/false)) {
                open = false;
                break;
              }
              continue;  // frames freed: re-check the head-room
            }
            const Weight take = std::min(missing, free_frames);
#if OOCTREE_AUDIT_ENABLED
            core::audit_check(resident[idx(c)] + take <= total_pages[idx(c)],
                              "simulate_parallel_paged: prefetch of already-resident pages");
#endif
            paged.disk_read_time += config.disk->transfer_time(take * page, 1);
            prefetch_ready[idx(c)] =
                std::max(prefetch_ready[idx(c)], issue_read(now, take));
            resident[idx(c)] += take;
            prefetched[idx(c)] += take;
            frames_used += take;
            paged.peak_frames_used = std::max<std::int64_t>(paged.peak_frames_used, frames_used);
            result.peak_resident = std::max(result.peak_resident, frames_used * page);
            paged.prefetch_issued += take;
            paged.pages_read += take;
            ++paged.read_transfers;
            // A live output with resident pages is an EvictionIndex entry;
            // insert() upserts, re-keying partially resident outputs (the
            // prefetch counts as a touch under LRU/FIFO).
            index.insert(c, policy_key(base.evict, tree, c, resident[idx(c)], clock, ref_pos));
            missing -= take;
          }
        }
      }
      for (const NodeId c : pinned) prefetch_pinned[idx(c)] = 0;
      for (const Ready& r : peek) ready.push(r);
    }

    if (running.empty()) {
      // No task running and nothing startable: with all evictable pages
      // flushed the smallest work_frames must fit, so this means the frame
      // count is below min_feasible_frames.
      result.feasible = false;
      return paged;
    }

    // Advance to the next completion.
    const auto [finish, node] = running.top();
    running.pop();
    now = finish;
    result.finish_time[idx(node)] = now;
    ++idle;
    ++completed;
    ++clock;

    // Reservation work_frames collapses to the output's page count; the
    // output is produced in memory, so every page starts dirty.
    frames_used -= work_frames[idx(node)];
    running_frames -= work_frames[idx(node)];
#if OOCTREE_AUDIT_ENABLED
    audit_running.erase(std::find(audit_running.begin(), audit_running.end(), node));
    // Test-only seed-bug class: completion leaks one frame of its
    // reservation — the conservation audit below must catch it.
    if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 2) ++frames_used;
#endif
    if (node != tree.root()) {
      frames_used += total_pages[idx(node)];
      resident[idx(node)] = total_pages[idx(node)];
      dirty[idx(node)] = total_pages[idx(node)];
      if (total_pages[idx(node)] > 0)
        index.insert(node, policy_key(base.evict, tree, node, total_pages[idx(node)], clock,
                                      ref_pos));
    }

    const NodeId parent = tree.parent(node);
    if (parent != kNoNode && --missing_children[idx(parent)] == 0)
      ready.push(Ready{priority_key[idx(parent)], ref_pos[idx(parent)], parent});

#if OOCTREE_AUDIT_ENABLED
    audit_state();
#endif
  }

#if OOCTREE_AUDIT_ENABLED
  audit_state();
  core::audit_check(frames_used == 0 && running_frames == 0,
                    "simulate_parallel_paged: frames still allocated after the root completed");
  // Every prefetched page ends consumed or evicted: the wasted/useful
  // split conserves against the issue count once the root completed.
  core::audit_check(paged.prefetch_issued == paged.prefetch_useful + paged.prefetch_wasted,
                    "simulate_parallel_paged: prefetched pages neither consumed nor evicted");
#endif
  result.makespan = now;
  result.feasible = true;
  return paged;
}

ParallelResult simulate_parallel_reference(const Tree& tree, const ParallelConfig& config,
                                           const Schedule& reference) {
  const Prepared prep = prepare(tree, config, reference);
  const std::vector<std::size_t>& ref_pos = prep.ref_pos;
  const std::vector<double>& priority_key = prep.priority_key;

  ParallelResult result;
  result.io.assign(tree.size(), 0);
  result.start_time.assign(tree.size(), -1.0);
  result.finish_time.assign(tree.size(), -1.0);

  // State.
  std::vector<Weight> resident(tree.size(), 0);  // in-memory part of outputs
  std::vector<bool> output_live(tree.size(), false);
  std::vector<std::int64_t> live_clock(tree.size(), 0);  // completion clock per output
  std::vector<std::size_t> missing_children(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    missing_children[i] = tree.num_children(static_cast<NodeId>(i));

  // Ready tasks ordered by priority (then reference position for ties).
  const auto readier = [&](NodeId a, NodeId b) {
    if (priority_key[idx(a)] != priority_key[idx(b)])
      return priority_key[idx(a)] > priority_key[idx(b)];
    return ref_pos[idx(a)] < ref_pos[idx(b)];
  };
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (missing_children[i] == 0) ready.push_back(static_cast<NodeId>(i));
  std::sort(ready.begin(), ready.end(), readier);

  // Running tasks as (finish_time, node) events.
  using Event = std::pair<double, NodeId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = config.workers;
  double now = 0.0;
  Weight memory_used = 0;  // running reservations + live output parts
  std::int64_t clock = 0;
  util::Rng rng(config.seed);

  // Normalized eviction key: larger == evicted sooner (same convention and
  // tie-break as EvictionIndex, so both engines pick identical victims).
  const auto evict_key = [&](NodeId v) -> std::int64_t {
    switch (config.evict) {
      case EvictionPolicy::kBelady:
        return static_cast<std::int64_t>(ref_pos[idx(tree.parent(v))]);
      case EvictionPolicy::kLru:
      case EvictionPolicy::kFifo:
        return -live_clock[idx(v)];
      case EvictionPolicy::kLargestFirst:
        return resident[idx(v)];
      case EvictionPolicy::kRandom:
        return 0;
    }
    throw std::invalid_argument("simulate_parallel_reference: unknown eviction policy");
  };

  // Evicts from live outputs (parents not yet started) until `needed`
  // additional units fit. Transactional: when even full eviction cannot
  // make room, returns false WITHOUT evicting anything, so a failed start
  // charges no I/O (the seed engine flushed victims before reporting
  // failure, inflating io_volume by one flush per backfill retry).
  const auto make_room = [&](Weight needed, NodeId starting) -> bool {
    if (memory_used + needed <= config.memory) return true;
    std::vector<NodeId> victims;
    Weight evictable = 0;
    for (std::size_t k = 0; k < tree.size(); ++k) {
      const auto id = static_cast<NodeId>(k);
      if (!output_live[k] || resident[k] == 0) continue;
      bool is_child = false;
      for (const NodeId c : tree.children(starting)) is_child |= (c == id);
      if (is_child) continue;
      victims.push_back(id);
      evictable += resident[k];
    }
    if (memory_used + needed - evictable > config.memory) return false;
    if (config.evict == EvictionPolicy::kRandom) {
      while (memory_used + needed > config.memory) {
        const std::size_t pos = rng.index(victims.size());
        const NodeId v = victims[pos];
        const Weight take =
            std::min(resident[idx(v)], memory_used + needed - config.memory);
        resident[idx(v)] -= take;
        memory_used -= take;
        result.io[idx(v)] += take;
        result.io_volume += take;
        if (resident[idx(v)] == 0) {
          victims[pos] = victims.back();
          victims.pop_back();
        }
      }
      return true;
    }
    std::sort(victims.begin(), victims.end(), [&](NodeId a, NodeId b) {
      const std::int64_t ka = evict_key(a), kb = evict_key(b);
      return ka != kb ? ka > kb : a < b;
    });
    for (const NodeId v : victims) {
      if (memory_used + needed <= config.memory) break;
      const Weight take =
          std::min(resident[idx(v)], memory_used + needed - config.memory);
      resident[idx(v)] -= take;
      memory_used -= take;
      result.io[idx(v)] += take;
      result.io_volume += take;
    }
    return true;
  };

  const auto try_start = [&](NodeId i) -> bool {
    // Memory delta of starting i: children read back to full size, then
    // their outputs fold into the running reservation wbar(i).
    Weight child_resident = 0;
    for (const NodeId c : tree.children(i)) child_resident += resident[idx(c)];
    const Weight delta = tree.wbar(i) - child_resident;
    if (!make_room(delta, i)) return false;
    for (const NodeId c : tree.children(i)) {
      memory_used += tree.weight(c) - resident[idx(c)];
      resident[idx(c)] = tree.weight(c);
    }
    for (const NodeId c : tree.children(i)) {
      memory_used -= tree.weight(c);
      resident[idx(c)] = 0;
      output_live[idx(c)] = false;
    }
    memory_used += tree.wbar(i);
    result.peak_resident = std::max(result.peak_resident, memory_used);

    result.start_time[idx(i)] = now;
    result.start_order.push_back(i);
    const double cost = task_cost(tree, i, config.cost);
    result.busy_time += cost;
    running.emplace(now + cost, i);
    --idle;
    return true;
  };

  // Same backfill contract as the indexed engine: at most `depth` ready
  // tasks examined per slot (0 = all, backfill off = 1), with identical
  // scan/hit accounting — the differential suites compare these fields too.
  const int depth = config.backfill ? config.backfill_depth : 1;
  std::size_t completed = 0;
  while (completed < tree.size()) {
    // Start ready tasks best-priority first. Starts only grow the running
    // reservations, so a task that failed cannot succeed later in the same
    // round — one pass over the sorted ready list is exhaustive.
    std::int64_t examined = 0;  // candidates looked at since the last start
    for (std::size_t k = 0; idle > 0 && k < ready.size();) {
      ++examined;
      if (try_start(ready[k])) {
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
        result.backfill_scans += examined - 1;
        if (examined > 1) ++result.backfill_hits;
        examined = 0;
        continue;
      }
      ++result.failed_starts;
      if (depth > 0 && examined >= depth) break;
      ++k;
    }
    if (examined > 0) result.backfill_scans += examined - 1;

    if (running.empty()) {
      // No task running and nothing startable: with all evictable data
      // flushed the smallest wbar must fit, so this means M < LB.
      result.feasible = false;
      return result;
    }

    // Advance to the next completion.
    const auto [finish, node] = running.top();
    running.pop();
    now = finish;
    result.finish_time[idx(node)] = now;
    ++idle;
    ++completed;
    ++clock;

    // Reservation wbar collapses to the output size.
    memory_used -= tree.wbar(node);
    if (node != tree.root()) {
      memory_used += tree.weight(node);
      resident[idx(node)] = tree.weight(node);
      output_live[idx(node)] = true;
      live_clock[idx(node)] = clock;
    }

    const NodeId parent = tree.parent(node);
    if (parent != kNoNode && --missing_children[idx(parent)] == 0) {
      const auto at = std::lower_bound(ready.begin(), ready.end(), parent, readier);
      ready.insert(at, parent);
    }
  }

  result.makespan = now;
  result.feasible = true;
  return result;
}

}  // namespace ooctree::parallel
