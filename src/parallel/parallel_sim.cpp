#include "src/parallel/parallel_sim.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

#include "src/core/minmem_postorder.hpp"

namespace ooctree::parallel {

using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

double task_cost(const Tree& tree, NodeId i, CostModel cost) {
  switch (cost) {
    case CostModel::kWbar: return static_cast<double>(tree.wbar(i));
    case CostModel::kWeight: return static_cast<double>(tree.weight(i));
    case CostModel::kUnit: return 1.0;
  }
  throw std::invalid_argument("task_cost: unknown cost model");
}

}  // namespace

double critical_path(const Tree& tree, CostModel cost) {
  std::vector<double> up(tree.size(), 0.0);
  double best = 0.0;
  for (const NodeId v : tree.postorder()) {
    double deepest_child = 0.0;
    for (const NodeId c : tree.children(v)) deepest_child = std::max(deepest_child, up[idx(c)]);
    up[idx(v)] = deepest_child + task_cost(tree, v, cost);
    best = std::max(best, up[idx(v)]);
  }
  return best;
}

double total_work(const Tree& tree, CostModel cost) {
  double total = 0.0;
  for (std::size_t i = 0; i < tree.size(); ++i)
    total += task_cost(tree, static_cast<NodeId>(i), cost);
  return total;
}

ParallelResult simulate_parallel(const Tree& tree, const ParallelConfig& config,
                                 const Schedule& reference) {
  if (config.workers < 1) throw std::invalid_argument("simulate_parallel: need >= 1 worker");

  const Schedule ref =
      reference.empty() ? core::postorder_minmem(tree).schedule : reference;
  if (!core::is_topological_order(tree, ref))
    throw std::invalid_argument("simulate_parallel: reference is not a topological order");
  const std::vector<std::size_t> ref_pos = core::schedule_positions(tree, ref);

  // Priority keys (higher runs first).
  std::vector<double> priority_key(tree.size(), 0.0);
  {
    std::vector<double> up(tree.size(), 0.0);
    std::vector<double> subtree(tree.size(), 0.0);
    for (const NodeId v : tree.postorder()) {
      double deepest = 0.0;
      double work = task_cost(tree, v, config.cost);
      for (const NodeId c : tree.children(v)) {
        deepest = std::max(deepest, up[idx(c)]);
        work += subtree[idx(c)];
      }
      up[idx(v)] = deepest + task_cost(tree, v, config.cost);
      subtree[idx(v)] = work;
    }
    for (std::size_t i = 0; i < tree.size(); ++i) {
      switch (config.priority) {
        case Priority::kSequentialOrder:
          priority_key[i] = -static_cast<double>(ref_pos[i]);
          break;
        case Priority::kCriticalPath:
          priority_key[i] = up[i];
          break;
        case Priority::kHeaviestSubtree:
          priority_key[i] = subtree[i];
          break;
      }
    }
  }

  ParallelResult result;
  result.io.assign(tree.size(), 0);
  result.start_time.assign(tree.size(), -1.0);
  result.finish_time.assign(tree.size(), -1.0);

  // State.
  std::vector<Weight> resident(tree.size(), 0);  // in-memory part of outputs
  std::vector<bool> output_live(tree.size(), false);
  std::vector<std::size_t> missing_children(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    missing_children[i] = tree.num_children(static_cast<NodeId>(i));

  // Ready tasks ordered by priority (then reference position for ties).
  const auto readier = [&](NodeId a, NodeId b) {
    if (priority_key[idx(a)] != priority_key[idx(b)])
      return priority_key[idx(a)] > priority_key[idx(b)];
    return ref_pos[idx(a)] < ref_pos[idx(b)];
  };
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (missing_children[i] == 0) ready.push_back(static_cast<NodeId>(i));
  std::sort(ready.begin(), ready.end(), readier);

  // Running tasks as (finish_time, node) events.
  using Event = std::pair<double, NodeId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = config.workers;
  double now = 0.0;
  Weight memory_used = 0;  // running reservations + live output parts

  // Evicts from live outputs (parents not yet started) until `needed`
  // additional units fit; victims are furthest in the reference order.
  // Returns false when even full eviction cannot make room.
  const auto make_room = [&](Weight needed, NodeId starting) -> bool {
    if (memory_used + needed <= config.memory) return true;
    std::vector<NodeId> victims;
    for (std::size_t k = 0; k < tree.size(); ++k) {
      const auto id = static_cast<NodeId>(k);
      if (!output_live[k] || resident[k] == 0) continue;
      bool is_child = false;
      for (const NodeId c : tree.children(starting)) is_child |= (c == id);
      if (!is_child) victims.push_back(id);
    }
    std::sort(victims.begin(), victims.end(), [&](NodeId a, NodeId b) {
      return ref_pos[idx(tree.parent(a))] > ref_pos[idx(tree.parent(b))];
    });
    for (const NodeId v : victims) {
      if (memory_used + needed <= config.memory) break;
      const Weight take =
          std::min(resident[idx(v)], memory_used + needed - config.memory);
      resident[idx(v)] -= take;
      memory_used -= take;
      result.io[idx(v)] += take;
      result.io_volume += take;
    }
    return memory_used + needed <= config.memory;
  };

  const auto try_start = [&](NodeId i) -> bool {
    // Memory delta of starting i: children read back to full size, then
    // their outputs fold into the running reservation wbar(i).
    Weight readback = 0;
    Weight child_resident = 0;
    for (const NodeId c : tree.children(i)) {
      readback += tree.weight(c) - resident[idx(c)];
      child_resident += tree.weight(c);
    }
    // Peak during the start transition: everything else + full children +
    // wbar... the reservation replaces the children outputs, so the
    // requirement is max(readback step, running step); the running step
    // dominates because wbar >= sum of children weights.
    const Weight delta = tree.wbar(i) - (child_resident - readback);
    if (!make_room(delta, i)) return false;
    for (const NodeId c : tree.children(i)) {
      memory_used += tree.weight(c) - resident[idx(c)];
      resident[idx(c)] = tree.weight(c);
    }
    for (const NodeId c : tree.children(i)) {
      memory_used -= tree.weight(c);
      resident[idx(c)] = 0;
      output_live[idx(c)] = false;
    }
    memory_used += tree.wbar(i);
    result.peak_resident = std::max(result.peak_resident, memory_used);

    result.start_time[idx(i)] = now;
    result.start_order.push_back(i);
    const double cost = task_cost(tree, i, config.cost);
    result.busy_time += cost;
    running.emplace(now + cost, i);
    --idle;
    return true;
  };

  std::size_t completed = 0;
  while (completed < tree.size()) {
    // Start as many ready tasks as possible, best priority first.
    bool started = true;
    while (started && idle > 0 && !ready.empty()) {
      started = false;
      for (std::size_t k = 0; k < ready.size(); ++k) {
        if (try_start(ready[k])) {
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
          started = true;
          break;
        }
        if (!config.backfill) break;  // strict priority: do not skip ahead
      }
    }

    if (running.empty()) {
      // No task running and nothing startable: with all evictable data
      // flushed the smallest wbar must fit, so this means M < LB.
      result.feasible = false;
      return result;
    }

    // Advance to the next completion.
    const auto [finish, node] = running.top();
    running.pop();
    now = finish;
    result.finish_time[idx(node)] = now;
    ++idle;
    ++completed;

    // Reservation wbar collapses to the output size.
    memory_used -= tree.wbar(node);
    if (node != tree.root()) {
      memory_used += tree.weight(node);
      resident[idx(node)] = tree.weight(node);
      output_live[idx(node)] = true;
    }

    const NodeId parent = tree.parent(node);
    if (parent != kNoNode && --missing_children[idx(parent)] == 0) {
      const auto at = std::lower_bound(ready.begin(), ready.end(), parent, readier);
      ready.insert(at, parent);
    }
  }

  result.makespan = now;
  result.feasible = true;
  return result;
}

}  // namespace ooctree::parallel
