#include "src/parallel/parallel_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "src/core/check.hpp"
#include "src/core/minmem_postorder.hpp"
#include "src/iosim/pager.hpp"
#include "src/util/rng.hpp"

namespace ooctree::parallel {

using core::EvictionPolicy;
using core::kNoNode;
using core::NodeId;
using core::Schedule;
using core::Tree;
using core::Weight;

namespace {

std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

double task_cost(const Tree& tree, NodeId i, CostModel cost) {
  switch (cost) {
    case CostModel::kWbar: return static_cast<double>(tree.wbar(i));
    case CostModel::kWeight: return static_cast<double>(tree.weight(i));
    case CostModel::kUnit: return 1.0;
  }
  throw std::invalid_argument("task_cost: unknown cost model");
}

/// Validated inputs shared by both engines: the reference order, its
/// positions, and the per-node priority keys (higher runs first).
struct Prepared {
  Schedule ref;
  std::vector<std::size_t> ref_pos;
  std::vector<double> priority_key;
};

Prepared prepare(const Tree& tree, const ParallelConfig& config, const Schedule& reference) {
  if (config.workers < 1) throw std::invalid_argument("simulate_parallel: need >= 1 worker");
  if (config.backfill_depth < 0)
    throw std::invalid_argument("simulate_parallel: backfill_depth must be >= 0");
  if (!(config.reserve_penalty >= 0.0))  // negated: rejects NaN too
    throw std::invalid_argument("simulate_parallel: reserve_penalty must be >= 0");

  Prepared p;
  p.ref = reference.empty() ? core::postorder_minmem(tree).schedule : reference;
  if (!core::is_topological_order(tree, p.ref))
    throw std::invalid_argument("simulate_parallel: reference is not a topological order");
  p.ref_pos = core::schedule_positions(tree, p.ref);

  p.priority_key.assign(tree.size(), 0.0);
  std::vector<double> up(tree.size(), 0.0);
  std::vector<double> subtree(tree.size(), 0.0);
  for (const NodeId v : tree.postorder()) {
    double deepest = 0.0;
    double work = task_cost(tree, v, config.cost);
    for (const NodeId c : tree.children(v)) {
      deepest = std::max(deepest, up[idx(c)]);
      work += subtree[idx(c)];
    }
    up[idx(v)] = deepest + task_cost(tree, v, config.cost);
    subtree[idx(v)] = work;
  }
  // kReservedCriticalPath trades critical-path rank against the memory the
  // task pins while running: a task reserving the whole bound loses
  // reserve_penalty critical paths of priority, one reserving nothing loses
  // none. At reserve_penalty = 0 the subtraction is exactly 0.0, so the key
  // equals kCriticalPath's bit-for-bit (pinned by tests/test_schedulers.cpp).
  double cp = 0.0;
  for (const double u : up) cp = std::max(cp, u);
  const double bound = static_cast<double>(std::max<Weight>(1, config.memory));
  for (std::size_t i = 0; i < tree.size(); ++i) {
    switch (config.priority) {
      case Priority::kSequentialOrder:
        p.priority_key[i] = -static_cast<double>(p.ref_pos[i]);
        break;
      case Priority::kCriticalPath:
        p.priority_key[i] = up[i];
        break;
      case Priority::kHeaviestSubtree:
        p.priority_key[i] = subtree[i];
        break;
      case Priority::kReservedCriticalPath:
        p.priority_key[i] =
            up[i] - config.reserve_penalty * cp *
                        (static_cast<double>(tree.wbar(static_cast<NodeId>(i))) / bound);
        break;
    }
  }
  return p;
}

/// Policy key of a live output, normalized the way EvictionIndex expects
/// raw keys (the index flips LRU/FIFO internally; the reference engine
/// flips in its comparator). In this simulator outputs are written once and
/// only read back at consumption, so the LRU and FIFO clocks coincide: both
/// equal the completion clock of the producing task.
std::int64_t policy_key(EvictionPolicy policy, const Tree& tree, NodeId node, Weight resident,
                        std::int64_t clock, const std::vector<std::size_t>& ref_pos) {
  switch (policy) {
    case EvictionPolicy::kBelady:
      return static_cast<std::int64_t>(ref_pos[idx(tree.parent(node))]);
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      return clock;
    case EvictionPolicy::kLargestFirst:
      return resident;
    case EvictionPolicy::kRandom:
      return 0;
  }
  throw std::invalid_argument("simulate_parallel: unknown eviction policy");
}

}  // namespace

double critical_path(const Tree& tree, CostModel cost) {
  std::vector<double> up(tree.size(), 0.0);
  double best = 0.0;
  for (const NodeId v : tree.postorder()) {
    double deepest_child = 0.0;
    for (const NodeId c : tree.children(v)) deepest_child = std::max(deepest_child, up[idx(c)]);
    up[idx(v)] = deepest_child + task_cost(tree, v, cost);
    best = std::max(best, up[idx(v)]);
  }
  return best;
}

double total_work(const Tree& tree, CostModel cost) {
  double total = 0.0;
  for (std::size_t i = 0; i < tree.size(); ++i)
    total += task_cost(tree, static_cast<NodeId>(i), cost);
  return total;
}

ParallelResult simulate_parallel(const Tree& tree, const ParallelConfig& config,
                                 const Schedule& reference) {
  // The unit-granular engine IS the paged core at page_size = 1 with free
  // reads: pages coincide with memory units, task_frames(i) collapses to
  // wbar(i), and every evicted page is dirty — so the paged accounting
  // degenerates to the unit accounting exactly (no divergence possible).
  PagedParallelConfig paged;
  paged.base = config;
  paged.page_size = 1;
  return simulate_parallel_paged(tree, paged, reference).base;
}

PagedParallelResult simulate_parallel_paged(const Tree& tree, const PagedParallelConfig& config,
                                            const Schedule& reference) {
  if (config.page_size <= 0)
    throw std::invalid_argument("simulate_parallel_paged: page_size must be positive");
  const Prepared prep = prepare(tree, config.base, reference);
  const std::vector<std::size_t>& ref_pos = prep.ref_pos;
  const std::vector<double>& priority_key = prep.priority_key;
  const ParallelConfig& base = config.base;
  const Weight page = config.page_size;

  PagedParallelResult paged;
  paged.frames = base.memory / page;
  const Weight frames = paged.frames;
  ParallelResult& result = paged.base;
  result.io.assign(tree.size(), 0);
  result.start_time.assign(tree.size(), -1.0);
  result.finish_time.assign(tree.size(), -1.0);

  // Page geometry (shared with iosim::run_pager): a datum occupies
  // total_pages frames; a running task holds work_frames =
  // iosim::task_frames (children's page-rounded outputs + transient extra).
  std::vector<Weight> total_pages(tree.size(), 0);
  std::vector<Weight> work_frames(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    total_pages[i] = iosim::page_count(tree.weight(id), page);
    work_frames[i] = iosim::task_frames(tree, id, page);
  }

  // State. Liveness needs no flags here: a live output with resident pages
  // is exactly an EvictionIndex entry, and `resident` covers the rest.
  // Dirtiness is per page: resident - dirty pages have a disk copy and are
  // dropped for free on eviction (write-at-most-once, as in run_pager).
  std::vector<Weight> resident(tree.size(), 0);  // in-memory pages of outputs
  std::vector<Weight> dirty(tree.size(), 0);     // resident pages with no disk copy
  std::vector<std::size_t> missing_children(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    missing_children[i] = tree.num_children(static_cast<NodeId>(i));

  // Ready tasks as a max-heap ordered by priority (then reference position
  // for ties) — no vector::erase on the hot path.
  struct Ready {
    double key;
    std::size_t ref_pos;
    NodeId id;
    bool operator<(const Ready& o) const {  // "less ready"
      return key != o.key ? key < o.key : ref_pos > o.ref_pos;
    }
  };
  std::priority_queue<Ready> ready;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (missing_children[i] == 0)
      ready.push(Ready{priority_key[i], ref_pos[i], static_cast<NodeId>(i)});

  // Running tasks as (finish_time, node) events.
  using Event = std::pair<double, NodeId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = base.workers;
  double now = 0.0;
  Weight frames_used = 0;     // running reservations + live output pages
  Weight running_frames = 0;  // sum of work_frames over running tasks
  std::int64_t clock = 0;     // completion clock (LRU/FIFO keys)

  util::Rng rng(base.seed);
  core::EvictionIndex index(base.evict, tree.size(),
                            base.evict == EvictionPolicy::kRandom ? &rng : nullptr);

#if OOCTREE_AUDIT_ENABLED
  // Audit-only running set (the event queue is not iterable): lets the
  // audit recompute the reservation sum independently of running_frames.
  std::vector<NodeId> audit_running;
  // Invariants of the shared transactional-start core, checked after every
  // completion event and at the end of the run (see parallel_sim.hpp):
  //   * reservation balance — running_frames is exactly the sum of
  //     work_frames over running tasks;
  //   * conservation — frames_used is exactly running reservations plus
  //     resident output pages, and never exceeds the frame count;
  //   * write-at-most-once — a datum's written volume never exceeds its
  //     page-rounded size, and the aggregate equals the per-node sum.
  const auto audit_state = [&] {
    Weight resident_total = 0;
    Weight io_total = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      core::audit_check(dirty[i] >= 0 && dirty[i] <= resident[i],
                        "simulate_parallel_paged: dirty pages outside [0, resident]");
      core::audit_check(resident[i] <= total_pages[i],
                        "simulate_parallel_paged: resident pages exceed the datum size");
      core::audit_check(result.io[i] <= total_pages[i] * page,
                        "simulate_parallel_paged: datum written beyond its size (write-once)");
      resident_total += resident[i];
      io_total += result.io[i];
    }
    core::audit_check(io_total == result.io_volume,
                      "simulate_parallel_paged: io_volume != sum of per-node I/O");
    Weight reservation_total = 0;
    for (const NodeId r : audit_running) reservation_total += work_frames[idx(r)];
    core::audit_check(reservation_total == running_frames,
                      "simulate_parallel_paged: running reservation out of balance");
    core::audit_check(resident_total + running_frames == frames_used,
                      "simulate_parallel_paged: frames conservation broken");
    core::audit_check(frames_used <= frames,
                      "simulate_parallel_paged: frames_used exceeds the frame count");
    index.audit();
  };
#endif

  // Transactional start: the O(1) precheck below is exact — every live
  // output except i's children is fully evictable (dirty pages cost a
  // write, clean ones are dropped free), so i fits (after eviction) iff
  // the running reservations plus work_frames(i) do. A failing try
  // therefore returns before any state change, and eviction I/O is charged
  // exactly once per real spill (the seed engine flushed victims and
  // charged io_volume even when the start then failed, making results
  // depend on how often backfill retried).
  // The O(1) fit check on its own, shared by try_start and the
  // residency-aware scan (which must test candidates without starting them).
  const auto fits = [&](NodeId i) -> bool {
    if (running_frames + work_frames[idx(i)] > frames) {
#if OOCTREE_AUDIT_ENABLED
      // Snapshot-free transactional check: this failure path runs before
      // any mutation, so the accounting aggregates must be exactly what the
      // caller's loop saw. The fault below re-introduces the PR 3 seed bug
      // (failed starts charged I/O) for tests/test_audit.cpp to catch.
      const Weight io_before = result.io_volume;
      if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 1)
        result.io_volume += page;
      core::audit_check(result.io_volume == io_before,
                        "simulate_parallel_paged: failed start mutated I/O accounting");
#endif
      return false;
    }
    return true;
  };

  const auto try_start = [&](NodeId i) -> bool {
    if (!fits(i)) return false;

    Weight child_resident = 0;
    for (const NodeId c : tree.children(i)) child_resident += resident[idx(c)];
    // Frame delta of starting i: children read back to their full page
    // counts, then their pages fold into the reservation work_frames(i);
    // the reservation dominates because work_frames >= sum of child pages.
    const Weight delta = work_frames[idx(i)] - child_resident;

    // The children are consumed by this start: never eviction victims.
    for (const NodeId c : tree.children(i))
      if (resident[idx(c)] > 0) index.erase(c);

    // Committed: evict live outputs (furthest-consumer first under Belady)
    // until the start fits. The precheck guarantees the index suffices.
    const Weight target = frames - delta;
    while (frames_used > target) {
      const NodeId v = index.pick();
      const Weight take = std::min(resident[idx(v)], frames_used - target);
      // Clean pages are dropped first; only never-written pages cost I/O.
      const Weight clean = resident[idx(v)] - dirty[idx(v)];
      const Weight written = std::max<Weight>(0, take - clean);
      resident[idx(v)] -= take;
      dirty[idx(v)] -= written;
      frames_used -= take;
      paged.pages_written += written;
      paged.pages_dropped_clean += take - written;
      ++paged.eviction_events;
      result.io[idx(v)] += written * page;
      result.io_volume += written * page;
      if (resident[idx(v)] == 0) {
        index.erase(v);
      } else if (base.evict == EvictionPolicy::kLargestFirst) {
        index.insert(v, resident[idx(v)]);  // re-key after the partial spill
      }
    }

    // Consume the children: read evicted pages back (read-back pages come
    // off disk unmodified — they would stay clean) and fold their outputs
    // into the reservation. With a disk model the consuming worker stalls
    // for the transfer before compute begins: spills delay this start.
    Weight read_pages = 0;
    std::int64_t transfers = 0;
    for (const NodeId c : tree.children(i)) {
      const Weight missing = total_pages[idx(c)] - resident[idx(c)];
      if (missing > 0) {
        read_pages += missing;
        ++transfers;
      }
      frames_used -= resident[idx(c)];
      resident[idx(c)] = 0;
      dirty[idx(c)] = 0;
    }
    paged.pages_read += read_pages;
    paged.read_transfers += transfers;
    double stall = 0.0;
    if (config.disk.has_value() && read_pages > 0) {
      stall = config.disk->transfer_time(read_pages * page, transfers);
      paged.read_stall += stall;
    }
    frames_used += work_frames[idx(i)];
    running_frames += work_frames[idx(i)];
    paged.peak_frames_used = std::max<std::int64_t>(paged.peak_frames_used, frames_used);
    result.peak_resident = std::max(result.peak_resident, frames_used * page);

    result.start_time[idx(i)] = now;
    result.start_order.push_back(i);
    const double cost = task_cost(tree, i, base.cost);
    result.busy_time += cost;  // compute only: read stalls are not useful work
    running.emplace(now + stall + cost, i);
    --idle;
#if OOCTREE_AUDIT_ENABLED
    audit_running.push_back(i);
#endif
    return true;
  };

  // Backfill contract: with backfill on, each free worker slot examines at
  // most `depth` ready tasks (0 = the whole heap) before the round gives
  // up; backfill off is exactly depth 1 (strict priority). Starts within a
  // round only grow running_frames, so a task that failed the fit check
  // cannot fit later in the same round — failures go to `deferred` and
  // return to the heap only when a completion frees memory.
  const int depth = base.backfill ? base.backfill_depth : 1;
  const bool residency = base.residency_aware && config.disk.has_value();
  std::size_t completed = 0;
  std::vector<Ready> deferred;
  std::vector<Ready> window;            // residency scan: fitting candidates
  std::vector<std::int64_t> window_at;  // examined index of each window entry
  while (completed < tree.size()) {
    deferred.clear();
    if (!residency) {
      // Start ready tasks in priority order: the first fitting task of the
      // (depth-bounded) scan is the best-priority fitting one.
      std::int64_t examined = 0;  // candidates looked at since the last start
      while (idle > 0 && !ready.empty()) {
        const Ready r = ready.top();
        ready.pop();
        ++examined;
        if (try_start(r.id)) {
          result.backfill_scans += examined - 1;
          if (examined > 1) ++result.backfill_hits;
          examined = 0;
          continue;
        }
        ++result.failed_starts;
        deferred.push_back(r);
        if (depth > 0 && examined >= depth) break;
      }
      if (examined > 0) result.backfill_scans += examined - 1;
    } else {
      // Residency-aware slot scan: collect the fitting tasks of the backfill
      // window and start the one with the fewest child pages to read back
      // (ties: best priority, i.e. scan order). A fully resident candidate
      // ends the scan — nothing can beat zero missing pages. Fitting tasks
      // that lose the tie return to the heap without counting as failures;
      // when reads cost nothing the rule never fires (missing pages are
      // free), and the gate above keeps the free-read engines bit-identical.
      while (idle > 0 && !ready.empty()) {
        window.clear();
        window_at.clear();
        std::size_t best = 0;
        Weight best_missing = -1;
        std::int64_t examined = 0;
        while (!ready.empty() && (depth == 0 || examined < depth)) {
          const Ready r = ready.top();
          ready.pop();
          ++examined;
          if (!fits(r.id)) {
            ++result.failed_starts;
            deferred.push_back(r);
            continue;
          }
          Weight missing = 0;
          for (const NodeId c : tree.children(r.id)) {
            missing += total_pages[idx(c)] - resident[idx(c)];
#if OOCTREE_AUDIT_ENABLED
            // A live output with resident pages is exactly an EvictionIndex
            // entry — the residency signal and the victim index must agree.
            core::audit_check(index.contains(c) == (resident[idx(c)] > 0),
                              "simulate_parallel_paged: residency scan out of sync with "
                              "the eviction index");
#endif
          }
          if (best_missing < 0 || missing < best_missing) {
            best_missing = missing;
            best = window.size();
          }
          window.push_back(r);
          window_at.push_back(examined);
          if (best_missing == 0) break;
        }
        if (examined > 0) result.backfill_scans += examined - 1;
        if (window.empty()) break;  // nothing in the window fits: round over
        for (std::size_t k = 0; k < window.size(); ++k)
          if (k != best) ready.push(window[k]);
        if (!try_start(window[best].id))
          throw std::logic_error(
              "simulate_parallel_paged: residency start failed after a passing fit check");
        if (window_at[best] != 1) ++result.backfill_hits;
      }
    }
    for (const Ready& r : deferred) ready.push(r);

    if (running.empty()) {
      // No task running and nothing startable: with all evictable pages
      // flushed the smallest work_frames must fit, so this means the frame
      // count is below min_feasible_frames.
      result.feasible = false;
      return paged;
    }

    // Advance to the next completion.
    const auto [finish, node] = running.top();
    running.pop();
    now = finish;
    result.finish_time[idx(node)] = now;
    ++idle;
    ++completed;
    ++clock;

    // Reservation work_frames collapses to the output's page count; the
    // output is produced in memory, so every page starts dirty.
    frames_used -= work_frames[idx(node)];
    running_frames -= work_frames[idx(node)];
#if OOCTREE_AUDIT_ENABLED
    audit_running.erase(std::find(audit_running.begin(), audit_running.end(), node));
    // Test-only seed-bug class: completion leaks one frame of its
    // reservation — the conservation audit below must catch it.
    if (core::fault::parallel_engine.load(std::memory_order_relaxed) & 2) ++frames_used;
#endif
    if (node != tree.root()) {
      frames_used += total_pages[idx(node)];
      resident[idx(node)] = total_pages[idx(node)];
      dirty[idx(node)] = total_pages[idx(node)];
      if (total_pages[idx(node)] > 0)
        index.insert(node, policy_key(base.evict, tree, node, total_pages[idx(node)], clock,
                                      ref_pos));
    }

    const NodeId parent = tree.parent(node);
    if (parent != kNoNode && --missing_children[idx(parent)] == 0)
      ready.push(Ready{priority_key[idx(parent)], ref_pos[idx(parent)], parent});

#if OOCTREE_AUDIT_ENABLED
    audit_state();
#endif
  }

#if OOCTREE_AUDIT_ENABLED
  audit_state();
  core::audit_check(frames_used == 0 && running_frames == 0,
                    "simulate_parallel_paged: frames still allocated after the root completed");
#endif
  result.makespan = now;
  result.feasible = true;
  return paged;
}

ParallelResult simulate_parallel_reference(const Tree& tree, const ParallelConfig& config,
                                           const Schedule& reference) {
  const Prepared prep = prepare(tree, config, reference);
  const std::vector<std::size_t>& ref_pos = prep.ref_pos;
  const std::vector<double>& priority_key = prep.priority_key;

  ParallelResult result;
  result.io.assign(tree.size(), 0);
  result.start_time.assign(tree.size(), -1.0);
  result.finish_time.assign(tree.size(), -1.0);

  // State.
  std::vector<Weight> resident(tree.size(), 0);  // in-memory part of outputs
  std::vector<bool> output_live(tree.size(), false);
  std::vector<std::int64_t> live_clock(tree.size(), 0);  // completion clock per output
  std::vector<std::size_t> missing_children(tree.size(), 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    missing_children[i] = tree.num_children(static_cast<NodeId>(i));

  // Ready tasks ordered by priority (then reference position for ties).
  const auto readier = [&](NodeId a, NodeId b) {
    if (priority_key[idx(a)] != priority_key[idx(b)])
      return priority_key[idx(a)] > priority_key[idx(b)];
    return ref_pos[idx(a)] < ref_pos[idx(b)];
  };
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (missing_children[i] == 0) ready.push_back(static_cast<NodeId>(i));
  std::sort(ready.begin(), ready.end(), readier);

  // Running tasks as (finish_time, node) events.
  using Event = std::pair<double, NodeId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  int idle = config.workers;
  double now = 0.0;
  Weight memory_used = 0;  // running reservations + live output parts
  std::int64_t clock = 0;
  util::Rng rng(config.seed);

  // Normalized eviction key: larger == evicted sooner (same convention and
  // tie-break as EvictionIndex, so both engines pick identical victims).
  const auto evict_key = [&](NodeId v) -> std::int64_t {
    switch (config.evict) {
      case EvictionPolicy::kBelady:
        return static_cast<std::int64_t>(ref_pos[idx(tree.parent(v))]);
      case EvictionPolicy::kLru:
      case EvictionPolicy::kFifo:
        return -live_clock[idx(v)];
      case EvictionPolicy::kLargestFirst:
        return resident[idx(v)];
      case EvictionPolicy::kRandom:
        return 0;
    }
    throw std::invalid_argument("simulate_parallel_reference: unknown eviction policy");
  };

  // Evicts from live outputs (parents not yet started) until `needed`
  // additional units fit. Transactional: when even full eviction cannot
  // make room, returns false WITHOUT evicting anything, so a failed start
  // charges no I/O (the seed engine flushed victims before reporting
  // failure, inflating io_volume by one flush per backfill retry).
  const auto make_room = [&](Weight needed, NodeId starting) -> bool {
    if (memory_used + needed <= config.memory) return true;
    std::vector<NodeId> victims;
    Weight evictable = 0;
    for (std::size_t k = 0; k < tree.size(); ++k) {
      const auto id = static_cast<NodeId>(k);
      if (!output_live[k] || resident[k] == 0) continue;
      bool is_child = false;
      for (const NodeId c : tree.children(starting)) is_child |= (c == id);
      if (is_child) continue;
      victims.push_back(id);
      evictable += resident[k];
    }
    if (memory_used + needed - evictable > config.memory) return false;
    if (config.evict == EvictionPolicy::kRandom) {
      while (memory_used + needed > config.memory) {
        const std::size_t pos = rng.index(victims.size());
        const NodeId v = victims[pos];
        const Weight take =
            std::min(resident[idx(v)], memory_used + needed - config.memory);
        resident[idx(v)] -= take;
        memory_used -= take;
        result.io[idx(v)] += take;
        result.io_volume += take;
        if (resident[idx(v)] == 0) {
          victims[pos] = victims.back();
          victims.pop_back();
        }
      }
      return true;
    }
    std::sort(victims.begin(), victims.end(), [&](NodeId a, NodeId b) {
      const std::int64_t ka = evict_key(a), kb = evict_key(b);
      return ka != kb ? ka > kb : a < b;
    });
    for (const NodeId v : victims) {
      if (memory_used + needed <= config.memory) break;
      const Weight take =
          std::min(resident[idx(v)], memory_used + needed - config.memory);
      resident[idx(v)] -= take;
      memory_used -= take;
      result.io[idx(v)] += take;
      result.io_volume += take;
    }
    return true;
  };

  const auto try_start = [&](NodeId i) -> bool {
    // Memory delta of starting i: children read back to full size, then
    // their outputs fold into the running reservation wbar(i).
    Weight child_resident = 0;
    for (const NodeId c : tree.children(i)) child_resident += resident[idx(c)];
    const Weight delta = tree.wbar(i) - child_resident;
    if (!make_room(delta, i)) return false;
    for (const NodeId c : tree.children(i)) {
      memory_used += tree.weight(c) - resident[idx(c)];
      resident[idx(c)] = tree.weight(c);
    }
    for (const NodeId c : tree.children(i)) {
      memory_used -= tree.weight(c);
      resident[idx(c)] = 0;
      output_live[idx(c)] = false;
    }
    memory_used += tree.wbar(i);
    result.peak_resident = std::max(result.peak_resident, memory_used);

    result.start_time[idx(i)] = now;
    result.start_order.push_back(i);
    const double cost = task_cost(tree, i, config.cost);
    result.busy_time += cost;
    running.emplace(now + cost, i);
    --idle;
    return true;
  };

  // Same backfill contract as the indexed engine: at most `depth` ready
  // tasks examined per slot (0 = all, backfill off = 1), with identical
  // scan/hit accounting — the differential suites compare these fields too.
  const int depth = config.backfill ? config.backfill_depth : 1;
  std::size_t completed = 0;
  while (completed < tree.size()) {
    // Start ready tasks best-priority first. Starts only grow the running
    // reservations, so a task that failed cannot succeed later in the same
    // round — one pass over the sorted ready list is exhaustive.
    std::int64_t examined = 0;  // candidates looked at since the last start
    for (std::size_t k = 0; idle > 0 && k < ready.size();) {
      ++examined;
      if (try_start(ready[k])) {
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));
        result.backfill_scans += examined - 1;
        if (examined > 1) ++result.backfill_hits;
        examined = 0;
        continue;
      }
      ++result.failed_starts;
      if (depth > 0 && examined >= depth) break;
      ++k;
    }
    if (examined > 0) result.backfill_scans += examined - 1;

    if (running.empty()) {
      // No task running and nothing startable: with all evictable data
      // flushed the smallest wbar must fit, so this means M < LB.
      result.feasible = false;
      return result;
    }

    // Advance to the next completion.
    const auto [finish, node] = running.top();
    running.pop();
    now = finish;
    result.finish_time[idx(node)] = now;
    ++idle;
    ++completed;
    ++clock;

    // Reservation wbar collapses to the output size.
    memory_used -= tree.wbar(node);
    if (node != tree.root()) {
      memory_used += tree.weight(node);
      resident[idx(node)] = tree.weight(node);
      output_live[idx(node)] = true;
      live_clock[idx(node)] = clock;
    }

    const NodeId parent = tree.parent(node);
    if (parent != kNoNode && --missing_children[idx(parent)] == 0) {
      const auto at = std::lower_bound(ready.begin(), ready.end(), parent, readier);
      ready.insert(at, parent);
    }
  }

  result.makespan = now;
  result.feasible = true;
  return result;
}

}  // namespace ooctree::parallel
