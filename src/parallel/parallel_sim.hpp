// Parallel out-of-core tree execution — the paper's declared next step
// (Section 7: "moving to parallel out-of-core execution").
//
// A pool of identical workers processes the task tree under a *shared*
// memory bound M. While task i runs it holds its transient wbar(i); its
// children's outputs are consumed at start (after reading back any evicted
// parts) and its own output stays resident until its parent starts. When a
// start does not fit, active outputs are evicted (partially, paging model)
// — or the start is delayed. The simulator is event-driven and reports
// makespan, written volume and the full execution trace, so the
// parallelism-vs-I/O tradeoff that motivates the paper's future work can
// be measured (bench_parallel_tradeoff, bench_parallel_scaling).
//
// Two engines implement the same semantics:
//   * simulate_parallel — the production engine: indexed eviction state
//     (core::EvictionIndex, no per-call scan of all n nodes), a heap-backed
//     ready queue, and *transactional* task starts (a start that cannot fit
//     even after full eviction mutates nothing, so eviction I/O is charged
//     exactly once per real spill);
//   * simulate_parallel_reference — the retained scan-based engine
//     (O(n) victim scan + sort per start), kept as the differential oracle
//     (tests/test_parallel_incremental.cpp pins both engines to
//     bit-identical results, mirroring rec_expand_reference from PR 2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/eviction.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"

namespace ooctree::parallel {

/// How a task's duration is derived from the tree.
enum class CostModel {
  kWbar,    ///< duration = wbar(i): front size drives the flop count
  kWeight,  ///< duration = w(i)
  kUnit,    ///< duration = 1
};

/// Which ready task starts first when a worker frees up.
enum class Priority {
  kSequentialOrder,  ///< follow a reference sequential schedule's order
  kCriticalPath,     ///< longest remaining path to the root first
  kHeaviestSubtree,  ///< largest remaining subtree work first
};

/// Simulation knobs.
struct ParallelConfig {
  int workers = 2;
  core::Weight memory = 0;
  CostModel cost = CostModel::kWbar;
  Priority priority = Priority::kCriticalPath;
  /// When the best-priority ready task does not fit in memory even after
  /// evicting every evictable byte, allow lower-priority ready tasks to
  /// start instead (backfilling). Without it the pool idles until memory
  /// frees up.
  bool backfill = true;
  /// Which live output loses units when a start needs room. kBelady evicts
  /// the output whose parent runs furthest in the *reference* order — the
  /// rule the paper proves optimal for a fixed sequential schedule.
  core::EvictionPolicy evict = core::EvictionPolicy::kBelady;
  std::uint64_t seed = 1;  ///< for EvictionPolicy::kRandom
};

/// Outcome of a parallel simulation.
struct ParallelResult {
  bool feasible = false;
  double makespan = 0.0;
  core::Weight io_volume = 0;        ///< written volume (reads mirror writes)
  core::IoFunction io;               ///< per-output written amounts
  core::Schedule start_order;        ///< tasks by start time
  std::vector<double> start_time;    ///< per task
  std::vector<double> finish_time;   ///< per task
  core::Weight peak_resident = 0;    ///< never exceeds memory when feasible
  double busy_time = 0.0;            ///< sum of task durations
  std::int64_t failed_starts = 0;    ///< tries rejected for lack of memory

  /// Worker utilization in [0, 1].
  [[nodiscard]] double utilization(int workers) const {
    return makespan > 0 ? busy_time / (makespan * workers) : 1.0;
  }
};

/// Runs the simulation. `reference` supplies the order for
/// Priority::kSequentialOrder and the Belady eviction key (furthest in the
/// reference order is evicted first); pass an empty schedule to use a
/// postorder computed internally. Throws std::invalid_argument on bad
/// configs.
[[nodiscard]] ParallelResult simulate_parallel(const core::Tree& tree,
                                               const ParallelConfig& config,
                                               const core::Schedule& reference = {});

/// The scan-based engine with identical semantics and results, retained as
/// the differential-testing oracle and the bench_parallel_scaling baseline.
/// O(n) per eviction round; use simulate_parallel everywhere else.
[[nodiscard]] ParallelResult simulate_parallel_reference(const core::Tree& tree,
                                                         const ParallelConfig& config,
                                                         const core::Schedule& reference = {});

/// Critical-path length under the cost model: a makespan lower bound.
[[nodiscard]] double critical_path(const core::Tree& tree, CostModel cost);

/// Total work under the cost model: busy_time of any feasible run.
[[nodiscard]] double total_work(const core::Tree& tree, CostModel cost);

}  // namespace ooctree::parallel
