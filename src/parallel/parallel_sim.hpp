// Parallel out-of-core tree execution — the paper's declared next step
// (Section 7: "moving to parallel out-of-core execution").
//
// A pool of identical workers processes the task tree under a *shared*
// memory bound M. While task i runs it holds its transient wbar(i); its
// children's outputs are consumed at start (after reading back any evicted
// parts) and its own output stays resident until its parent starts. When a
// start does not fit, active outputs are evicted (partially, paging model)
// — or the start is delayed. The simulator is event-driven and reports
// makespan, written volume and the full execution trace, so the
// parallelism-vs-I/O tradeoff that motivates the paper's future work can
// be measured (bench_parallel_tradeoff, bench_parallel_scaling,
// bench_paged_parallel).
//
// Units. The *unit-granular* API (simulate_parallel) accounts residency in
// abstract memory units, exactly like core::simulate_fif; the *paged* API
// (simulate_parallel_paged) accounts in fixed-size pages the way
// iosim::run_pager does: memory is frames = M / page_size, every datum
// occupies ceil(weight / page_size) frames, and a running task holds
// task_frames = max(sum of child pages, ceil(wbar / page_size)) frames.
// With page_size = 1 the two accountings coincide unit-for-unit.
//
// One engine implements both: simulate_parallel is the page_size = 1,
// free-read specialization of the paged core, so the two APIs cannot
// drift. Invariants of the shared core:
//   * transactional starts — fitting reduces to the O(1) check
//     running_frames + task_frames(i) <= frames (every live output except
//     i's own children is fully evictable), so a start that cannot fit
//     mutates nothing and eviction I/O is charged exactly once per real
//     spill;
//   * write-at-most-once — dirtiness is tracked per page; evicting a page
//     whose disk copy exists is free, so a datum's written volume never
//     exceeds its page-rounded size (the invariant iosim::run_pager
//     guarantees, now shared by the parallel engine);
//   * indexed eviction — victims come from core::EvictionIndex in
//     O(log n), never from a scan of all n nodes; overall the engine is
//     O((n + evictions) log n) per simulation.
// Under OOCTREE_AUDIT builds (the dev preset) the engine re-checks these
// invariants at runtime after every completion event — reservation
// balance, frames conservation, write-at-most-once, mutation-free failed
// starts — throwing core::AuditError on drift (src/core/check.hpp;
// exercised plus fault-injected by tests/test_audit.cpp).
// The retained scan-based engine (simulate_parallel_reference, O(n) victim
// scan + sort per start) is the differential oracle:
// tests/test_parallel_incremental.cpp pins both engines bit-identical, and
// tests/test_paged_parallel.cpp pins the paged accounting against
// iosim::run_pager and the sequential FiF counter.
//
// Read costs. The unit engine keeps the paper's convention that reads
// mirror writes and cost no time. The paged engine optionally folds the
// iosim::DiskModel disk-cost model into the makespan: reading spilled
// pages back stalls the consuming worker for transfer_time(volume,
// transfers) before compute begins, so spills delay dependent task starts
// (the ROADMAP read-cost item). The default — no disk model — keeps reads
// free and makes the paged engine reproduce simulate_parallel bit-for-bit
// at page_size = 1.
//
// Disk pipeline. On top of the disk model the paged engine models an
// asynchronous two-sided pipeline (the ROADMAP "Asynchronous disk
// pipeline" item): ParallelConfig::write_queue_depth bounds a queue of
// lazy eviction write-backs (a full queue backpressures the evicting
// worker — write_stall), and ParallelConfig::prefetch_window issues
// look-ahead reads for the evicted child pages of the tasks the scheduler
// will start next. The prediction replays the engine's own start rule —
// priority order, first-fit within the backfill window, parents activated
// by in-flight completions — so prefetch targets what will actually run,
// not the raw head of the ready heap. All transfers serialize through one
// device timeline with demand and prefetch reads taking priority over the
// unstarted write backlog (a started write is never preempted), so
// overlap hides transfer time under compute but never exceeds DiskModel
// capacity. Both knobs at 0 (the default) reproduce the synchronous
// engine bit-for-bit; tests/test_disk_pipeline.cpp pins that baseline
// plus the queue-depth, conservation and prefetch-accounting contracts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/eviction.hpp"
#include "src/core/traversal.hpp"
#include "src/core/tree.hpp"
#include "src/iosim/trace.hpp"

namespace ooctree::parallel {

/// How a task's duration is derived from the tree.
enum class CostModel {
  kWbar,    ///< duration = wbar(i): front size drives the flop count
  kWeight,  ///< duration = w(i)
  kUnit,    ///< duration = 1
};

/// Which ready task starts first when a worker frees up.
enum class Priority {
  kSequentialOrder,  ///< follow a reference sequential schedule's order
  kCriticalPath,     ///< longest remaining path to the root first
  kHeaviestSubtree,  ///< largest remaining subtree work first
  /// Bottom-level critical path minus a penalty for the memory the task
  /// would pin while running: key(i) = up(i) - reserve_penalty * cp *
  /// (wbar(i) / M), where up(i) is the kCriticalPath key and cp its
  /// maximum. Deep-but-heavy tasks no longer monopolize the bound; wide
  /// cheap subtrees interleave with them instead of serializing behind
  /// them. With reserve_penalty = 0 this is exactly kCriticalPath.
  kReservedCriticalPath,
};

/// Simulation knobs.
struct ParallelConfig {
  int workers = 2;
  core::Weight memory = 0;
  CostModel cost = CostModel::kWbar;
  Priority priority = Priority::kCriticalPath;
  /// When the best-priority ready task does not fit in memory even after
  /// evicting every evictable byte, allow lower-priority ready tasks to
  /// start instead (backfilling). Without it the pool idles until memory
  /// frees up.
  bool backfill = true;
  /// Bounded backfill look-ahead: with backfill on, at most this many ready
  /// tasks are examined per free worker slot before the round gives up
  /// (the fit check is O(1), so a failed look costs nothing). 0 = scan the
  /// whole ready heap (the historical backfill behaviour); 1 = strict
  /// priority, equivalent to backfill = false. Starts within one round only
  /// shrink the memory slack, so a bounded scan never misses a task that a
  /// later scan of the same round could have started.
  int backfill_depth = 0;
  /// Penalty strength for Priority::kReservedCriticalPath (>= 0). 0 makes
  /// the rank collapse to kCriticalPath bit-identically.
  double reserve_penalty = 1.0;
  /// Residency-aware starts (paged engine with a DiskModel only): among the
  /// fitting tasks of a slot's backfill window, start the one whose child
  /// pages are most resident (fewest pages to read back), ties broken by
  /// priority. Turns the read-stall charge into schedule input. Inert — the
  /// engines stay bit-identical with it on or off — when reads are free.
  bool residency_aware = false;
  /// Disk-pipeline write side (paged engine with a DiskModel only).
  /// 0 (the default) keeps the synchronous model — evictions write for
  /// free, bit-identical to the pre-pipeline engine. > 0 bounds an
  /// asynchronous write queue: every eviction that flushes dirty pages
  /// enqueues one transfer on the shared disk timeline; when all slots
  /// hold pending transfers the evicting worker stalls until the oldest
  /// drains (accounted as write_stall, separate from read_stall). Inert
  /// without a disk model.
  int write_queue_depth = 0;
  /// Disk-pipeline read side (paged engine with a DiskModel only). > 0
  /// makes every scheduling round predict the next prefetch_window starts
  /// (by replaying the start rule against the in-flight completions) and
  /// issue asynchronous reads for their evicted child pages, overlapping
  /// the transfer with compute: pages that arrive before the consuming
  /// start are read-stall-free. Staging may evict — clean pages first,
  /// never the children of predicted starts, and never past write-queue
  /// backpressure. 0 disables look-ahead — every read-back is a demand
  /// read at task start. Inert without a disk model.
  int prefetch_window = 0;
  /// Which live output loses units when a start needs room. kBelady evicts
  /// the output whose parent runs furthest in the *reference* order — the
  /// rule the paper proves optimal for a fixed sequential schedule.
  core::EvictionPolicy evict = core::EvictionPolicy::kBelady;
  std::uint64_t seed = 1;  ///< for EvictionPolicy::kRandom
};

/// Outcome of a parallel simulation.
struct ParallelResult {
  bool feasible = false;
  double makespan = 0.0;
  core::Weight io_volume = 0;        ///< written volume (reads mirror writes)
  core::IoFunction io;               ///< per-output written amounts
  core::Schedule start_order;        ///< tasks by start time
  std::vector<double> start_time;    ///< per task
  std::vector<double> finish_time;   ///< per task
  core::Weight peak_resident = 0;    ///< never exceeds memory when feasible
  double busy_time = 0.0;            ///< sum of task durations
  std::int64_t failed_starts = 0;    ///< tries rejected for lack of memory
  /// Backfill accounting: `backfill_scans` counts ready tasks examined
  /// beyond the first of each slot scan; `backfill_hits` counts starts that
  /// were not the best-priority candidate of their scan. Both are 0 at
  /// backfill_depth = 1 (strict priority never looks past the head).
  std::int64_t backfill_scans = 0;
  std::int64_t backfill_hits = 0;

  /// Worker utilization in [0, 1].
  [[nodiscard]] double utilization(int workers) const {
    return makespan > 0 ? busy_time / (makespan * workers) : 1.0;
  }
};

/// Paged-engine knobs: the unit-granular config plus the page geometry and
/// an optional disk-cost model. `base.memory` stays in memory units; the
/// engine runs on frames = base.memory / page_size.
struct PagedParallelConfig {
  ParallelConfig base;
  core::Weight page_size = 1;  ///< memory units per page (> 0)
  /// When set, reading evicted pages back at a task start stalls the
  /// consuming worker for DiskModel::transfer_time(volume, transfers)
  /// before compute begins — spilled pages delay dependent starts. When
  /// absent (the default) reads cost no time, matching simulate_parallel.
  std::optional<iosim::DiskModel> disk;
};

/// Outcome of a paged parallel simulation. `base.io` / `base.io_volume`
/// report *written* volume in memory units (pages written x page_size);
/// `base.peak_resident` is peak_frames_used x page_size. With the disk
/// model set, `base.makespan` includes read stalls while `base.busy_time`
/// stays compute-only, so utilization() reports useful work.
struct PagedParallelResult {
  ParallelResult base;
  core::Weight frames = 0;                ///< memory / page_size
  std::int64_t pages_written = 0;         ///< dirty pages flushed (once per page)
  std::int64_t pages_read = 0;            ///< read-backs of evicted pages
  std::int64_t pages_dropped_clean = 0;   ///< evicted pages with a disk copy
  std::int64_t eviction_events = 0;       ///< victim picks that freed frames
  std::int64_t peak_frames_used = 0;      ///< never exceeds frames when feasible
  std::int64_t read_transfers = 0;        ///< read-back operations (per child datum)
  double read_stall = 0.0;                ///< total worker time waiting on reads

  // Disk pipeline (write_queue_depth / prefetch_window under a disk model;
  // all zero on the synchronous path). The conservation contract pinned by
  // tests/test_disk_pipeline.cpp: disk_read_time + disk_write_time is the
  // pure device time of every transfer, read_stall + write_stall is the
  // worker time the device actually cost, and the difference is the time
  // the pipeline hid under compute (>= 0 with one worker; on the
  // synchronous path read_stall == disk_read_time exactly).
  double write_stall = 0.0;           ///< worker time stalled on a full write queue
  std::int64_t write_queue_peak = 0;  ///< max pending write transfers after any enqueue
  std::int64_t prefetch_issued = 0;   ///< pages fetched ahead of their consuming start
  std::int64_t prefetch_useful = 0;   ///< prefetched pages still resident when consumed
  std::int64_t prefetch_wasted = 0;   ///< prefetched pages evicted before use
  double disk_read_time = 0.0;        ///< pure device time of all read transfers
  double disk_write_time = 0.0;       ///< pure device time of all write transfers
};

/// Runs the simulation. `reference` supplies the order for
/// Priority::kSequentialOrder and the Belady eviction key (furthest in the
/// reference order is evicted first); pass an empty schedule to use a
/// postorder computed internally. Throws std::invalid_argument on bad
/// configs. Equivalent to simulate_parallel_paged at page_size = 1 with no
/// disk model (it is that call).
[[nodiscard]] ParallelResult simulate_parallel(const core::Tree& tree,
                                               const ParallelConfig& config,
                                               const core::Schedule& reference = {});

/// The paged engine: residency tracked in pages with per-page dirtiness,
/// shared-memory worker pool semantics as simulate_parallel. Anchors
/// (pinned by tests/test_paged_parallel.cpp):
///   * page_size = 1, no disk model  -> bit-identical to simulate_parallel;
///   * workers = 1, sequential order, no backfill -> page I/O identical to
///     iosim::run_pager on the same schedule (and, at page_size = 1, I/O
///     volume and peak identical to core::simulate_fif).
[[nodiscard]] PagedParallelResult simulate_parallel_paged(const core::Tree& tree,
                                                          const PagedParallelConfig& config,
                                                          const core::Schedule& reference = {});

/// The scan-based engine with identical semantics and results, retained as
/// the differential-testing oracle and the bench_parallel_scaling baseline.
/// O(n) per eviction round; use simulate_parallel everywhere else. The
/// unit-granular API has no disk model, so the pipeline knobs
/// (write_queue_depth, prefetch_window) are validated identically but
/// inert in both engines — the differential contract covers every value.
[[nodiscard]] ParallelResult simulate_parallel_reference(const core::Tree& tree,
                                                         const ParallelConfig& config,
                                                         const core::Schedule& reference = {});

/// Critical-path length under the cost model: a makespan lower bound.
[[nodiscard]] double critical_path(const core::Tree& tree, CostModel cost);

/// Total work under the cost model: busy_time of any feasible run.
[[nodiscard]] double total_work(const core::Tree& tree, CostModel cost);

}  // namespace ooctree::parallel
