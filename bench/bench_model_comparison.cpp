// Extension experiment: the two transient-memory models compared. The
// paper assumes tasks overwrite their inputs (wbar = max(in, out)); Liu's
// pebbling model keeps both (wbar = in + out). This bench quantifies, per
// SYNTH instance, how the in-core peak and the mid-bound I/O volumes move
// between the models, and checks that the strategy ranking is stable.
#include <cstdio>

#include "experiment.hpp"
#include "src/core/minmem_optimal.hpp"
#include "src/util/csv.hpp"
#include "src/util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ooctree;
  using core::MemoryModel;
  using core::Weight;
  const bench::Scale scale = bench::parse_scale(argc, argv);
  const int count = bench::synth_count(scale) / 3;
  const auto data = bench::synth_dataset(count, bench::synth_nodes(scale), 919191);

  std::printf("== extension: max(in,out) vs in+out memory models (%d instances) ==\n", count);
  util::CsvWriter csv("model_comparison.csv",
                      {"instance", "model", "lb", "peak", "memory", "strategy", "io"});

  struct Acc {
    double peak_ratio = 0.0;
    std::vector<Weight> io_totals;
    int n = 0;
  };
  Acc acc[2];
  const auto strategies = core::cheap_strategies();
  for (auto& a : acc) a.io_totals.assign(strategies.size(), 0);
  std::mutex mutex;

  util::parallel_for(data.size(), [&](std::size_t i) {
    const core::Tree& max_t = data[i].tree;
    const core::Tree sum_t = max_t.with_memory_model(MemoryModel::kSumInOut);
    const core::Tree* trees[2] = {&max_t, &sum_t};
    const char* names[2] = {"max", "sum"};
    double peaks[2] = {0, 0};
    for (int m = 0; m < 2; ++m) {
      const core::Tree& t = *trees[m];
      const Weight lb = t.min_feasible_memory();
      const Weight peak = core::opt_minmem_peak(t, t.root());
      peaks[m] = static_cast<double>(peak);
      if (peak <= lb) continue;
      const Weight bound = (lb + peak - 1) / 2;
      std::vector<Weight> ios;
      for (const auto s : strategies)
        ios.push_back(core::run_strategy(s, t, bound).io_volume());
      const std::lock_guard lock(mutex);
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        acc[m].io_totals[s] += ios[s];
        csv.row({data[i].name, names[m], lb, peak, bound,
                 core::strategy_name(strategies[s]), ios[s]});
      }
      acc[m].n += 1;
    }
    const std::lock_guard lock(mutex);
    if (peaks[0] > 0) acc[1].peak_ratio += peaks[1] / peaks[0];
  });

  std::printf("mean in-core peak inflation (sum / max): %.3fx over %zu instances\n",
              acc[1].peak_ratio / static_cast<double>(data.size()), data.size());
  std::printf("%-10s", "model");
  for (const auto s : strategies) std::printf("%16s", core::strategy_name(s).c_str());
  std::printf("\n");
  for (int m = 0; m < 2; ++m) {
    std::printf("%-10s", m == 0 ? "max(in,out)" : "in+out");
    for (std::size_t s = 0; s < strategies.size(); ++s)
      std::printf("%16lld", static_cast<long long>(acc[m].io_totals[s]));
    std::printf("   (%d kept)\n", acc[m].n);
  }
  std::printf("(total mid-bound I/O per strategy; ranking should be stable; CSV:"
              " model_comparison.csv)\n");
  return 0;
}
