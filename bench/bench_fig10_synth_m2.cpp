// Figure 10: the Figure-4 experiment at the largest I/O-requiring bound
// M2 = Peak_incore - 1 (Appendix B).
//
// Expected shape: OptMinMem, RecExpand and FullRecExpand coincide
// everywhere (RecExpand has nothing left to improve right below the
// in-core peak); only PostOrderMinIO lags, and by less than at the other
// bounds.
#include "experiment.hpp"

int main(int argc, char** argv) {
  using namespace ooctree::bench;
  const Scale scale = parse_scale(argc, argv);
  ExperimentConfig config;
  config.id = "fig10_synth_m2";
  config.title = "SYNTH dataset, M2 = Peak - 1";
  config.bound = MemoryBound::kM2PeakMinus1;
  config.strategies = ooctree::core::all_strategies();
  const auto data = synth_dataset(synth_count(scale), synth_nodes(scale));
  return run_profile_experiment(data, config) > 0 ? 0 : 1;
}
