// Throughput benchmark for the planning service: requests/sec over a
// thread sweep {1, 2, 4, 8} crossed with cache-hit mixes {0%, 50%, 90%}.
//
// Every cell builds a fresh PlanService, submits the same SYNTH request
// mix (RecExpand at M = 1.1*LB; every fifth spec adds a 4-worker parallel
// replay) and measures wall-clock requests/sec plus per-class service
// latencies (computed vs cache-served vs coalesced). A differential pass
// then recomputes every unique spec on a cache-disabled, single-thread
// service and checks each cached response bit-identical to recomputation —
// the service-level twin of the engine differential suites from PR 2/3.
//
// A second block exercises the multi-tenant server (src/server/) over the
// same instance family: an overload storm (offered load far beyond one
// worker's capacity against a bounded admission queue), a fairness run
// (three tenants with 2:1:1 weights backlogged behind a plug, per-tenant
// wait-latency percentiles and a quota-floor check on dispatch order), and
// a batch-fusion run (K requests over one tree at different memory bounds,
// fused through PlanService::plan_fused vs K independent computes,
// bit-identity enforced).
//
// Writes bench_service_throughput.csv (one row per cell),
// bench_service_server.csv (one row per server metric) and
// bench_service_throughput.json (summary; the committed baseline lives at
// the repository root as BENCH_service.json). Acceptance:
//   * throughput — 8-thread vs 1-thread speedup on the 0%-hit mix. The
//     ISSUE-level target of 4x applies on >= 8 hardware cores; machines
//     with fewer cores are capped at what the hardware can express, so the
//     recorded threshold is min(4.0, 0.85 * min(8, cores)) and the JSON
//     stores the core count next to the measured speedup.
//   * latency — on the 1-thread 90%-hit mix, mean cache-served latency
//     must undercut mean compute latency by >= 99%.
//   * differential — cached vs recomputed must match exactly (exit 1).
//   * overload — queue peak <= the admission bound, excess load shed as
//     ok=false (shed > 0), counters conserve (submitted == admitted+shed).
//   * fairness — no tenant below its DRR quota floor: the smallest
//     tenant's k-th dispatch lands within (rounds-per-request * k + slack)
//     of the backlog start.
//   * fusion — fused responses bit-identical to independent computes, and
//     the OptMinMem K-bound batch >= 1.5x faster than K independents
//     (the schedule is memory-independent, so fusion shares it; RecExpand
//     shares only the bottom-up peaks pass and is recorded, not gated).
//
// Scales: --scale quick (CI smoke) | default (baseline) | paper.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "experiment.hpp"
#include "src/server/plan_server.hpp"
#include "src/service/plan_service.hpp"
#include "src/util/csv.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace ooctree;

struct MixSpec {
  double hit_target = 0.0;  ///< fraction of requests repeating an earlier spec
  const char* name = "";
};

struct Cell {
  std::size_t threads = 0;
  double hit_target = 0.0;
  std::size_t requests = 0;
  std::size_t unique = 0;
  double seconds = 0.0;
  double rps = 0.0;
  std::uint64_t computed = 0;
  std::uint64_t cached = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t failed = 0;
  double mean_compute_ms = 0.0;
  double mean_cached_ms = 0.0;
};

/// The request mix of one cell: `requests` requests over `unique` specs,
/// spec s = k % unique, explicit per-spec seeds so repeats are genuine
/// duplicates. Every fifth spec carries a 4-worker parallel replay.
std::vector<service::PlanRequest> build_mix(std::size_t requests, std::size_t unique,
                                            std::size_t nodes) {
  std::vector<service::PlanRequest> mix;
  mix.reserve(requests);
  for (std::size_t k = 0; k < requests; ++k) {
    const std::size_t s = k % unique;
    service::PlanRequest request;
    request.id = static_cast<std::int64_t>(k) + 1;
    request.nodes = nodes;
    request.seed = 910000u + static_cast<std::uint64_t>(s);
    request.memory_lb = 1.1;
    request.strategy = core::Strategy::kRecExpand;
    if (s % 5 == 0) {
      parallel::ParallelConfig pc;
      pc.workers = 4;
      pc.priority = parallel::Priority::kSequentialOrder;
      request.parallel = pc;
    }
    mix.push_back(request);
  }
  return mix;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double index = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(index);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// A deliberately expensive request that keeps the server's single worker
/// busy while a run stages its backlog behind it.
service::PlanRequest plug_request() {
  service::PlanRequest request;
  request.id = -1;
  request.tenant = "plug";
  request.nodes = 60000;
  request.seed = 4242;
  request.memory_lb = 1.02;
  request.strategy = core::Strategy::kFullRecExpand;
  return request;
}

struct OverloadResult {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::size_t queue_peak = 0;
  std::size_t depth = 0;
  double seconds = 0.0;
  double shed_rate = 0.0;
  bool conserved = false;
  bool bounded = false;
  bool pass = false;
};

/// Offered load far beyond one worker's capacity against a small bounded
/// admission queue: the bound must hold and the excess must shed cleanly.
OverloadResult run_overload(std::size_t offered, std::size_t nodes) {
  server::ServerConfig config;
  config.service = service::ServiceConfig{.threads = 1, .cache_capacity = 0, .coalesce = false};
  config.workers = 1;
  config.admission.depth = 16;
  config.fuse = false;

  OverloadResult result;
  result.depth = config.admission.depth;
  server::PlanServer srv(config);
  util::Stopwatch wall;
  std::vector<std::future<server::ServerResponse>> futures;
  futures.reserve(offered);
  for (std::size_t k = 0; k < offered; ++k) {
    service::PlanRequest request;
    request.id = static_cast<std::int64_t>(k) + 1;
    request.tenant = "tenant-" + std::to_string(k % 4);
    request.nodes = nodes;
    request.seed = 920000u + static_cast<std::uint64_t>(k);  // all unique: no cache relief
    request.memory_lb = 1.1;
    futures.push_back(srv.submit(std::move(request)));
  }
  srv.drain();
  result.seconds = wall.seconds();

  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  for (auto& future : futures) {
    const server::ServerResponse response = future.get();
    if (response.shed) {
      ++shed;
    } else if (response.plan.stats->ok) {
      ++ok;
    }
  }
  const server::ServerStats stats = srv.stats();
  result.offered = offered;
  result.admitted = stats.admission.admitted;
  result.shed = stats.admission.shed();
  result.queue_peak = stats.admission.peak;
  result.shed_rate = static_cast<double>(shed) / static_cast<double>(offered);
  result.conserved = stats.admission.submitted == stats.admission.admitted + stats.admission.shed() &&
                     ok == stats.admission.admitted && ok + shed == offered;
  result.bounded = stats.admission.peak <= config.admission.depth;
  result.pass = result.conserved && result.bounded && result.shed > 0;
  return result;
}

struct TenantLatency {
  std::string tenant;
  std::size_t requests = 0;
  double weight = 1.0;
  double p50_ms = 0.0;  ///< admission-to-dispatch wait
  double p99_ms = 0.0;
};

struct FairnessResult {
  std::vector<TenantLatency> tenants;
  double seconds = 0.0;
  std::uint64_t floor_violations = 0;  ///< smallest tenant dispatches past its quota window
  bool pass = false;
};

/// Three tenants with 2:1:1 weights backlogged behind a plug on a single
/// worker. DRR serves 4 requests per round (alpha 2, beta 1, gamma 1), so
/// the smallest tenant's k-th request must dispatch within ~4k slots.
FairnessResult run_fairness(std::size_t per_unit, std::size_t nodes) {
  server::ServerConfig config;
  config.service = service::ServiceConfig{.threads = 1};
  config.workers = 1;
  config.fuse = false;
  config.weights = {{"alpha", 2.0}, {"beta", 1.0}, {"gamma", 1.0}};

  struct TenantPlan {
    const char* name;
    double weight;
    std::size_t count;
  };
  const TenantPlan plan[] = {
      {"alpha", 2.0, 2 * per_unit}, {"beta", 1.0, per_unit}, {"gamma", 1.0, per_unit}};

  server::PlanServer srv(config);
  util::Stopwatch wall;
  auto plug = srv.submit(plug_request());
  while (srv.stats().dispatched < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::map<std::string, std::vector<std::future<server::ServerResponse>>> futures;
  std::int64_t id = 0;
  for (const TenantPlan& tenant : plan)
    for (std::size_t k = 0; k < tenant.count; ++k) {
      service::PlanRequest request;
      request.id = ++id;
      request.tenant = tenant.name;
      request.nodes = nodes;
      request.seed = 930000u + static_cast<std::uint64_t>(id);
      request.memory_lb = 1.1;
      futures[tenant.name].push_back(srv.submit(std::move(request)));
    }
  srv.drain();
  (void)plug.get();

  FairnessResult result;
  result.seconds = wall.seconds();
  std::vector<std::uint64_t> gamma_seqs;
  for (const TenantPlan& tenant : plan) {
    std::vector<double> waits;
    for (auto& future : futures[tenant.name]) {
      const server::ServerResponse response = future.get();
      waits.push_back(response.wait_seconds * 1e3);
      if (std::string(tenant.name) == "gamma") gamma_seqs.push_back(response.dispatch_seq);
    }
    TenantLatency latency;
    latency.tenant = tenant.name;
    latency.requests = tenant.count;
    latency.weight = tenant.weight;
    latency.p50_ms = percentile(waits, 0.5);
    latency.p99_ms = percentile(waits, 0.99);
    result.tenants.push_back(latency);
  }
  // Quota floor: gamma earns 1 dispatch per 4-request DRR round, so its
  // k-th dispatch (1-based) must land within 4k + slack of the start
  // (slack covers the plug and dispatches that slip in mid-staging).
  std::sort(gamma_seqs.begin(), gamma_seqs.end());
  for (std::size_t k = 0; k < gamma_seqs.size(); ++k)
    if (gamma_seqs[k] > 4 * (k + 1) + 8) ++result.floor_violations;
  result.pass = result.floor_violations == 0;
  return result;
}

struct FusionRow {
  const char* strategy = "";
  std::size_t batch = 0;
  double independent_seconds = 0.0;
  double fused_seconds = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

/// K requests over one tree at K memory bounds: plan_fused vs K
/// independent computes, both on cache-disabled services.
FusionRow run_fusion(core::Strategy strategy, const char* name, std::size_t bounds,
                     std::size_t nodes) {
  std::vector<service::PlanRequest> batch;
  for (std::size_t k = 0; k < bounds; ++k) {
    service::PlanRequest request;
    request.id = static_cast<std::int64_t>(k) + 1;
    request.nodes = nodes;
    request.seed = 940001;  // one tree across the whole batch
    request.memory_lb = 1.05 + 0.1 * static_cast<double>(k);
    request.strategy = strategy;
    batch.push_back(request);
  }

  FusionRow row;
  row.strategy = name;
  row.batch = bounds;
  const service::ServiceConfig raw{.threads = 1, .cache_capacity = 0, .coalesce = false};

  service::PlanService independent(raw);
  util::Stopwatch independent_wall;
  std::vector<service::PlanResponse> truth;
  truth.reserve(bounds);
  for (const service::PlanRequest& request : batch) truth.push_back(independent.plan(request));
  row.independent_seconds = independent_wall.seconds();

  service::PlanService fused_service(raw);
  util::Stopwatch fused_wall;
  const std::vector<service::PlanResponse> fused = fused_service.plan_fused(batch);
  row.fused_seconds = fused_wall.seconds();

  row.identical = fused.size() == truth.size();
  for (std::size_t k = 0; row.identical && k < fused.size(); ++k)
    row.identical = fused[k].stats->ok && truth[k].stats->ok &&
                    service::identical(*fused[k].stats, *truth[k].stats);
  row.speedup = row.fused_seconds > 0 ? row.independent_seconds / row.fused_seconds : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_scale(argc, argv);

  std::size_t requests = 0;
  std::size_t nodes = 0;
  const char* scale_name = "default";
  switch (scale) {
    case bench::Scale::kQuick:
      requests = 60;
      nodes = 400;
      scale_name = "quick";
      break;
    case bench::Scale::kDefault:
      requests = 240;
      nodes = 1500;
      break;
    case bench::Scale::kPaper:
      requests = 480;
      nodes = 3000;
      scale_name = "paper";
      break;
  }
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  const std::vector<MixSpec> mixes{{0.0, "0%"}, {0.5, "50%"}, {0.9, "90%"}};
  const std::size_t cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf("== planning-service throughput: threads x cache-hit mix ==\n");
  std::printf("scale=%s  requests=%zu  n=%zu  M=1.1*LB  cores=%zu\n\n", scale_name, requests,
              nodes, cores);

  util::CsvWriter csv("bench_service_throughput.csv",
                      {"threads", "hit_target", "requests", "unique", "seconds", "rps",
                       "computed", "cached", "coalesced", "failed", "mean_compute_ms",
                       "mean_cached_ms"});

  std::vector<Cell> cells;
  for (const MixSpec& mix : mixes) {
    const auto unique = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(requests) * (1.0 - mix.hit_target) + 0.5));
    const std::vector<service::PlanRequest> batch = build_mix(requests, unique, nodes);

    for (const std::size_t threads : thread_counts) {
      service::ServiceConfig config;
      config.threads = threads;
      config.cache_capacity = 4096;
      service::PlanService planner(config);

      util::Stopwatch wall;
      auto futures = planner.submit_batch(batch);
      double compute_seconds = 0.0;
      double cached_seconds = 0.0;
      std::size_t compute_count = 0;
      std::size_t cached_count = 0;
      for (auto& future : futures) {
        const service::PlanResponse response = future.get();
        if (response.served == service::Served::kComputed) {
          compute_seconds += response.seconds;
          ++compute_count;
        } else if (response.served == service::Served::kCached) {
          cached_seconds += response.seconds;
          ++cached_count;
        }
      }
      const double seconds = wall.seconds();

      const service::ServiceStats stats = planner.stats();
      Cell cell;
      cell.threads = threads;
      cell.hit_target = mix.hit_target;
      cell.requests = requests;
      cell.unique = unique;
      cell.seconds = seconds;
      cell.rps = static_cast<double>(requests) / seconds;
      cell.computed = stats.computed;
      cell.cached = stats.cached;
      cell.coalesced = stats.coalesced;
      cell.failed = stats.failed;
      cell.mean_compute_ms =
          compute_count > 0 ? compute_seconds * 1e3 / static_cast<double>(compute_count) : 0.0;
      cell.mean_cached_ms =
          cached_count > 0 ? cached_seconds * 1e3 / static_cast<double>(cached_count) : 0.0;
      cells.push_back(cell);

      csv.row({static_cast<std::int64_t>(threads), mix.hit_target,
               static_cast<std::int64_t>(requests), static_cast<std::int64_t>(unique), seconds,
               cell.rps, static_cast<std::int64_t>(cell.computed),
               static_cast<std::int64_t>(cell.cached), static_cast<std::int64_t>(cell.coalesced),
               static_cast<std::int64_t>(cell.failed), cell.mean_compute_ms,
               cell.mean_cached_ms});
      std::printf("threads=%zu hit=%-4s %8.1f req/s  (%llu computed, %llu cached, "
                  "%llu coalesced)  compute %.3f ms  cached %.4f ms\n",
                  threads, mix.name, cell.rps, (unsigned long long)cell.computed,
                  (unsigned long long)cell.cached, (unsigned long long)cell.coalesced,
                  cell.mean_compute_ms, cell.mean_cached_ms);
      if (cell.failed != 0) {
        std::printf("FAILED responses in the mix — aborting\n");
        return 1;
      }
    }
  }

  // Differential pass: recompute every unique spec of the 90% mix on a
  // cache-disabled single-thread service and require every response of the
  // cached 8-thread run to be bit-identical to recomputation.
  std::printf("\ndifferential: cached vs uncached recomputation ... ");
  std::fflush(stdout);
  bool differential_ok = true;
  {
    const auto unique = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(requests) * 0.1 + 0.5));
    const std::vector<service::PlanRequest> batch = build_mix(requests, unique, nodes);

    service::ServiceConfig cached_config;
    cached_config.threads = 8;
    cached_config.cache_capacity = 4096;
    service::PlanService cached_service(cached_config);
    auto futures = cached_service.submit_batch(batch);

    service::ServiceConfig raw_config;
    raw_config.threads = 1;
    raw_config.cache_capacity = 0;  // every plan() recomputes
    raw_config.coalesce = false;
    service::PlanService raw_service(raw_config);
    std::vector<std::shared_ptr<const service::PlanStats>> truth(unique);
    for (std::size_t s = 0; s < unique; ++s)
      truth[s] = raw_service.plan(batch[s]).stats;  // batch[s] is spec s's first occurrence

    for (std::size_t k = 0; k < batch.size(); ++k) {
      const service::PlanResponse response = futures[k].get();
      const service::PlanStats& expect = *truth[k % unique];
      if (!response.stats->ok || !service::identical(*response.stats, expect)) {
        std::printf("MISMATCH at request id %lld (spec %zu)\n", (long long)batch[k].id,
                    k % unique);
        differential_ok = false;
      }
    }
  }
  std::printf("%s\n", differential_ok ? "identical" : "FAILED");

  // ---- server block: overload, fairness, fusion --------------------------
  std::printf("\n== multi-tenant server: overload / fairness / fusion ==\n");
  const std::size_t overload_offered = scale == bench::Scale::kQuick ? 80 : 240;
  const std::size_t overload_nodes = scale == bench::Scale::kQuick ? 200 : 400;
  const OverloadResult overload = run_overload(overload_offered, overload_nodes);
  std::printf("overload: offered=%llu admitted=%llu shed=%llu (%.0f%%)  queue peak %zu/%zu  %s\n",
              (unsigned long long)overload.offered, (unsigned long long)overload.admitted,
              (unsigned long long)overload.shed, overload.shed_rate * 100.0, overload.queue_peak,
              overload.depth, overload.pass ? "PASS" : "FAIL");

  const std::size_t fairness_unit = scale == bench::Scale::kQuick ? 10 : 30;
  const FairnessResult fairness = run_fairness(fairness_unit, /*nodes=*/80);
  for (const TenantLatency& tenant : fairness.tenants)
    std::printf("fairness: %-6s weight %.0f  %3zu requests  wait p50 %8.2f ms  p99 %8.2f ms\n",
                tenant.tenant.c_str(), tenant.weight, tenant.requests, tenant.p50_ms,
                tenant.p99_ms);
  std::printf("fairness: quota floor (gamma within 4k+8 dispatches) — %s\n",
              fairness.pass ? "PASS" : "FAIL");

  const std::size_t fusion_bounds = 12;
  const std::size_t fusion_nodes = scale == bench::Scale::kQuick ? 2000 : 8000;
  const FusionRow fusion_rows[] = {
      run_fusion(core::Strategy::kOptMinMem, "optminmem", fusion_bounds, fusion_nodes),
      run_fusion(core::Strategy::kRecExpand, "recexpand", fusion_bounds, fusion_nodes)};
  for (const FusionRow& row : fusion_rows)
    std::printf("fusion:   %-9s K=%zu  independent %.3fs  fused %.3fs  %.2fx  %s\n", row.strategy,
                row.batch, row.independent_seconds, row.fused_seconds, row.speedup,
                row.identical ? "identical" : "MISMATCH");
  const bool fusion_identical = fusion_rows[0].identical && fusion_rows[1].identical;
  const bool fusion_pass = fusion_identical && fusion_rows[0].speedup >= 1.5;

  {
    util::CsvWriter server_csv("bench_service_server.csv",
                               {"section", "label", "requests", "admitted", "shed", "queue_peak",
                                "p50_wait_ms", "p99_wait_ms", "seconds", "speedup", "pass"});
    server_csv.row({"overload", "shed-policy", static_cast<std::int64_t>(overload.offered),
                    static_cast<std::int64_t>(overload.admitted),
                    static_cast<std::int64_t>(overload.shed),
                    static_cast<std::int64_t>(overload.queue_peak), 0.0, 0.0, overload.seconds,
                    0.0, static_cast<std::int64_t>(overload.pass ? 1 : 0)});
    for (const TenantLatency& tenant : fairness.tenants)
      server_csv.row({"fairness", tenant.tenant, static_cast<std::int64_t>(tenant.requests),
                      static_cast<std::int64_t>(tenant.requests), std::int64_t{0}, std::int64_t{0},
                      tenant.p50_ms, tenant.p99_ms, fairness.seconds, 0.0,
                      static_cast<std::int64_t>(fairness.pass ? 1 : 0)});
    for (const FusionRow& row : fusion_rows)
      server_csv.row({"fusion", row.strategy, static_cast<std::int64_t>(row.batch),
                      static_cast<std::int64_t>(row.batch), std::int64_t{0}, std::int64_t{0}, 0.0,
                      0.0, row.fused_seconds, row.speedup,
                      static_cast<std::int64_t>(row.identical ? 1 : 0)});
  }

  // Acceptance numbers.
  const auto cell_at = [&](std::size_t threads, double hit) -> const Cell* {
    for (const Cell& c : cells)
      if (c.threads == threads && c.hit_target == hit) return &c;
    return nullptr;
  };
  const Cell* t1 = cell_at(1, 0.0);
  const Cell* t8 = cell_at(8, 0.0);
  const Cell* latency_cell = cell_at(1, 0.9);
  const double speedup = (t1 != nullptr && t8 != nullptr && t1->rps > 0) ? t8->rps / t1->rps : 0;
  const double threshold =
      std::min(4.0, 0.85 * static_cast<double>(std::min<std::size_t>(8, cores)));
  const bool throughput_pass = speedup >= threshold;
  const double latency_reduction =
      (latency_cell != nullptr && latency_cell->mean_compute_ms > 0)
          ? 1.0 - latency_cell->mean_cached_ms / latency_cell->mean_compute_ms
          : 0.0;
  const bool latency_pass = latency_reduction >= 0.99;

  std::FILE* json = std::fopen("bench_service_throughput.json", "w");
  if (json == nullptr) {
    std::printf("cannot write bench_service_throughput.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"service_throughput\",\n  \"scale\": \"%s\",\n",
               scale_name);
  std::fprintf(json,
               "  \"dataset\": \"SYNTH (uniform binary, weights 1..100), RecExpand at "
               "M = 1.1*LB, 1/5 specs with 4-worker replay\",\n");
  std::fprintf(json, "  \"requests\": %zu,\n  \"nodes\": %zu,\n  \"cores\": %zu,\n", requests,
               nodes, cores);
  std::fprintf(json, "  \"cells\": [\n");
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const Cell& c = cells[k];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"hit_target\": %.2f, \"unique\": %zu, "
                 "\"seconds\": %.6f, \"rps\": %.2f, \"computed\": %llu, \"cached\": %llu, "
                 "\"coalesced\": %llu, \"mean_compute_ms\": %.4f, \"mean_cached_ms\": %.5f}%s\n",
                 c.threads, c.hit_target, c.unique, c.seconds, c.rps,
                 (unsigned long long)c.computed, (unsigned long long)c.cached,
                 (unsigned long long)c.coalesced, c.mean_compute_ms, c.mean_cached_ms,
                 k + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"server\": {\n"
               "    \"overload\": {\"offered\": %llu, \"admitted\": %llu, \"shed\": %llu, "
               "\"shed_rate\": %.3f, \"queue_peak\": %zu, \"queue_depth_bound\": %zu, "
               "\"seconds\": %.4f},\n",
               (unsigned long long)overload.offered, (unsigned long long)overload.admitted,
               (unsigned long long)overload.shed, overload.shed_rate, overload.queue_peak,
               overload.depth, overload.seconds);
  std::fprintf(json, "    \"fairness\": {\"tenants\": [\n");
  for (std::size_t k = 0; k < fairness.tenants.size(); ++k) {
    const TenantLatency& tenant = fairness.tenants[k];
    std::fprintf(json,
                 "      {\"tenant\": \"%s\", \"weight\": %.1f, \"requests\": %zu, "
                 "\"p50_wait_ms\": %.3f, \"p99_wait_ms\": %.3f}%s\n",
                 tenant.tenant.c_str(), tenant.weight, tenant.requests, tenant.p50_ms,
                 tenant.p99_ms, k + 1 < fairness.tenants.size() ? "," : "");
  }
  std::fprintf(json, "    ], \"floor_violations\": %llu},\n",
               (unsigned long long)fairness.floor_violations);
  std::fprintf(json, "    \"fusion\": [\n");
  for (std::size_t k = 0; k < std::size(fusion_rows); ++k) {
    const FusionRow& row = fusion_rows[k];
    std::fprintf(json,
                 "      {\"strategy\": \"%s\", \"batch\": %zu, \"nodes\": %zu, "
                 "\"independent_seconds\": %.4f, \"fused_seconds\": %.4f, \"speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 row.strategy, row.batch, fusion_nodes, row.independent_seconds, row.fused_seconds,
                 row.speedup, row.identical ? "true" : "false",
                 k + 1 < std::size(fusion_rows) ? "," : "");
  }
  std::fprintf(json, "    ]\n  },\n");
  std::fprintf(json,
               "  \"acceptance\": {\n"
               "    \"throughput\": {\"mix\": \"0%%-hit\", \"speedup_8v1\": %.3f, "
               "\"cores\": %zu, \"threshold_effective\": %.3f, \"target_8core\": 4.0, "
               "\"pass\": %s},\n"
               "    \"latency\": {\"mix\": \"90%%-hit, 1 thread\", \"reduction\": %.5f, "
               "\"threshold\": 0.99, \"pass\": %s},\n"
               "    \"differential\": {\"pass\": %s},\n"
               "    \"overload\": {\"queue_bounded\": %s, \"conserved\": %s, \"shed\": %llu, "
               "\"pass\": %s},\n"
               "    \"fairness\": {\"floor_violations\": %llu, \"pass\": %s},\n"
               "    \"fusion\": {\"identical\": %s, \"optminmem_speedup\": %.3f, "
               "\"threshold\": 1.5, \"recexpand_speedup\": %.3f, \"pass\": %s}\n  }\n}\n",
               speedup, cores, threshold, throughput_pass ? "true" : "false", latency_reduction,
               latency_pass ? "true" : "false", differential_ok ? "true" : "false",
               overload.bounded ? "true" : "false", overload.conserved ? "true" : "false",
               (unsigned long long)overload.shed, overload.pass ? "true" : "false",
               (unsigned long long)fairness.floor_violations, fairness.pass ? "true" : "false",
               fusion_identical ? "true" : "false", fusion_rows[0].speedup,
               fusion_rows[1].speedup, fusion_pass ? "true" : "false");
  std::fclose(json);

  std::printf("\nacceptance:\n");
  std::printf("  throughput 0%%-hit: %.2fx at 8 vs 1 threads on %zu core(s) "
              "(effective threshold %.2fx, 8-core target 4x) — %s\n",
              speedup, cores, threshold, throughput_pass ? "PASS" : "FAIL");
  std::printf("  latency 90%%-hit:   %.2f%% cache-served reduction (threshold 99%%) — %s\n",
              latency_reduction * 100.0, latency_pass ? "PASS" : "FAIL");
  std::printf("  differential:      %s\n", differential_ok ? "PASS" : "FAIL");
  std::printf("  overload:          queue peak %zu <= %zu, %llu shed, conserved — %s\n",
              overload.queue_peak, overload.depth, (unsigned long long)overload.shed,
              overload.pass ? "PASS" : "FAIL");
  std::printf("  fairness:          %llu quota-floor violations — %s\n",
              (unsigned long long)fairness.floor_violations, fairness.pass ? "PASS" : "FAIL");
  std::printf("  fusion:            identical %s, optminmem %.2fx (threshold 1.5x), "
              "recexpand %.2fx — %s\n",
              fusion_identical ? "yes" : "NO", fusion_rows[0].speedup, fusion_rows[1].speedup,
              fusion_pass ? "PASS" : "FAIL");
  std::printf("results written to bench_service_throughput.csv, bench_service_server.csv "
              "and bench_service_throughput.json\n");
  std::printf("(to refresh the committed baseline: cp bench_service_throughput.json "
              "<repo>/BENCH_service.json)\n");
  const bool hard_gates = differential_ok && overload.pass && fairness.pass && fusion_identical;
  return hard_gates ? 0 : 1;
}
